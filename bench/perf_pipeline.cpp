//===- bench/perf_pipeline.cpp - Pipeline microbenchmarks ----------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// google-benchmark timings for the pipeline stages, backing Table 4's
// "synthesis is cheap" claim: front end, sequential execution + trace
// analysis, pair generation, full synthesis, and one detection run.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/AccessAnalysis.h"
#include "corpus/Corpus.h"
#include "detect/Detection.h"
#include "runtime/Execution.h"
#include "synth/Narada.h"
#include "synth/PairGenerator.h"

#include <benchmark/benchmark.h>

using namespace narada;

namespace {

const CorpusEntry &entryFor(int Index) {
  return corpus()[static_cast<size_t>(Index)];
}

void BM_Compile(benchmark::State &State) {
  const CorpusEntry &Entry = entryFor(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Result<CompiledProgram> P = compileProgram(Entry.Source);
    benchmark::DoNotOptimize(P.hasValue());
  }
  State.SetLabel(Entry.Id);
}

void BM_SeedTraceAnalysis(benchmark::State &State) {
  const CorpusEntry &Entry = entryFor(static_cast<int>(State.range(0)));
  Result<CompiledProgram> P = compileProgram(Entry.Source);
  for (auto _ : State) {
    AnalysisResult Analysis;
    for (const std::string &Seed : Entry.SeedNames) {
      Result<TestRun> Run = runTestSequential(*P->Module, Seed);
      Analysis.merge(analyzeTrace(Run->TheTrace, *P->Info));
    }
    benchmark::DoNotOptimize(Analysis.Accesses.size());
  }
  State.SetLabel(Entry.Id);
}

void BM_PairGeneration(benchmark::State &State) {
  const CorpusEntry &Entry = entryFor(static_cast<int>(State.range(0)));
  Result<CompiledProgram> P = compileProgram(Entry.Source);
  AnalysisResult Analysis;
  for (const std::string &Seed : Entry.SeedNames) {
    Result<TestRun> Run = runTestSequential(*P->Module, Seed);
    Analysis.merge(analyzeTrace(Run->TheTrace, *P->Info));
  }
  PairGenOptions Options;
  Options.FocusClass = Entry.ClassName;
  for (auto _ : State) {
    std::vector<RacyPair> Pairs = generatePairs(Analysis, Options);
    benchmark::DoNotOptimize(Pairs.size());
  }
  State.SetLabel(Entry.Id);
}

void BM_FullSynthesis(benchmark::State &State) {
  const CorpusEntry &Entry = entryFor(static_cast<int>(State.range(0)));
  NaradaOptions Options;
  Options.FocusClass = Entry.ClassName;
  for (auto _ : State) {
    Result<NaradaResult> R =
        runNarada(Entry.Source, Entry.SeedNames, Options);
    benchmark::DoNotOptimize(R.hasValue());
  }
  State.SetLabel(Entry.Id);
}

// The same full pipeline with every per-pair unit dispatched to a
// crash-isolated worker subprocess: the delta against BM_FullSynthesis is
// the isolation overhead recorded in EXPERIMENTS.md (docs/ROBUSTNESS.md).
void BM_FullSynthesisIsolated(benchmark::State &State) {
  const CorpusEntry &Entry = entryFor(static_cast<int>(State.range(0)));
  NaradaOptions Options;
  Options.FocusClass = Entry.ClassName;
  Options.Isolate = bench::benchIsolate();
  Options.Isolate.Enabled = true;
  for (auto _ : State) {
    Result<NaradaResult> R =
        runNarada(Entry.Source, Entry.SeedNames, Options);
    benchmark::DoNotOptimize(R.hasValue());
  }
  State.SetLabel(Entry.Id);
}

void BM_DetectOneTest(benchmark::State &State) {
  const CorpusEntry &Entry = entryFor(static_cast<int>(State.range(0)));
  NaradaOptions Options;
  Options.FocusClass = Entry.ClassName;
  Result<NaradaResult> R = runNarada(Entry.Source, Entry.SeedNames, Options);
  if (!R || R->Tests.empty()) {
    State.SkipWithError("no synthesized tests");
    return;
  }
  DetectOptions Detect;
  Detect.RandomRuns = 4;
  Detect.ConfirmAttempts = 1;
  const SynthesizedTestInfo &T = R->Tests.front();
  for (auto _ : State) {
    Result<TestDetectionResult> D = detectRacesInTest(
        *R->Program.Module, T.Name, Detect, T.CandidateLabels);
    benchmark::DoNotOptimize(D.hasValue());
  }
  State.SetLabel(Entry.Id);
}

} // namespace

// Index 0 = C1 (small), 3 = C4 (most methods), 5 = C6 (largest bodies).
BENCHMARK(BM_Compile)->Arg(0)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SeedTraceAnalysis)
    ->Arg(0)
    ->Arg(3)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PairGeneration)
    ->Arg(0)
    ->Arg(3)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullSynthesis)
    ->Arg(0)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullSynthesisIsolated)
    ->Arg(0)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetectOneTest)->Arg(0)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
