//===- bench/table5_detection.cpp - Reproduces Table 5 -------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Table 5, "Analysis of synthesized tests by RaceFuzzer": per class, races
// detected while executing the synthesized tests, races the active
// scheduler reproduced, and the harmful/benign split of the reproduced
// ones.  "Not reproduced" mirrors the paper's manually-triaged column.
//
// Paper reference (Table 5):
//   class  detected  harmful  benign   (manual TP  FP)
//   C1        76        58       2          12      4
//   C2        84        65       1          18      -
//   C3         8         7       1           -      -
//   C4         4         2       0           2      0
//   C5        36        30       6           -      -
//   C6        89        15      62          12      -
//   C7         4         4       -           -      -
//   C8         4         4       -           -      -
//   C9         2         2       -           -      -
//   total    307       187      72          44      4
// Shape to reproduce: C1/C2/C6 dominate the counts; C6 is benign-heavy
// (constant-writing reset); C7/C8/C9 contribute a handful of races each;
// most detected races are reproduced, and most reproduced races are
// harmful except in C6.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace narada;
using namespace narada::bench;

int main(int Argc, char **Argv) {
  BenchReporter Reporter("table5_detection", Argc, Argv);
  std::printf("Table 5: Analysis of synthesized tests by the detector "
              "stack (HB + lockset detection, RaceFuzzer-style "
              "confirmation, state-divergence triage)\n\n");
  const std::vector<int> Widths = {-4, 9, 11, 8, 7, 13};
  printRow({"Id", "Detected", "Reproduced", "Harmful", "Benign",
            "NotReproduced"},
           Widths);
  printRule(Widths);

  unsigned TotalDetected = 0, TotalReproduced = 0, TotalHarmful = 0,
           TotalBenign = 0;
  for (const CorpusEntry &Entry : corpus()) {
    ClassRun Run = runSynthesis(Entry);
    runDetection(Run, defaultDetectOptions());

    unsigned Detected = static_cast<unsigned>(Run.Detected.size());
    unsigned Reproduced = static_cast<unsigned>(Run.Reproduced.size());
    TotalDetected += Detected;
    TotalReproduced += Reproduced;
    TotalHarmful += static_cast<unsigned>(Run.Harmful.size());
    TotalBenign += static_cast<unsigned>(Run.Benign.size());
    printRow({Entry.Id, std::to_string(Detected),
              std::to_string(Reproduced),
              std::to_string(Run.Harmful.size()),
              std::to_string(Run.Benign.size()),
              std::to_string(Detected - Reproduced)},
             Widths);
  }
  printRule(Widths);
  printRow({"Total", std::to_string(TotalDetected),
            std::to_string(TotalReproduced), std::to_string(TotalHarmful),
            std::to_string(TotalBenign),
            std::to_string(TotalDetected - TotalReproduced)},
           Widths);

  std::printf("\nPaper totals: 307 detected, 259 reproduced, 187 harmful, "
              "72 benign.\n");
  return 0;
}
