//===- bench/ablation_schedules.cpp - Interleaving-budget sweep -----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Ablation called out in DESIGN.md: how many random schedules do the
// passive detectors need before the synthesized tests give up their races?
// Because Narada *stages* the conducive object sharing, the racy accesses
// collide in almost any schedule — the curve saturates within a handful of
// runs, which is what makes the RaceFuzzer-style confirmation step cheap.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace narada;
using namespace narada::bench;

int main(int Argc, char **Argv) {
  BenchReporter Reporter("ablation_schedules", Argc, Argv);
  const unsigned Budgets[] = {1, 2, 4, 8, 16};

  std::printf("Ablation: distinct races detected vs. random-schedule "
              "budget (passive detectors only)\n\n");
  std::vector<int> Widths = {-4};
  std::vector<std::string> Header = {"Id"};
  for (unsigned B : Budgets) {
    Widths.push_back(7);
    Header.push_back(std::to_string(B) + " run" + (B == 1 ? "" : "s"));
  }
  printRow(Header, Widths);
  printRule(Widths);

  for (const CorpusEntry &Entry : corpus()) {
    ClassRun Run = runSynthesis(Entry);
    std::vector<std::string> Cells = {Entry.Id};
    for (unsigned Budget : Budgets) {
      DetectOptions Options;
      Options.RandomRuns = Budget;
      Options.ConfirmAttempts = 0;
      std::set<std::string> Keys;
      for (const SynthesizedTestInfo &T : Run.Narada.Tests) {
        Result<TestDetectionResult> D = detectRacesInTest(
            *Run.Narada.Program.Module, T.Name, Options, {});
        if (!D) {
          std::fprintf(stderr, "detection error: %s\n",
                       D.error().str().c_str());
          return 1;
        }
        for (const RaceReport &Race : D->Detected)
          Keys.insert(Race.key());
      }
      Cells.push_back(std::to_string(Keys.size()));
    }
    printRow(Cells, Widths);
  }

  std::printf("\nThe staged sharing makes detection nearly "
              "schedule-insensitive: most races appear within 1-4 "
              "schedules and the curve flattens quickly.\n");
  return 0;
}
