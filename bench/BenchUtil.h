//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: run the full
/// Narada pipeline and the detection protocol over one corpus class, and
/// small fixed-width table printing utilities.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_BENCH_BENCHUTIL_H
#define NARADA_BENCH_BENCHUTIL_H

#include "corpus/Corpus.h"
#include "detect/DetectWorker.h"
#include "detect/Detection.h"
#include "obs/Metrics.h"
#include "obs/RunReport.h"
#include "support/Env.h"
#include "support/ProcessPool.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "synth/Narada.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace narada {
namespace bench {

/// Everything measured for one corpus class.
struct ClassRun {
  const CorpusEntry *Entry = nullptr;
  NaradaResult Narada;
  unsigned FocusMethodCount = 0;
  double SynthesisSecondsTotal = 0.0;

  // Detection aggregates (distinct race keys across all tests).
  std::set<std::string> Detected;
  std::set<std::string> Reproduced;
  std::set<std::string> Harmful;
  std::set<std::string> Benign;
  /// Distinct race keys confirmed per test, for the Fig. 14 distribution.
  std::vector<unsigned> RacesPerTest;
  /// Tests pulled from detection (budget exhausted / contained fault); their
  /// partial results still count above, but a non-zero value means the
  /// table's numbers are a lower bound — see docs/ROBUSTNESS.md.
  unsigned Quarantined = 0;
  /// Worker-subprocess deaths contained during this class's detection and
  /// the respawns they cost (non-zero only under NARADA_ISOLATE=1).
  uint64_t WorkerCrashes = 0;
  uint64_t WorkerRespawns = 0;
};

/// Worker-thread count for the bench drivers: the NARADA_JOBS env var
/// (0 = all hardware threads), defaulting to 1 (serial, the measured
/// configuration of the paper's tables).  Unparseable values fall back to
/// the serial default with a warning rather than escalating to 0/"all"
/// (env::jobs's policy — shared with narada-cli).
inline unsigned benchJobs() { return env::jobs(); }

/// Process-isolation options for the bench drivers: the NARADA_ISOLATE env
/// hook (shared with narada-cli; see docs/ROBUSTNESS.md).  Workers exec the
/// narada-cli binary, whose build path CMake pins via NARADA_CLI_PATH.
inline pool::IsolateOptions benchIsolate() {
  pool::IsolateOptions Iso;
  Iso.Enabled = env::isolate(false);
#ifdef NARADA_CLI_PATH
  Iso.WorkerExe = NARADA_CLI_PATH;
#endif
  return Iso;
}

/// Runs synthesis for one class; aborts the process with a message on
/// pipeline errors (benchmarks are not expected to handle them).
/// Worker count: \p JobsOverride when given, otherwise NARADA_JOBS via
/// benchJobs().  Extra.Jobs is deliberately ignored — a default-constructed
/// NaradaOptions is indistinguishable from one explicitly requesting a
/// serial run, so callers that need a pinned count pass JobsOverride.
inline ClassRun runSynthesis(const CorpusEntry &Entry,
                             const NaradaOptions &Extra = {},
                             std::optional<unsigned> JobsOverride = {}) {
  ClassRun Out;
  Out.Entry = &Entry;

  NaradaOptions Options = Extra;
  Options.FocusClass = Entry.ClassName;
  Options.Jobs = JobsOverride ? *JobsOverride : benchJobs();
  if (!Options.Isolate.Enabled)
    Options.Isolate = benchIsolate();

  Result<NaradaResult> R = runNarada(Entry.Source, Entry.SeedNames, Options);
  if (!R) {
    std::fprintf(stderr, "%s: pipeline error: %s\n", Entry.Id.c_str(),
                 R.error().str().c_str());
    std::exit(1);
  }
  Out.Narada = R.take();
  // The pipeline's own phase spans are the single timing source; no second
  // stopwatch around the call.
  Out.SynthesisSecondsTotal = Out.Narada.Stages.totalSeconds();

  const ClassInfo *Focus =
      Out.Narada.Program.Info->findClass(Entry.ClassName);
  Out.FocusMethodCount =
      Focus ? static_cast<unsigned>(Focus->Methods.size()) : 0;
  return Out;
}

/// Runs the detection protocol over every synthesized test of \p Run,
/// fanning tests across NARADA_JOBS workers (aggregation stays in test
/// order, so the numbers are jobs-independent).
inline void runDetection(ClassRun &Run, const DetectOptions &Options) {
  std::vector<TestDetectJob> Jobs;
  for (const SynthesizedTestInfo &T : Run.Narada.Tests)
    Jobs.push_back({T.Name, T.CandidateLabels});
  detectworker::DetectIsolateContext Iso;
  Iso.Isolate = benchIsolate();
  Iso.FinalSource = Run.Narada.FinalSource;
  // pool.* counters accumulate across classes in one bench process; the
  // per-class numbers are the deltas around this sweep.
  obs::MetricsSnapshot Before = obs::MetricsRegistry::global().snapshot();
  Result<std::vector<TestDetectionResult>> Results = detectRacesInTests(
      *Run.Narada.Program.Module, Jobs, Options, benchJobs(),
      Iso.Isolate.Enabled ? &Iso : nullptr);
  if (!Results) {
    std::fprintf(stderr, "%s: detection error: %s\n", Run.Entry->Id.c_str(),
                 Results.error().str().c_str());
    std::exit(1);
  }
  for (size_t I = 0; I < Results->size(); ++I) {
    const TestDetectionResult &D = (*Results)[I];
    if (D.Quarantined) {
      ++Run.Quarantined;
      std::fprintf(stderr, "%s: warning: test %s quarantined: %s\n",
                   Run.Entry->Id.c_str(), Jobs[I].TestName.c_str(),
                   D.QuarantineReason.c_str());
    }
    std::set<std::string> PerTest;
    for (const RaceReport &Race : D.Detected) {
      Run.Detected.insert(Race.key());
      PerTest.insert(Race.key());
    }
    for (const ConfirmedRace &C : D.Races) {
      if (!C.Reproduced)
        continue;
      Run.Detected.insert(C.Report.key());
      Run.Reproduced.insert(C.Report.key());
      PerTest.insert(C.Report.key());
      (C.Harmful ? Run.Harmful : Run.Benign).insert(C.Report.key());
    }
    Run.RacesPerTest.push_back(static_cast<unsigned>(PerTest.size()));
  }
  obs::MetricsSnapshot After = obs::MetricsRegistry::global().snapshot();
  Run.WorkerCrashes = After.counter("pool.workers_crashed") -
                      Before.counter("pool.workers_crashed");
  Run.WorkerRespawns = After.counter("pool.workers_respawned") -
                       Before.counter("pool.workers_respawned");
  if (Run.WorkerCrashes || Run.WorkerRespawns)
    std::fprintf(stderr,
                 "%s: note: %llu worker crash(es) contained, "
                 "%llu respawn(s); table numbers are a lower bound\n",
                 Run.Entry->Id.c_str(),
                 static_cast<unsigned long long>(Run.WorkerCrashes),
                 static_cast<unsigned long long>(Run.WorkerRespawns));
}

/// Phase-1 schedule source for the bench drivers: the NARADA_EXPLORE env
/// var ("random", "pct", "systematic"), defaulting to random — the
/// measured configuration of the paper's tables.  Unparseable values fall
/// back to random with a warning, mirroring benchJobs(); "replay" needs a
/// trace file and has no env spelling.
inline ExplorationMode benchExplorationMode() {
  return env::readOr(
      "NARADA_EXPLORE", ExplorationMode::Random,
      [](const char *Text, ExplorationMode &Mode) {
        return parseExplorationMode(Text, Mode) &&
               Mode != ExplorationMode::Replay;
      },
      "using random schedules");
}

/// Moderate detection options keeping the full-corpus benches fast.
inline DetectOptions defaultDetectOptions() {
  DetectOptions Options;
  Options.RandomRuns = 6;
  Options.ConfirmAttempts = 2;
  Options.Mode = benchExplorationMode();
  return Options;
}

/// Prints a row of fixed-width columns.
inline void printRow(const std::vector<std::string> &Cells,
                     const std::vector<int> &Widths) {
  std::string Line;
  for (size_t I = 0; I < Cells.size(); ++I) {
    int Width = I < Widths.size() ? Widths[I] : 12;
    if (Width < 0)
      Line += padRight(Cells[I], static_cast<size_t>(-Width));
    else
      Line += padLeft(Cells[I], static_cast<size_t>(Width));
    Line += "  ";
  }
  std::printf("%s\n", Line.c_str());
}

/// Prints a dashed separator sized for \p Widths.
inline void printRule(const std::vector<int> &Widths) {
  size_t Total = 0;
  for (int W : Widths)
    Total += static_cast<size_t>(W < 0 ? -W : W) + 2;
  std::printf("%s\n", std::string(Total, '-').c_str());
}

/// Shared observability surface of the table/figure drivers: construct one
/// at the top of main() and a JSON run report is written on scope exit when
/// `--report <file.json>` was passed (or the NARADA_REPORT env var is set).
class BenchReporter {
public:
  BenchReporter(std::string Tool, int Argc = 0, char **Argv = nullptr) {
    Meta.Tool = std::move(Tool);
    Meta.Command = "bench";
    Meta.addOption("jobs", std::to_string(benchJobs()));
    Meta.addOption("explore", explorationModeName(benchExplorationMode()));
    for (int I = 1; I < Argc; ++I)
      if (std::string(Argv[I]) == "--report" && I + 1 < Argc)
        Path = Argv[++I];
    if (Path.empty())
      if (const char *Env = std::getenv("NARADA_REPORT"))
        Path = Env;
  }

  BenchReporter(const BenchReporter &) = delete;
  BenchReporter &operator=(const BenchReporter &) = delete;

  ~BenchReporter() {
    if (!Path.empty())
      obs::writeRunReport(Path, Meta);
  }

  obs::RunMeta Meta;

private:
  std::string Path;
};

} // namespace bench
} // namespace narada

#endif // NARADA_BENCH_BENCHUTIL_H
