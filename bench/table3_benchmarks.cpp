//===- bench/table3_benchmarks.cpp - Reproduces Table 3 ------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Table 3, "Benchmark Information": benchmark, version, and analyzed class
// for each corpus entry, plus this reproduction's defect summary.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace narada;
using namespace narada::bench;

int main(int Argc, char **Argv) {
  BenchReporter Reporter("table3_benchmarks", Argc, Argv);
  std::printf("Table 3: Benchmark Information\n");
  std::printf("(paper: hazelcast/openjdk/colt/hsqldb/hedc/h2/classpath; "
              "this reproduction models each class in MiniJava)\n\n");

  const std::vector<int> Widths = {-4, -10, -8, -30};
  printRow({"Id", "Benchmark", "Version", "Class name"}, Widths);
  printRule(Widths);
  for (const CorpusEntry &Entry : corpus())
    printRow({Entry.Id, Entry.Benchmark, Entry.Version, Entry.ClassName},
             Widths);

  std::printf("\nDefect structure preserved per class:\n");
  for (const CorpusEntry &Entry : corpus())
    std::printf("  %s: %s\n", Entry.Id.c_str(), Entry.Description.c_str());
  return 0;
}
