//===- bench/gen_corpus.cpp - Generated-seed-corpus benchmark ------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// The zero-seed pipeline input, measured per corpus class: how many
// candidates the default generation budget emits, how many survive
// validation and commit, the candidate-pair coverage the kept corpus
// reaches, how many statically suspicious target pairs steering covered,
// and wall-clock generation time.  The shape to watch: generation is
// sub-second per class, keeps a handful of seeds out of dozens of
// candidates, and covers every steering target on the small classes.
// docs/GENERATION.md describes the engine; tests/gen_test.cpp pins the
// recall guarantee this driver only times.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/GenEngine.h"
#include "support/Timer.h"

using namespace narada;
using namespace narada::bench;

int main(int Argc, char **Argv) {
  BenchReporter Reporter("gen_corpus", Argc, Argv);
  std::printf("Generated seed corpus: per-class generation at the default "
              "budget (jobs=%u)\n\n",
              resolveJobs(benchJobs()));
  const std::vector<int> Widths = {-4, 6, 6, 12, 14, 5, 9};
  printRow({"Id", "Cand", "Kept", "Pairs (gen)", "Targets (cov)", "Quar",
            "Time (s)"},
           Widths);
  printRule(Widths);

  unsigned TotalKept = 0, TotalPairs = 0, TotalQuarantined = 0;
  double TotalSeconds = 0.0;
  for (const CorpusEntry &Entry : corpus()) {
    gen::GenOptions Options;
    Options.FocusClass = Entry.ClassName;
    Options.Jobs = benchJobs();
    Timer Elapsed;
    Result<gen::GenResult> Gen =
        gen::generateSeedCorpus(Entry.Source, Options);
    double Seconds = Elapsed.seconds();
    if (!Gen) {
      std::fprintf(stderr, "error: %s: %s\n", Entry.Id.c_str(),
                   Gen.error().str().c_str());
      return 1;
    }
    TotalKept += static_cast<unsigned>(Gen->Seeds.size());
    TotalPairs += static_cast<unsigned>(Gen->PairKeys.size());
    TotalQuarantined += static_cast<unsigned>(Gen->Quarantined.size());
    TotalSeconds += Seconds;
    printRow({Entry.Id,
              std::to_string(Options.Rounds * Options.Budget),
              std::to_string(Gen->Seeds.size()),
              std::to_string(Gen->PairKeys.size()),
              std::to_string(Gen->StaticTargetsCovered) + "/" +
                  std::to_string(Gen->StaticTargets),
              std::to_string(Gen->Quarantined.size()),
              formatDouble(Seconds, 2)},
             Widths);
  }
  printRule(Widths);
  printRow({"Total", "", std::to_string(TotalKept),
            std::to_string(TotalPairs), "",
            std::to_string(TotalQuarantined), formatDouble(TotalSeconds, 2)},
           Widths);

  std::printf("\nEvery corpus above was generated with zero hand-written "
              "seeds; tests/gen_test.cpp asserts the race-recall guarantee "
              "on C2 and C9.\n");
  return 0;
}
