//===- bench/contege_comparison.cpp - Reproduces the §5 ConTeGe comparison -----===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// §5's closing comparison: ConTeGe, running a random search with a
// crash/deadlock oracle, "was able to detect two thread-safety violations
// in C5 and one in C6 by generating 2.9K and 105 tests respectively.  For
// other benchmarks it generated between 1K-70K tests, yet was unable to
// detect any thread-safety violations."
//
// Shape to reproduce: the random baseline needs orders of magnitude more
// tests than Narada synthesizes, finds violations in at most a couple of
// classes (those whose races *crash*), and is blind to silent races that
// Narada's directed tests surface as harmful.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "contege/Contege.h"

using namespace narada;
using namespace narada::bench;

int main(int Argc, char **Argv) {
  BenchReporter Reporter("contege_comparison", Argc, Argv);
  std::printf("ConTeGe-style random baseline vs. Narada-directed "
              "synthesis\n\n");
  const std::vector<int> Widths = {-4, 10, 12, 12, 13, 13, 11};
  printRow({"Id", "CTG tests", "CTG viol.", "CTG silent", "Narada tests",
            "Narada races", "harmful"},
           Widths);
  printRule(Widths);

  for (const CorpusEntry &Entry : corpus()) {
    ContegeOptions Options;
    Options.MaxTests = 400;
    Options.SchedulesPerTest = 6;
    Options.Seed = 11;
    Result<ContegeResult> Baseline =
        runContege(Entry.Source, Entry.ClassName, Options);
    if (!Baseline) {
      std::fprintf(stderr, "%s: contege error: %s\n", Entry.Id.c_str(),
                   Baseline.error().str().c_str());
      return 1;
    }

    ClassRun Run = runSynthesis(Entry);
    DetectOptions Detect = defaultDetectOptions();
    Detect.RandomRuns = 4;
    Detect.ConfirmAttempts = 2;
    runDetection(Run, Detect);

    printRow({Entry.Id, std::to_string(Baseline->TestsGenerated),
              std::to_string(Baseline->ViolationsFound),
              std::to_string(Baseline->SilentRacyTests),
              std::to_string(Run.Narada.Tests.size()),
              std::to_string(Run.Reproduced.size()),
              std::to_string(Run.Harmful.size())},
             Widths);
  }

  std::printf("\nCTG viol. = thread-safety violations under the ConTeGe "
              "crash/deadlock oracle; CTG silent = randomly generated "
              "tests whose executions raced (per the HB detector) without "
              "crashing — invisible to that oracle.  The paper's result: "
              "ConTeGe found violations only in C5/C6 with thousands of "
              "tests; Narada's handful of directed tests expose harmful "
              "races in every class.\n");
  return 0;
}
