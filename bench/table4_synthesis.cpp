//===- bench/table4_synthesis.cpp - Reproduces Table 4 -------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Table 4, "Synthesized test count and synthesis time": per class, the
// number of methods and lines of code, the racy pairs found by stages 1-2,
// the tests synthesized by stage 3, and wall-clock synthesis time.
//
// Paper reference (Table 4):
//   class  methods  LoC   pairs  tests  time(s)
//   C1       14     104     65     15    12.2
//   C2       19      85    131     40    13.5
//   C3       13      92     13      9     2.2
//   C4       35     313     26     11    33.0
//   C5       32     508    136      8     7.4
//   C6       26    1802     85      8   121.7
//   C7        9     191      4      4     3.6
//   C8       18     233      4      4     5.8
//   C9        8     102      2      2     1.9
// The shape to reproduce: every class yields pairs and far fewer tests than
// pairs; synthesis is seconds per class; C4/C5/C6 have the largest pair
// counts, C7/C8/C9 the smallest.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace narada;
using namespace narada::bench;

int main(int Argc, char **Argv) {
  BenchReporter Reporter("table4_synthesis", Argc, Argv);
  std::printf("Table 4: Synthesized test count and synthesis time "
              "(jobs=%u)\n\n",
              resolveJobs(benchJobs()));
  const std::vector<int> Widths = {-4, 8, 6, 11, 6, 9, 11};
  printRow({"Id", "Methods", "LoC", "Race pairs", "Tests", "Skipped",
            "Time (s)"},
           Widths);
  printRule(Widths);

  unsigned TotalPairs = 0, TotalTests = 0;
  double TotalSeconds = 0.0;
  for (const CorpusEntry &Entry : corpus()) {
    ClassRun Run = runSynthesis(Entry);
    TotalPairs += static_cast<unsigned>(Run.Narada.Pairs.size());
    TotalTests += static_cast<unsigned>(Run.Narada.Tests.size());
    TotalSeconds += Run.SynthesisSecondsTotal;
    printRow({Entry.Id, std::to_string(Run.FocusMethodCount),
              std::to_string(Entry.linesOfCode()),
              std::to_string(Run.Narada.Pairs.size()),
              std::to_string(Run.Narada.Tests.size()),
              std::to_string(Run.Narada.Skipped.size()),
              formatDouble(Run.SynthesisSecondsTotal, 2)},
             Widths);
  }
  printRule(Widths);
  printRow({"Total", "", "", std::to_string(TotalPairs),
            std::to_string(TotalTests), "", formatDouble(TotalSeconds, 2)},
           Widths);

  std::printf("\nPaper totals: 466 pairs, 101 tests, 201.3 s "
              "(absolute values differ — the substrate is a MiniJava VM, "
              "not instrumented JVM bytecode; the within-table shape is the "
              "reproduction target).\n");
  return 0;
}
