//===- bench/ablation_detectors.cpp - Detector-stack ablation ------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Ablation called out in DESIGN.md: contribution of each passive detector.
// The happens-before detector (FastTrack-style) is precise but only sees
// races the sampled schedules actually interleave; the lockset detector
// (Eraser-style) predicts races from locking discipline regardless of the
// observed order.  The paper leans on both ideas: locksets to *generate*
// tests, happens-before (via RaceFuzzer) to *validate* them.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace narada;
using namespace narada::bench;

namespace {

std::set<std::string> detectedWith(ClassRun &Run, bool UseHB,
                                   bool UseLockSet) {
  DetectOptions Options;
  Options.RandomRuns = 6;
  Options.ConfirmAttempts = 0; // Passive detection only.
  Options.UseHB = UseHB;
  Options.UseLockSet = UseLockSet;

  std::set<std::string> Keys;
  for (const SynthesizedTestInfo &T : Run.Narada.Tests) {
    Result<TestDetectionResult> D = detectRacesInTest(
        *Run.Narada.Program.Module, T.Name, Options, {});
    if (!D) {
      std::fprintf(stderr, "detection error: %s\n", D.error().str().c_str());
      std::exit(1);
    }
    for (const RaceReport &Race : D->Detected)
      Keys.insert(Race.key());
  }
  return Keys;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchReporter Reporter("ablation_detectors", Argc, Argv);
  std::printf("Ablation: passive detectors on the synthesized tests "
              "(distinct races detected)\n\n");
  const std::vector<int> Widths = {-4, 9, 11, 8};
  printRow({"Id", "HB only", "Lockset only", "Both"}, Widths);
  printRule(Widths);

  for (const CorpusEntry &Entry : corpus()) {
    ClassRun Run = runSynthesis(Entry);
    std::set<std::string> HB = detectedWith(Run, true, false);
    std::set<std::string> Lockset = detectedWith(Run, false, true);
    std::set<std::string> Both = detectedWith(Run, true, true);
    printRow({Entry.Id, std::to_string(HB.size()),
              std::to_string(Lockset.size()),
              std::to_string(Both.size())},
             Widths);
  }

  std::printf("\nLockset flags locking-discipline violations independent "
              "of the observed order (more reports, may include "
              "false positives); HB reports only races the sampled "
              "schedules exhibited (precise).  Narada feeds both.\n");
  return 0;
}
