//===- bench/fig14_distribution.cpp - Reproduces Figure 14 ---------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Figure 14, "Distribution of tests w.r.t. the number of detected races":
// per class, the percentage of synthesized tests that detect 0, 1, 2, 3-5,
// 5-10 and >10 races.
//
// Shape to reproduce: for C5..C8 every test detects at least one race; C4
// has the largest 0-races share (its conducive contexts are not
// client-settable, so prefix-shared tests stay silent); C1/C2 mix silent
// and highly-productive tests.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace narada;
using namespace narada::bench;

namespace {

/// The paper's x-axis buckets.
unsigned bucketOf(unsigned Races) {
  if (Races == 0)
    return 0;
  if (Races == 1)
    return 1;
  if (Races == 2)
    return 2;
  if (Races <= 5)
    return 3;
  if (Races <= 10)
    return 4;
  return 5;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchReporter Reporter("fig14_distribution", Argc, Argv);
  std::printf("Figure 14: Distribution of tests w.r.t. the number of "
              "detected races (percent of each class's tests per bucket)\n\n");
  const std::vector<int> Widths = {-4, 6, 6, 6, 6, 6, 6, 7};
  printRow({"Id", "0", "1", "2", "3-5", "5-10", ">10", "Tests"}, Widths);
  printRule(Widths);

  for (const CorpusEntry &Entry : corpus()) {
    ClassRun Run = runSynthesis(Entry);
    runDetection(Run, defaultDetectOptions());

    unsigned Buckets[6] = {0, 0, 0, 0, 0, 0};
    for (unsigned Races : Run.RacesPerTest)
      ++Buckets[bucketOf(Races)];
    unsigned Total = static_cast<unsigned>(Run.RacesPerTest.size());

    std::vector<std::string> Cells{Entry.Id};
    for (unsigned B = 0; B < 6; ++B) {
      unsigned Percent = Total == 0 ? 0 : Buckets[B] * 100 / Total;
      Cells.push_back(std::to_string(Percent));
    }
    Cells.push_back(std::to_string(Total));
    printRow(Cells, Widths);
  }

  std::printf("\nColumns are percentages of that class's synthesized tests "
              "whose execution detected the bucketed number of distinct "
              "races.\n");
  return 0;
}
