//===- bench/ablation_context.cpp - Context-derivation ablation ----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Ablation called out in DESIGN.md: how much of Narada's effectiveness
// comes from the Context Deriver (stage 2b)?  With derivation disabled the
// synthesizer still builds two-thread tests from the same racy pairs, but
// passes fresh unconstrained instances — no staged object sharing.  The
// paper's claim (§3.3) is that sharing is the enabling ingredient: without
// it the two threads touch disjoint objects and races vanish.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace narada;
using namespace narada::bench;

int main(int Argc, char **Argv) {
  BenchReporter Reporter("ablation_context", Argc, Argv);
  std::printf("Ablation: context derivation ON vs OFF "
              "(reproduced races per class)\n\n");
  const std::vector<int> Widths = {-4, 10, 13, 10, 13};
  printRow({"Id", "on:tests", "on:races", "off:tests", "off:races"},
           Widths);
  printRule(Widths);

  unsigned TotalOn = 0, TotalOff = 0;
  for (const CorpusEntry &Entry : corpus()) {
    DetectOptions Detect = defaultDetectOptions();
    Detect.RandomRuns = 4;

    ClassRun On = runSynthesis(Entry);
    runDetection(On, Detect);

    NaradaOptions Off;
    Off.EnableContextDerivation = false;
    ClassRun OffRun = runSynthesis(Entry, Off);
    runDetection(OffRun, Detect);

    TotalOn += static_cast<unsigned>(On.Reproduced.size());
    TotalOff += static_cast<unsigned>(OffRun.Reproduced.size());
    printRow({Entry.Id, std::to_string(On.Narada.Tests.size()),
              std::to_string(On.Reproduced.size()),
              std::to_string(OffRun.Narada.Tests.size()),
              std::to_string(OffRun.Reproduced.size())},
             Widths);
  }
  printRule(Widths);
  printRow({"Tot", "", std::to_string(TotalOn), "",
            std::to_string(TotalOff)},
           Widths);

  std::printf("\nWith derivation off the threads operate on unshared "
              "instances; any remaining races come from accidental sharing "
              "inside a single seed prefix.\n");
  return 0;
}
