//===- bench/ablation_static.cpp - Static prefilter ablation -------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Measures what the static race pre-analysis buys the dynamic pipeline on
// C1–C9: candidate pairs pruned before synthesis, the static-analysis cost
// itself, end-to-end pipeline time with and without --static-prefilter,
// and — the soundness column — whether the reproduced race set is
// unchanged.  The prefilter is conservative by construction (see
// docs/STATIC.md), so the "same" column must read yes on every class; the
// pruned and time columns quantify the benefit.  Results are recorded in
// EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "obs/Metrics.h"

using namespace narada;
using namespace narada::bench;

namespace {

uint64_t prunedCounter() {
  return obs::MetricsRegistry::global()
      .counter("staticrace.pairs_pruned")
      .value();
}

std::string seconds(double S) { return formatString("%.3f", S); }

} // namespace

int main(int Argc, char **Argv) {
  BenchReporter Reporter("ablation_static", Argc, Argv);
  Reporter.Meta.addOption("static_prefilter", "ablation");
  std::printf("Ablation: static must-lockset prefilter OFF vs ON\n"
              "(pairs generated / pruned, pipeline seconds, reproduced "
              "races unchanged)\n\n");
  const std::vector<int> Widths = {-4, 6, 7, 9, 8, 9, 10, 5};
  printRow({"Id", "pairs", "pruned", "off:time", "on:time", "static_s",
            "on:races", "same"},
           Widths);
  printRule(Widths);

  uint64_t TotalPruned = 0;
  unsigned Mismatches = 0;
  double TotalOff = 0.0, TotalOn = 0.0;
  for (const CorpusEntry &Entry : corpus()) {
    DetectOptions Detect = defaultDetectOptions();

    ClassRun Off = runSynthesis(Entry);
    runDetection(Off, Detect);

    NaradaOptions WithStatic;
    WithStatic.StaticPrefilter = true;
    uint64_t Before = prunedCounter();
    ClassRun On = runSynthesis(Entry, WithStatic);
    uint64_t Pruned = prunedCounter() - Before;
    runDetection(On, Detect);

    bool Same = Off.Reproduced == On.Reproduced;
    if (!Same)
      ++Mismatches;
    TotalPruned += Pruned;
    TotalOff += Off.SynthesisSecondsTotal;
    TotalOn += On.SynthesisSecondsTotal;
    printRow({Entry.Id, std::to_string(Off.Narada.Pairs.size()),
              std::to_string(Pruned),
              seconds(Off.SynthesisSecondsTotal),
              seconds(On.SynthesisSecondsTotal),
              seconds(On.Narada.Stages.StaticRaceSeconds),
              std::to_string(On.Reproduced.size()),
              Same ? "yes" : "NO"},
             Widths);
  }
  printRule(Widths);
  printRow({"Tot", "", std::to_string(TotalPruned), seconds(TotalOff),
            seconds(TotalOn), "", "", Mismatches ? "NO" : "yes"},
           Widths);

  std::printf("\nPruned counts are MustGuarded candidate combinations the "
              "prefilter removed before the generated pair set (which is "
              "unchanged by construction); 'same' compares reproduced race "
              "keys between the two configurations.\n");
  return Mismatches ? 1 : 0;
}
