//===- bench/daemon_load.cpp - Multi-client daemon load driver -----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Measures what `narada-cli serve` exists for (docs/SERVING.md): the
// latency gap between a cold request — full pipeline, every cache empty —
// and a warm one answered from the daemon's content-addressed caches.
// The driver spawns a real daemon on a Unix-domain socket, primes it with
// one cold detect submit per class, measures warm/edited latency with
// sequential resubmits (the daemon serves requests one at a time, so only
// an unqueued request's round trip is its service time), then fans N
// client threads over a mixed stream for throughput:
//
//   unchanged  the exact cold bundle again (full warm: detection-stage
//              memo hit, the request barely computes);
//   edited     the same module with one method body changed per round (a
//              distinct source digest: the summary store re-analyzes only
//              the edited cone, everything downstream of the new digest
//              runs cold).
//
// Reported per class: cold latency, warm (unchanged) latency, the
// cold/warm speedup, edited latency, and the warm request throughput.
// The driver fails (exit 1) when a warm request's run report shows zero
// serve.cache hits — speed without the caches proving they answered is a
// measurement of nothing.
//
// Knobs: --clients N (default 4), --rounds N (requests per category per
// class, default 3), --classes C5,C9, --report <file.json>.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "serve/Engine.h"
#include "serve/Protocol.h"
#include "support/Wire.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace narada;
using namespace narada::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// One connected round trip against the daemon socket; aborts the bench on
/// transport failure (a dead daemon invalidates every number).
std::string roundTrip(const std::string &SocketPath,
                      const std::string &Request) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0 ||
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "daemon_load: cannot reach daemon at '%s': %s\n",
                 SocketPath.c_str(), std::strerror(errno));
    std::exit(1);
  }
  std::string Payload;
  if (!wire::writeFrame(Fd, Request) ||
      wire::readFrame(Fd, Payload) != wire::ReadStatus::Ok) {
    std::fprintf(stderr, "daemon_load: daemon dropped a request\n");
    std::exit(1);
  }
  ::close(Fd);
  return Payload;
}

/// Submits one bundle and returns the measured round-trip seconds.
double submit(const std::string &SocketPath, const serve::CliArgs &Args,
              const std::string &Source, std::string *ReportOut = nullptr) {
  wire::RecordWriter W;
  serve::encodeSubmit(W, Args, Source);
  auto Start = std::chrono::steady_clock::now();
  std::string Payload = roundTrip(SocketPath, W.str());
  double Seconds = secondsSince(Start);
  wire::RecordReader In(Payload);
  serve::SubmitResponse Resp = serve::decodeResponse(In);
  if (In.getOr("verb", "") != "result" || !Resp.Ok || Resp.Exit != 0) {
    std::fprintf(stderr, "daemon_load: submit failed: %s\n",
                 Resp.ErrorMessage.empty() ? "daemon error"
                                           : Resp.ErrorMessage.c_str());
    std::exit(1);
  }
  if (ReportOut)
    *ReportOut = Resp.Report;
  return Seconds;
}

serve::CliArgs detectArgs(const CorpusEntry &Entry, bool WantReport) {
  serve::CliArgs Args;
  Args.Command = "detect";
  Args.Input = "corpus:" + Entry.Id;
  Args.Names = Entry.SeedNames;
  Args.FocusClass = Entry.ClassName;
  Args.StaticRank = true; // Exercise the summary store on every request.
  if (WantReport)
    Args.ReportPath = "daemon_load"; // Presence = want_report bit.
  return Args;
}

/// The per-round edited variant: one statement inserted into the first
/// method body, so every round has a distinct source digest while the
/// rest of the module's dependence cones stay warm.
std::string editedSource(const CorpusEntry &Entry, unsigned Round) {
  const std::string Anchor = "synchronized {";
  size_t At = Entry.Source.find(Anchor);
  if (At == std::string::npos) {
    std::fprintf(stderr, "daemon_load: %s has no synchronized method to edit\n",
                 Entry.Id.c_str());
    std::exit(1);
  }
  std::string Out = Entry.Source;
  Out.insert(At + Anchor.size(),
             " var benchPad: int = " + std::to_string(Round) + ";");
  return Out;
}

/// Pulls "name":value out of a run report (counters render compactly).
uint64_t reportCounter(const std::string &Report, const std::string &Name) {
  const std::string Key = "\"" + Name + "\":";
  size_t At = Report.find(Key);
  if (At == std::string::npos)
    return 0;
  return std::strtoull(Report.c_str() + At + Key.size(), nullptr, 10);
}

struct PhaseStats {
  double TotalSeconds = 0.0;
  unsigned Requests = 0;
  void add(double Seconds) {
    TotalSeconds += Seconds;
    ++Requests;
  }
  double avgMs() const {
    return Requests ? TotalSeconds * 1000.0 / Requests : 0.0;
  }
};

std::string fmtMs(double Ms) { return formatString("%.1f", Ms); }

} // namespace

int main(int Argc, char **Argv) {
  BenchReporter Reporter("daemon_load", Argc, Argv);
  // C5 (a multi-second cold detect) shows the cold/warm gap; C9 (a fast
  // one) shows the per-request floor.  Edited variants re-run detection in
  // full, so slow classes multiply the driver's runtime by Rounds.
  unsigned Clients = 4, Rounds = 3;
  std::string ClassList = "C5,C9";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--clients" && I + 1 < Argc)
      Clients = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (Arg == "--rounds" && I + 1 < Argc)
      Rounds = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (Arg == "--classes" && I + 1 < Argc)
      ClassList = Argv[++I];
  }
  std::vector<const CorpusEntry *> Entries;
  for (const std::string &Id : split(ClassList, ',')) {
    const CorpusEntry *Entry = findCorpusEntry(Id);
    if (!Entry) {
      std::fprintf(stderr, "daemon_load: unknown corpus class '%s'\n",
                   Id.c_str());
      return 2;
    }
    Entries.push_back(Entry);
  }

  const std::string Dir = "/tmp/narada_daemon_load." +
                          std::to_string(static_cast<unsigned>(::getpid()));
  const std::string SocketPath = Dir + ".sock";
  const std::string CachePath = Dir + ".cache";
  ::unlink(SocketPath.c_str());
  ::unlink(CachePath.c_str());

  pid_t Daemon = ::fork();
  if (Daemon < 0) {
    std::perror("daemon_load: fork");
    return 1;
  }
  if (Daemon == 0) {
    ::execl(NARADA_CLI_PATH, NARADA_CLI_PATH, "serve", "--socket",
            SocketPath.c_str(), "--cache", CachePath.c_str(),
            static_cast<char *>(nullptr));
    std::perror("daemon_load: exec narada-cli serve");
    ::_exit(127);
  }
  // Readiness: the daemon answers a ping once its socket is listening.
  {
    wire::RecordWriter Ping;
    Ping.add("verb", std::string_view("ping"));
    bool Up = false;
    for (int Try = 0; Try < 200 && !Up; ++Try) {
      int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::strncpy(Addr.sun_path, SocketPath.c_str(),
                   sizeof(Addr.sun_path) - 1);
      if (Fd >= 0 &&
          ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
              0 &&
          wire::writeFrame(Fd, Ping.str())) {
        std::string Pong;
        Up = wire::readFrame(Fd, Pong) == wire::ReadStatus::Ok;
      }
      if (Fd >= 0)
        ::close(Fd);
      if (!Up)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!Up) {
      std::fprintf(stderr, "daemon_load: daemon never came up\n");
      ::kill(Daemon, SIGKILL);
      return 1;
    }
  }

  // Cold phase: the first submit of each class fills every cache.
  std::vector<PhaseStats> Cold(Entries.size());
  for (size_t I = 0; I < Entries.size(); ++I)
    Cold[I].add(submit(SocketPath, detectArgs(*Entries[I], false),
                       Entries[I]->Source));

  // Warm and edited latency are measured sequentially — the daemon serves
  // one request at a time, so a request timed under concurrent load would
  // include queue wait behind whatever else is in flight, not its own
  // service time.  The concurrent mixed phase below measures throughput.
  std::vector<PhaseStats> Unchanged(Entries.size()), Edited(Entries.size());
  for (unsigned Round = 0; Round < Rounds; ++Round)
    for (size_t I = 0; I < Entries.size(); ++I)
      Unchanged[I].add(submit(SocketPath, detectArgs(*Entries[I], false),
                              Entries[I]->Source));

  // A warm resubmit with a report, while every cache is hot: the caches
  // must visibly answer, or the latency gap proves nothing.
  std::string Report;
  submit(SocketPath, detectArgs(*Entries.front(), true),
         Entries.front()->Source, &Report);
  const uint64_t SummaryHits = reportCounter(Report, "serve.cache.summary.hits");
  const uint64_t DetectHits = reportCounter(Report, "serve.cache.detect.hits");
  const uint64_t AnalysisHits =
      reportCounter(Report, "serve.cache.analysis.hits");

  for (unsigned Round = 0; Round < Rounds; ++Round)
    for (size_t I = 0; I < Entries.size(); ++I)
      Edited[I].add(submit(SocketPath, detectArgs(*Entries[I], false),
                           editedSource(*Entries[I], Round)));

  // Mixed concurrent phase: Clients submitter threads drain a stream of
  // unchanged resubmits and fresh edited variants (distinct digests, so
  // they run cold-ish under load) for the daemon's request throughput.
  struct WorkItem {
    size_t EntryIndex;
    bool Edited;
    unsigned Round;
  };
  std::vector<WorkItem> Work;
  for (unsigned Round = 0; Round < Rounds; ++Round)
    for (size_t I = 0; I < Entries.size(); ++I) {
      Work.push_back({I, false, Round});
      Work.push_back({I, true, 1000 + Round});
    }
  std::atomic<size_t> Next{0};
  auto MixedStart = std::chrono::steady_clock::now();
  std::vector<std::thread> Pool;
  for (unsigned C = 0; C < Clients; ++C)
    Pool.emplace_back([&] {
      for (;;) {
        size_t I = Next.fetch_add(1);
        if (I >= Work.size())
          return;
        const WorkItem &Item = Work[I];
        const CorpusEntry &Entry = *Entries[Item.EntryIndex];
        submit(SocketPath, detectArgs(Entry, false),
               Item.Edited ? editedSource(Entry, Item.Round) : Entry.Source);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  double MixedWall = secondsSince(MixedStart);

  {
    wire::RecordWriter Bye;
    Bye.add("verb", std::string_view("shutdown"));
    roundTrip(SocketPath, Bye.str());
  }
  int Status = 0;
  ::waitpid(Daemon, &Status, 0);
  ::unlink(SocketPath.c_str());
  ::unlink(CachePath.c_str());

  std::printf("Daemon load: %u clients, %zu mixed requests in %.2fs "
              "(%.1f req/s)\n\n",
              Clients, Work.size(), MixedWall, Work.size() / MixedWall);
  const std::vector<int> Widths = {-6, 10, 12, 10, 12};
  printRow({"Class", "cold ms", "warm ms", "speedup", "edited ms"}, Widths);
  printRule(Widths);
  for (size_t I = 0; I < Entries.size(); ++I) {
    double Speedup = Unchanged[I].avgMs() > 0.0
                         ? Cold[I].avgMs() / Unchanged[I].avgMs()
                         : 0.0;
    printRow({Entries[I]->Id, fmtMs(Cold[I].avgMs()),
              fmtMs(Unchanged[I].avgMs()), formatString("%.1fx", Speedup),
              fmtMs(Edited[I].avgMs())},
             Widths);
  }
  std::printf("\nWarm report cache hits: summary=%llu analysis=%llu "
              "detect=%llu\n",
              static_cast<unsigned long long>(SummaryHits),
              static_cast<unsigned long long>(AnalysisHits),
              static_cast<unsigned long long>(DetectHits));

  // The pinned (deterministic) part of the trajectory: request counts and
  // the did-the-caches-answer bit.  Latencies stay advisory prose above.
  obs::MetricsRegistry &Registry = obs::MetricsRegistry::global();
  Registry.counter("daemon_load.classes").inc(Entries.size());
  Registry.counter("daemon_load.cold_requests").inc(Entries.size());
  Registry.counter("daemon_load.warm_requests").inc(Work.size());
  Registry.counter("daemon_load.warm_cache_hits_nonzero")
      .inc((SummaryHits + DetectHits + AnalysisHits) > 0 ? 1 : 0);
  Reporter.Meta.addOption("clients", std::to_string(Clients));
  Reporter.Meta.addOption("rounds", std::to_string(Rounds));

  if (SummaryHits + DetectHits + AnalysisHits == 0) {
    std::fprintf(stderr, "daemon_load: FAIL: warm request reported zero "
                         "serve.cache hits\n");
    return 1;
  }
  return 0;
}
