//===- bench/triage_ingest.cpp - Race-database triage throughput driver --------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Measures what `narada-cli triage` exists for (docs/TRIAGE.md): folding
// run reports into the durable race database and re-checking them with
// the regression gate.  The driver produces real reports by exec'ing
// `narada-cli detect --static-rank --report` per class, then times three
// database phases in-process:
//
//   ingest      fresh database, all reports, at --jobs 1 and --jobs 4;
//               the two databases must render byte-identically (the
//               determinism contract the CLI advertises);
//   re-ingest   the same reports again over the populated database —
//               every record must advance to Persisting with no record
//               gained or lost (idempotence of a steady-state fleet run);
//   gate        the regression gate over the populated baseline, which
//               must pass clean on the very reports that built it.
//
// The pinned (deterministic) part of the trajectory: report/record/
// certification counts, the byte-identity bit, and the gate verdict.
// Latencies stay advisory prose — they are the measurement, not the
// contract.
//
// Knobs: --classes C1,C9, --report <file.json>.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "racedb/RaceDb.h"
#include "racedb/Triage.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace narada;
using namespace narada::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Runs `narada-cli detect corpus:<id> --static-rank --report <path>` to
/// completion; the bench aborts when report production fails, because
/// every downstream number depends on it.
void produceReport(const std::string &CorpusId, const std::string &Path) {
  pid_t Child = ::fork();
  if (Child < 0) {
    std::perror("triage_ingest: fork");
    std::exit(1);
  }
  if (Child == 0) {
    const std::string Input = "corpus:" + CorpusId;
    ::execl(NARADA_CLI_PATH, NARADA_CLI_PATH, "detect", Input.c_str(),
            "--static-rank", "--report", Path.c_str(),
            static_cast<char *>(nullptr));
    std::perror("triage_ingest: exec narada-cli detect");
    ::_exit(127);
  }
  int Status = 0;
  ::waitpid(Child, &Status, 0);
  if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0) {
    std::fprintf(stderr, "triage_ingest: detect %s failed\n",
                 CorpusId.c_str());
    std::exit(1);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  BenchReporter Reporter("triage_ingest", Argc, Argv);
  std::string ClassList = "C1,C9";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--classes" && I + 1 < Argc)
      ClassList = Argv[++I];
  }
  const std::vector<std::string> Classes = split(ClassList, ',');
  Reporter.Meta.addOption("classes", ClassList);

  // Report production: one real detect run per class, through the same
  // CLI path a fleet run would use.
  const std::string Dir = "/tmp/narada_triage_ingest." +
                          std::to_string(static_cast<unsigned>(::getpid()));
  std::vector<std::string> Paths;
  auto ReportStart = std::chrono::steady_clock::now();
  for (const std::string &Id : Classes) {
    if (!findCorpusEntry(Id)) {
      std::fprintf(stderr, "triage_ingest: unknown corpus class '%s'\n",
                   Id.c_str());
      return 2;
    }
    std::string Path = Dir + "." + Id + ".report.json";
    produceReport(Id, Path);
    Paths.push_back(std::move(Path));
  }
  double ReportSeconds = secondsSince(ReportStart);

  // Ingest phase, at two job counts; the byte-identity comparison is the
  // point, the jobs-1 timing is the pinned-configuration measurement.
  racedb::RaceDb Db1, Db4;
  auto Ingest1Start = std::chrono::steady_clock::now();
  Result<racedb::IngestStats> Stats1 =
      racedb::ingestReportFiles(Db1, Paths, 1);
  double Ingest1Seconds = secondsSince(Ingest1Start);
  auto Ingest4Start = std::chrono::steady_clock::now();
  Result<racedb::IngestStats> Stats4 =
      racedb::ingestReportFiles(Db4, Paths, 4);
  double Ingest4Seconds = secondsSince(Ingest4Start);
  if (!Stats1 || !Stats4) {
    std::fprintf(stderr, "triage_ingest: ingest failed: %s\n",
                 (!Stats1 ? Stats1.error() : Stats4.error()).str().c_str());
    return 1;
  }
  const bool ByteIdentical = racedb::renderRaceDb(Db1) == racedb::renderRaceDb(Db4);

  // Re-ingest: the steady-state fleet run.  Same reports, populated
  // database; every record persists and none appear or vanish.
  const size_t RecordsAfterFirst = Db1.Races.size();
  auto ReingestStart = std::chrono::steady_clock::now();
  Result<racedb::IngestStats> Stats2 =
      racedb::ingestReportFiles(Db1, Paths, 1);
  double ReingestSeconds = secondsSince(ReingestStart);
  if (!Stats2) {
    std::fprintf(stderr, "triage_ingest: re-ingest failed: %s\n",
                 Stats2.error().str().c_str());
    return 1;
  }
  const bool Idempotent = Db1.Races.size() == RecordsAfterFirst &&
                          Stats2->Persisting == RecordsAfterFirst &&
                          Stats2->New == 0 && Stats2->Resolved == 0 &&
                          Stats2->Regressed == 0;

  // Gate: clean pass over the baseline the same reports just built.
  std::vector<racedb::RunObservation> Runs;
  for (const std::string &Path : Paths) {
    Result<racedb::RunObservation> Obs =
        racedb::observationFromReportFile(Path);
    if (!Obs) {
      std::fprintf(stderr, "triage_ingest: %s\n", Obs.error().str().c_str());
      return 1;
    }
    Runs.push_back(Obs.take());
  }
  auto GateStart = std::chrono::steady_clock::now();
  racedb::GateResult Gate = racedb::gate(Db1, Runs);
  double GateSeconds = secondsSince(GateStart);

  uint64_t Certified = 0;
  for (const auto &[Key, Record] : Db1.Races)
    if (Record.Cert != racedb::Certification::None)
      ++Certified;

  for (const std::string &Path : Paths)
    ::unlink(Path.c_str());

  std::printf("Triage ingest: %zu report(s), %zu race record(s), "
              "%llu certified\n\n",
              Paths.size(), Db1.Races.size(),
              static_cast<unsigned long long>(Certified));
  const std::vector<int> Widths = {-22, 12};
  printRow({"Phase", "ms"}, Widths);
  printRule(Widths);
  printRow({"reports (detect)", formatString("%.1f", ReportSeconds * 1000.0)},
           Widths);
  printRow({"ingest --jobs 1", formatString("%.1f", Ingest1Seconds * 1000.0)},
           Widths);
  printRow({"ingest --jobs 4", formatString("%.1f", Ingest4Seconds * 1000.0)},
           Widths);
  printRow({"re-ingest", formatString("%.1f", ReingestSeconds * 1000.0)},
           Widths);
  printRow({"gate", formatString("%.1f", GateSeconds * 1000.0)}, Widths);
  std::printf("\nByte-identical at jobs 1 vs 4: %s; re-ingest idempotent: "
              "%s; gate: %s\n",
              ByteIdentical ? "yes" : "NO", Idempotent ? "yes" : "NO",
              Gate.Ok ? "OK" : "FAILED");

  obs::MetricsRegistry &Registry = obs::MetricsRegistry::global();
  Registry.counter("triage_ingest.reports").inc(Stats1->Reports);
  Registry.counter("triage_ingest.records").inc(Db1.Races.size());
  Registry.counter("triage_ingest.races_seen").inc(Stats1->RacesSeen);
  Registry.counter("triage_ingest.certified").inc(Certified);
  Registry.counter("triage_ingest.byte_identical").inc(ByteIdentical ? 1 : 0);
  Registry.counter("triage_ingest.reingest_idempotent")
      .inc(Idempotent ? 1 : 0);
  Registry.counter("triage_ingest.gate_clean").inc(Gate.Ok ? 1 : 0);

  if (!ByteIdentical) {
    std::fprintf(stderr, "triage_ingest: FAIL: databases differ between "
                         "--jobs 1 and --jobs 4\n");
    return 1;
  }
  if (!Idempotent) {
    std::fprintf(stderr,
                 "triage_ingest: FAIL: re-ingest changed the record set\n");
    return 1;
  }
  if (!Gate.Ok) {
    for (const std::string &Failure : Gate.Failures)
      std::fprintf(stderr, "triage_ingest: gate: %s\n", Failure.c_str());
    return 1;
  }
  return 0;
}
