file(REMOVE_RECURSE
  "libnarada_analysis.a"
)
