# Empty compiler generated dependencies file for narada_analysis.
# This may be replaced when dependencies are built.
