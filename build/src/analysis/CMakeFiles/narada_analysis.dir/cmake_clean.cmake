file(REMOVE_RECURSE
  "CMakeFiles/narada_analysis.dir/AccessAnalysis.cpp.o"
  "CMakeFiles/narada_analysis.dir/AccessAnalysis.cpp.o.d"
  "CMakeFiles/narada_analysis.dir/AnalysisPrinter.cpp.o"
  "CMakeFiles/narada_analysis.dir/AnalysisPrinter.cpp.o.d"
  "CMakeFiles/narada_analysis.dir/HeapMirror.cpp.o"
  "CMakeFiles/narada_analysis.dir/HeapMirror.cpp.o.d"
  "libnarada_analysis.a"
  "libnarada_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
