# Empty dependencies file for narada_ir.
# This may be replaced when dependencies are built.
