file(REMOVE_RECURSE
  "CMakeFiles/narada_ir.dir/IR.cpp.o"
  "CMakeFiles/narada_ir.dir/IR.cpp.o.d"
  "CMakeFiles/narada_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/narada_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/narada_ir.dir/Lowering.cpp.o"
  "CMakeFiles/narada_ir.dir/Lowering.cpp.o.d"
  "CMakeFiles/narada_ir.dir/Verifier.cpp.o"
  "CMakeFiles/narada_ir.dir/Verifier.cpp.o.d"
  "libnarada_ir.a"
  "libnarada_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
