file(REMOVE_RECURSE
  "libnarada_ir.a"
)
