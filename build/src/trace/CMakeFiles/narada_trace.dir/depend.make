# Empty dependencies file for narada_trace.
# This may be replaced when dependencies are built.
