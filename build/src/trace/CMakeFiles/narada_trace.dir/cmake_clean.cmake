file(REMOVE_RECURSE
  "CMakeFiles/narada_trace.dir/Trace.cpp.o"
  "CMakeFiles/narada_trace.dir/Trace.cpp.o.d"
  "libnarada_trace.a"
  "libnarada_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
