file(REMOVE_RECURSE
  "libnarada_trace.a"
)
