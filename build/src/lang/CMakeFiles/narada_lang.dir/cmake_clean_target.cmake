file(REMOVE_RECURSE
  "libnarada_lang.a"
)
