# Empty dependencies file for narada_lang.
# This may be replaced when dependencies are built.
