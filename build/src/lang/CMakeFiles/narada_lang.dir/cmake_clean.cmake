file(REMOVE_RECURSE
  "CMakeFiles/narada_lang.dir/ASTClone.cpp.o"
  "CMakeFiles/narada_lang.dir/ASTClone.cpp.o.d"
  "CMakeFiles/narada_lang.dir/ASTPrinter.cpp.o"
  "CMakeFiles/narada_lang.dir/ASTPrinter.cpp.o.d"
  "CMakeFiles/narada_lang.dir/Lexer.cpp.o"
  "CMakeFiles/narada_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/narada_lang.dir/Parser.cpp.o"
  "CMakeFiles/narada_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/narada_lang.dir/Sema.cpp.o"
  "CMakeFiles/narada_lang.dir/Sema.cpp.o.d"
  "libnarada_lang.a"
  "libnarada_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
