file(REMOVE_RECURSE
  "libnarada_corpus.a"
)
