
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/C1_WriteBehindQueue.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/C1_WriteBehindQueue.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/C1_WriteBehindQueue.cpp.o.d"
  "/root/repo/src/corpus/C2_SynchronizedCollection.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/C2_SynchronizedCollection.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/C2_SynchronizedCollection.cpp.o.d"
  "/root/repo/src/corpus/C3_CharArrayWriter.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/C3_CharArrayWriter.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/C3_CharArrayWriter.cpp.o.d"
  "/root/repo/src/corpus/C4_DynamicBin1D.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/C4_DynamicBin1D.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/C4_DynamicBin1D.cpp.o.d"
  "/root/repo/src/corpus/C5_DoubleIntIndex.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/C5_DoubleIntIndex.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/C5_DoubleIntIndex.cpp.o.d"
  "/root/repo/src/corpus/C6_Scanner.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/C6_Scanner.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/C6_Scanner.cpp.o.d"
  "/root/repo/src/corpus/C7_PooledExecutor.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/C7_PooledExecutor.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/C7_PooledExecutor.cpp.o.d"
  "/root/repo/src/corpus/C8_Sequence.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/C8_Sequence.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/C8_Sequence.cpp.o.d"
  "/root/repo/src/corpus/C9_CharArrayReader.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/C9_CharArrayReader.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/C9_CharArrayReader.cpp.o.d"
  "/root/repo/src/corpus/Corpus.cpp" "src/corpus/CMakeFiles/narada_corpus.dir/Corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/narada_corpus.dir/Corpus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/narada_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
