# Empty dependencies file for narada_corpus.
# This may be replaced when dependencies are built.
