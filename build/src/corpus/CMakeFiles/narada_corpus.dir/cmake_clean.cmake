file(REMOVE_RECURSE
  "CMakeFiles/narada_corpus.dir/C1_WriteBehindQueue.cpp.o"
  "CMakeFiles/narada_corpus.dir/C1_WriteBehindQueue.cpp.o.d"
  "CMakeFiles/narada_corpus.dir/C2_SynchronizedCollection.cpp.o"
  "CMakeFiles/narada_corpus.dir/C2_SynchronizedCollection.cpp.o.d"
  "CMakeFiles/narada_corpus.dir/C3_CharArrayWriter.cpp.o"
  "CMakeFiles/narada_corpus.dir/C3_CharArrayWriter.cpp.o.d"
  "CMakeFiles/narada_corpus.dir/C4_DynamicBin1D.cpp.o"
  "CMakeFiles/narada_corpus.dir/C4_DynamicBin1D.cpp.o.d"
  "CMakeFiles/narada_corpus.dir/C5_DoubleIntIndex.cpp.o"
  "CMakeFiles/narada_corpus.dir/C5_DoubleIntIndex.cpp.o.d"
  "CMakeFiles/narada_corpus.dir/C6_Scanner.cpp.o"
  "CMakeFiles/narada_corpus.dir/C6_Scanner.cpp.o.d"
  "CMakeFiles/narada_corpus.dir/C7_PooledExecutor.cpp.o"
  "CMakeFiles/narada_corpus.dir/C7_PooledExecutor.cpp.o.d"
  "CMakeFiles/narada_corpus.dir/C8_Sequence.cpp.o"
  "CMakeFiles/narada_corpus.dir/C8_Sequence.cpp.o.d"
  "CMakeFiles/narada_corpus.dir/C9_CharArrayReader.cpp.o"
  "CMakeFiles/narada_corpus.dir/C9_CharArrayReader.cpp.o.d"
  "CMakeFiles/narada_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/narada_corpus.dir/Corpus.cpp.o.d"
  "libnarada_corpus.a"
  "libnarada_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
