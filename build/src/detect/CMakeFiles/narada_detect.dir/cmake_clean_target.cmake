file(REMOVE_RECURSE
  "libnarada_detect.a"
)
