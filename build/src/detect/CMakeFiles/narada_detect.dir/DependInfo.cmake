
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/Detection.cpp" "src/detect/CMakeFiles/narada_detect.dir/Detection.cpp.o" "gcc" "src/detect/CMakeFiles/narada_detect.dir/Detection.cpp.o.d"
  "/root/repo/src/detect/HBDetector.cpp" "src/detect/CMakeFiles/narada_detect.dir/HBDetector.cpp.o" "gcc" "src/detect/CMakeFiles/narada_detect.dir/HBDetector.cpp.o.d"
  "/root/repo/src/detect/LockOrderDetector.cpp" "src/detect/CMakeFiles/narada_detect.dir/LockOrderDetector.cpp.o" "gcc" "src/detect/CMakeFiles/narada_detect.dir/LockOrderDetector.cpp.o.d"
  "/root/repo/src/detect/LockSetDetector.cpp" "src/detect/CMakeFiles/narada_detect.dir/LockSetDetector.cpp.o" "gcc" "src/detect/CMakeFiles/narada_detect.dir/LockSetDetector.cpp.o.d"
  "/root/repo/src/detect/RaceConfirmer.cpp" "src/detect/CMakeFiles/narada_detect.dir/RaceConfirmer.cpp.o" "gcc" "src/detect/CMakeFiles/narada_detect.dir/RaceConfirmer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/narada_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/narada_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/narada_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/narada_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/narada_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
