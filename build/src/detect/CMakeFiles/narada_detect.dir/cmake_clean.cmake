file(REMOVE_RECURSE
  "CMakeFiles/narada_detect.dir/Detection.cpp.o"
  "CMakeFiles/narada_detect.dir/Detection.cpp.o.d"
  "CMakeFiles/narada_detect.dir/HBDetector.cpp.o"
  "CMakeFiles/narada_detect.dir/HBDetector.cpp.o.d"
  "CMakeFiles/narada_detect.dir/LockOrderDetector.cpp.o"
  "CMakeFiles/narada_detect.dir/LockOrderDetector.cpp.o.d"
  "CMakeFiles/narada_detect.dir/LockSetDetector.cpp.o"
  "CMakeFiles/narada_detect.dir/LockSetDetector.cpp.o.d"
  "CMakeFiles/narada_detect.dir/RaceConfirmer.cpp.o"
  "CMakeFiles/narada_detect.dir/RaceConfirmer.cpp.o.d"
  "libnarada_detect.a"
  "libnarada_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
