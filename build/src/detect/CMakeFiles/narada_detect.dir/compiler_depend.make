# Empty compiler generated dependencies file for narada_detect.
# This may be replaced when dependencies are built.
