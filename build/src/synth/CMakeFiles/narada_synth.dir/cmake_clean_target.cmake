file(REMOVE_RECURSE
  "libnarada_synth.a"
)
