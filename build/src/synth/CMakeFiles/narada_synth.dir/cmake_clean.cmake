file(REMOVE_RECURSE
  "CMakeFiles/narada_synth.dir/ContextDeriver.cpp.o"
  "CMakeFiles/narada_synth.dir/ContextDeriver.cpp.o.d"
  "CMakeFiles/narada_synth.dir/Narada.cpp.o"
  "CMakeFiles/narada_synth.dir/Narada.cpp.o.d"
  "CMakeFiles/narada_synth.dir/PairGenerator.cpp.o"
  "CMakeFiles/narada_synth.dir/PairGenerator.cpp.o.d"
  "CMakeFiles/narada_synth.dir/SeedNormalizer.cpp.o"
  "CMakeFiles/narada_synth.dir/SeedNormalizer.cpp.o.d"
  "CMakeFiles/narada_synth.dir/TestSynthesizer.cpp.o"
  "CMakeFiles/narada_synth.dir/TestSynthesizer.cpp.o.d"
  "libnarada_synth.a"
  "libnarada_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
