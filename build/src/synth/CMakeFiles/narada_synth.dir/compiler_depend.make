# Empty compiler generated dependencies file for narada_synth.
# This may be replaced when dependencies are built.
