
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Execution.cpp" "src/runtime/CMakeFiles/narada_runtime.dir/Execution.cpp.o" "gcc" "src/runtime/CMakeFiles/narada_runtime.dir/Execution.cpp.o.d"
  "/root/repo/src/runtime/Heap.cpp" "src/runtime/CMakeFiles/narada_runtime.dir/Heap.cpp.o" "gcc" "src/runtime/CMakeFiles/narada_runtime.dir/Heap.cpp.o.d"
  "/root/repo/src/runtime/Scheduler.cpp" "src/runtime/CMakeFiles/narada_runtime.dir/Scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/narada_runtime.dir/Scheduler.cpp.o.d"
  "/root/repo/src/runtime/VM.cpp" "src/runtime/CMakeFiles/narada_runtime.dir/VM.cpp.o" "gcc" "src/runtime/CMakeFiles/narada_runtime.dir/VM.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/narada_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/narada_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/narada_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/narada_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
