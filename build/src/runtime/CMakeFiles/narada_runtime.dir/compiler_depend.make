# Empty compiler generated dependencies file for narada_runtime.
# This may be replaced when dependencies are built.
