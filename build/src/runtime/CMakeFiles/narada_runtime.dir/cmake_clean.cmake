file(REMOVE_RECURSE
  "CMakeFiles/narada_runtime.dir/Execution.cpp.o"
  "CMakeFiles/narada_runtime.dir/Execution.cpp.o.d"
  "CMakeFiles/narada_runtime.dir/Heap.cpp.o"
  "CMakeFiles/narada_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/narada_runtime.dir/Scheduler.cpp.o"
  "CMakeFiles/narada_runtime.dir/Scheduler.cpp.o.d"
  "CMakeFiles/narada_runtime.dir/VM.cpp.o"
  "CMakeFiles/narada_runtime.dir/VM.cpp.o.d"
  "libnarada_runtime.a"
  "libnarada_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
