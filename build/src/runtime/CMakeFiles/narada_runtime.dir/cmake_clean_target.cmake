file(REMOVE_RECURSE
  "libnarada_runtime.a"
)
