file(REMOVE_RECURSE
  "libnarada_support.a"
)
