file(REMOVE_RECURSE
  "CMakeFiles/narada_support.dir/StringUtils.cpp.o"
  "CMakeFiles/narada_support.dir/StringUtils.cpp.o.d"
  "libnarada_support.a"
  "libnarada_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
