# Empty dependencies file for narada_support.
# This may be replaced when dependencies are built.
