file(REMOVE_RECURSE
  "CMakeFiles/narada_contege.dir/Contege.cpp.o"
  "CMakeFiles/narada_contege.dir/Contege.cpp.o.d"
  "libnarada_contege.a"
  "libnarada_contege.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_contege.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
