file(REMOVE_RECURSE
  "libnarada_contege.a"
)
