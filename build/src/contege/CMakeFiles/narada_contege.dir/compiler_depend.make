# Empty compiler generated dependencies file for narada_contege.
# This may be replaced when dependencies are built.
