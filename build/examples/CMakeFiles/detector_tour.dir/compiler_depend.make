# Empty compiler generated dependencies file for detector_tour.
# This may be replaced when dependencies are built.
