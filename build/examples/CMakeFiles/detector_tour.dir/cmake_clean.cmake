file(REMOVE_RECURSE
  "CMakeFiles/detector_tour.dir/detector_tour.cpp.o"
  "CMakeFiles/detector_tour.dir/detector_tour.cpp.o.d"
  "detector_tour"
  "detector_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
