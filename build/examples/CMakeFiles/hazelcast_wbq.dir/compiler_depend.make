# Empty compiler generated dependencies file for hazelcast_wbq.
# This may be replaced when dependencies are built.
