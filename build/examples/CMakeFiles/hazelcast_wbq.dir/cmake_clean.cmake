file(REMOVE_RECURSE
  "CMakeFiles/hazelcast_wbq.dir/hazelcast_wbq.cpp.o"
  "CMakeFiles/hazelcast_wbq.dir/hazelcast_wbq.cpp.o.d"
  "hazelcast_wbq"
  "hazelcast_wbq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazelcast_wbq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
