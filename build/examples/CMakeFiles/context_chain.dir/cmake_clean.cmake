file(REMOVE_RECURSE
  "CMakeFiles/context_chain.dir/context_chain.cpp.o"
  "CMakeFiles/context_chain.dir/context_chain.cpp.o.d"
  "context_chain"
  "context_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
