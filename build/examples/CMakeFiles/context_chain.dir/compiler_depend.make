# Empty compiler generated dependencies file for context_chain.
# This may be replaced when dependencies are built.
