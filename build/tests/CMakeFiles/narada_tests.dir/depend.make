# Empty dependencies file for narada_tests.
# This may be replaced when dependencies are built.
