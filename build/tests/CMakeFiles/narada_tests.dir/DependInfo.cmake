
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/narada_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/contege_test.cpp" "tests/CMakeFiles/narada_tests.dir/contege_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/contege_test.cpp.o.d"
  "/root/repo/tests/corpus_test.cpp" "tests/CMakeFiles/narada_tests.dir/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/deriver_test.cpp" "tests/CMakeFiles/narada_tests.dir/deriver_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/deriver_test.cpp.o.d"
  "/root/repo/tests/detect_test.cpp" "tests/CMakeFiles/narada_tests.dir/detect_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/detect_test.cpp.o.d"
  "/root/repo/tests/detector_units_test.cpp" "tests/CMakeFiles/narada_tests.dir/detector_units_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/detector_units_test.cpp.o.d"
  "/root/repo/tests/heapmirror_test.cpp" "tests/CMakeFiles/narada_tests.dir/heapmirror_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/heapmirror_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/narada_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/lexer_test.cpp" "tests/CMakeFiles/narada_tests.dir/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/lexer_test.cpp.o.d"
  "/root/repo/tests/lowering_test.cpp" "tests/CMakeFiles/narada_tests.dir/lowering_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/lowering_test.cpp.o.d"
  "/root/repo/tests/pairgen_test.cpp" "tests/CMakeFiles/narada_tests.dir/pairgen_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/pairgen_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/narada_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/narada_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/narada_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/runtime_units_test.cpp" "tests/CMakeFiles/narada_tests.dir/runtime_units_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/runtime_units_test.cpp.o.d"
  "/root/repo/tests/sema_test.cpp" "tests/CMakeFiles/narada_tests.dir/sema_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/sema_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/narada_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/synth_test.cpp" "tests/CMakeFiles/narada_tests.dir/synth_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/synth_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/narada_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/verifier_test.cpp" "tests/CMakeFiles/narada_tests.dir/verifier_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/verifier_test.cpp.o.d"
  "/root/repo/tests/vm_test.cpp" "tests/CMakeFiles/narada_tests.dir/vm_test.cpp.o" "gcc" "tests/CMakeFiles/narada_tests.dir/vm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/narada_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/contege/CMakeFiles/narada_contege.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/narada_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/narada_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/narada_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/narada_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/narada_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/narada_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/narada_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/narada_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
