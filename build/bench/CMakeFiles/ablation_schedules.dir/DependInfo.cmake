
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_schedules.cpp" "bench/CMakeFiles/ablation_schedules.dir/ablation_schedules.cpp.o" "gcc" "bench/CMakeFiles/ablation_schedules.dir/ablation_schedules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/narada_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/contege/CMakeFiles/narada_contege.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/narada_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/narada_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/narada_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/narada_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/narada_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/narada_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/narada_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/narada_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
