file(REMOVE_RECURSE
  "CMakeFiles/contege_comparison.dir/contege_comparison.cpp.o"
  "CMakeFiles/contege_comparison.dir/contege_comparison.cpp.o.d"
  "contege_comparison"
  "contege_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contege_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
