# Empty dependencies file for contege_comparison.
# This may be replaced when dependencies are built.
