# Empty dependencies file for table5_detection.
# This may be replaced when dependencies are built.
