file(REMOVE_RECURSE
  "CMakeFiles/table5_detection.dir/table5_detection.cpp.o"
  "CMakeFiles/table5_detection.dir/table5_detection.cpp.o.d"
  "table5_detection"
  "table5_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
