# Empty compiler generated dependencies file for table4_synthesis.
# This may be replaced when dependencies are built.
