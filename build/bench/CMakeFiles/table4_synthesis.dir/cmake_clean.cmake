file(REMOVE_RECURSE
  "CMakeFiles/table4_synthesis.dir/table4_synthesis.cpp.o"
  "CMakeFiles/table4_synthesis.dir/table4_synthesis.cpp.o.d"
  "table4_synthesis"
  "table4_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
