file(REMOVE_RECURSE
  "CMakeFiles/ablation_context.dir/ablation_context.cpp.o"
  "CMakeFiles/ablation_context.dir/ablation_context.cpp.o.d"
  "ablation_context"
  "ablation_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
