# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_corpus "/root/repo/build/tools/narada-cli" "corpus")
set_tests_properties(cli_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/narada-cli" "run" "corpus:C9" "seedC9")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace "/root/repo/build/tools/narada-cli" "trace" "corpus:C7" "seedC7")
set_tests_properties(cli_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/narada-cli" "analyze" "corpus:C9")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synthesize "/root/repo/build/tools/narada-cli" "synthesize" "corpus:C8")
set_tests_properties(cli_synthesize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_detect "/root/repo/build/tools/narada-cli" "detect" "corpus:C9")
set_tests_properties(cli_detect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_contege "/root/repo/build/tools/narada-cli" "contege" "corpus:C9" "--tests" "30")
set_tests_properties(cli_contege PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/narada-cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_corpus "/root/repo/build/tools/narada-cli" "run" "corpus:C42" "t")
set_tests_properties(cli_bad_corpus PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_file_run "/root/repo/build/tools/narada-cli" "run" "/root/repo/examples/fig1.mj" "racy")
set_tests_properties(cli_file_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_file_synthesize "/root/repo/build/tools/narada-cli" "synthesize" "/root/repo/examples/fig1.mj" "seed")
set_tests_properties(cli_file_synthesize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
