file(REMOVE_RECURSE
  "CMakeFiles/narada-cli.dir/narada-cli.cpp.o"
  "CMakeFiles/narada-cli.dir/narada-cli.cpp.o.d"
  "narada-cli"
  "narada-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
