# Empty compiler generated dependencies file for narada-cli.
# This may be replaced when dependencies are built.
