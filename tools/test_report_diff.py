#!/usr/bin/env python3
"""Unit tests for report-diff.py (invoked by ctest as report_diff_unit)."""

import contextlib
import importlib.util
import io
import json
import os
import tempfile
import unittest

_SPEC = importlib.util.spec_from_file_location(
    "report_diff",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "report-diff.py"))
report_diff = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(report_diff)


def report(phases=None, counters=None, races=None):
    doc = {"schema": "narada.run_report/v1"}
    doc["phases"] = {
        name: {"seconds": seconds} for name, seconds in (phases or {}).items()
    }
    doc["counters"] = dict(counters or {})
    if races is not None:
        doc["races"] = [
            {"key": key, "static_verdict": verdict, "reproduced": reproduced,
             "harmful": False}
            for key, reproduced, verdict in races
        ]
    return doc


class DiffReportsTest(unittest.TestCase):
    def test_no_change_is_clean(self):
        base = report({"pipeline": 1.0, "pipeline.synth": 0.4})
        regressions, warnings, notes, drifted = report_diff.diff_reports(
            base, base, 10.0)
        self.assertEqual(regressions, [])
        self.assertEqual(warnings, [])
        self.assertEqual(notes, [])
        self.assertEqual(drifted, [])

    def test_regression_over_threshold_is_flagged(self):
        base = report({"pipeline": 1.0})
        cur = report({"pipeline": 1.5})
        regressions, _, _, _ = report_diff.diff_reports(base, cur, 10.0)
        self.assertEqual(len(regressions), 1)
        name, before, after, delta = regressions[0]
        self.assertEqual(name, "pipeline")
        self.assertEqual((before, after), (1.0, 1.5))
        self.assertAlmostEqual(delta, 50.0)

    def test_improvement_is_not_flagged(self):
        base = report({"pipeline": 1.0})
        cur = report({"pipeline": 0.5})
        regressions, _, _, _ = report_diff.diff_reports(base, cur, 10.0)
        self.assertEqual(regressions, [])

    def test_worker_phase_only_in_current_notes_not_regresses(self):
        # A --jobs 4 report has worker spans the serial baseline lacks;
        # those are known config-dependent, so they rate notes, not
        # warnings.
        base = report({"pipeline.synth": 0.4})
        cur = report({"pipeline.synth": 0.4,
                      "pipeline.synth.worker0": 0.2,
                      "pipeline.synth.worker1": 0.2})
        regressions, warnings, notes, _ = report_diff.diff_reports(
            base, cur, 10.0)
        self.assertEqual(regressions, [])
        self.assertEqual(warnings, [])
        self.assertEqual(len(notes), 2)
        self.assertIn("worker0", notes[0])
        self.assertIn("missing from baseline", notes[0])
        self.assertIn("[config-dependent]", notes[0])

    def test_worker_phase_only_in_baseline_notes_not_regresses(self):
        base = report({"pipeline.synth": 0.4, "pipeline.synth.worker0": 0.2})
        cur = report({"pipeline.synth": 0.4})
        regressions, warnings, notes, _ = report_diff.diff_reports(
            base, cur, 10.0)
        self.assertEqual(regressions, [])
        self.assertEqual(warnings, [])
        self.assertEqual(len(notes), 1)
        self.assertIn("missing from current", notes[0])

    def test_explore_phase_only_in_current_notes_not_warns(self):
        # An --explore systematic run has exploration spans a random-mode
        # baseline lacks.
        base = report({"detect": 1.0})
        cur = report({"detect": 1.2,
                      "detect.explore": 0.8,
                      "detect.explore.schedule": 0.7,
                      "detect.witness": 0.1})
        _, warnings, notes, _ = report_diff.diff_reports(base, cur, 10.0)
        self.assertEqual(warnings, [])
        self.assertEqual(len(notes), 3)

    def test_unexpected_one_sided_phase_still_warns(self):
        base = report({"pipeline": 1.0})
        cur = report({"pipeline": 1.0, "pipeline.mystery": 0.5})
        _, warnings, notes, _ = report_diff.diff_reports(base, cur, 10.0)
        self.assertEqual(notes, [])
        self.assertEqual(len(warnings), 1)
        self.assertIn("mystery", warnings[0])

    def test_is_config_dependent_phase(self):
        for name in ("pipeline.synth.worker0", "detect.explore",
                     "detect.explore.schedule", "detect.witness"):
            self.assertTrue(report_diff.is_config_dependent_phase(name), name)
        for name in ("pipeline", "detect", "pipeline.synth",
                     "detect.exploreish"):
            self.assertFalse(report_diff.is_config_dependent_phase(name),
                             name)

    def test_missing_tiny_phase_does_not_warn(self):
        base = report({"pipeline": 1.0})
        cur = report({"pipeline": 1.0, "pipeline.blip": 0.0002})
        _, warnings, notes, _ = report_diff.diff_reports(base, cur, 10.0)
        self.assertEqual(warnings, [])
        self.assertEqual(notes, [])

    def test_tiny_phases_ignored_for_regressions(self):
        base = report({"pipeline.blip": 0.0001})
        cur = report({"pipeline.blip": 0.0009})  # 800% but sub-millisecond.
        regressions, _, _, _ = report_diff.diff_reports(base, cur, 10.0)
        self.assertEqual(regressions, [])

    def test_counter_drift_treats_missing_as_zero(self):
        base = report(counters={"synth.tests_synthesized": 15})
        cur = report(counters={"synth.tests_synthesized": 15,
                               "synth.qmemo_hits": 40})
        _, _, _, drifted = report_diff.diff_reports(base, cur, 10.0)
        self.assertEqual(drifted, [("synth.qmemo_hits", 0, 40)])

    def test_empty_reports_diff_cleanly(self):
        regressions, warnings, notes, drifted = report_diff.diff_reports(
            report(), report(), 10.0)
        self.assertEqual((regressions, warnings, notes, drifted),
                         ([], [], [], []))

    def test_staticrace_phase_is_config_dependent(self):
        # A --static-prefilter run has a staticrace span a plain run lacks.
        base = report({"pipeline": 1.0})
        cur = report({"pipeline": 1.0, "pipeline.staticrace": 0.2})
        regressions, warnings, notes, _ = report_diff.diff_reports(
            base, cur, 10.0)
        self.assertEqual(regressions, [])
        self.assertEqual(warnings, [])
        self.assertEqual(len(notes), 1)
        self.assertIn("staticrace", notes[0])


class DiffRacesTest(unittest.TestCase):
    RACES = [
        ("Q.head{Q.offer:3~Q.poll:1}", True, "MayRace"),
        ("Q.size{Q.offer:5~Q.size:0}", False, "Unknown"),
    ]

    def test_identical_race_sets_match(self):
        base = report(races=self.RACES)
        cur = report(races=list(reversed(self.RACES)))  # Order-insensitive.
        self.assertEqual(report_diff.diff_races(base, cur), [])

    def test_verdict_annotations_are_ignored(self):
        # A prefiltered run annotates verdicts a dynamic-only baseline
        # leaves blank; identity and reproduced flags are what must match.
        base = report(races=[(k, r, "") for k, r, _ in self.RACES])
        cur = report(races=self.RACES)
        self.assertEqual(report_diff.diff_races(base, cur), [])

    def test_missing_race_is_a_mismatch(self):
        base = report(races=self.RACES)
        cur = report(races=self.RACES[:1])
        mismatches = report_diff.diff_races(base, cur)
        self.assertEqual(len(mismatches), 1)
        self.assertIn("only in baseline", mismatches[0])
        self.assertIn("Q.size", mismatches[0])

    def test_extra_race_is_a_mismatch(self):
        base = report(races=self.RACES[:1])
        cur = report(races=self.RACES)
        mismatches = report_diff.diff_races(base, cur)
        self.assertEqual(len(mismatches), 1)
        self.assertIn("only in current", mismatches[0])

    def test_reproduced_flag_flip_is_a_mismatch(self):
        base = report(races=self.RACES)
        flipped = [(k, not r, v) for k, r, v in self.RACES]
        mismatches = report_diff.diff_races(base, report(races=flipped))
        self.assertEqual(len(mismatches), 2)
        self.assertIn("reproduced flag changed", mismatches[0])

    def test_empty_race_sets_match(self):
        self.assertEqual(
            report_diff.diff_races(report(races=[]), report(races=[])), [])

    def test_absent_races_member_is_a_mismatch(self):
        # --races compares detection runs; a report without the member
        # never recorded races at all, which must not silently pass.
        mismatches = report_diff.diff_races(report(), report(races=[]))
        self.assertEqual(len(mismatches), 1)
        self.assertIn("baseline", mismatches[0])
        both = report_diff.diff_races(report(), report())
        self.assertEqual(len(both), 2)


class RacesOnlyModeTest(unittest.TestCase):
    """--races-only bases the exit status on race identity alone."""

    RACES = [("Q.head{Q.offer:3~Q.poll:1}", True, "MayRace")]

    def _write(self, doc):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8")
        self.addCleanup(os.unlink, f.name)
        json.dump(doc, f)
        f.close()
        return f.name

    def _run_main(self, argv):
        import sys
        old_argv = sys.argv
        sys.argv = ["report-diff.py"] + argv
        stdout = io.StringIO()
        try:
            with contextlib.redirect_stdout(stdout):
                code = report_diff.main()
        finally:
            sys.argv = old_argv
        return code, stdout.getvalue()

    def test_phase_regression_does_not_fail_races_only(self):
        # The CI soundness sweep compares runs at different job counts;
        # their timings differ wildly but only races must match.
        base = self._write(report({"pipeline": 1.0}, races=self.RACES))
        cur = self._write(report({"pipeline": 9.0}, races=self.RACES))
        code, out = self._run_main(["--races-only", base, cur])
        self.assertEqual(code, 0)
        self.assertIn("race sets identical", out)
        self.assertNotIn("phase regression", out)

    def test_race_mismatch_still_fails_races_only(self):
        base = self._write(report(races=self.RACES))
        cur = self._write(report(races=[]))
        code, out = self._run_main(["--races-only", base, cur])
        self.assertEqual(code, 1)
        self.assertIn("race set mismatches", out)

    def test_plain_races_flag_still_checks_phases(self):
        base = self._write(report({"pipeline": 1.0}, races=self.RACES))
        cur = self._write(report({"pipeline": 9.0}, races=self.RACES))
        code, out = self._run_main(["--races", base, cur])
        self.assertEqual(code, 1)
        self.assertIn("phase regressions", out)
        self.assertIn("race sets identical", out)


class LoadReportMalformedInputTest(unittest.TestCase):
    """Malformed reports must exit 2 with a message, never traceback."""

    def _write(self, text):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8")
        self.addCleanup(os.unlink, f.name)
        f.write(text)
        f.close()
        return f.name

    def _expect_exit2(self, text, expect_in_message):
        path = self._write(text)
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            with self.assertRaises(SystemExit) as raised:
                report_diff.load_report(path)
        self.assertEqual(raised.exception.code, 2)
        self.assertIn(expect_in_message, stderr.getvalue())

    def test_truncated_json(self):
        full = json.dumps(report({"pipeline": 1.0}))
        self._expect_exit2(full[: len(full) // 2], "error")

    def test_empty_file(self):
        self._expect_exit2("", "error")

    def test_top_level_not_object(self):
        self._expect_exit2("[1, 2, 3]", "top level is not a JSON object")

    def test_missing_schema(self):
        self._expect_exit2(json.dumps({"phases": {}}), "not a")

    def test_wrong_schema(self):
        self._expect_exit2(
            json.dumps({"schema": "narada.run_report/v999"}), "not a")

    def test_phases_is_a_list(self):
        doc = report()
        doc["phases"] = ["pipeline"]
        self._expect_exit2(json.dumps(doc), "'phases' is not an object")

    def test_phase_entry_is_a_number(self):
        doc = report()
        doc["phases"] = {"pipeline": 1.0}
        self._expect_exit2(
            json.dumps(doc), "'phases.pipeline' is not an object")

    def test_phase_seconds_is_a_string(self):
        doc = report()
        doc["phases"] = {"pipeline": {"seconds": "fast"}}
        self._expect_exit2(
            json.dumps(doc), "'phases.pipeline.seconds' is not a number")

    def test_counters_is_a_list(self):
        doc = report()
        doc["counters"] = [1]
        self._expect_exit2(json.dumps(doc), "'counters' is not an object")

    def test_counter_value_is_a_string(self):
        doc = report(counters={})
        doc["counters"]["synth.tests_synthesized"] = "many"
        self._expect_exit2(
            json.dumps(doc),
            "'counters.synth.tests_synthesized' is not a number")

    def test_races_is_an_object(self):
        doc = report()
        doc["races"] = {"key": "Q.head{a~b}"}
        self._expect_exit2(json.dumps(doc), "'races' is not an array")

    def test_race_entry_missing_key(self):
        doc = report(races=[("Q.head{a~b}", True, "")])
        del doc["races"][0]["key"]
        self._expect_exit2(json.dumps(doc), "'races[0].key' is not a string")

    def test_race_reproduced_is_a_string(self):
        doc = report(races=[("Q.head{a~b}", True, "")])
        doc["races"][0]["reproduced"] = "yes"
        self._expect_exit2(
            json.dumps(doc), "'races[0].reproduced' is not a bool")

    def test_unknown_phases_and_counters_load_fine(self):
        # Forward compatibility: names the differ has never heard of are
        # data, not errors.
        doc = report({"phase.from.the.future": 1.0},
                     {"counter.from.the.future": 7})
        loaded = report_diff.load_report(self._write(json.dumps(doc)))
        self.assertEqual(loaded["phases"]["phase.from.the.future"],
                         {"seconds": 1.0})

    def test_valid_report_round_trips_through_diff(self):
        base = report({"pipeline": 1.0}, {"c": 1})
        cur = report({"pipeline": 1.0}, {"c": 2})
        base_doc = report_diff.load_report(self._write(json.dumps(base)))
        cur_doc = report_diff.load_report(self._write(json.dumps(cur)))
        regressions, warnings, notes, drifted = report_diff.diff_reports(
            base_doc, cur_doc, 10.0)
        self.assertEqual(regressions, [])
        self.assertEqual(warnings, [])
        self.assertEqual(drifted, [("c", 1, 2)])


class SchemaVersionTest(unittest.TestCase):
    """Reports from different writer revisions must not be diffed."""

    def _write(self, doc):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8")
        self.addCleanup(os.unlink, f.name)
        json.dump(doc, f)
        f.close()
        return f.name

    def _run_main(self, argv):
        import sys
        old_argv = sys.argv
        sys.argv = ["report-diff.py"] + argv
        stdout, stderr = io.StringIO(), io.StringIO()
        try:
            with contextlib.redirect_stdout(stdout), \
                    contextlib.redirect_stderr(stderr):
                try:
                    code = report_diff.main()
                except SystemExit as raised:
                    code = raised.code
        finally:
            sys.argv = old_argv
        return code, stdout.getvalue(), stderr.getvalue()

    def test_same_version_diffs_fine(self):
        doc = report({"pipeline": 1.0})
        doc["schema_version"] = 2
        path = self._write(doc)
        code, _, _ = self._run_main([path, path])
        self.assertEqual(code, 0)

    def test_mismatched_versions_exit_2(self):
        base = report({"pipeline": 1.0})  # No member: revision 1.
        cur = dict(report({"pipeline": 1.0}), schema_version=2)
        code, _, err = self._run_main([self._write(base), self._write(cur)])
        self.assertEqual(code, 2)
        self.assertIn("schema_version mismatch", err)
        self.assertIn("version 1", err)
        self.assertIn("version 2", err)

    def test_non_integer_version_exits_2(self):
        doc = dict(report(), schema_version="two")
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            with self.assertRaises(SystemExit) as raised:
                report_diff.load_report(self._write(doc))
        self.assertEqual(raised.exception.code, 2)
        self.assertIn("'schema_version' is not a positive integer",
                      stderr.getvalue())


if __name__ == "__main__":
    unittest.main()
