#!/usr/bin/env python3
"""Unit tests for bench-diff.py (invoked by ctest as bench_diff_unit)."""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

_SPEC = importlib.util.spec_from_file_location(
    "bench_diff",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "bench-diff.py"))
bench_diff = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_diff)


def bench(counters=None, races=None, wall=1.0):
    entry = {
        "wall_seconds": wall,
        "cpu_seconds": wall,
        "counters": dict(counters or {}),
    }
    if races is not None:
        entry["races"] = [
            {"key": key, "reproduced": reproduced, "harmful": False}
            for key, reproduced in races
        ]
    return entry


def trajectory(benches):
    return {
        "schema": "narada.bench_trajectory/v1",
        "schema_version": 1,
        "jobs": 1,
        "benches": benches,
    }


class BenchDiffMainTest(unittest.TestCase):
    def _write(self, doc):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8")
        self.addCleanup(os.unlink, f.name)
        json.dump(doc, f)
        f.close()
        return f.name

    def _run(self, base, cur, extra=None):
        old_argv = sys.argv
        sys.argv = (["bench-diff.py", self._write(base), self._write(cur)]
                    + (extra or []))
        stdout, stderr = io.StringIO(), io.StringIO()
        try:
            with contextlib.redirect_stdout(stdout), \
                    contextlib.redirect_stderr(stderr):
                try:
                    code = bench_diff.main()
                except SystemExit as raised:
                    code = raised.code
        finally:
            sys.argv = old_argv
        return code, stdout.getvalue(), stderr.getvalue()

    def test_identical_trajectories_match(self):
        doc = trajectory({
            "pipeline:C1": bench({"vm.instr.alu": 100}, [("Q.head{a~b}",
                                                          True)]),
        })
        code, out, _ = self._run(doc, doc)
        self.assertEqual(code, 0)
        self.assertIn("trajectories match", out)

    def test_counter_drift_is_fatal(self):
        base = trajectory({"pipeline:C1": bench({"vm.instr.alu": 100})})
        cur = trajectory({"pipeline:C1": bench({"vm.instr.alu": 101})})
        code, out, _ = self._run(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("FAIL", out)
        self.assertIn("vm.instr.alu", out)
        self.assertIn("100 -> 101", out)

    def test_counter_only_on_one_side_is_fatal(self):
        base = trajectory({"pipeline:C1": bench({})})
        cur = trajectory({"pipeline:C1": bench({"detect.vc_joins": 5})})
        code, out, _ = self._run(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("detect.vc_joins", out)

    def test_race_set_drift_is_fatal(self):
        base = trajectory(
            {"pipeline:C1": bench({}, [("Q.head{a~b}", True)])})
        cur = trajectory({"pipeline:C1": bench({}, [])})
        code, out, _ = self._run(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("race lost", out)
        base = trajectory({"pipeline:C1": bench({}, [])})
        cur = trajectory(
            {"pipeline:C1": bench({}, [("Q.head{a~b}", True)])})
        code, out, _ = self._run(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("race appeared", out)

    def test_reproduced_flip_is_fatal(self):
        base = trajectory(
            {"pipeline:C1": bench({}, [("Q.head{a~b}", True)])})
        cur = trajectory(
            {"pipeline:C1": bench({}, [("Q.head{a~b}", False)])})
        code, out, _ = self._run(base, cur)
        self.assertEqual(code, 1)

    def test_timing_drift_is_advisory_by_default(self):
        base = trajectory({"pipeline:C1": bench({}, wall=1.0)})
        cur = trajectory({"pipeline:C1": bench({}, wall=10.0)})
        code, out, _ = self._run(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("timing", out)
        self.assertIn("[advisory]", out)

    def test_timing_drift_fails_with_strict_timing(self):
        base = trajectory({"pipeline:C1": bench({}, wall=1.0)})
        cur = trajectory({"pipeline:C1": bench({}, wall=10.0)})
        code, _, _ = self._run(base, cur, ["--strict-timing"])
        self.assertEqual(code, 1)

    def test_timing_within_threshold_is_silent(self):
        base = trajectory({"pipeline:C1": bench({}, wall=1.0)})
        cur = trajectory({"pipeline:C1": bench({}, wall=1.2)})
        code, out, _ = self._run(base, cur, ["--strict-timing"])
        self.assertEqual(code, 0)
        self.assertNotIn("[advisory]", out)
        self.assertIn("0 advisory timing drifts", out)

    def test_missing_bench_is_fatal_without_subset(self):
        base = trajectory({"pipeline:C1": bench({}),
                           "pipeline:C9": bench({})})
        cur = trajectory({"pipeline:C1": bench({})})
        code, out, _ = self._run(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("missing from current", out)

    def test_subset_allows_smoke_runs(self):
        # The CI smoke run re-measures a subset against the full committed
        # baseline.
        base = trajectory({"pipeline:C1": bench({"c": 1}),
                           "pipeline:C9": bench({"c": 9})})
        cur = trajectory({"pipeline:C1": bench({"c": 1})})
        code, out, _ = self._run(base, cur, ["--subset"])
        self.assertEqual(code, 0)
        self.assertIn("1 benches compared", out)

    def test_subset_still_catches_drift_in_compared_benches(self):
        base = trajectory({"pipeline:C1": bench({"c": 1}),
                           "pipeline:C9": bench({"c": 9})})
        cur = trajectory({"pipeline:C1": bench({"c": 2})})
        code, _, _ = self._run(base, cur, ["--subset"])
        self.assertEqual(code, 1)

    def test_extra_bench_in_current_is_fatal_even_with_subset(self):
        base = trajectory({"pipeline:C1": bench({})})
        cur = trajectory({"pipeline:C1": bench({}),
                          "pipeline:C3": bench({})})
        code, out, _ = self._run(base, cur, ["--subset"])
        self.assertEqual(code, 1)
        self.assertIn("missing from baseline", out)

    def test_schema_version_mismatch_exits_2(self):
        base = trajectory({"pipeline:C1": bench({})})
        cur = dict(trajectory({"pipeline:C1": bench({})}), schema_version=2)
        code, _, err = self._run(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("schema_version mismatch", err)

    def test_wrong_schema_exits_2(self):
        base = trajectory({"pipeline:C1": bench({})})
        cur = dict(trajectory({}), schema="narada.run_report/v1")
        code, _, err = self._run(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("not a narada.bench_trajectory/v1", err)

    def test_malformed_counters_exit_2(self):
        base = trajectory({"pipeline:C1": bench({})})
        cur = trajectory({"pipeline:C1": bench({})})
        cur["benches"]["pipeline:C1"]["counters"]["x"] = "many"
        code, _, err = self._run(base, cur)
        self.assertEqual(code, 2)
        self.assertIn("is not a number", err)


if __name__ == "__main__":
    unittest.main()
