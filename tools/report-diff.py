#!/usr/bin/env python3
"""Compare two narada run reports (narada.run_report/v1 JSON documents).

Usage: report-diff.py BASELINE.json CURRENT.json [--threshold PCT]

Prints every phase whose wall time regressed by more than the threshold
(default 10%) and summarizes counter drift.  Exit status: 0 when no phase
regression exceeds the threshold, 1 when at least one does, 2 on bad input.
Tiny phases (< 1ms in both reports) are ignored: their relative timing is
noise.
"""

import argparse
import json
import sys

SCHEMA = "narada.run_report/v1"
MIN_SECONDS = 0.001  # Phases below this in both reports are noise.


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if doc.get("schema") != SCHEMA:
        print(f"error: {path}: not a {SCHEMA} document", file=sys.stderr)
        raise SystemExit(2)
    return doc


def phase_seconds(doc):
    return {
        name: data.get("seconds", 0.0)
        for name, data in doc.get("phases", {}).items()
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="regression threshold in percent (default: 10)")
    args = parser.parse_args()

    base = load_report(args.baseline)
    cur = load_report(args.current)

    base_phases = phase_seconds(base)
    cur_phases = phase_seconds(cur)

    regressions = []
    for name in sorted(set(base_phases) | set(cur_phases)):
        before = base_phases.get(name, 0.0)
        after = cur_phases.get(name, 0.0)
        if before < MIN_SECONDS and after < MIN_SECONDS:
            continue
        if before <= 0.0:
            continue  # New phase: nothing to compare against.
        delta_pct = (after - before) / before * 100.0
        if delta_pct > args.threshold:
            regressions.append((name, before, after, delta_pct))

    if regressions:
        print(f"phase regressions over {args.threshold:.0f}%:")
        for name, before, after, delta_pct in regressions:
            print(f"  {name:<40} {before:8.4f}s -> {after:8.4f}s "
                  f"(+{delta_pct:.1f}%)")
    else:
        print(f"no phase regression over {args.threshold:.0f}%")

    base_counters = base.get("counters", {})
    cur_counters = cur.get("counters", {})
    drifted = [
        (name, base_counters.get(name, 0), cur_counters.get(name, 0))
        for name in sorted(set(base_counters) | set(cur_counters))
        if base_counters.get(name, 0) != cur_counters.get(name, 0)
    ]
    if drifted:
        print(f"counter drift ({len(drifted)} changed):")
        for name, before, after in drifted:
            print(f"  {name}: {before} -> {after}")

    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
