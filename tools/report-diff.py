#!/usr/bin/env python3
"""Compare two narada run reports (narada.run_report/v1 JSON documents).

Usage: report-diff.py BASELINE.json CURRENT.json
           [--threshold PCT] [--races] [--races-only] [--recall]

Prints every phase whose wall time regressed by more than the threshold
(default 10%) and summarizes counter drift.  Exit status: 0 when no phase
regression exceeds the threshold, 1 when at least one does, 2 on bad input
or when the two reports carry different schema_version revisions (an older
report must be regenerated, not diffed across versions).
Tiny phases (< 1ms in both reports) are ignored: their relative timing is
noise.

With --races, additionally requires the two reports' race sets to be
identical — same keys, same reproduced flags — and exits 1 on any
mismatch.  Static verdict annotations are ignored in the comparison (a
--static-prefilter run annotates verdicts; the race identities must still
match a dynamic-only baseline exactly).  With --races-only the phase and
counter diff is skipped entirely and the exit status reflects race-set
identity alone — the mode for the CI prefilter-soundness sweep, which
compares runs whose phase timings legitimately differ (different job
counts, sub-millisecond phases) and cares only that the races match.

With --recall (composes with --races/--races-only) the race comparison is
one-sided: every baseline race key must appear in the current report, but
races only the current report finds are printed as notes, never failures.
This is the generated-seed-corpus gate — a corpus synthesized from the API
model must reproduce the hand-written suite's races (recall), while the
extra races generation reaches are the point of the feature, not drift.
Reproduced flags are not compared in recall mode: whether a race could be
*confirmed* under the confirmation scheduler may differ between seed
suites that stage the race through different contexts.

Reports may legitimately have different phase sets — a --jobs 4 run has
per-worker spans (pipeline.synth.worker0...) that a --jobs 1 run lacks,
and an --explore systematic run has explore/schedule/witness spans that a
random-mode run lacks.  A phase present in only one report is treated as
0s on the other side and never as a regression; known configuration-
dependent phases (workers, exploration) get an informational note, any
other one-sided phase a warning.
"""

import argparse
import json
import sys

SCHEMA = "narada.run_report/v1"
MIN_SECONDS = 0.001  # Phases below this in both reports are noise.

# Dotted-path segments of phases that exist only under certain run
# configurations: worker spans only at --jobs > 1, exploration spans only
# under --explore systematic / --replay, pool spans only under --isolate.
# Their absence from one side of a diff is expected, not suspicious.
_VARIABLE_SEGMENT_PREFIXES = ("worker",)
# derive/synthesize/test/confirm spans re-root when the run configuration
# moves them between worker threads (--jobs), worker subprocesses
# (--isolate) and the calling thread, so their dotted paths are one-sided
# across such diffs even though the work itself ran on both sides.  serve
# covers daemon-rooted spans: a request handled by narada-cli serve may
# skip whole phases (cached stages never run), so serve-side span shapes
# are config, not behavior.
_VARIABLE_SEGMENTS = {"explore", "schedule", "witness", "staticrace", "pool",
                      "derive", "synthesize", "test", "confirm", "serve"}

# Counters whose values are expected to differ across exploration modes or
# when the static pre-analysis is toggled; drift in them is annotated
# rather than left to look like a anomaly.  lock_collision is listed
# because a statically pruned pair skips the dynamic lock-collision check
# it would otherwise have hit.  pool.* counters exist only under --isolate,
# and synth.qmemo* differs there because worker subprocesses derive without
# the shared derivation memo.  serve.* counters exist only for requests
# executed by a narada-cli serve daemon, and their hit/miss split depends
# on the daemon's cache temperature — a warm resubmit is byte-identical in
# results but reports cache hits where the cold CLI run reports none.
MODE_DEPENDENT_COUNTER_PREFIXES = (
    "explore.",
    "staticrace.",
    "pairgen.candidates_rejected.lock_collision",
    "pool.",
    "serve.",
    "synth.qmemo",
    "synth.derivations",
)

# Counters that record crash-contained work units (--isolate hard-fault
# quarantines).  Drift in them means one run lost units to worker crashes;
# render those prominently so a fault-injection run diffed against a clean
# baseline explains its own skip/race deltas.
CRASH_QUARANTINE_COUNTERS = {
    "detect.worker_crashes":
        "detection units quarantined by worker crashes",
    "synth.pairs_skipped.worker_crash":
        "synthesis pairs skipped by worker crashes",
    "pool.units_poisoned":
        "units poisoned after repeated worker deaths",
}


def is_config_dependent_phase(name):
    """True for phases whose presence depends on run configuration."""
    for segment in name.split("."):
        if segment in _VARIABLE_SEGMENTS:
            return True
        if any(segment.startswith(p) for p in _VARIABLE_SEGMENT_PREFIXES):
            return True
    return False


def _bad_input(path, why):
    print(f"error: {path}: {why}", file=sys.stderr)
    raise SystemExit(2)


def load_report(path):
    """Loads and validates one report.

    Every member this script later touches is type-checked here, so a
    malformed report (truncated file, "phases" as a list, a counter that is
    a string, ...) exits 2 with a message naming the offending member
    instead of crashing with a traceback deep inside diff_reports.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        _bad_input(path, e)
    if not isinstance(doc, dict):
        _bad_input(path, "top level is not a JSON object")
    if doc.get("schema") != SCHEMA:
        _bad_input(path, f"not a {SCHEMA} document")
    version = doc.get("schema_version", 1)
    if isinstance(version, bool) or not isinstance(version, int) \
            or version < 1:
        _bad_input(path, "'schema_version' is not a positive integer")

    phases = doc.get("phases", {})
    if not isinstance(phases, dict):
        _bad_input(path, "'phases' is not an object")
    for name, data in phases.items():
        if not isinstance(data, dict):
            _bad_input(path, f"'phases.{name}' is not an object")
        seconds = data.get("seconds", 0.0)
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
            _bad_input(path, f"'phases.{name}.seconds' is not a number")

    counters = doc.get("counters", {})
    if not isinstance(counters, dict):
        _bad_input(path, "'counters' is not an object")
    for name, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _bad_input(path, f"'counters.{name}' is not a number")

    races = doc.get("races")
    if races is not None:
        if not isinstance(races, list):
            _bad_input(path, "'races' is not an array")
        for i, entry in enumerate(races):
            if not isinstance(entry, dict):
                _bad_input(path, f"'races[{i}]' is not an object")
            if not isinstance(entry.get("key"), str):
                _bad_input(path, f"'races[{i}].key' is not a string")
            if not isinstance(entry.get("reproduced", False), bool):
                _bad_input(path, f"'races[{i}].reproduced' is not a bool")

    return doc


def phase_seconds(doc):
    return {
        name: data.get("seconds", 0.0)
        for name, data in doc.get("phases", {}).items()
    }


def diff_reports(base, cur, threshold):
    """Compares two parsed reports.

    Returns (regressions, warnings, notes, drifted):
      regressions: [(phase, before_s, after_s, delta_pct)] over threshold;
      warnings:    [str] for unexpected phases present in only one report;
      notes:       [str] for known config-dependent one-sided phases;
      drifted:     [(counter, before, after)] for changed counters.
    """
    base_phases = phase_seconds(base)
    cur_phases = phase_seconds(cur)

    regressions = []
    warnings = []
    notes = []
    for name in sorted(set(base_phases) | set(cur_phases)):
        in_base = name in base_phases
        in_cur = name in cur_phases
        before = base_phases.get(name, 0.0)
        after = cur_phases.get(name, 0.0)
        if not in_base or not in_cur:
            # Differing phase sets: missing side counts as 0, and this is
            # never a regression.  Worker and exploration spans are known
            # to come and go with --jobs / --explore, so they only rate a
            # note; anything else one-sided is worth a warning.
            if max(before, after) >= MIN_SECONDS:
                where = "baseline" if not in_base else "current"
                message = (f"phase '{name}' missing from {where} report "
                           f"(treating as 0s)")
                if is_config_dependent_phase(name):
                    notes.append(message + " [config-dependent]")
                else:
                    warnings.append(message)
            continue
        if before < MIN_SECONDS and after < MIN_SECONDS:
            continue
        if before <= 0.0:
            continue  # Zero-time baseline phase: nothing to compare against.
        delta_pct = (after - before) / before * 100.0
        if delta_pct > threshold:
            regressions.append((name, before, after, delta_pct))

    base_counters = base.get("counters", {})
    cur_counters = cur.get("counters", {})
    drifted = [
        (name, base_counters.get(name, 0), cur_counters.get(name, 0))
        for name in sorted(set(base_counters) | set(cur_counters))
        if base_counters.get(name, 0) != cur_counters.get(name, 0)
    ]
    return regressions, warnings, notes, drifted


def race_flags(doc):
    """Maps race key -> reproduced flag; None when no 'races' member."""
    races = doc.get("races")
    if races is None:
        return None
    return {entry["key"]: bool(entry.get("reproduced", False))
            for entry in races}


def diff_races(base, cur):
    """Strictly compares the two reports' race sets.

    Returns human-readable mismatch lines; empty means the sets are
    identical (same keys, same reproduced flags).  A report without a
    'races' member never ran detection with race recording, which in
    --races mode is itself a mismatch worth reporting.
    """
    base_races = race_flags(base)
    cur_races = race_flags(cur)
    if base_races is None or cur_races is None:
        missing = [where for where, flags in
                   (("baseline", base_races), ("current", cur_races))
                   if flags is None]
        return [f"no 'races' member in {where} report" for where in missing]
    mismatches = []
    for key in sorted(set(base_races) | set(cur_races)):
        if key not in cur_races:
            mismatches.append(
                f"race only in baseline: {key} "
                f"(reproduced={base_races[key]})")
        elif key not in base_races:
            mismatches.append(
                f"race only in current: {key} "
                f"(reproduced={cur_races[key]})")
        elif base_races[key] != cur_races[key]:
            mismatches.append(
                f"race '{key}' reproduced flag changed: "
                f"{base_races[key]} -> {cur_races[key]}")
    return mismatches


def diff_race_recall(base, cur):
    """One-sided race comparison for the generated-seed-corpus gate.

    Returns (failures, extras): failures lists baseline races the current
    report misses (recall violations); extras lists races only the current
    report finds, which are informational — a generated corpus reaching
    states the hand-written suite never staged is the feature working.
    Reproduced flags are not compared (see module docstring).
    """
    base_races = race_flags(base)
    cur_races = race_flags(cur)
    if base_races is None or cur_races is None:
        missing = [where for where, flags in
                   (("baseline", base_races), ("current", cur_races))
                   if flags is None]
        return ([f"no 'races' member in {where} report" for where in missing],
                [])
    failures = [f"baseline race not recalled: {key}"
                for key in sorted(base_races) if key not in cur_races]
    extras = [f"race only in current: {key}"
              for key in sorted(cur_races) if key not in base_races]
    return failures, extras


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="regression threshold in percent (default: 10)")
    parser.add_argument(
        "--races", action="store_true",
        help="also require identical race sets (keys + reproduced flags)")
    parser.add_argument(
        "--races-only", action="store_true",
        help="compare only race sets; skip the phase/counter diff and base "
             "the exit status on race-set identity alone")
    parser.add_argument(
        "--recall", action="store_true",
        help="one-sided race comparison: baseline races must all appear in "
             "current; extra current races are notes, not failures")
    args = parser.parse_args()

    base = load_report(args.baseline)
    cur = load_report(args.current)

    # Reports written by different schema revisions are not comparable:
    # a member one writer records and the other does not would read as
    # drift.  Regenerate the older report rather than diffing across
    # versions (absent schema_version means revision 1).
    base_version = base.get("schema_version", 1)
    cur_version = cur.get("schema_version", 1)
    if base_version != cur_version:
        print(f"error: schema_version mismatch: {args.baseline} is "
              f"version {base_version}, {args.current} is version "
              f"{cur_version}; regenerate the older report",
              file=sys.stderr)
        raise SystemExit(2)

    regressions = []
    if not args.races_only:
        regressions, warnings, notes, drifted = diff_reports(
            base, cur, args.threshold)

        for note in notes:
            print(f"note: {note}", file=sys.stderr)
        for warning in warnings:
            print(f"warning: {warning}", file=sys.stderr)

        if regressions:
            print(f"phase regressions over {args.threshold:.0f}%:")
            for name, before, after, delta_pct in regressions:
                print(f"  {name:<40} {before:8.4f}s -> {after:8.4f}s "
                      f"(+{delta_pct:.1f}%)")
        else:
            print(f"no phase regression over {args.threshold:.0f}%")

        if drifted:
            print(f"counter drift ({len(drifted)} changed):")
            for name, before, after in drifted:
                if name in CRASH_QUARANTINE_COUNTERS:
                    suffix = " [crash-quarantine]"
                elif any(name.startswith(p)
                         for p in MODE_DEPENDENT_COUNTER_PREFIXES):
                    suffix = " [mode-dependent]"
                else:
                    suffix = ""
                print(f"  {name}: {before} -> {after}{suffix}")

        # Crash quarantines explain themselves: a unit lost to a worker
        # crash takes its races and synthesized tests with it, so the
        # summary names them instead of leaving the reader to decode
        # counter names.
        crashed = []
        for name in sorted(CRASH_QUARANTINE_COUNTERS):
            before = base.get("counters", {}).get(name, 0)
            after = cur.get("counters", {}).get(name, 0)
            if before != after:
                crashed.append((name, before, after))
        if crashed:
            print("crash quarantines (config-dependent; see "
                  "docs/ROBUSTNESS.md):")
            for name, before, after in crashed:
                print(f"  {CRASH_QUARANTINE_COUNTERS[name]}: "
                      f"{before} -> {after}")

    race_mismatches = []
    if args.races or args.races_only:
        if args.recall:
            race_mismatches, extra = diff_race_recall(base, cur)
            for line in extra:
                print(f"note: {line}", file=sys.stderr)
            if not race_mismatches:
                covered = len(race_flags(base) or {})
                print(f"race recall complete ({covered} baseline races, "
                      f"{len(extra)} extra in current)")
        else:
            race_mismatches = diff_races(base, cur)
        if race_mismatches:
            label = "race recall failures" if args.recall \
                else "race set mismatches"
            print(f"{label} ({len(race_mismatches)}):")
            for line in race_mismatches:
                print(f"  {line}")
        elif not args.recall:
            count = len(race_flags(base))
            print(f"race sets identical ({count} races)")

    return 1 if regressions or race_mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
