#!/usr/bin/env python3
"""Compare two bench trajectories (narada.bench_trajectory/v1 documents).

Usage: bench-diff.py BASELINE.json CURRENT.json
           [--timing-threshold PCT] [--strict-timing] [--subset]

The trajectory has two kinds of content with different contracts:

  - counters and race sets are *pinned*: they are functions of the seeded,
    deterministic pipeline, so any drift is a behavior change and a hard
    failure (exit 1);
  - wall/cpu timings are *advisory*: they vary with the host, so drift
    beyond --timing-threshold (default 50%) is printed as a warning and
    only fails with --strict-timing.

Bench sets must match exactly unless --subset, which allows the current
trajectory to cover a subset of the baseline's benches (the CI smoke run
re-measures two classes against the full committed baseline).  Documents
with mismatched schema or schema_version are rejected (exit 2), as is any
other malformed input.
"""

import argparse
import json
import sys

SCHEMA = "narada.bench_trajectory/v1"


def _bad_input(path, why):
    print(f"error: {path}: {why}", file=sys.stderr)
    raise SystemExit(2)


def load_trajectory(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        _bad_input(path, e)
    if not isinstance(doc, dict):
        _bad_input(path, "top level is not a JSON object")
    if doc.get("schema") != SCHEMA:
        _bad_input(path, f"not a {SCHEMA} document")
    version = doc.get("schema_version")
    if isinstance(version, bool) or not isinstance(version, int) \
            or version < 1:
        _bad_input(path, "'schema_version' is not a positive integer")
    benches = doc.get("benches")
    if not isinstance(benches, dict):
        _bad_input(path, "'benches' is not an object")
    for name, entry in benches.items():
        if not isinstance(entry, dict):
            _bad_input(path, f"'benches.{name}' is not an object")
        counters = entry.get("counters", {})
        if not isinstance(counters, dict):
            _bad_input(path, f"'benches.{name}.counters' is not an object")
        for cname, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                _bad_input(
                    path, f"'benches.{name}.counters.{cname}' is not a "
                          f"number")
        for key in ("wall_seconds", "cpu_seconds"):
            seconds = entry.get(key, 0.0)
            if isinstance(seconds, bool) or \
                    not isinstance(seconds, (int, float)):
                _bad_input(path, f"'benches.{name}.{key}' is not a number")
        races = entry.get("races")
        if races is not None and not isinstance(races, list):
            _bad_input(path, f"'benches.{name}.races' is not an array")
    return doc


def race_identity(entry):
    """Canonical comparable form of one bench's race list."""
    races = entry.get("races")
    if races is None:
        return None
    return sorted(
        (r.get("key", ""), bool(r.get("reproduced", False)),
         bool(r.get("harmful", False)))
        for r in races if isinstance(r, dict))


def diff_bench(name, base, cur, failures):
    """Appends hard-failure lines for one bench's pinned content."""
    base_counters = base.get("counters", {})
    cur_counters = cur.get("counters", {})
    for counter in sorted(set(base_counters) | set(cur_counters)):
        before = base_counters.get(counter)
        after = cur_counters.get(counter)
        if before != after:
            failures.append(
                f"{name}: counter '{counter}' drifted: "
                f"{before} -> {after}")

    base_races = race_identity(base)
    cur_races = race_identity(cur)
    if base_races != cur_races:
        if base_races is None or cur_races is None:
            where = "baseline" if base_races is None else "current"
            failures.append(f"{name}: race set missing from {where}")
            return
        base_keys = set(base_races)
        cur_keys = set(cur_races)
        for key, reproduced, harmful in sorted(base_keys - cur_keys):
            failures.append(
                f"{name}: race lost: {key} "
                f"(reproduced={reproduced}, harmful={harmful})")
        for key, reproduced, harmful in sorted(cur_keys - base_keys):
            failures.append(
                f"{name}: race appeared: {key} "
                f"(reproduced={reproduced}, harmful={harmful})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--timing-threshold", type=float, default=50.0,
        help="advisory timing-drift threshold in percent (default: 50)")
    parser.add_argument(
        "--strict-timing", action="store_true",
        help="treat timing drift over the threshold as a failure")
    parser.add_argument(
        "--subset", action="store_true",
        help="allow the current trajectory to cover a subset of the "
             "baseline's benches (CI smoke mode)")
    args = parser.parse_args()

    base = load_trajectory(args.baseline)
    cur = load_trajectory(args.current)
    if base.get("schema_version") != cur.get("schema_version"):
        print(f"error: schema_version mismatch: {args.baseline} is "
              f"version {base.get('schema_version')}, {args.current} is "
              f"version {cur.get('schema_version')}; regenerate the older "
              f"trajectory", file=sys.stderr)
        raise SystemExit(2)

    base_benches = base["benches"]
    cur_benches = cur["benches"]

    failures = []
    for name in sorted(set(base_benches) | set(cur_benches)):
        if name not in cur_benches:
            if not args.subset:
                failures.append(f"bench missing from current: {name}")
            continue
        if name not in base_benches:
            failures.append(f"bench missing from baseline: {name}")
            continue
        diff_bench(name, base_benches[name], cur_benches[name], failures)

    timing_warnings = []
    for name in sorted(set(base_benches) & set(cur_benches)):
        before = base_benches[name].get("wall_seconds", 0.0)
        after = cur_benches[name].get("wall_seconds", 0.0)
        if before <= 0.0:
            continue
        delta_pct = (after - before) / before * 100.0
        if delta_pct > args.timing_threshold:
            timing_warnings.append(
                f"{name}: wall {before:.3f}s -> {after:.3f}s "
                f"(+{delta_pct:.0f}%)")

    for line in failures:
        print(f"FAIL: {line}")
    for line in timing_warnings:
        print(f"timing: {line}"
              + ("" if args.strict_timing else " [advisory]"))

    compared = len(set(base_benches) & set(cur_benches))
    if not failures and not (args.strict_timing and timing_warnings):
        print(f"trajectories match ({compared} benches compared, "
              f"{len(timing_warnings)} advisory timing drifts)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
