#!/usr/bin/env python3
"""Run the pinned performance trajectory and emit BENCH_pipeline.json.

Usage: bench-orchestrator.py [--smoke] [--out FILE] [--classes C1,C2,...]
           [--cli PATH] [--bench-dir DIR] [--drivers NAMES|none] [--jobs N]

Runs end-to-end `narada-cli detect corpus:CN --report` pipeline runs (all
of C1..C9 by default, a small subset with --smoke) plus the table bench
drivers, and folds every run report into one canonical trajectory document
(schema narada.bench_trajectory/v1):

  - per bench: wall/cpu seconds, the run report's counters, the confirmed
    race set, and the job count;
  - counters are the *pinned* part of the trajectory: they are functions
    of the seeded, deterministic pipeline, so any drift is a behavior
    change.  Memory/RSS readings are run-dependent by nature and are
    excluded (EXCLUDED_COUNTER_PREFIXES);
  - timings are recorded but advisory: tools/bench-diff.py compares them
    with a noise threshold while counter/race drift is a hard failure.

The committed root-level BENCH_pipeline.json is the trajectory baseline;
CI re-runs the smoke subset and gates on bench-diff.py.  Exit status: 0 on
success, 1 when any bench run fails, 2 on bad arguments.
"""

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

SCHEMA = "narada.bench_trajectory/v1"
SCHEMA_VERSION = 1

ALL_CLASSES = [f"C{i}" for i in range(1, 10)]
SMOKE_CLASSES = ["C1", "C9"]

# Bench drivers (bench/*.cpp binaries) folded into the full trajectory.
# Each accepts --report <file.json>.  The slow ablation/figure drivers and
# the google-benchmark perf_pipeline harness are deliberately not part of
# the pinned trajectory — their coverage is timing-only and duplicated by
# the pipeline runs above.
DEFAULT_DRIVERS = ["table4_synthesis", "table5_detection", "gen_corpus",
                   "daemon_load", "triage_ingest"]

# Counter name prefixes excluded from the pinned trajectory: anything
# measuring memory is a property of the host/allocator, not of the
# pipeline's deterministic behavior.
EXCLUDED_COUNTER_PREFIXES = ("mem.",)


def _fail(message):
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(1)


def pinned_counters(report):
    return {
        name: value
        for name, value in report.get("counters", {}).items()
        if not name.startswith(EXCLUDED_COUNTER_PREFIXES)
    }


def race_set(report):
    """The report's race identities, sorted; None when detection never ran."""
    races = report.get("races")
    if races is None:
        return None
    # Sorted by identity tuple for a canonical, diffable order.
    return sorted(
        ({
            "key": entry.get("key", ""),
            "reproduced": bool(entry.get("reproduced", False)),
            "harmful": bool(entry.get("harmful", False)),
        } for entry in races if isinstance(entry, dict)),
        key=lambda e: (e["key"], e["reproduced"], e["harmful"]))


def run_one(name, argv, report_path, env=None):
    """Runs one bench command, returns its trajectory entry."""
    print(f"[bench] {name}: {' '.join(argv)}", file=sys.stderr)
    before = resource.getrusage(resource.RUSAGE_CHILDREN)
    wall_start = time.monotonic()
    proc = subprocess.run(argv, stdout=subprocess.DEVNULL, env=env)
    wall = time.monotonic() - wall_start
    after = resource.getrusage(resource.RUSAGE_CHILDREN)
    if proc.returncode != 0:
        _fail(f"{name}: exit status {proc.returncode}")
    try:
        with open(report_path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        _fail(f"{name}: unreadable run report: {e}")
    cpu = (after.ru_utime - before.ru_utime) + \
          (after.ru_stime - before.ru_stime)

    entry = {
        "argv": argv[1:],  # Tool path varies by checkout; drop it.
        "report_schema_version": report.get("schema_version", 1),
        "wall_seconds": round(wall, 4),
        "cpu_seconds": round(cpu, 4),
        "counters": pinned_counters(report),
    }
    races = race_set(report)
    if races is not None:
        entry["races"] = races
    return entry


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small CI subset: classes {','.join(SMOKE_CLASSES)}, "
             f"no bench drivers")
    parser.add_argument(
        "--out", default="BENCH_pipeline.json",
        help="output trajectory file (default: BENCH_pipeline.json)")
    parser.add_argument(
        "--classes", default=None,
        help="comma-separated corpus classes (default: C1..C9, or the "
             "smoke subset with --smoke)")
    parser.add_argument(
        "--cli", default="build/tools/narada-cli",
        help="narada-cli binary (default: build/tools/narada-cli)")
    parser.add_argument(
        "--bench-dir", default="build/bench",
        help="directory holding the bench driver binaries")
    parser.add_argument(
        "--drivers", default=None,
        help="comma-separated bench drivers, or 'none' "
             f"(default: {','.join(DEFAULT_DRIVERS)}; --smoke implies none)")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker threads for every run (default: 1, the measured "
             "configuration; counters are jobs-independent by design)")
    args = parser.parse_args()

    if args.classes is not None:
        classes = [c for c in args.classes.split(",") if c]
    else:
        classes = SMOKE_CLASSES if args.smoke else ALL_CLASSES
    for c in classes:
        if c not in ALL_CLASSES:
            print(f"error: unknown corpus class '{c}'", file=sys.stderr)
            return 2

    if args.drivers is not None:
        drivers = [] if args.drivers == "none" else \
            [d for d in args.drivers.split(",") if d]
    else:
        drivers = [] if args.smoke else list(DEFAULT_DRIVERS)

    if not os.path.exists(args.cli):
        print(f"error: narada-cli not found at '{args.cli}' "
              f"(build first, or pass --cli)", file=sys.stderr)
        return 2

    benches = {}
    with tempfile.TemporaryDirectory(prefix="narada-bench.") as tmp:
        for corpus_class in classes:
            report = os.path.join(tmp, f"{corpus_class}.report.json")
            benches[f"pipeline:{corpus_class}"] = run_one(
                f"pipeline:{corpus_class}",
                [args.cli, "detect", f"corpus:{corpus_class}",
                 "--jobs", str(args.jobs), "--report", report],
                report)
        for driver in drivers:
            binary = os.path.join(args.bench_dir, driver)
            if not os.path.exists(binary):
                print(f"warning: skipping driver '{driver}' "
                      f"(no binary at {binary})", file=sys.stderr)
                continue
            report = os.path.join(tmp, f"{driver}.report.json")
            benches[f"driver:{driver}"] = run_one(
                f"driver:{driver}", [binary, "--report", report], report,
                env=dict(os.environ, NARADA_JOBS=str(args.jobs)))

    trajectory = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "jobs": args.jobs,
        "benches": benches,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[bench] wrote {args.out} ({len(benches)} benches)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
