//===- tools/narada-cli.cpp - Command-line driver -------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// The command-line face of the pipeline, in the spirit of the original
// Narada artifact.  The command engine itself — argument grammar, command
// dispatch, output, report emission — lives in src/serve/Engine.h so the
// `narada-cli serve` daemon executes the exact same code per request;
// this file is the thin process shell: main(), the serve/submit
// subcommand dispatch, and the `worker` subprocess entrypoint.
//
//   narada-cli run <file.mj> <test> [--seed N]
//       Execute one test under a seeded random scheduler and report the
//       outcome (faults, deadlock, final-state hash).
//
//   narada-cli trace <file.mj> <test>
//       Execute a test sequentially and print its full event trace.
//
//   narada-cli analyze <file.mj> <seed-test>... [--class C]
//       Run stage 1+2: print unprotected accesses, the setter/factory
//       databases, and the racy pairs.
//
//   narada-cli synthesize <file.mj> <seed-test>... [--class C]
//       Run the full pipeline and print every synthesized racy test.
//
//   narada-cli detect <file.mj> <seed-test>... [--class C]
//       Synthesize, then run the detector stack over every synthesized
//       test and summarize detected/reproduced/harmful/benign races.
//
//   narada-cli contege <file.mj> --class C [--tests N]
//       Run the ConTeGe-style random baseline against class C.
//
//   narada-cli corpus
//       List the built-in C1..C9 benchmark corpus.
//
//   narada-cli serve --socket <path> [--cache <file>] [--racedb <file>]
//       Run the persistent analysis daemon (docs/SERVING.md).
//
//   narada-cli submit --socket <path> <command> [args]
//       Run one command on a serve daemon instead of locally.
//
//   narada-cli triage <ingest|query|diff|gate> ...
//       The durable race database and regression gate (docs/TRIAGE.md).
//
// Corpus shorthand: pass "corpus:C1" instead of a file to load a built-in
// benchmark (its seeds are implied).
//
// Global flags (any command): --report <file.json> writes a structured run
// report; --stats prints a metrics summary to stderr.  See
// docs/OBSERVABILITY.md.
//
//===----------------------------------------------------------------------===//

#include "detect/DetectWorker.h"
#include "obs/MetricsWire.h"
#include "racedb/Triage.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "serve/Client.h"
#include "serve/Daemon.h"
#include "serve/Engine.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/Wire.h"
#include "synth/SynthWorker.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

using namespace narada;

namespace {

/// `narada-cli worker`: the subprocess half of --isolate
/// (support/ProcessPool.h).  Speaks the framed record protocol on
/// stdin/stdout: the first frame is the stage `setup` (mode=synth|detect),
/// answered with `ready`; every further frame is a unit request answered
/// with `result` (or a graceful `crash kind=oom` when the unit exhausts
/// memory but the worker catches the bad_alloc in time).  A monitor thread
/// emits `hb` heartbeats so the supervisor can tell a busy worker from a
/// wedged one.  Hard faults (SIGSEGV, abort, runaway loops, OOM kills)
/// simply take the process down — classification is the supervisor's job.
int cmdWorker() {
  std::mutex OutMutex;
  auto Send = [&](const std::string &Payload) {
    std::lock_guard<std::mutex> Lock(OutMutex);
    return wire::writeFrame(1, Payload);
  };

  std::atomic<bool> Running{true};
  std::thread Heartbeat([&] {
    wire::RecordWriter Beat;
    Beat.add("verb", std::string_view("hb"));
    const std::string Frame = Beat.str();
    while (Running.load(std::memory_order_relaxed)) {
      if (!Send(Frame))
        return; // Supervisor gone; the read loop will see EOF too.
      // Sleep ~200ms in short slices so shutdown does not lag the beat.
      for (int I = 0; I < 4 && Running.load(std::memory_order_relaxed); ++I)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  auto StopHeartbeat = [&] {
    Running.store(false, std::memory_order_relaxed);
    Heartbeat.join();
  };

  std::unique_ptr<synthworker::Service> Synth;
  std::unique_ptr<detectworker::Service> Detect;

  std::string Payload;
  for (;;) {
    wire::ReadStatus St = wire::readFrame(0, Payload);
    if (St != wire::ReadStatus::Ok)
      break; // EOF (supervisor closed the pipe) or a garbled frame.
    wire::RecordReader Record(Payload);
    if (Record.getOr("verb", "") == "shutdown")
      break;

    if (!Synth && !Detect) {
      // First frame: the stage setup.
      std::string Mode = Record.getOr("mode", "");
      if (Mode == "synth") {
        Result<std::unique_ptr<synthworker::Service>> Created =
            synthworker::Service::create(Record);
        if (!Created) {
          std::fprintf(stderr, "narada-cli worker: %s\n",
                       Created.error().str().c_str());
          StopHeartbeat();
          return 1;
        }
        Synth = Created.take();
      } else if (Mode == "detect") {
        Result<std::unique_ptr<detectworker::Service>> Created =
            detectworker::Service::create(Record);
        if (!Created) {
          std::fprintf(stderr, "narada-cli worker: %s\n",
                       Created.error().str().c_str());
          StopHeartbeat();
          return 1;
        }
        Detect = Created.take();
      } else {
        std::fprintf(stderr,
                     "narada-cli worker: setup frame has unknown mode "
                     "'%s'\n",
                     Mode.c_str());
        StopHeartbeat();
        return 1;
      }
      wire::RecordWriter Ready;
      Ready.add("verb", std::string_view("ready"));
      if (!Send(Ready.str()))
        break;
      continue;
    }

    // A unit request.  The registry is reset per unit so the reply's
    // metrics delta covers exactly this unit's work; the supervisor merges
    // deltas, which keeps pipeline counters aligned with in-process runs.
    try {
      obs::MetricsRegistry::global().reset();
      wire::RecordWriter Reply;
      Reply.add("verb", std::string_view("result"));
      if (Synth)
        Synth->runUnit(Record, Reply);
      else
        Detect->runUnit(Record, Reply);
      obs::appendMetricsDelta(Reply, obs::MetricsRegistry::global().snapshot());
      if (!Send(Reply.str()))
        break;
    } catch (const std::bad_alloc &) {
      // Graceful OOM: the allocator failed (RLIMIT_AS) but this frame
      // barely needs memory.  Report and keep serving — the unit is
      // deterministic, the supervisor will not retry it.
      wire::RecordWriter Crash;
      Crash.add("verb", std::string_view("crash"));
      Crash.add("kind", std::string_view("oom"));
      Crash.add("detail",
                std::string_view("allocation failure (std::bad_alloc)"));
      if (!Send(Crash.str()))
        break;
    }
  }
  StopHeartbeat();
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // The daemon-side subcommands own their argument grammar (--socket is
  // not a pipeline flag), so dispatch before the engine parser runs.
  if (Argc >= 2 && std::string(Argv[1]) == "serve")
    return serve::runServe(Argc, Argv);
  if (Argc >= 2 && std::string(Argv[1]) == "submit")
    return serve::runSubmit(Argc, Argv);
  if (Argc >= 2 && std::string(Argv[1]) == "triage")
    return racedb::runTriage(Argc, Argv);

  std::optional<serve::CliArgs> Args = serve::parseArgs(Argc, Argv);
  if (!Args)
    return serve::usage();
  if (Args->Command == "corpus")
    return serve::cmdCorpus();
  if (Args->Command == "worker")
    return cmdWorker();
  if (Args->Input.empty())
    return serve::usage();

  Result<std::string> Source = serve::loadSource(*Args);
  if (!Source) {
    std::fprintf(stderr, "error: %s\n", Source.error().str().c_str());
    return 1;
  }

  if (!Args->TracePath.empty())
    obs::TraceCollector::global().enable();

  int Rc = serve::runCommandAndReport(*Args, *Source);

  if (!Args->TracePath.empty()) {
    obs::TraceCollector &Trace = obs::TraceCollector::global();
    Trace.disable();
    // Unit scope so the obs.trace.flush injection site is reachable from
    // the fault-containment sweep (probes only fire inside a unit).
    fault::ScopedUnit Unit(0);
    // A failed flush is a diagnostics loss, not a pipeline failure: warn
    // (inside flushToFile) and keep the command's own exit code.
    Trace.flushToFile(Args->TracePath);
  }
  return Rc;
}
