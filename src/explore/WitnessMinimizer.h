//===- explore/WitnessMinimizer.h - Delta-debug racy schedules --*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a recorded racy schedule to a minimal preemption set before it
/// is reported, in the delta-debugging style: each candidate removes one
/// preemptive boundary by coalescing the preempted thread's segments, the
/// caller-supplied oracle replays it, and the candidate is kept only when
/// the target race still manifests with strictly fewer preemptions.
///
/// The oracle contract does the heavy lifting for exactness.  Candidates
/// are *relaxed* segment schedules (SegmentReplayPolicy) — coalescing
/// changes where threads block, so the literal pick sequence cannot be
/// predicted up front.  The oracle therefore re-records the actual run it
/// executed and returns that exact trace iff the race reproduced; the
/// minimizer only ever adopts exact re-recorded traces, so its result is
/// replayable byte-for-byte like any other witness.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_EXPLORE_WITNESSMINIMIZER_H
#define NARADA_EXPLORE_WITNESSMINIMIZER_H

#include "explore/ScheduleTrace.h"

#include <functional>
#include <optional>

namespace narada {
namespace explore {

/// Replays one relaxed candidate schedule.  Returns the exact re-recorded
/// trace of that run when the target race still manifested, std::nullopt
/// when it did not (or the run misbehaved).  See detect/Detection.cpp for
/// the production oracle (SegmentReplayPolicy wrapped in RecordingPolicy,
/// race key checked against fresh detectors).
using MinimizeOracle = std::function<std::optional<ScheduleTrace>(
    const std::vector<SegmentReplayPolicy::Segment> &Candidate)>;

struct MinimizeOutcome {
  /// The best witness found — the recorded trace itself when nothing
  /// smaller reproduced the race.  RaceKeys are carried over from the
  /// input.
  ScheduleTrace Minimized;
  unsigned CandidatesTried = 0;
  /// Recorded.preemptions() - Minimized.preemptions().
  unsigned PreemptionsRemoved = 0;
};

/// Greedily minimizes \p Recorded: repeated passes over the preemptive
/// segment boundaries, coalescing one per candidate, until a full pass
/// yields no accepted candidate or \p MaxCandidates replays were spent.
/// Deterministic given a deterministic oracle.
MinimizeOutcome minimizeWitness(const ScheduleTrace &Recorded,
                                const MinimizeOracle &Oracle,
                                unsigned MaxCandidates = 64);

} // namespace explore
} // namespace narada

#endif // NARADA_EXPLORE_WITNESSMINIMIZER_H
