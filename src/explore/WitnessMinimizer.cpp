//===- explore/WitnessMinimizer.cpp - Delta-debug racy schedules ---------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "explore/WitnessMinimizer.h"

#include <utility>

using namespace narada;
using namespace narada::explore;

namespace {

using Segment = SegmentReplayPolicy::Segment;

/// Removes the preemption at segment boundary \p B (between Segments[B]
/// and Segments[B+1]) by letting Segments[B]'s thread keep running: its
/// next segment on the same thread is merged into it, so the work the
/// preemption deferred happens immediately instead.  When the thread never
/// runs again in the trace, its segment becomes unbounded (Len 0 = run
/// until not runnable), which subsumes any tail it might have.
std::vector<Segment> coalesce(std::vector<Segment> Segments, size_t B) {
  size_t J = B + 1;
  while (J < Segments.size() && Segments[J].T != Segments[B].T)
    ++J;
  if (J < Segments.size()) {
    if (Segments[B].Len == 0 || Segments[J].Len == 0)
      Segments[B].Len = 0;
    else
      Segments[B].Len += Segments[J].Len;
    Segments.erase(Segments.begin() + static_cast<ptrdiff_t>(J));
  } else {
    Segments[B].Len = 0;
  }
  return Segments;
}

} // namespace

MinimizeOutcome explore::minimizeWitness(const ScheduleTrace &Recorded,
                                         const MinimizeOracle &Oracle,
                                         unsigned MaxCandidates) {
  MinimizeOutcome Out;
  Out.Minimized = Recorded;

  bool Improved = true;
  while (Improved && Out.CandidatesTried < MaxCandidates &&
         Out.Minimized.preemptions() > 0) {
    Improved = false;
    SegmentedTrace Seg = segmentTrace(Out.Minimized);
    for (size_t B = 0; B < Seg.PreemptiveBoundary.size(); ++B) {
      if (Out.CandidatesTried >= MaxCandidates)
        break;
      if (!Seg.PreemptiveBoundary[B])
        continue;
      ++Out.CandidatesTried;
      std::optional<ScheduleTrace> Replayed =
          Oracle(coalesce(Seg.Segments, B));
      if (!Replayed ||
          Replayed->preemptions() >= Out.Minimized.preemptions())
        continue;
      // Exact re-recorded trace with fewer preemptions: adopt it and
      // re-segment, since coalescing may have moved every boundary.
      Replayed->RaceKeys = Out.Minimized.RaceKeys;
      Out.Minimized = std::move(*Replayed);
      Improved = true;
      break;
    }
  }
  Out.PreemptionsRemoved =
      Recorded.preemptions() - Out.Minimized.preemptions();
  return Out;
}
