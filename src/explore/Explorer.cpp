//===- explore/Explorer.cpp - Systematic schedule search -----------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "explore/Explorer.h"

#include "obs/Metrics.h"
#include "obs/Span.h"
#include "support/FaultInjection.h"
#include "support/Timer.h"

#include <algorithm>
#include <optional>

using namespace narada;
using namespace narada::explore;

ScheduleVisitor::~ScheduleVisitor() = default;

namespace {

bool contains(const std::vector<ThreadId> &Runnable, ThreadId T) {
  return std::find(Runnable.begin(), Runnable.end(), T) != Runnable.end();
}

/// Two pending accesses conflict when they touch the same location and at
/// least one writes — the DPOR dependence relation restricted to what
/// peekAccess can see (heap loads/stores and array element accesses).
bool conflicting(const std::optional<PendingAccess> &A,
                 const std::optional<PendingAccess> &B) {
  if (!A || !B)
    return false;
  if (A->Obj != B->Obj || A->IsElem != B->IsElem)
    return false;
  if (A->IsElem && A->ElemIndex != B->ElemIndex)
    return false;
  if (!A->IsElem && A->Field != B->Field)
    return false;
  return A->IsWrite || B->IsWrite;
}

/// A decision point with unexplored alternatives, kept on the DFS stack
/// across runs.  Explored choices are never re-added (sleep-set
/// discipline): Untried only shrinks.
struct Branch {
  uint64_t Step = 0;               ///< Pick index of the decision.
  std::vector<ThreadId> Untried;   ///< Alternatives still to explore.
};

/// One run of the DFS: replays \p Forced, then continues non-preemptively
/// (keep the running thread; at yields, lowest thread id first), creating
/// Branch records for every decision point past the forced prefix.
class DfsPolicy : public SchedulingPolicy {
public:
  DfsPolicy(const std::vector<ThreadId> &Forced, unsigned MaxPreemptions)
      : Forced(Forced), MaxPreemptions(MaxPreemptions) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) override {
    uint64_t Step = Picks.size();
    ThreadId Chosen;
    if (Step < Forced.size()) {
      // Deterministic replay of the shared prefix; the branches along it
      // already live on the caller's stack.
      Chosen = Forced[Step];
      if (!contains(Runnable, Chosen)) {
        // Cannot happen for prefixes recorded against this module/test;
        // degrade rather than crash if it somehow does.
        Diverged = true;
        Chosen = Runnable.front();
      }
    } else {
      bool PrevRunnable = Prev != NoThread && contains(Runnable, Prev);
      ThreadId Default = PrevRunnable ? Prev : Runnable.front();
      if (Runnable.size() > 1) {
        std::vector<ThreadId> Alternatives;
        for (ThreadId T : Runnable) {
          if (T == Default)
            continue;
          if (!PrevRunnable) {
            // Yield point: reordering whole thread bodies costs no
            // preemption; always branch.
            Alternatives.push_back(T);
            continue;
          }
          // Preemptive switch: bounded, and only at the running thread's
          // shared-access steps.  Preempting at a non-access step is
          // equivalent (up to local ops) to preempting at the next access,
          // so those steps are pruned wholesale.  When the candidate
          // thread is itself paused at an access, the DPOR dependence
          // filter applies: switching to a thread about to perform an
          // independent access only reorders commuting operations.
          if (Preemptions >= MaxPreemptions) {
            ++Pruned;
            continue;
          }
          std::optional<PendingAccess> DefaultAccess = M.peekAccess(Default);
          if (!DefaultAccess) {
            ++Pruned;
            continue;
          }
          std::optional<PendingAccess> TAccess = M.peekAccess(T);
          if (TAccess && !conflicting(DefaultAccess, TAccess)) {
            ++Pruned;
            continue;
          }
          Alternatives.push_back(T);
        }
        if (!Alternatives.empty())
          NewBranches.push_back({Step, std::move(Alternatives)});
      }
      Chosen = Default;
    }
    if (Prev != NoThread && Chosen != Prev && contains(Runnable, Prev)) {
      PreemptSteps.push_back(Step);
      ++Preemptions;
    }
    Prev = Chosen;
    Picks.push_back(Chosen);
    return Chosen;
  }

  const std::vector<ThreadId> &picks() const { return Picks; }
  std::vector<Branch> takeNewBranches() { return std::move(NewBranches); }
  uint64_t pruned() const { return Pruned; }
  bool diverged() const { return Diverged; }

  ScheduleTrace trace(const std::string &TestName, uint64_t RandSeed) const {
    ScheduleTrace Out;
    Out.TestName = TestName;
    Out.RandSeed = RandSeed;
    Out.Picks = Picks;
    Out.PreemptSteps = PreemptSteps;
    return Out;
  }

private:
  const std::vector<ThreadId> &Forced;
  unsigned MaxPreemptions;

  std::vector<ThreadId> Picks;
  std::vector<uint64_t> PreemptSteps;
  std::vector<Branch> NewBranches;
  ThreadId Prev = NoThread;
  unsigned Preemptions = 0;
  uint64_t Pruned = 0;
  bool Diverged = false;
};

} // namespace

Result<ExploreOutcome>
narada::explore::exploreSchedules(const IRModule &M,
                                  const std::string &TestName,
                                  const ExploreOptions &Options,
                                  ScheduleVisitor &Visitor) {
  obs::Span ExploreSpan("explore");
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  Timer Wall;

  ExploreOutcome Outcome;
  std::vector<Branch> Stack;
  std::vector<ThreadId> Forced;

  for (;;) {
    if (Outcome.SchedulesRun >= Options.MaxSchedules) {
      Outcome.HitScheduleBudget = true;
      break;
    }
    if (Options.WallBudgetSeconds > 0.0 &&
        Wall.seconds() > Options.WallBudgetSeconds) {
      Outcome.HitWallBudget = true;
      break;
    }

    obs::Span ScheduleSpan("schedule");
    // Containment boundary: an injected fault here unwinds out of the
    // whole exploration and is quarantined per test by detectRacesInTests,
    // never aborting sibling tests (see support/FaultInjection.h).
    fault::probe("explore.schedule");
    DfsPolicy Policy(Forced, Options.MaxPreemptions);
    ExecutionObserver *Observer =
        Visitor.beginSchedule(Outcome.SchedulesRun);
    Result<TestRun> Run = runTest(M, TestName, Policy, Options.RandSeed,
                                  Observer, Options.MaxSteps);
    if (!Run)
      return Run.error();
    ++Outcome.SchedulesRun;
    Outcome.Pruned += Policy.pruned();
    Metrics.counter("explore.schedules_run").inc();
    Metrics.counter("explore.pruned").inc(Policy.pruned());

    for (Branch &B : Policy.takeNewBranches())
      Stack.push_back(std::move(B));

    // Frontier shape gauges for the run report: peak DFS depth and peak
    // pending-alternative population.  Both are per-schedule functions of
    // the deterministic search, so the peaks match across --jobs values.
    Metrics.gauge("explore.frontier_peak")
        .max(static_cast<int64_t>(Stack.size()));
    uint64_t Pending = 0;
    for (const Branch &B : Stack)
      Pending += B.Untried.size();
    Metrics.gauge("explore.sleepset_peak").max(static_cast<int64_t>(Pending));

    if (!Visitor.endSchedule(Policy.trace(TestName, Options.RandSeed),
                             *Run)) {
      Outcome.Stopped = true;
      break;
    }

    // Backtrack: drop exhausted decisions, then flip the deepest one left.
    while (!Stack.empty() && Stack.back().Untried.empty())
      Stack.pop_back();
    if (Stack.empty()) {
      Outcome.Exhausted = true;
      break;
    }
    Branch &Flip = Stack.back();
    ThreadId Alternative = Flip.Untried.back();
    Flip.Untried.pop_back();
    // All runs in this decision's subtree share picks[0, Step), so the
    // just-finished run's prefix is the right one to force.
    const std::vector<ThreadId> &Picks = Policy.picks();
    Forced.assign(Picks.begin(),
                  Picks.begin() + static_cast<ptrdiff_t>(Flip.Step));
    Forced.push_back(Alternative);
  }
  return Outcome;
}
