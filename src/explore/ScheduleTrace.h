//===- explore/ScheduleTrace.h - Replayable schedule traces -----*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule record/replay layer of the exploration subsystem: a
/// ScheduleTrace is the exact sequence of SchedulingPolicy::pick()
/// decisions of one execution, serialized to a compact text format so any
/// run — random, PCT, or systematic — that finds a race can emit a
/// replayable witness.  Because the VM is deterministic given (module,
/// test, rand seed, pick sequence), replaying a trace recorded from a real
/// run reproduces that run byte-identically: same events, same detector
/// output, same final heap hash.
///
/// Three policies operate on traces:
///  - RecordingPolicy wraps any policy and records its picks, classifying
///    each context switch as preemptive (the previous thread was still
///    runnable) or a yield (it was not);
///  - ReplayPolicy replays a trace pick for pick (strict; divergence from
///    the recorded runnable sets is flagged, not papered over);
///  - SegmentReplayPolicy replays a schedule at thread-segment granularity
///    with relaxed semantics, which is what the witness minimizer perturbs
///    (see WitnessMinimizer.h).
///
/// Trace text format (one directive per line, '#' comments ignored):
///
///   narada.schedule/v1
///   test <name>
///   seed <vm-rand-seed>
///   race <race-key>             (zero or more, sorted)
///   preempt-steps <s1> <s2> ...  (step indices of preemptive switches)
///   picks <tid>x<count> ...      (run-length encoded; line repeatable)
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_EXPLORE_SCHEDULETRACE_H
#define NARADA_EXPLORE_SCHEDULETRACE_H

#include "runtime/Scheduler.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace narada {
namespace explore {

/// One recorded schedule: the exact pick() sequence of a run, plus the
/// metadata needed to replay and triage it.
struct ScheduleTrace {
  static constexpr const char *Schema = "narada.schedule/v1";

  std::string TestName;
  uint64_t RandSeed = 1; ///< VM rand() stream seed of the recorded run.
  std::vector<ThreadId> Picks;
  /// Step indices at which the recorded run preempted: it switched away
  /// from a thread that was still runnable.  Yield switches (the previous
  /// thread blocked or finished) are not listed.
  std::vector<uint64_t> PreemptSteps;
  /// key()s of the races this schedule witnessed, sorted (may be empty for
  /// traces recorded outside witness emission).
  std::vector<std::string> RaceKeys;

  unsigned preemptions() const {
    return static_cast<unsigned>(PreemptSteps.size());
  }

  /// Renders the trace in the text format above.
  std::string serialize() const;

  /// Parses a serialized trace; malformed input is an Error naming the
  /// offending line.
  static Result<ScheduleTrace> deserialize(const std::string &Text);

  Status writeFile(const std::string &Path) const;
  static Result<ScheduleTrace> readFile(const std::string &Path);
};

/// Wraps another policy and records its decisions, so every exploration
/// mode emits witnesses through the same code path.
class RecordingPolicy : public SchedulingPolicy {
public:
  explicit RecordingPolicy(SchedulingPolicy &Inner) : Inner(Inner) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) override;

  const std::vector<ThreadId> &picks() const { return Picks; }
  unsigned preemptions() const {
    return static_cast<unsigned>(PreemptSteps.size());
  }

  /// The recorded schedule so far, stamped with \p TestName / \p RandSeed.
  ScheduleTrace trace(std::string TestName, uint64_t RandSeed) const;

private:
  SchedulingPolicy &Inner;
  std::vector<ThreadId> Picks;
  std::vector<uint64_t> PreemptSteps;
  ThreadId Prev = NoThread;
};

/// Strict replay: returns the recorded picks in order.  On a deterministic
/// VM a trace recorded from a real run never diverges; diverged() reports
/// when a recorded pick was not runnable (e.g. a trace replayed against a
/// different module), in which case the policy degrades to non-preemptive
/// continuation rather than crashing.
class ReplayPolicy : public SchedulingPolicy {
public:
  explicit ReplayPolicy(const ScheduleTrace &Trace) : Trace(Trace) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) override;

  bool diverged() const { return Diverged; }
  /// True when the run needed more picks than the trace recorded.
  bool exhausted() const { return Exhausted; }

private:
  const ScheduleTrace &Trace;
  size_t Next = 0;
  ThreadId Prev = NoThread;
  bool Diverged = false;
  bool Exhausted = false;
};

/// Relaxed, segment-granular replay for minimization candidates.  Each
/// segment runs its thread for up to Len steps (Len 0 = until the thread
/// stops being runnable); a segment whose thread is not runnable is
/// skipped.  When all segments are consumed the policy continues
/// non-preemptively.  Candidates produced by coalescing segments of a real
/// trace are not exact pick sequences, so exactness is *not* promised here
/// — the minimizer re-records the actual run (via RecordingPolicy) before
/// accepting a candidate, and only exact re-recorded traces are reported.
class SegmentReplayPolicy : public SchedulingPolicy {
public:
  struct Segment {
    ThreadId T = 0;
    uint64_t Len = 0; ///< 0 = run until not runnable.
  };

  explicit SegmentReplayPolicy(std::vector<Segment> Segments)
      : Segments(std::move(Segments)) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) override;

private:
  std::vector<Segment> Segments;
  size_t Cur = 0;
  uint64_t StepsLeft = 0;
  bool CurStarted = false;
  ThreadId Prev = NoThread;
};

/// Decomposes \p Trace.Picks into maximal same-thread segments, marking
/// for each segment boundary whether the switch was preemptive (its step
/// index appears in Trace.PreemptSteps).
struct SegmentedTrace {
  std::vector<SegmentReplayPolicy::Segment> Segments;
  /// PreemptiveBoundary[I] — the switch between Segments[I] and
  /// Segments[I+1] was a preemption.  Size = Segments.size() - 1 (empty
  /// for single-segment traces).
  std::vector<bool> PreemptiveBoundary;
};

SegmentedTrace segmentTrace(const ScheduleTrace &Trace);

} // namespace explore
} // namespace narada

#endif // NARADA_EXPLORE_SCHEDULETRACE_H
