//===- explore/Explorer.h - Systematic schedule search ----------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded systematic search over SchedulingPolicy decision points, in the
/// stateless-model-checking style: every schedule re-executes the test from
/// scratch under a forced prefix of pick() decisions, then continues
/// non-preemptively; backtracking flips the deepest decision with an
/// unexplored alternative.  Two prunings keep the space tractable:
///
///  - sleep-set discipline: an alternative explored at a decision point is
///    never re-added, so each (prefix, choice) is executed exactly once;
///  - DPOR-style conflict filtering keyed on the VM's *pending* shared-
///    memory accesses (VM::peekAccess): preemptive switches are only
///    scheduled at steps where the running thread is about to perform a
///    shared access (preempting elsewhere commutes with local ops), and a
///    switch to a thread that is itself paused at an access is pruned
///    unless the two accesses conflict (same location, at least one
///    write).  Switches at yield points (the running thread blocked or
///    finished) are always branched, since they reorder whole thread
///    bodies for free.
///
/// The search is bounded by a budget ladder — max schedules, max
/// preemptions per schedule, and an optional wall budget — and reports
/// whether the bounded space was exhausted, so callers can degrade
/// gracefully to randomized policies when it was not (see
/// detect/Detection.cpp).  Approximation notes: monitor operations are not
/// branch points (peekAccess only describes heap accesses), so lock-order
/// interleavings beyond those forced by yields are not enumerated; within
/// the preemption bound the search is exhaustive over the pruned space.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_EXPLORE_EXPLORER_H
#define NARADA_EXPLORE_EXPLORER_H

#include "explore/ScheduleTrace.h"
#include "runtime/Execution.h"
#include "support/Error.h"

#include <string>

namespace narada {
namespace explore {

/// The budget ladder bounding one systematic search.
struct ExploreOptions {
  /// Maximum schedules to execute before giving up on exhausting the
  /// space.  Degenerate values are still honored (1 = baseline run only).
  unsigned MaxSchedules = 256;
  /// Maximum preemptive context switches per schedule (the PCT/CHESS bound
  /// d); yield switches are free.  Races of depth d need d-1 preemptions.
  unsigned MaxPreemptions = 2;
  /// Wall-clock budget in seconds for the whole search (0 = off).  Checked
  /// between schedules; inherently timing-dependent, so opt-in.
  double WallBudgetSeconds = 0.0;
  /// Per-schedule step ceiling.
  uint64_t MaxSteps = 400'000;
  /// VM rand() stream seed (schedules are deterministic given it).
  uint64_t RandSeed = 1;
};

/// What one search did and why it stopped.
struct ExploreOutcome {
  unsigned SchedulesRun = 0;
  /// Alternatives discarded by the conflict filter or the preemption
  /// bound — each is a subtree the bounded search never entered.
  uint64_t Pruned = 0;
  bool Exhausted = false;         ///< The pruned, bounded space was covered.
  bool HitScheduleBudget = false; ///< Stopped at MaxSchedules.
  bool HitWallBudget = false;     ///< Stopped at WallBudgetSeconds.
  bool Stopped = false;           ///< The visitor asked to stop.
};

/// Callbacks driving one search.  The visitor owns the per-schedule
/// observers (detectors) and decides when to stop early.
class ScheduleVisitor {
public:
  virtual ~ScheduleVisitor();

  /// Called before schedule \p Index executes; the returned observer (may
  /// be null) watches that execution.
  virtual ExecutionObserver *beginSchedule(unsigned Index) = 0;

  /// Called after a schedule ran, with the exact trace it executed.
  /// Return false to stop the search (ExploreOutcome::Stopped).
  virtual bool endSchedule(const ScheduleTrace &Trace, const TestRun &Run) = 0;
};

/// Runs the bounded DFS for \p TestName over \p M.  Deterministic: the
/// same (module, test, options) always explores the same schedules in the
/// same order, which is what keeps per-test exploration identical across
/// --jobs values.  Errors surface only for harness-level failures (unknown
/// test); schedule-level misbehavior (faults, deadlocks, step limits) is
/// reported per run through the visitor.
Result<ExploreOutcome> exploreSchedules(const IRModule &M,
                                        const std::string &TestName,
                                        const ExploreOptions &Options,
                                        ScheduleVisitor &Visitor);

} // namespace explore
} // namespace narada

#endif // NARADA_EXPLORE_EXPLORER_H
