//===- explore/ScheduleTrace.cpp - Replayable schedule traces ------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "explore/ScheduleTrace.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace narada;
using namespace narada::explore;

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string ScheduleTrace::serialize() const {
  std::ostringstream Out;
  Out << Schema << "\n";
  Out << "test " << TestName << "\n";
  Out << "seed " << RandSeed << "\n";
  for (const std::string &Key : RaceKeys)
    Out << "race " << Key << "\n";
  if (!PreemptSteps.empty()) {
    Out << "preempt-steps";
    for (uint64_t S : PreemptSteps)
      Out << " " << S;
    Out << "\n";
  }
  // Run-length encode the picks; chunk the line so long schedules stay
  // diffable.
  size_t I = 0;
  while (I < Picks.size()) {
    Out << "picks";
    unsigned OnLine = 0;
    while (I < Picks.size() && OnLine < 16) {
      ThreadId T = Picks[I];
      size_t J = I;
      while (J < Picks.size() && Picks[J] == T)
        ++J;
      Out << " " << T << "x" << (J - I);
      I = J;
      ++OnLine;
    }
    Out << "\n";
  }
  return Out.str();
}

namespace {

/// Parses a base-10 uint64; false on garbage or overflow.
bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  for (char C : Text)
    if (C < '0' || C > '9')
      return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  Out = Value;
  return true;
}

Error badLine(size_t LineNo, const std::string &Why) {
  return Error(formatString("schedule trace line %zu: %s",
                            LineNo, Why.c_str()));
}

} // namespace

Result<ScheduleTrace> ScheduleTrace::deserialize(const std::string &Text) {
  ScheduleTrace Out;
  std::istringstream In(Text);
  std::string Line;
  size_t LineNo = 0;
  bool SawSchema = false, SawTest = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty() || Trimmed[0] == '#')
      continue;
    if (!SawSchema) {
      if (Trimmed != Schema)
        return badLine(LineNo, "not a " + std::string(Schema) + " document");
      SawSchema = true;
      continue;
    }
    std::vector<std::string> Words = split(std::string(Trimmed), ' ');
    Words.erase(std::remove_if(Words.begin(), Words.end(),
                               [](const std::string &W) { return W.empty(); }),
                Words.end());
    if (Words.empty())
      continue;
    const std::string &Directive = Words[0];
    if (Directive == "test") {
      if (Words.size() != 2)
        return badLine(LineNo, "'test' takes exactly one name");
      Out.TestName = Words[1];
      SawTest = true;
    } else if (Directive == "seed") {
      if (Words.size() != 2 || !parseU64(Words[1], Out.RandSeed))
        return badLine(LineNo, "'seed' takes one unsigned integer");
    } else if (Directive == "race") {
      if (Words.size() < 2)
        return badLine(LineNo, "'race' takes a race key");
      // Race keys contain no spaces today, but re-join defensively.
      std::vector<std::string> KeyWords(Words.begin() + 1, Words.end());
      Out.RaceKeys.push_back(join(KeyWords, " "));
    } else if (Directive == "preempt-steps") {
      for (size_t I = 1; I < Words.size(); ++I) {
        uint64_t Step = 0;
        if (!parseU64(Words[I], Step))
          return badLine(LineNo, "bad preempt step '" + Words[I] + "'");
        Out.PreemptSteps.push_back(Step);
      }
    } else if (Directive == "picks") {
      for (size_t I = 1; I < Words.size(); ++I) {
        size_t X = Words[I].find('x');
        uint64_t Tid = 0, Count = 0;
        if (X == std::string::npos ||
            !parseU64(Words[I].substr(0, X), Tid) ||
            !parseU64(Words[I].substr(X + 1), Count) || Count == 0)
          return badLine(LineNo, "bad picks token '" + Words[I] +
                                     "' (want <tid>x<count>)");
        for (uint64_t K = 0; K < Count; ++K)
          Out.Picks.push_back(static_cast<ThreadId>(Tid));
      }
    } else {
      return badLine(LineNo, "unknown directive '" + Directive + "'");
    }
  }
  if (!SawSchema)
    return Error(formatString("schedule trace: missing %s header", Schema));
  if (!SawTest)
    return Error("schedule trace: missing 'test' directive");
  return Out;
}

Status ScheduleTrace::writeFile(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return Error("cannot write schedule trace '" + Path + "'");
  Out << serialize();
  Out.flush();
  if (!Out)
    return Error("failed writing schedule trace '" + Path + "'");
  return Status::success();
}

Result<ScheduleTrace> ScheduleTrace::readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Error("cannot open schedule trace '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return deserialize(Buffer.str());
}

//===----------------------------------------------------------------------===//
// Policies
//===----------------------------------------------------------------------===//

static bool contains(const std::vector<ThreadId> &Runnable, ThreadId T) {
  return std::find(Runnable.begin(), Runnable.end(), T) != Runnable.end();
}

ThreadId RecordingPolicy::pick(const std::vector<ThreadId> &Runnable, VM &M) {
  ThreadId T = Inner.pick(Runnable, M);
  if (Prev != NoThread && T != Prev && contains(Runnable, Prev))
    PreemptSteps.push_back(Picks.size());
  Prev = T;
  Picks.push_back(T);
  return T;
}

ScheduleTrace RecordingPolicy::trace(std::string TestName,
                                     uint64_t RandSeed) const {
  ScheduleTrace Out;
  Out.TestName = std::move(TestName);
  Out.RandSeed = RandSeed;
  Out.Picks = Picks;
  Out.PreemptSteps = PreemptSteps;
  return Out;
}

ThreadId ReplayPolicy::pick(const std::vector<ThreadId> &Runnable, VM &M) {
  if (Next < Trace.Picks.size()) {
    ThreadId Want = Trace.Picks[Next++];
    if (contains(Runnable, Want))
      return Prev = Want;
    Diverged = true;
  } else if (!Trace.Picks.empty()) {
    Exhausted = true;
  }
  // Degraded continuation: keep the previous thread while it is runnable,
  // else the lowest-id runnable thread.
  if (Prev != NoThread && contains(Runnable, Prev))
    return Prev;
  return Prev = Runnable.front();
}

ThreadId SegmentReplayPolicy::pick(const std::vector<ThreadId> &Runnable,
                                   VM &M) {
  while (Cur < Segments.size()) {
    const Segment &S = Segments[Cur];
    if (!CurStarted) {
      CurStarted = true;
      StepsLeft = S.Len; // 0 = unbounded (until not runnable).
    }
    bool Budgeted = S.Len != 0;
    if ((Budgeted && StepsLeft == 0) || !contains(Runnable, S.T)) {
      ++Cur;
      CurStarted = false;
      continue;
    }
    if (Budgeted)
      --StepsLeft;
    return Prev = S.T;
  }
  if (Prev != NoThread && contains(Runnable, Prev))
    return Prev;
  return Prev = Runnable.front();
}

SegmentedTrace narada::explore::segmentTrace(const ScheduleTrace &Trace) {
  SegmentedTrace Out;
  size_t I = 0;
  size_t NextPreempt = 0;
  while (I < Trace.Picks.size()) {
    ThreadId T = Trace.Picks[I];
    size_t J = I;
    while (J < Trace.Picks.size() && Trace.Picks[J] == T)
      ++J;
    if (!Out.Segments.empty()) {
      // The switch into this segment happened at step I.
      while (NextPreempt < Trace.PreemptSteps.size() &&
             Trace.PreemptSteps[NextPreempt] < I)
        ++NextPreempt;
      bool Preemptive = NextPreempt < Trace.PreemptSteps.size() &&
                        Trace.PreemptSteps[NextPreempt] == I;
      Out.PreemptiveBoundary.push_back(Preemptive);
    }
    Out.Segments.push_back({T, J - I});
    I = J;
  }
  return Out;
}
