//===- corpus/C2_SynchronizedCollection.cpp - openjdk C2 -----------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Model of openjdk 1.7's Collections$SynchronizedCollection.  Defect
// structure preserved: the wrapper takes the backing collection as a
// constructor argument and synchronizes on *itself*; two wrappers around
// one backing list serialize nothing.  The wrapper also leaks the backing
// list through getBacking(), mirroring how the JDK wrapper's iterator must
// be user-synchronized.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace narada;

static const char *C2Source = R"(
// openjdk SynchronizedCollection model (C2).

// A plain growable int list, no synchronization (the ArrayList role).
class SimpleList {
  field elems: IntArray;
  field count: int;

  method init() { this.elems = new IntArray(8); }

  method ensureCapacity(needed: int) {
    if (needed <= this.elems.length()) { return; }
    var bigger: IntArray = new IntArray(needed * 2);
    var i: int = 0;
    while (i < this.count) {
      bigger.set(i, this.elems.get(i));
      i = i + 1;
    }
    this.elems = bigger;
  }

  method add(v: int) {
    this.ensureCapacity(this.count + 1);
    this.elems.set(this.count, v);
    this.count = this.count + 1;
  }

  method removeAt(index: int): int {
    if (index < 0 || index >= this.count) { return 0 - 1; }
    var removed: int = this.elems.get(index);
    var i: int = index;
    while (i < this.count - 1) {
      this.elems.set(i, this.elems.get(i + 1));
      i = i + 1;
    }
    this.count = this.count - 1;
    return removed;
  }

  method indexOf(v: int): int {
    var i: int = 0;
    while (i < this.count) {
      if (this.elems.get(i) == v) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }

  method get(index: int): int {
    if (index < 0 || index >= this.count) { return 0; }
    return this.elems.get(index);
  }

  method set(index: int, v: int) {
    if (index < 0 || index >= this.count) { return; }
    this.elems.set(index, v);
  }

  method size(): int { return this.count; }
  method isEmpty(): bool { return this.count == 0; }
  method clear() { this.count = 0; }
  method contains(v: int): bool { return this.indexOf(v) >= 0; }
}

// "Synchronized" wrapper: every method locks the wrapper object, but the
// backing list is shared state supplied by the client.
class SynchronizedCollection {
  field c: SimpleList;

  method init(list: SimpleList) { this.c = list; }

  method add(v: int) synchronized { this.c.add(v); }

  method remove(v: int): bool synchronized {
    var index: int = this.c.indexOf(v);
    if (index < 0) { return false; }
    var dropped: int = this.c.removeAt(index);
    return true;
  }

  method removeAt(index: int): int synchronized {
    return this.c.removeAt(index);
  }

  method get(index: int): int synchronized { return this.c.get(index); }

  method set(index: int, v: int) synchronized { this.c.set(index, v); }

  method contains(v: int): bool synchronized { return this.c.contains(v); }

  method containsAll(other: SimpleList): bool synchronized {
    var i: int = 0;
    while (i < other.size()) {
      if (!this.c.contains(other.get(i))) { return false; }
      i = i + 1;
    }
    return true;
  }

  method addAll(other: SimpleList) synchronized {
    var i: int = 0;
    while (i < other.size()) {
      this.c.add(other.get(i));
      i = i + 1;
    }
  }

  method removeAll(other: SimpleList) synchronized {
    var i: int = 0;
    while (i < other.size()) {
      var index: int = this.c.indexOf(other.get(i));
      if (index >= 0) {
        var dropped: int = this.c.removeAt(index);
      }
      i = i + 1;
    }
  }

  method size(): int synchronized { return this.c.size(); }
  method isEmpty(): bool synchronized { return this.c.isEmpty(); }
  method clear() synchronized { this.c.clear(); }

  method indexOf(v: int): int synchronized { return this.c.indexOf(v); }

  method first(): int synchronized { return this.c.get(0); }

  method last(): int synchronized {
    return this.c.get(this.c.size() - 1);
  }

  method swap(i: int, j: int) synchronized {
    var a: int = this.c.get(i);
    var b: int = this.c.get(j);
    this.c.set(i, b);
    this.c.set(j, a);
  }

  method getBacking(): SimpleList synchronized { return this.c; }

  method copyInto(target: SimpleList) synchronized {
    var i: int = 0;
    while (i < this.c.size()) {
      target.add(this.c.get(i));
      i = i + 1;
    }
  }
}

test seedC2 {
  var list: SimpleList = new SimpleList();
  list.add(3);
  list.add(4);
  var g0: int = list.get(0);
  list.set(0, 5);
  var i0: int = list.indexOf(5);
  var r0: int = list.removeAt(0);
  var n0: int = list.size();
  var b0: bool = list.isEmpty();
  var b1: bool = list.contains(4);
  list.ensureCapacity(4);
  list.clear();
  var sc: SynchronizedCollection = new SynchronizedCollection(list);
  sc.add(7);
  sc.add(8);
  var b2: bool = sc.remove(7);
  var r1: int = sc.removeAt(0);
  sc.add(9);
  var g1: int = sc.get(0);
  sc.set(0, 10);
  var b3: bool = sc.contains(10);
  var other: SimpleList = new SimpleList();
  other.add(10);
  var b4: bool = sc.containsAll(other);
  sc.addAll(other);
  sc.removeAll(other);
  var n1: int = sc.size();
  var b5: bool = sc.isEmpty();
  var i1: int = sc.indexOf(10);
  sc.add(11);
  sc.add(12);
  var f: int = sc.first();
  var l: int = sc.last();
  sc.swap(0, 1);
  var back: SimpleList = sc.getBacking();
  var target: SimpleList = new SimpleList();
  sc.copyInto(target);
  sc.clear();
}
)";

CorpusEntry narada::corpusC2() {
  CorpusEntry Entry;
  Entry.Id = "C2";
  Entry.Benchmark = "openjdk";
  Entry.Version = "1.7";
  Entry.ClassName = "SynchronizedCollection";
  Entry.Description =
      "wrapper locks itself while the client-supplied backing list is "
      "shareable across wrappers; getBacking() additionally leaks it";
  Entry.Source = C2Source;
  Entry.SeedNames = {"seedC2"};
  return Entry;
}
