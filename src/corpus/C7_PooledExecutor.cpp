//===- corpus/C7_PooledExecutor.cpp - hedc C7 ----------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Model of hedc's PooledExecutorWithInvalidate.  Defect structure
// preserved: the task queue is managed under the executor's lock, but
// invalidateAll() walks the queue and flips each task's invalid flag with
// *no* lock — the classic hedc race — and the shutdown flag is also set
// without synchronization.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace narada;

static const char *C7Source = R"(
// hedc PooledExecutorWithInvalidate model (C7).

class Task {
  field id: int;
  field invalid: bool;
  field done: bool;
  field next: Task;
  method setId(v: int) { this.id = v; }
  method run() { this.done = true; }
}

class PooledExecutorWithInvalidate {
  field head: Task;
  field tail: Task;
  field taskCount: int;
  field shutdown: bool;

  method init() { }

  method addTask(t: Task) synchronized {
    if (this.shutdown) { return; }
    t.next = null;
    if (this.tail == null) {
      this.head = t;
      this.tail = t;
    } else {
      this.tail.next = t;
      this.tail = t;
    }
    this.taskCount = this.taskCount + 1;
  }

  method firstTask(): Task synchronized { return this.head; }

  method runNextTask() synchronized {
    var t: Task = this.head;
    if (t == null) { return; }
    this.head = t.next;
    if (this.head == null) { this.tail = null; }
    this.taskCount = this.taskCount - 1;
    if (!t.invalid) { t.run(); }
  }

  // The defect: walks and mutates the queue with no lock held.
  method invalidateAll() {
    var cur: Task = this.head;
    while (cur != null) {
      cur.invalid = true;
      cur = cur.next;
    }
  }

  // Unsynchronized flag write, racy against addTask's check.
  method shutdownNow() { this.shutdown = true; }

  method isShutdown(): bool { return this.shutdown; }

  method size(): int synchronized { return this.taskCount; }

  method isEmpty(): bool synchronized { return this.taskCount == 0; }
}

test seedC7 {
  var pool: PooledExecutorWithInvalidate = new PooledExecutorWithInvalidate();
  var t1: Task = new Task;
  t1.setId(1);
  t1.run();
  var t2: Task = new Task;
  pool.addTask(t1);
  pool.addTask(t2);
  var first: Task = pool.firstTask();
  pool.runNextTask();
  pool.invalidateAll();
  var n: int = pool.size();
  var e: bool = pool.isEmpty();
  var s: bool = pool.isShutdown();
  pool.shutdownNow();
}
)";

CorpusEntry narada::corpusC7() {
  CorpusEntry Entry;
  Entry.Id = "C7";
  Entry.Benchmark = "hedc";
  Entry.Version = "NA";
  Entry.ClassName = "PooledExecutorWithInvalidate";
  Entry.Description =
      "invalidateAll() walks and mutates the task queue with no lock; "
      "shutdownNow() writes the shutdown flag unsynchronized";
  Entry.Source = C7Source;
  Entry.SeedNames = {"seedC7"};
  return Entry;
}
