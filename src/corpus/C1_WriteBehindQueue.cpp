//===- corpus/C1_WriteBehindQueue.cpp - hazelcast C1 ---------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Model of hazelcast-3.3.2's SynchronizedWriteBehindQueue — the paper's
// motivating example (Fig. 2).  Defect structure preserved:
//  * CoalescedWriteBehindQueue performs no synchronization;
//  * SynchronizedWriteBehindQueue assigns `mutex = this` instead of the
//    wrapped queue, so its synchronized methods lock the *wrapper*;
//  * WriteBehindQueues is the factory whose createSafeWriteBehindQueue can
//    wrap one coalesced queue into several wrappers.
// Two wrappers sharing one backing queue therefore update it under
// different locks: every wrapper method pair races on the backing state.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace narada;

static const char *C1Source = R"(
// hazelcast WriteBehindQueue model (C1).

class DelayedEntry {
  field value: int;
  field next: DelayedEntry;
  method setValue(v: int) { this.value = v; }
  method getValue(): int { return this.value; }
}

// No synchronization whatsoever: relies on the wrapper for thread safety.
class CoalescedWriteBehindQueue {
  field head: DelayedEntry;
  field count: int;

  method addFirst(e: DelayedEntry) {
    e.next = this.head;
    this.head = e;
    this.count = this.count + 1;
  }

  method addLast(e: DelayedEntry) {
    e.next = null;
    if (this.head == null) {
      this.head = e;
    } else {
      var cur: DelayedEntry = this.head;
      while (cur.next != null) { cur = cur.next; }
      cur.next = e;
    }
    this.count = this.count + 1;
  }

  method removeFirst(): DelayedEntry {
    var first: DelayedEntry = this.head;
    if (first == null) { return null; }
    this.head = first.next;
    this.count = this.count - 1;
    return first;
  }

  method peekFirst(): DelayedEntry { return this.head; }

  method clear() {
    this.head = null;
    this.count = 0;
  }

  method size(): int { return this.count; }

  method contains(v: int): bool {
    var cur: DelayedEntry = this.head;
    while (cur != null) {
      if (cur.value == v) { return true; }
      cur = cur.next;
    }
    return false;
  }
}

// "Thread safe write behind queue."  The bug: every method synchronizes on
// the wrapper (mutex = this) while the guarded state lives in this.queue,
// which several wrappers may share.
class SynchronizedWriteBehindQueue {
  field queue: CoalescedWriteBehindQueue;

  method init(q: CoalescedWriteBehindQueue) { this.queue = q; }

  method addFirst(e: DelayedEntry) synchronized {
    this.queue.addFirst(e);
  }

  method addLast(e: DelayedEntry) synchronized {
    this.queue.addLast(e);
  }

  method offer(e: DelayedEntry) synchronized {
    this.queue.addLast(e);
  }

  method removeFirst(): DelayedEntry synchronized {
    return this.queue.removeFirst();
  }

  method poll(): DelayedEntry synchronized {
    return this.queue.removeFirst();
  }

  method peekFirst(): DelayedEntry synchronized {
    return this.queue.peekFirst();
  }

  method clear() synchronized {
    this.queue.clear();
  }

  method size(): int synchronized {
    return this.queue.size();
  }

  method isEmpty(): bool synchronized {
    return this.queue.size() == 0;
  }

  method contains(v: int): bool synchronized {
    return this.queue.contains(v);
  }

  method drainTo(target: CoalescedWriteBehindQueue) synchronized {
    var e: DelayedEntry = this.queue.removeFirst();
    while (e != null) {
      target.addLast(e);
      e = this.queue.removeFirst();
    }
  }

  method addAll(src: CoalescedWriteBehindQueue) synchronized {
    var e: DelayedEntry = src.removeFirst();
    while (e != null) {
      this.queue.addLast(e);
      e = src.removeFirst();
    }
  }

  method getQueue(): CoalescedWriteBehindQueue synchronized {
    return this.queue;
  }
}

// Static factory methods (modeled as instance methods of a factory object).
class WriteBehindQueues {
  method createCoalescedWriteBehindQueue(): CoalescedWriteBehindQueue {
    return new CoalescedWriteBehindQueue;
  }
  method createSafeWriteBehindQueue(q: CoalescedWriteBehindQueue)
      : SynchronizedWriteBehindQueue {
    return new SynchronizedWriteBehindQueue(q);
  }
}

// Seed suite: every method invoked once, no constrained object states.
test seedC1 {
  var qs: WriteBehindQueues = new WriteBehindQueues;
  var cq: CoalescedWriteBehindQueue = qs.createCoalescedWriteBehindQueue();
  cq.clear();
  var e1: DelayedEntry = new DelayedEntry;
  e1.setValue(1);
  var v1: int = e1.getValue();
  var e2: DelayedEntry = new DelayedEntry;
  var e0: DelayedEntry = new DelayedEntry;
  cq.addFirst(e1);
  cq.addLast(e2);
  cq.addLast(e0);
  var p1: DelayedEntry = cq.peekFirst();
  var r1: DelayedEntry = cq.removeFirst();
  var n1: int = cq.size();
  var b1: bool = cq.contains(1);
  var sq: SynchronizedWriteBehindQueue = qs.createSafeWriteBehindQueue(cq);
  sq.clear();
  var e3: DelayedEntry = new DelayedEntry;
  var e4: DelayedEntry = new DelayedEntry;
  var e5: DelayedEntry = new DelayedEntry;
  sq.addFirst(e3);
  sq.addLast(e4);
  sq.offer(e5);
  var p2: DelayedEntry = sq.peekFirst();
  var r2: DelayedEntry = sq.removeFirst();
  var r3: DelayedEntry = sq.poll();
  var n2: int = sq.size();
  var b2: bool = sq.isEmpty();
  var b3: bool = sq.contains(0);
  var tgt: CoalescedWriteBehindQueue = qs.createCoalescedWriteBehindQueue();
  sq.drainTo(tgt);
  var srcq: CoalescedWriteBehindQueue = qs.createCoalescedWriteBehindQueue();
  var e6: DelayedEntry = new DelayedEntry;
  var e7: DelayedEntry = new DelayedEntry;
  srcq.addFirst(e6);
  srcq.addFirst(e7);
  sq.addAll(srcq);
  var gq: CoalescedWriteBehindQueue = sq.getQueue();
  sq.addFirst(new DelayedEntry);
}
)";

CorpusEntry narada::corpusC1() {
  CorpusEntry Entry;
  Entry.Id = "C1";
  Entry.Benchmark = "hazelcast";
  Entry.Version = "3.3.2";
  Entry.ClassName = "SynchronizedWriteBehindQueue";
  Entry.Description =
      "wrapper synchronizes on itself (mutex = this) instead of the wrapped "
      "queue; wrappers sharing one backing queue race on it";
  Entry.Source = C1Source;
  Entry.SeedNames = {"seedC1"};
  return Entry;
}
