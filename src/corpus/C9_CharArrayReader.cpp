//===- corpus/C9_CharArrayReader.cpp - classpath C9 ----------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Model of GNU Classpath 0.99's java.io.CharArrayReader.  Defect structure
// preserved: read/skip/resetReader synchronize on the reader, but mark()
// and ready() touch pos/markedPos without the lock — the two races the
// paper reports for this class.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace narada;

static const char *C9Source = R"(
// classpath CharArrayReader model (C9).

class CharArrayReader {
  field buf: IntArray;
  field pos: int;
  field markedPos: int;
  field count: int;
  field closed: bool;

  method init(b: IntArray) {
    this.buf = b;
    this.count = b.length();
  }

  method read(): int synchronized {
    if (this.closed) { return 0 - 1; }
    if (this.pos >= this.count) { return 0 - 1; }
    var c: int = this.buf.get(this.pos);
    this.pos = this.pos + 1;
    return c;
  }

  method skip(n: int): int synchronized {
    if (this.closed || n <= 0) { return 0; }
    var remaining: int = this.count - this.pos;
    var actual: int = n;
    if (actual > remaining) { actual = remaining; }
    this.pos = this.pos + actual;
    return actual;
  }

  // Unsynchronized: reads pos and writes markedPos with no lock.
  method mark() { this.markedPos = this.pos; }

  // Unsynchronized position probe.
  method ready(): bool {
    return !this.closed && this.pos < this.count;
  }

  method resetReader() synchronized {
    this.pos = this.markedPos;
  }

  method available(): int synchronized {
    return this.count - this.pos;
  }

  method close() synchronized {
    this.closed = true;
  }
}

test seedC9 {
  var data: IntArray = new IntArray(4);
  data.set(0, 104);
  data.set(1, 105);
  data.set(2, 33);
  data.set(3, 10);
  var r: CharArrayReader = new CharArrayReader(data);
  var c1: int = r.read();
  r.mark();
  var skipped: int = r.skip(1);
  var rd: bool = r.ready();
  r.resetReader();
  var av: int = r.available();
  r.close();
}
)";

CorpusEntry narada::corpusC9() {
  CorpusEntry Entry;
  Entry.Id = "C9";
  Entry.Benchmark = "classpath";
  Entry.Version = "0.99";
  Entry.ClassName = "CharArrayReader";
  Entry.Description =
      "mark()/ready() touch pos and markedPos without the reader lock the "
      "other methods hold";
  Entry.Source = C9Source;
  Entry.SeedNames = {"seedC9"};
  return Entry;
}
