//===- corpus/C3_CharArrayWriter.cpp - openjdk C3 ------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Model of openjdk 1.7's java.io.CharArrayWriter.  Defect structure
// preserved: the write/append/toCharArray family synchronizes on the
// writer, but reset() (and our size probes) touch `count` without any
// lock — reset() in the real class is famously unsynchronized.  writeTo
// additionally mutates a *target* writer's state under only the source's
// lock.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace narada;

static const char *C3Source = R"(
// openjdk CharArrayWriter model (C3).

class CharArrayWriter {
  field buf: IntArray;
  field count: int;

  method init() { this.buf = new IntArray(16); }

  method ensureCapacity(needed: int) synchronized {
    if (needed <= this.buf.length()) { return; }
    var bigger: IntArray = new IntArray(needed * 2);
    var i: int = 0;
    while (i < this.count) {
      bigger.set(i, this.buf.get(i));
      i = i + 1;
    }
    this.buf = bigger;
  }

  method writeChar(c: int) synchronized {
    this.ensureCapacity(this.count + 1);
    this.buf.set(this.count, c);
    this.count = this.count + 1;
  }

  method writeChars(data: IntArray, off: int, len: int) synchronized {
    if (off < 0 || len < 0 || off + len > data.length()) { return; }
    this.ensureCapacity(this.count + len);
    var i: int = 0;
    while (i < len) {
      this.buf.set(this.count + i, data.get(off + i));
      i = i + 1;
    }
    this.count = this.count + len;
  }

  method appendChar(c: int) synchronized { this.writeChar(c); }

  // Writes this writer's contents into another writer.  Only *this* is
  // locked: the target's state is updated under a foreign lock.
  method writeTo(target: CharArrayWriter) synchronized {
    var i: int = 0;
    while (i < this.count) {
      target.writeChar(this.buf.get(i));
      i = i + 1;
    }
  }

  method toCharArray(): IntArray synchronized {
    var copy: IntArray = new IntArray(this.count);
    var i: int = 0;
    while (i < this.count) {
      copy.set(i, this.buf.get(i));
      i = i + 1;
    }
    return copy;
  }

  method size(): int synchronized { return this.count; }

  // The real CharArrayWriter.reset() is NOT synchronized.
  method reset() { this.count = 0; }

  // Unsynchronized capacity probe.
  method capacity(): int { return this.buf.length(); }

  // Unsynchronized emptiness probe.
  method isEmpty(): bool { return this.count == 0; }

  method flush() { }
  method close() { }
}

test seedC3 {
  var w: CharArrayWriter = new CharArrayWriter();
  w.writeChar(65);
  var data: IntArray = new IntArray(4);
  data.set(0, 66);
  data.set(1, 67);
  w.writeChars(data, 0, 2);
  w.appendChar(68);
  var target: CharArrayWriter = new CharArrayWriter();
  w.writeTo(target);
  var copy: IntArray = w.toCharArray();
  var n: int = w.size();
  var cap: int = w.capacity();
  w.ensureCapacity(8);
  var em: bool = w.isEmpty();
  w.flush();
  w.close();
  w.reset();
}
)";

CorpusEntry narada::corpusC3() {
  CorpusEntry Entry;
  Entry.Id = "C3";
  Entry.Benchmark = "openjdk";
  Entry.Version = "1.7";
  Entry.ClassName = "CharArrayWriter";
  Entry.Description =
      "write family is synchronized but reset()/capacity() touch the "
      "buffer state with no lock; writeTo mutates the target under the "
      "source's lock";
  Entry.Source = C3Source;
  Entry.SeedNames = {"seedC3"};
  return Entry;
}
