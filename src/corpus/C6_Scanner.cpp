//===- corpus/C6_Scanner.cpp - hsqldb C6 ---------------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Model of hsqldb 2.3.2's org.hsqldb.Scanner, the SQL tokenizer and the
// paper's largest class.  Defect structure preserved: the scanner is
// entirely unsynchronized, and reset() writes a stack of fields back to
// constants — the source of the paper's 62 *benign* races ("due to a reset
// method which resets a number of fields to constant values"), while the
// position-advancing scan methods race harmfully.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace narada;

static const char *C6Source = R"(
// hsqldb Scanner model (C6).  Token types: 0 none, 1 number, 2 identifier,
// 3 operator, 4 whitespace, 5 comment, 9 error.

class Scanner {
  field source: IntArray;
  field pos: int;
  field limit: int;
  field tokenType: int;
  field tokenStart: int;
  field tokenLength: int;
  field tokenValue: int;
  field lineNumber: int;
  field pushedBack: bool;
  field errorCount: int;

  method init() {
    this.source = new IntArray(0);
  }

  // Resets every scalar field to a constant and installs a new buffer.
  // Unsynchronized: racing resets write identical constants (benign);
  // racing against scans corrupts positions (harmful).
  method reset(src: IntArray) {
    this.source = src;
    this.pos = 0;
    this.limit = src.length();
    this.tokenType = 0;
    this.tokenStart = 0;
    this.tokenLength = 0;
    this.tokenValue = 0;
    this.lineNumber = 1;
    this.pushedBack = false;
    this.errorCount = 0;
  }

  method isDigitChar(c: int): bool { return c >= 48 && c <= 57; }

  method isLetterChar(c: int): bool {
    if (c >= 65 && c <= 90) { return true; }
    return c >= 97 && c <= 122;
  }

  method atEnd(): bool { return this.pos >= this.limit; }

  method peekChar(): int {
    if (this.pos >= this.limit) { return 0 - 1; }
    return this.source.get(this.pos);
  }

  method readChar(): int {
    if (this.pos >= this.limit) { return 0 - 1; }
    var c: int = this.source.get(this.pos);
    this.pos = this.pos + 1;
    if (c == 10) { this.lineNumber = this.lineNumber + 1; }
    return c;
  }

  method pushBack() {
    if (this.pos > 0) {
      this.pos = this.pos - 1;
      this.pushedBack = true;
    }
  }

  method scanWhitespace() {
    var c: int = this.peekChar();
    while (c == 32 || c == 9 || c == 10 || c == 13) {
      var eaten: int = this.readChar();
      c = this.peekChar();
    }
  }

  method scanNumber() {
    this.tokenStart = this.pos;
    this.tokenValue = 0;
    var c: int = this.peekChar();
    while (this.isDigitChar(c)) {
      this.tokenValue = this.tokenValue * 10 + (c - 48);
      var eaten: int = this.readChar();
      c = this.peekChar();
    }
    this.tokenLength = this.pos - this.tokenStart;
    if (this.tokenLength > 0) {
      this.tokenType = 1;
    } else {
      this.tokenType = 9;
      this.errorCount = this.errorCount + 1;
    }
  }

  method scanIdentifier() {
    this.tokenStart = this.pos;
    var c: int = this.peekChar();
    while (this.isLetterChar(c) || this.isDigitChar(c)) {
      var eaten: int = this.readChar();
      c = this.peekChar();
    }
    this.tokenLength = this.pos - this.tokenStart;
    if (this.tokenLength > 0) {
      this.tokenType = 2;
    } else {
      this.tokenType = 9;
      this.errorCount = this.errorCount + 1;
    }
  }

  method scanOperator() {
    this.tokenStart = this.pos;
    var c: int = this.peekChar();
    if (c == 43 || c == 45 || c == 42 || c == 47 || c == 61 || c == 60 ||
        c == 62) {
      var eaten: int = this.readChar();
      this.tokenType = 3;
      this.tokenLength = 1;
      this.tokenValue = c;
    } else {
      this.tokenType = 9;
      this.tokenLength = 0;
      this.errorCount = this.errorCount + 1;
    }
  }

  method scanComment() {
    // "--" to end of line.
    if (this.peekChar() != 45) { return; }
    this.tokenStart = this.pos;
    var first: int = this.readChar();
    if (this.peekChar() != 45) {
      this.pushBack();
      return;
    }
    var c: int = this.peekChar();
    while (c != 10 && c >= 0) {
      var eaten: int = this.readChar();
      c = this.peekChar();
    }
    this.tokenType = 5;
    this.tokenLength = this.pos - this.tokenStart;
  }

  method scanNext() {
    this.scanWhitespace();
    if (this.atEnd()) {
      this.tokenType = 0;
      this.tokenLength = 0;
      return;
    }
    var c: int = this.peekChar();
    if (this.isDigitChar(c)) {
      this.scanNumber();
      return;
    }
    if (this.isLetterChar(c)) {
      this.scanIdentifier();
      return;
    }
    if (c == 45 && this.pos + 1 < this.limit &&
        this.source.get(this.pos + 1) == 45) {
      this.scanComment();
      return;
    }
    this.scanOperator();
  }

  method getTokenType(): int { return this.tokenType; }
  method getTokenValue(): int { return this.tokenValue; }
  method getTokenStart(): int { return this.tokenStart; }
  method getTokenLength(): int { return this.tokenLength; }
  method getPos(): int { return this.pos; }

  method setPos(p: int) {
    if (p >= 0 && p <= this.limit) { this.pos = p; }
  }

  method getLineNumber(): int { return this.lineNumber; }

  method hasMoreTokens(): bool {
    var save: int = this.pos;
    this.scanWhitespace();
    var more: bool = !this.atEnd();
    this.pos = save;
    return more;
  }

  method countTokens(): int {
    var save: int = this.pos;
    var saveType: int = this.tokenType;
    this.pos = 0;
    var n: int = 0;
    this.scanNext();
    while (this.tokenType != 0 && this.tokenType != 9) {
      n = n + 1;
      this.scanNext();
    }
    this.pos = save;
    this.tokenType = saveType;
    return n;
  }

  method skipTokens(n: int) {
    var i: int = 0;
    while (i < n) {
      this.scanNext();
      i = i + 1;
    }
  }

  method getErrorCount(): int { return this.errorCount; }

  method clearErrors() { this.errorCount = 0; }
}

test seedC6 {
  var sc: Scanner = new Scanner();
  var src: IntArray = new IntArray(12);
  // "12 ab -- c\n+"
  src.set(0, 49);
  src.set(1, 50);
  src.set(2, 32);
  src.set(3, 97);
  src.set(4, 98);
  src.set(5, 32);
  src.set(6, 45);
  src.set(7, 45);
  src.set(8, 32);
  src.set(9, 99);
  src.set(10, 10);
  src.set(11, 43);
  sc.reset(src);
  var d: bool = sc.isDigitChar(49);
  var l: bool = sc.isLetterChar(97);
  var e: bool = sc.atEnd();
  var pc: int = sc.peekChar();
  var rc: int = sc.readChar();
  sc.pushBack();
  sc.scanWhitespace();
  sc.scanNumber();
  sc.scanIdentifier();
  sc.scanOperator();
  sc.scanComment();
  sc.scanNext();
  var tt: int = sc.getTokenType();
  var tv: int = sc.getTokenValue();
  var ts: int = sc.getTokenStart();
  var tl: int = sc.getTokenLength();
  var p: int = sc.getPos();
  sc.setPos(0);
  var ln: int = sc.getLineNumber();
  var hm: bool = sc.hasMoreTokens();
  var ct: int = sc.countTokens();
  sc.skipTokens(1);
  var ec: int = sc.getErrorCount();
  sc.clearErrors();
}
)";

CorpusEntry narada::corpusC6() {
  CorpusEntry Entry;
  Entry.Id = "C6";
  Entry.Benchmark = "hsqldb";
  Entry.Version = "2.3.2";
  Entry.ClassName = "Scanner";
  Entry.Description =
      "fully unsynchronized tokenizer; reset() writes constants (benign "
      "races) while scan methods advance positions (harmful races)";
  Entry.Source = C6Source;
  Entry.SeedNames = {"seedC6"};
  return Entry;
}
