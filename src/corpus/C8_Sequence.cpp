//===- corpus/C8_Sequence.cpp - h2 C8 ------------------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Model of h2 1.4.182's org.h2.schema.Sequence.  Defect structure
// preserved: value generation (getNext/flush) is synchronized, but the
// current-value and option getters read the same fields with no lock — the
// real h2 race on sequence state observed by concurrent readers.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace narada;

static const char *C8Source = R"(
// h2 Sequence model (C8).

class Sequence {
  field value: int;
  field valueWithMargin: int;
  field increment: int;
  field cacheSize: int;
  field minValue: int;
  field maxValue: int;
  field cycle: bool;

  method init(start: int, inc: int) {
    this.value = start;
    this.valueWithMargin = start;
    this.increment = inc;
    if (this.increment == 0) { this.increment = 1; }
    this.cacheSize = 32;
    this.minValue = 0;
    this.maxValue = 1000000;
  }

  method getNext(): int synchronized {
    var result: int = this.value;
    this.value = this.value + this.increment;
    if (this.value > this.maxValue) {
      if (this.cycle) {
        this.value = this.minValue;
      } else {
        this.value = this.maxValue;
      }
    }
    if (this.value > this.valueWithMargin) {
      this.valueWithMargin = this.value + this.increment * this.cacheSize;
    }
    return result;
  }

  method flush() synchronized {
    this.valueWithMargin = this.value;
  }

  // The h2 defect: current value read without the sequence lock.
  method getCurrentValue(): int { return this.value - this.increment; }

  method setIncrement(inc: int) synchronized {
    if (inc != 0) { this.increment = inc; }
  }

  method getIncrement(): int { return this.increment; }

  method setMinValue(v: int) synchronized { this.minValue = v; }
  method getMinValue(): int { return this.minValue; }

  method setMaxValue(v: int) synchronized { this.maxValue = v; }
  method getMaxValue(): int { return this.maxValue; }

  method setCycle(b: bool) synchronized { this.cycle = b; }
  method getCycle(): bool { return this.cycle; }

  method setCacheSize(n: int) synchronized {
    if (n > 0) { this.cacheSize = n; }
  }
  method getCacheSize(): int { return this.cacheSize; }

  method reset(start: int) synchronized {
    this.value = start;
    this.valueWithMargin = start;
  }

  method canGetMore(): bool {
    return this.cycle || this.value < this.maxValue;
  }

  method modify(min: int, max: int, inc: int) synchronized {
    this.minValue = min;
    this.maxValue = max;
    if (inc != 0) { this.increment = inc; }
  }

  method getValueWithMargin(): int { return this.valueWithMargin; }
}

test seedC8 {
  var seq: Sequence = new Sequence(10, 1);
  var n1: int = seq.getNext();
  seq.flush();
  var cur: int = seq.getCurrentValue();
  seq.setIncrement(2);
  var inc: int = seq.getIncrement();
  seq.setMinValue(5);
  var mn: int = seq.getMinValue();
  seq.setMaxValue(500);
  var mx: int = seq.getMaxValue();
  seq.setCycle(true);
  var cy: bool = seq.getCycle();
  seq.setCacheSize(16);
  var cs: int = seq.getCacheSize();
  seq.reset(100);
  var more: bool = seq.canGetMore();
  seq.modify(0, 2000, 3);
  var vm: int = seq.getValueWithMargin();
}
)";

CorpusEntry narada::corpusC8() {
  CorpusEntry Entry;
  Entry.Id = "C8";
  Entry.Benchmark = "h2";
  Entry.Version = "1.4.182";
  Entry.ClassName = "Sequence";
  Entry.Description =
      "synchronized value generation vs unsynchronized current-value and "
      "option getters";
  Entry.Source = C8Source;
  Entry.SeedNames = {"seedC8"};
  return Entry;
}
