//===- corpus/Corpus.cpp - The C1..C9 benchmark corpus -------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "support/StringUtils.h"

using namespace narada;

unsigned CorpusEntry::linesOfCode() const {
  unsigned Count = 0;
  for (const std::string &Line : split(Source, '\n')) {
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty() || startsWith(Trimmed, "//"))
      continue;
    ++Count;
  }
  return Count;
}

const std::vector<CorpusEntry> &narada::corpus() {
  static const std::vector<CorpusEntry> Entries = {
      corpusC1(), corpusC2(), corpusC3(), corpusC4(), corpusC5(),
      corpusC6(), corpusC7(), corpusC8(), corpusC9(),
  };
  return Entries;
}

const CorpusEntry *narada::findCorpusEntry(const std::string &IdOrClass) {
  for (const CorpusEntry &Entry : corpus())
    if (Entry.Id == IdOrClass || Entry.ClassName == IdOrClass)
      return &Entry;
  return nullptr;
}
