//===- corpus/Corpus.h - The C1..C9 benchmark corpus ------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJava models of the nine library classes the paper evaluates
/// (Table 3).  Each model preserves the class's *synchronization defect
/// structure* — which lock (if any) guards which field, which state is
/// reachable/settable from clients, which methods skip synchronization —
/// while simplifying the surrounding business logic.  That structure is
/// what determines the evaluation's shape: how many racy pairs exist,
/// whether contexts are derivable, and whether races manifest.  Per-class
/// commentary lives in each model's source file.
///
/// Every entry ships a sequential seed suite in the paper's style: each
/// method of the class under test invoked exactly once, with no special
/// object states.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_CORPUS_CORPUS_H
#define NARADA_CORPUS_CORPUS_H

#include <string>
#include <vector>

namespace narada {

/// One benchmark class (a row of the paper's Table 3).
struct CorpusEntry {
  std::string Id;          ///< "C1" .. "C9".
  std::string Benchmark;   ///< Originating project ("hazelcast", ...).
  std::string Version;     ///< Project version from Table 3.
  std::string ClassName;   ///< The analyzed class (Narada's focus class).
  std::string Description; ///< One-line defect summary.
  std::string Source;      ///< MiniJava program text including seeds.
  std::vector<std::string> SeedNames;

  /// Non-blank, non-comment source lines (the paper's LoC column analog).
  unsigned linesOfCode() const;
};

/// All nine entries, in paper order.
const std::vector<CorpusEntry> &corpus();

/// Finds an entry by id ("C1") or class name; nullptr if absent.
const CorpusEntry *findCorpusEntry(const std::string &IdOrClass);

// Per-class factories (one translation unit each).
CorpusEntry corpusC1();
CorpusEntry corpusC2();
CorpusEntry corpusC3();
CorpusEntry corpusC4();
CorpusEntry corpusC5();
CorpusEntry corpusC6();
CorpusEntry corpusC7();
CorpusEntry corpusC8();
CorpusEntry corpusC9();

} // namespace narada

#endif // NARADA_CORPUS_CORPUS_H
