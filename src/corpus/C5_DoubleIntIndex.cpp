//===- corpus/C5_DoubleIntIndex.cpp - hsqldb C5 --------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Model of hsqldb 2.3.2's org.hsqldb.lib.DoubleIntIndex, a sorted pair of
// int arrays.  Defect structure preserved: the mutating core is
// synchronized, but a crowd of probes (size/capacity/isSorted/...) and the
// array getters read the same state with no lock, and the getters leak the
// internal arrays outright — hence the paper's large harmful-race count for
// this class (30 of 36).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace narada;

static const char *C5Source = R"(
// hsqldb DoubleIntIndex model (C5).

class DoubleIntIndex {
  field keys: IntArray;
  field values: IntArray;
  field count: int;
  field sorted: bool;
  field sortedOnValues: bool;

  method init(capacity: int) {
    var cap: int = capacity;
    if (cap < 1) { cap = 1; }
    this.keys = new IntArray(cap);
    this.values = new IntArray(cap);
    this.sorted = true;
  }

  method ensureCapacity(needed: int) synchronized {
    if (needed <= this.keys.length()) { return; }
    var biggerKeys: IntArray = new IntArray(needed * 2);
    var biggerValues: IntArray = new IntArray(needed * 2);
    var i: int = 0;
    while (i < this.count) {
      biggerKeys.set(i, this.keys.get(i));
      biggerValues.set(i, this.values.get(i));
      i = i + 1;
    }
    this.keys = biggerKeys;
    this.values = biggerValues;
  }

  method addUnsorted(k: int, v: int) synchronized {
    this.ensureCapacity(this.count + 1);
    this.keys.set(this.count, k);
    this.values.set(this.count, v);
    this.count = this.count + 1;
    this.sorted = false;
  }

  method addSorted(k: int, v: int) synchronized {
    this.ensureCapacity(this.count + 1);
    var i: int = this.count - 1;
    while (i >= 0 && this.keys.get(i) > k) {
      this.keys.set(i + 1, this.keys.get(i));
      this.values.set(i + 1, this.values.get(i));
      i = i - 1;
    }
    this.keys.set(i + 1, k);
    this.values.set(i + 1, v);
    this.count = this.count + 1;
  }

  method setKey(index: int, k: int) synchronized {
    if (index < 0 || index >= this.count) { return; }
    this.keys.set(index, k);
    this.sorted = false;
  }

  method setValue(index: int, v: int) synchronized {
    if (index < 0 || index >= this.count) { return; }
    this.values.set(index, v);
  }

  method getKey(index: int): int synchronized {
    if (index < 0 || index >= this.count) { return 0; }
    return this.keys.get(index);
  }

  method getValue(index: int): int synchronized {
    if (index < 0 || index >= this.count) { return 0; }
    return this.values.get(index);
  }

  method findFirstEqualKeyIndex(k: int): int synchronized {
    var i: int = 0;
    while (i < this.count) {
      if (this.keys.get(i) == k) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }

  method findFirstGreaterEqualIndex(k: int): int synchronized {
    var i: int = 0;
    while (i < this.count) {
      if (this.keys.get(i) >= k) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }

  method lookup(k: int): int synchronized {
    var index: int = this.findFirstEqualKeyIndex(k);
    if (index < 0) { return 0 - 1; }
    return this.values.get(index);
  }

  method sort() synchronized {
    var i: int = 1;
    while (i < this.count) {
      var k: int = this.keys.get(i);
      var v: int = this.values.get(i);
      var j: int = i - 1;
      while (j >= 0 && this.keys.get(j) > k) {
        this.keys.set(j + 1, this.keys.get(j));
        this.values.set(j + 1, this.values.get(j));
        j = j - 1;
      }
      this.keys.set(j + 1, k);
      this.values.set(j + 1, v);
      i = i + 1;
    }
    this.sorted = true;
    this.sortedOnValues = false;
  }

  method sortOnValues() synchronized {
    var i: int = 1;
    while (i < this.count) {
      var k: int = this.keys.get(i);
      var v: int = this.values.get(i);
      var j: int = i - 1;
      while (j >= 0 && this.values.get(j) > v) {
        this.keys.set(j + 1, this.keys.get(j));
        this.values.set(j + 1, this.values.get(j));
        j = j - 1;
      }
      this.keys.set(j + 1, k);
      this.values.set(j + 1, v);
      i = i + 1;
    }
    this.sorted = false;
    this.sortedOnValues = true;
  }

  // Unsynchronized probes: racy against every synchronized mutator.
  method isSorted(): bool { return this.sorted; }
  method isSortedOnValues(): bool { return this.sortedOnValues; }
  method size(): int { return this.count; }
  method capacity(): int { return this.keys.length(); }
  method isEmpty(): bool { return this.count == 0; }

  // Leaks the internal arrays without any lock.
  method getKeysArray(): IntArray { return this.keys; }
  method getValuesArray(): IntArray { return this.values; }

  method clear() synchronized {
    this.count = 0;
    this.sorted = true;
    this.sortedOnValues = false;
  }

  method removeAt(index: int) synchronized {
    if (index < 0 || index >= this.count) { return; }
    var i: int = index;
    while (i < this.count - 1) {
      this.keys.set(i, this.keys.get(i + 1));
      this.values.set(i, this.values.get(i + 1));
      i = i + 1;
    }
    this.count = this.count - 1;
  }

  method remove(k: int) synchronized {
    var index: int = this.findFirstEqualKeyIndex(k);
    if (index >= 0) { this.removeAt(index); }
  }

  method compact() synchronized {
    var exactKeys: IntArray = new IntArray(this.count);
    var exactValues: IntArray = new IntArray(this.count);
    var i: int = 0;
    while (i < this.count) {
      exactKeys.set(i, this.keys.get(i));
      exactValues.set(i, this.values.get(i));
      i = i + 1;
    }
    this.keys = exactKeys;
    this.values = exactValues;
  }

  method copyTo(other: DoubleIntIndex) synchronized {
    var i: int = 0;
    while (i < this.count) {
      other.addUnsorted(this.keys.get(i), this.values.get(i));
      i = i + 1;
    }
  }

  method addAll(other: DoubleIntIndex) synchronized {
    var i: int = 0;
    while (i < other.count) {
      this.addUnsorted(other.keys.get(i), other.values.get(i));
      i = i + 1;
    }
  }

  method setSize(n: int) synchronized {
    if (n < 0) { return; }
    if (n > this.keys.length()) { this.ensureCapacity(n); }
    this.count = n;
  }

  method firstKey(): int synchronized { return this.getKey(0); }

  method lastKey(): int synchronized {
    return this.getKey(this.count - 1);
  }

  method sumKeys(): int synchronized {
    var total: int = 0;
    var i: int = 0;
    while (i < this.count) {
      total = total + this.keys.get(i);
      i = i + 1;
    }
    return total;
  }

  method containsKey(k: int): bool synchronized {
    return this.findFirstEqualKeyIndex(k) >= 0;
  }

  method containsValue(v: int): bool synchronized {
    var i: int = 0;
    while (i < this.count) {
      if (this.values.get(i) == v) { return true; }
      i = i + 1;
    }
    return false;
  }

  method swap(i1: int, i2: int) synchronized {
    if (i1 < 0 || i1 >= this.count || i2 < 0 || i2 >= this.count) {
      return;
    }
    var k: int = this.keys.get(i1);
    var v: int = this.values.get(i1);
    this.keys.set(i1, this.keys.get(i2));
    this.values.set(i1, this.values.get(i2));
    this.keys.set(i2, k);
    this.values.set(i2, v);
  }
}

test seedC5 {
  var index: DoubleIntIndex = new DoubleIntIndex(8);
  index.addUnsorted(5, 50);
  index.addUnsorted(2, 20);
  index.addSorted(3, 30);
  index.setKey(0, 6);
  index.setValue(0, 60);
  var k0: int = index.getKey(0);
  var v0: int = index.getValue(0);
  var f1: int = index.findFirstEqualKeyIndex(2);
  var f2: int = index.findFirstGreaterEqualIndex(3);
  var lu: int = index.lookup(2);
  index.sort();
  index.sortOnValues();
  var s1: bool = index.isSorted();
  var s2: bool = index.isSortedOnValues();
  var n: int = index.size();
  var cap: int = index.capacity();
  var em: bool = index.isEmpty();
  var ka: IntArray = index.getKeysArray();
  var va: IntArray = index.getValuesArray();
  index.removeAt(0);
  index.remove(2);
  index.compact();
  var other: DoubleIntIndex = new DoubleIntIndex(4);
  index.copyTo(other);
  index.addAll(other);
  index.setSize(2);
  var fk: int = index.firstKey();
  var lk: int = index.lastKey();
  var sk: int = index.sumKeys();
  var ck: bool = index.containsKey(3);
  var cv: bool = index.containsValue(30);
  index.swap(0, 1);
  index.ensureCapacity(16);
  index.clear();
}
)";

CorpusEntry narada::corpusC5() {
  CorpusEntry Entry;
  Entry.Id = "C5";
  Entry.Benchmark = "hsqldb";
  Entry.Version = "2.3.2";
  Entry.ClassName = "DoubleIntIndex";
  Entry.Description =
      "synchronized mutators vs unsynchronized probes and array getters "
      "that leak the internal arrays";
  Entry.Source = C5Source;
  Entry.SeedNames = {"seedC5"};
  return Entry;
}
