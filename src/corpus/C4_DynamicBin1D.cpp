//===- corpus/C4_DynamicBin1D.cpp - colt C4 ------------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Model of colt 1.2.0's hep.aida.bin.DynamicBin1D.  Defect structure
// preserved: almost every method is synchronized on the receiver and the
// sample buffer is allocated internally with *no client-reachable setter*,
// so most racy pairs admit no context — the paper reports 26 pairs but only
// 4 detected races, because "the necessary fields to set a suitable context
// can never be influenced from clients".  The few real races come from the
// handful of unsynchronized probes (size/isEmpty/isSorted/isFixedOrder) and
// from addAllOf reading *another* bin without locking it.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace narada;

static const char *C4Source = R"(
// colt DynamicBin1D model (C4).

class DynamicBin1D {
  field elements: IntArray;
  field count: int;
  field fixedOrder: bool;
  field sorted: bool;

  method init() {
    this.elements = new IntArray(8);
    this.sorted = true;
  }

  method ensureCapacity(needed: int) synchronized {
    if (needed <= this.elements.length()) { return; }
    var bigger: IntArray = new IntArray(needed * 2);
    var i: int = 0;
    while (i < this.count) {
      bigger.set(i, this.elements.get(i));
      i = i + 1;
    }
    this.elements = bigger;
  }

  method add(v: int) synchronized {
    this.ensureCapacity(this.count + 1);
    this.elements.set(this.count, v);
    this.count = this.count + 1;
    this.sorted = false;
  }

  // Reads the other bin's internals while holding only this bin's lock.
  method addAllOf(other: DynamicBin1D) synchronized {
    var i: int = 0;
    while (i < other.count) {
      this.ensureCapacity(this.count + 1);
      this.elements.set(this.count, other.elements.get(i));
      this.count = this.count + 1;
      i = i + 1;
    }
    this.sorted = false;
  }

  method addAllOfFromTo(other: DynamicBin1D, from: int, to: int)
      synchronized {
    var i: int = from;
    while (i <= to && i < other.count) {
      if (i >= 0) {
        this.ensureCapacity(this.count + 1);
        this.elements.set(this.count, other.elements.get(i));
        this.count = this.count + 1;
      }
      i = i + 1;
    }
    this.sorted = false;
  }

  method clear() synchronized {
    this.count = 0;
    this.sorted = true;
  }

  method trimToSize() synchronized {
    var exact: IntArray = new IntArray(this.count);
    var i: int = 0;
    while (i < this.count) {
      exact.set(i, this.elements.get(i));
      i = i + 1;
    }
    this.elements = exact;
  }

  method sort() synchronized {
    var i: int = 1;
    while (i < this.count) {
      var v: int = this.elements.get(i);
      var j: int = i - 1;
      while (j >= 0 && this.elements.get(j) > v) {
        this.elements.set(j + 1, this.elements.get(j));
        j = j - 1;
      }
      this.elements.set(j + 1, v);
      i = i + 1;
    }
    this.sorted = true;
  }

  // The only unsynchronized probe — one of C4's few real race sources;
  // everything else locks the receiver, so the internal buffer (which no
  // client can set) stays out of reach for test synthesis.
  method size(): int { return this.count; }

  method isSorted(): bool synchronized { return this.sorted; }
  method isFixedOrder(): bool synchronized { return this.fixedOrder; }
  method isEmpty(): bool synchronized { return this.count == 0; }

  method setFixedOrder(b: bool) synchronized { this.fixedOrder = b; }

  method min(): int synchronized {
    if (this.count == 0) { return 0; }
    var best: int = this.elements.get(0);
    var i: int = 1;
    while (i < this.count) {
      if (this.elements.get(i) < best) { best = this.elements.get(i); }
      i = i + 1;
    }
    return best;
  }

  method max(): int synchronized {
    if (this.count == 0) { return 0; }
    var best: int = this.elements.get(0);
    var i: int = 1;
    while (i < this.count) {
      if (this.elements.get(i) > best) { best = this.elements.get(i); }
      i = i + 1;
    }
    return best;
  }

  method sum(): int synchronized {
    var total: int = 0;
    var i: int = 0;
    while (i < this.count) {
      total = total + this.elements.get(i);
      i = i + 1;
    }
    return total;
  }

  method sumOfSquares(): int synchronized {
    var total: int = 0;
    var i: int = 0;
    while (i < this.count) {
      var v: int = this.elements.get(i);
      total = total + v * v;
      i = i + 1;
    }
    return total;
  }

  method mean(): int synchronized {
    if (this.count == 0) { return 0; }
    return this.sum() / this.count;
  }

  method moment2(): int synchronized {
    if (this.count == 0) { return 0; }
    return this.sumOfSquares() / this.count;
  }

  method variance(): int synchronized {
    var m: int = this.mean();
    return this.moment2() - m * m;
  }

  method sampleVariance(): int synchronized {
    if (this.count < 2) { return 0; }
    var m: int = this.mean();
    var squares: int = this.sumOfSquares();
    return (squares - this.count * m * m) / (this.count - 1);
  }

  method standardError(): int synchronized {
    if (this.count == 0) { return 0; }
    return this.sampleVariance() / this.count;
  }

  method rms(): int synchronized {
    if (this.count == 0) { return 0; }
    return this.sumOfSquares() / this.count;
  }

  method median(): int synchronized {
    if (this.count == 0) { return 0; }
    this.sort();
    return this.elements.get(this.count / 2);
  }

  method quantile(k: int): int synchronized {
    if (this.count == 0) { return 0; }
    this.sort();
    var index: int = k * this.count / 100;
    if (index >= this.count) { index = this.count - 1; }
    if (index < 0) { index = 0; }
    return this.elements.get(index);
  }

  method frequency(v: int): int synchronized {
    var hits: int = 0;
    var i: int = 0;
    while (i < this.count) {
      if (this.elements.get(i) == v) { hits = hits + 1; }
      i = i + 1;
    }
    return hits;
  }

  method contains(v: int): bool synchronized {
    return this.frequency(v) > 0;
  }

  method indexOf(v: int): int synchronized {
    var i: int = 0;
    while (i < this.count) {
      if (this.elements.get(i) == v) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }

  method getElement(i: int): int synchronized {
    if (i < 0 || i >= this.count) { return 0; }
    return this.elements.get(i);
  }

  method elementsCopy(): IntArray synchronized {
    var copy: IntArray = new IntArray(this.count);
    var i: int = 0;
    while (i < this.count) {
      copy.set(i, this.elements.get(i));
      i = i + 1;
    }
    return copy;
  }

  method removeAllOf(other: DynamicBin1D) synchronized {
    var i: int = 0;
    while (i < other.count) {
      var victim: int = other.elements.get(i);
      var index: int = this.indexOf(victim);
      if (index >= 0) {
        var j: int = index;
        while (j < this.count - 1) {
          this.elements.set(j, this.elements.get(j + 1));
          j = j + 1;
        }
        this.count = this.count - 1;
      }
      i = i + 1;
    }
  }

  method range(): int synchronized { return this.max() - this.min(); }

  method midRange(): int synchronized {
    return (this.max() + this.min()) / 2;
  }

  method firstElement(): int synchronized { return this.getElement(0); }

  method lastElement(): int synchronized {
    return this.getElement(this.count - 1);
  }
}

test seedC4 {
  var bin: DynamicBin1D = new DynamicBin1D();
  bin.add(5);
  bin.add(2);
  bin.add(9);
  var other: DynamicBin1D = new DynamicBin1D();
  other.add(4);
  other.add(5);
  bin.addAllOf(other);
  bin.addAllOfFromTo(other, 0, 1);
  var n: int = bin.size();
  var e: bool = bin.isEmpty();
  var s: bool = bin.isSorted();
  var f: bool = bin.isFixedOrder();
  bin.setFixedOrder(true);
  var mn: int = bin.min();
  var mx: int = bin.max();
  var sm: int = bin.sum();
  var sq: int = bin.sumOfSquares();
  var me: int = bin.mean();
  var m2: int = bin.moment2();
  var va: int = bin.variance();
  var sv: int = bin.sampleVariance();
  var se: int = bin.standardError();
  var rm: int = bin.rms();
  var md: int = bin.median();
  var qu: int = bin.quantile(50);
  var fr: int = bin.frequency(5);
  var co: bool = bin.contains(5);
  var ix: int = bin.indexOf(9);
  var ge: int = bin.getElement(0);
  var copy: IntArray = bin.elementsCopy();
  bin.removeAllOf(other);
  var ra: int = bin.range();
  var mr: int = bin.midRange();
  var fe: int = bin.firstElement();
  var le: int = bin.lastElement();
  bin.sort();
  bin.trimToSize();
  bin.ensureCapacity(4);
  bin.clear();
}
)";

CorpusEntry narada::corpusC4() {
  CorpusEntry Entry;
  Entry.Id = "C4";
  Entry.Benchmark = "colt";
  Entry.Version = "1.2.0";
  Entry.ClassName = "DynamicBin1D";
  Entry.Description =
      "internal sample buffer has no client-reachable setter: most racy "
      "pairs admit no context (prefix fallback), few races manifest";
  Entry.Source = C4Source;
  Entry.SeedNames = {"seedC4"};
  return Entry;
}
