//===- staticrace/StaticSummary.cpp - Summary domain helpers -------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "staticrace/StaticSummary.h"

#include "support/StringUtils.h"

using namespace narada;
using namespace narada::staticrace;

const char *staticrace::verdictName(PairVerdict V) {
  switch (V) {
  case PairVerdict::MustGuarded:
    return "MustGuarded";
  case PairVerdict::MayRace:
    return "MayRace";
  case PairVerdict::MustRace:
    return "MustRace";
  case PairVerdict::Unknown:
    break;
  }
  return "Unknown";
}

const char *staticrace::controllabilityName(Controllability C) {
  switch (C) {
  case Controllability::Param:
    return "param";
  case Controllability::NotParam:
    return "internal";
  case Controllability::Unknown:
    break;
  }
  return "unknown";
}

static std::string lockSetString(const StaticAccess &A) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Path, Count] : A.MustLocks) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Path.str();
    if (Count > 1)
      Out += formatString("*%u", Count);
  }
  if (A.UnknownLocks) {
    if (!First)
      Out += ", ";
    Out += formatString("?*%u", A.UnknownLocks);
  }
  Out += "}";
  return Out;
}

std::string StaticAccess::fingerprint() const {
  return formatString("%s|%s.%s|%s|%s|%s|%s", Label.c_str(),
                      FieldClassName.c_str(), Field.c_str(),
                      IsWrite ? "W" : "R", controllabilityName(Ctrl),
                      BasePath ? BasePath->str().c_str() : "-",
                      lockSetString(*this).c_str());
}

std::string StaticAccess::str() const {
  return formatString("%s %s.%s %s base=%s(%s) locks=%s", Label.c_str(),
                      FieldClassName.c_str(), Field.c_str(),
                      IsWrite ? "write" : "read",
                      BasePath ? BasePath->str().c_str() : "-",
                      controllabilityName(Ctrl), lockSetString(*this).c_str());
}
