//===- staticrace/StaticSummary.h - Per-method static summaries -*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The summary domain of the static race pre-analysis (docs/STATIC.md): for
/// every library method, the set of heap accesses it may perform — each with
/// the must-lockset held at the access and the controllability of the
/// accessed object's path — merged compositionally across calls.  The
/// summaries mirror the dynamic stage-1 facts of analysis/AccessAnalysis
/// (C/NC controllability, L/U protection, entry-rooted access paths) so the
/// PairClassifier can relate a static access instance to a dynamic
/// AccessRecord by (method symbol, static label).
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_STATICRACE_STATICSUMMARY_H
#define NARADA_STATICRACE_STATICSUMMARY_H

#include "analysis/AccessPath.h"
#include "staticrace/Verdict.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace narada {
namespace staticrace {

/// Whether the base object of a static access is reachable from the
/// enclosing invocation's parameters — the static analogue of the dynamic
/// C/NC flag.  Param carries an entry-rooted path; NotParam is *provably*
/// library-internal (allocated below the entry); Unknown is everything the
/// abstraction lost.
enum class Controllability {
  Param,    ///< Reached from the receiver/an argument via BasePath.
  NotParam, ///< Freshly allocated below the entry method.
  Unknown,  ///< The analysis could not track the base.
};

const char *controllabilityName(Controllability C);

/// One heap access a method may perform (directly or through callees),
/// abstracted to the entry method's frame.
struct StaticAccess {
  /// "Class.method:pc" of the accessing instruction — the innermost site,
  /// matching TraceEvent::staticLabel() and AccessRecord::Label.
  std::string Label;
  std::string FieldClassName; ///< Static class declaring the field.
  std::string Field;          ///< Field name, "[]" for array elements.
  bool IsWrite = false;
  bool IsElem = false;

  Controllability Ctrl = Controllability::Unknown;
  /// Entry-rooted path of the base object; set iff Ctrl == Param.
  std::optional<AccessPath> BasePath;

  /// Monitors provably held on *every* path reaching the access, as
  /// entry-rooted paths with re-entrancy counts.  A lower bound: extra
  /// monitors may be held at run time, never fewer.
  std::map<AccessPath, unsigned> MustLocks;
  /// Count of must-held monitors whose identity the analysis lost (the
  /// locked value was not path-trackable).  Zero means MustLocks is the
  /// complete identity-resolved must-lockset.
  unsigned UnknownLocks = 0;

  /// Stable identity for deduplication within one method summary.
  std::string fingerprint() const;
  /// "label field W base {locks}" one-liner for tests and triage output.
  std::string str() const;
};

/// Everything the pre-analysis knows about one method.
struct MethodSummary {
  std::string Symbol; ///< "Class.method" (methodSymbol()).
  /// Accesses the method may perform, own and inherited from callees
  /// (callee instances keep their own Label, rebased to this frame).
  std::vector<StaticAccess> Accesses;
  /// Fields this method may store to, transitively ("[]" for elements;
  /// "*" when the method spawns a thread and anything may change).
  std::set<std::string> StoredFields;
  /// True when the access list may be missing instances: a size cap was
  /// hit, monitor operations did not balance, recursion exceeded the
  /// inlining depth, or an incomplete callee was inlined.  A classifier
  /// must not derive a MustGuarded (pruning) verdict from an incomplete
  /// summary.
  bool Incomplete = false;
};

/// Summaries for every method of a module, keyed by method symbol.
struct ModuleSummary {
  std::map<std::string, MethodSummary> Methods;

  const MethodSummary *find(const std::string &Symbol) const {
    auto It = Methods.find(Symbol);
    return It == Methods.end() ? nullptr : &It->second;
  }
};

} // namespace staticrace
} // namespace narada

#endif // NARADA_STATICRACE_STATICSUMMARY_H
