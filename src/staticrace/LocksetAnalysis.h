//===- staticrace/LocksetAnalysis.h - Must-lockset abstract interp *- C++ -*-=//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-sensitive abstract interpretation over the lowered IR that
/// computes the per-method summaries of StaticSummary.h without executing
/// anything:
///
///  - register domain: Bottom < {Path(entry-rooted access path), Fresh}
///    < Unknown; loads extend paths, stores invalidate, joins meet;
///  - lock domain: a must-held multiset of entry-rooted monitor paths plus
///    a count of unknown-identity monitors; joins intersect (take minimum
///    counts), so a monitor survives a join only when held on both edges —
///    exactly the shape a lock imbalance across branches produces;
///  - call digests: callee summaries are rebased through the actual
///    argument values at each call site over a bounded number of rounds,
///    adding the caller's own must-locks, while accesses keep their
///    innermost static label so they line up with dynamic AccessRecords.
///
/// Soundness contract (held by tests/staticrace_test.cpp and the CI
/// prefilter sweep): a reported must-lock is held on *every* concrete
/// execution reaching the access, and a summary without Incomplete lists
/// *every* access the method can perform.  See docs/STATIC.md.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_STATICRACE_LOCKSETANALYSIS_H
#define NARADA_STATICRACE_LOCKSETANALYSIS_H

#include "staticrace/StaticSummary.h"

namespace narada {

class IRModule;
class IRFunction;

namespace staticrace {

/// Knobs bounding the abstraction; the defaults comfortably cover the
/// C1–C9 corpus.
struct SummaryOptions {
  /// Maximum access-path depth tracked; deeper paths abstract to Unknown.
  unsigned MaxPathDepth = 8;
  /// Monitor re-entrancy counts saturate here (a lower bound stays sound).
  unsigned MaxLockCount = 4;
  /// Rounds of call-digest composition; recursion deeper than this marks
  /// the affected summaries Incomplete.
  unsigned MaxInlineRounds = 8;
  /// Cap on accesses per method summary; overflow marks it Incomplete.
  unsigned MaxAccessesPerMethod = 512;
};

/// Summarizes every Kind::Method function of \p M.  Bumps the
/// "staticrace.methods_summarized" counter.
ModuleSummary summarizeModule(const IRModule &M,
                              const SummaryOptions &Options = {});

/// Summarizes one function in isolation (no call composition beyond
/// built-ins); exposed for unit tests over hand-built IR.
MethodSummary summarizeFunctionIntra(const IRFunction &F,
                                     const SummaryOptions &Options = {});

} // namespace staticrace
} // namespace narada

#endif // NARADA_STATICRACE_LOCKSETANALYSIS_H
