//===- staticrace/LocksetAnalysis.h - Must-lockset abstract interp *- C++ -*-=//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-sensitive abstract interpretation over the lowered IR that
/// computes the per-method summaries of StaticSummary.h without executing
/// anything:
///
///  - register domain: Bottom < {Path(entry-rooted access path), Fresh}
///    < Unknown; loads extend paths, stores invalidate, joins meet;
///  - lock domain: a must-held multiset of entry-rooted monitor paths plus
///    a count of unknown-identity monitors; joins intersect (take minimum
///    counts), so a monitor survives a join only when held on both edges —
///    exactly the shape a lock imbalance across branches produces;
///  - call digests: callee summaries are rebased through the actual
///    argument values at each call site over a bounded number of rounds,
///    adding the caller's own must-locks, while accesses keep their
///    innermost static label so they line up with dynamic AccessRecords.
///
/// Soundness contract (held by tests/staticrace_test.cpp and the CI
/// prefilter sweep): a reported must-lock is held on *every* concrete
/// execution reaching the access, and a summary without Incomplete lists
/// *every* access the method can perform.  See docs/STATIC.md.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_STATICRACE_LOCKSETANALYSIS_H
#define NARADA_STATICRACE_LOCKSETANALYSIS_H

#include "staticrace/StaticSummary.h"

#include <cstdint>
#include <map>
#include <string>

namespace narada {

class IRModule;
class IRFunction;

namespace staticrace {

/// Knobs bounding the abstraction; the defaults comfortably cover the
/// C1–C9 corpus.
struct SummaryOptions {
  /// Maximum access-path depth tracked; deeper paths abstract to Unknown.
  unsigned MaxPathDepth = 8;
  /// Monitor re-entrancy counts saturate here (a lower bound stays sound).
  unsigned MaxLockCount = 4;
  /// Rounds of call-digest composition; recursion deeper than this marks
  /// the affected summaries Incomplete.
  unsigned MaxInlineRounds = 8;
  /// Cap on accesses per method summary; overflow marks it Incomplete.
  unsigned MaxAccessesPerMethod = 512;
};

/// Summarizes every Kind::Method function of \p M.  Bumps the
/// "staticrace.methods_summarized" counter.
ModuleSummary summarizeModule(const IRModule &M,
                              const SummaryOptions &Options = {});

/// Summarizes one function in isolation (no call composition beyond
/// built-ins); exposed for unit tests over hand-built IR.
MethodSummary summarizeFunctionIntra(const IRFunction &F,
                                     const SummaryOptions &Options = {});

//===----------------------------------------------------------------------===//
// Incremental summarization (serve/SummaryCache)
//===----------------------------------------------------------------------===//
//
// A method's summary is a pure function of its *dependence cone* — its own
// body plus the bodies of every transitively callable method — and the
// SummaryOptions.  methodConeDigests() hashes exactly that input (printed
// IR per body, FNV-1a over the sorted cone), so equal digests imply equal
// summaries and an edit to one method invalidates precisely the methods
// whose cone contains it.

/// One cached per-method summary.  Exact records that the producing run
/// reached the true least fixpoint module-wide (composition converged and
/// no method hit MaxAccessesPerMethod); only Exact entries may seed an
/// incremental run — a capped or non-converged summary depends on
/// insertion order, not just on the cone.
struct CachedSummary {
  MethodSummary Summary;
  bool Exact = false;
};

/// Abstract persistent store keyed by (method symbol, cone digest).
/// Implementations live in serve/; the analysis only reads and writes.
class SummaryStore {
public:
  virtual ~SummaryStore() = default;
  /// Returns the entry for \p Symbol at exactly \p ConeDigest, or null.
  /// The pointer stays valid until the next store() call.
  virtual const CachedSummary *lookup(const std::string &Symbol,
                                      uint64_t ConeDigest) const = 0;
  virtual void store(const std::string &Symbol, uint64_t ConeDigest,
                     CachedSummary Entry) = 0;
};

/// What an incremental run did, for cache counters and tests.
struct IncrementalStats {
  size_t Methods = 0;    ///< Methods in the module.
  size_t Hits = 0;       ///< Pinned straight from the store.
  size_t Reanalyzed = 0; ///< Analyzed and composed this run.
  bool FullRecompute = false; ///< Pins were abandoned (cap/non-convergence).
};

/// Per-method dependence-cone digests for every Kind::Method function of
/// \p M, folding in \p Options (a knob change invalidates everything).
std::map<std::string, uint64_t>
methodConeDigests(const IRModule &M, const SummaryOptions &Options = {});

/// summarizeModule with a memo: methods whose cone digest hits an Exact
/// store entry are pinned to the cached summary and only the remaining
/// methods re-run analysis and composition (consuming pinned finals).
/// Falls back to a full recompute — still through this call, still byte-
/// identical to summarizeModule — when the restricted composition hits the
/// access cap or fails to converge.  Stores every method's summary back
/// when the run was Exact.  Bumps "staticrace.methods_summarized" by the
/// number of methods actually reanalyzed.
ModuleSummary summarizeModuleIncremental(const IRModule &M,
                                         SummaryStore &Store,
                                         IncrementalStats *Stats = nullptr,
                                         const SummaryOptions &Options = {});

} // namespace staticrace
} // namespace narada

#endif // NARADA_STATICRACE_LOCKSETANALYSIS_H
