//===- staticrace/Verdict.h - Static pair verdicts --------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-way verdict the static pre-analysis attaches to a candidate
/// access pair.  Kept in its own header so synth/RacyPair.h can carry a
/// verdict without pulling in the whole summary domain.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_STATICRACE_VERDICT_H
#define NARADA_STATICRACE_VERDICT_H

namespace narada {
namespace staticrace {

/// Classification of a candidate pair against the static summaries.
enum class PairVerdict {
  /// Every execution of both access sites (under these entry methods)
  /// holds a monitor that the staged sharing forces to be one object:
  /// the pair can never manifest and is prunable.
  MustGuarded,
  /// Both sides' must-locksets are fully resolved and no held monitor can
  /// coincide under the sharing: the pair is a priority candidate.
  MayRace,
  /// The analysis could not decide (untracked base, unknown-identity
  /// lock, incomplete summary).  Never pruned.
  Unknown,
  /// Completeness counterpart to MustGuarded (certifyLabelPair): the pair
  /// is MayRace *and* both sites are performed directly by their entry
  /// methods with provably empty locksets and at least one write — under
  /// the staged sharing, nothing can serialize the accesses, so the race
  /// must be schedulable.  Only the certifier produces this verdict;
  /// classifyLabelPair never does.
  MustRace,
};

/// Stable spelling: "MustGuarded", "MayRace", "Unknown", "MustRace".
const char *verdictName(PairVerdict V);

} // namespace staticrace
} // namespace narada

#endif // NARADA_STATICRACE_VERDICT_H
