//===- staticrace/PairClassifier.h - Candidate pair verdicts ----*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies a candidate access pair against the static summaries.  The
/// collision rule mirrors locksCollideUnderSharing() in synth/PairGenerator:
/// the staged context makes the two base objects one shared instance S and
/// shares nothing else, so two monitors coincide exactly when both are
/// reached *through* S — lock = base + suffix with the same suffix on both
/// sides.
///
///  - MustGuarded: every static instance of both labels (under their entry
///    methods) holds a through-base monitor with one common suffix, and
///    both summaries are complete → the accesses are always serialized
///    under the staged sharing; the pair is prunable.
///  - MayRace: all instances have fully resolved locksets and *no* instance
///    combination can produce a colliding monitor → priority candidate.
///  - Unknown: anything the abstraction lost.
///
/// See docs/STATIC.md for the soundness argument.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_STATICRACE_PAIRCLASSIFIER_H
#define NARADA_STATICRACE_PAIRCLASSIFIER_H

#include "staticrace/StaticSummary.h"

#include <string>

namespace narada {

struct AccessRecord;

namespace staticrace {

/// Classifies the unordered pair of access sites (\p SymA, \p LabelA) and
/// (\p SymB, \p LabelB), where Sym names the *entry* method ("Class.method")
/// and Label the innermost access site ("Class.method:pc").
PairVerdict classifyLabelPair(const ModuleSummary &S, const std::string &SymA,
                              const std::string &LabelA,
                              const std::string &SymB,
                              const std::string &LabelB);

/// Classifies a pair of dynamic access records by their (entry method,
/// label) coordinates.
PairVerdict classifyRecordPair(const ModuleSummary &S, const AccessRecord &A,
                               const AccessRecord &B);

/// The must-race certification fragment (completeness counterpart to the
/// MustGuarded soundness direction, after RacerD's true-positives
/// theorem).  Returns classifyLabelPair()'s verdict, upgraded to MustRace
/// when the certificate holds:
///
///  - the base verdict is MayRace (complete summaries, controllable
///    bases, fully resolved and non-colliding locksets), and
///  - at least one instance across the pair is a write, and
///  - every instance of both labels sits directly in its entry method's
///    body (Label = "Sym:pc"), so invoking the entry method on the staged
///    shared object reaches the access, and
///  - every instance of both labels holds *no* monitor at all (empty
///    must-lockset, zero unknown locks): nothing whatsoever can serialize
///    the two accesses under any interleaving.
///
/// Under the staged two-thread harness the accesses are then both
/// reachable and permanently unordered — the race must be schedulable.
/// Never upgrades MustGuarded or Unknown, so certification can never
/// contradict the pruning direction.
PairVerdict certifyLabelPair(const ModuleSummary &S, const std::string &SymA,
                             const std::string &LabelA,
                             const std::string &SymB,
                             const std::string &LabelB);

/// Record-coordinate wrapper around certifyLabelPair().
PairVerdict certifyRecordPair(const ModuleSummary &S, const AccessRecord &A,
                              const AccessRecord &B);

/// Renders the deterministic --static-only triage listing: every candidate
/// pair of statically controllable access sites, grouped by field and
/// classified, for modules with no seed tests at all.  \p FocusClass
/// restricts entry methods to one class (empty = all).  The output is a
/// pure function of the summary (stable sort orders throughout).
std::string renderStaticTriage(const ModuleSummary &S,
                               const std::string &FocusClass);

} // namespace staticrace
} // namespace narada

#endif // NARADA_STATICRACE_PAIRCLASSIFIER_H
