//===- staticrace/LocksetAnalysis.cpp - Must-lockset abstract interp -----------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "staticrace/LocksetAnalysis.h"

#include "ir/IR.h"
#include "ir/IRPrinter.h"
#include "lang/Sema.h"
#include "obs/Metrics.h"
#include "support/Digest.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace narada;
using namespace narada::staticrace;

namespace {

/// Marker in MethodSummary::StoredFields meaning "anything may have been
/// stored" (the method spawns a thread or calls something opaque).
const char *const SmashAll = "*";

/// Abstract value of one register.  Path means: the register holds the
/// object that sat at this entry-rooted path in the heap *as of method
/// entry* — the same snapshot semantics the dynamic analysis uses, so a
/// later store never invalidates a value already loaded, only future
/// loads (checked against the smashed-field set).
struct AbsValue {
  enum class Kind { Bottom, Path, Fresh, Unknown };
  Kind K = Kind::Bottom;
  AccessPath P; ///< Valid iff K == Path.

  static AbsValue bottom() { return {}; }
  static AbsValue fresh() { return {Kind::Fresh, {}}; }
  static AbsValue unknown() { return {Kind::Unknown, {}}; }
  static AbsValue path(AccessPath P) { return {Kind::Path, std::move(P)}; }

  bool operator==(const AbsValue &O) const {
    return K == O.K && (K != Kind::Path || P == O.P);
  }
  bool operator!=(const AbsValue &O) const { return !(*this == O); }
};

AbsValue joinValue(const AbsValue &A, const AbsValue &B) {
  if (A.K == AbsValue::Kind::Bottom)
    return B;
  if (B.K == AbsValue::Kind::Bottom)
    return A;
  if (A == B)
    return A;
  return AbsValue::unknown();
}

/// Must-held monitors: entry-rooted paths with re-entrancy counts, plus a
/// count of monitors whose identity was lost.  Monitors on freshly
/// allocated objects are deliberately *not* tracked: a per-invocation
/// fresh monitor can never coincide with another invocation's monitor, so
/// it can neither prove MustGuarded nor block MayRace.
struct LockState {
  std::map<AccessPath, unsigned> Held;
  unsigned UnknownHeld = 0;

  bool operator==(const LockState &O) const {
    return UnknownHeld == O.UnknownHeld && Held == O.Held;
  }
};

LockState joinLocks(const LockState &A, const LockState &B) {
  LockState Out;
  for (const auto &[Path, Count] : A.Held) {
    auto It = B.Held.find(Path);
    if (It == B.Held.end())
      continue;
    Out.Held[Path] = std::min(Count, It->second);
  }
  Out.UnknownHeld = std::min(A.UnknownHeld, B.UnknownHeld);
  return Out;
}

/// Flow state before one instruction.
struct AbsState {
  bool Reachable = false;
  std::vector<AbsValue> Regs;
  LockState Locks;
  /// Fields stored to on some path up to this point (SmashAll = all).
  /// Loads of a smashed field no longer denote entry-heap paths.
  std::set<std::string> Smashed;

  bool operator==(const AbsState &O) const {
    return Reachable == O.Reachable && Regs == O.Regs && Locks == O.Locks &&
           Smashed == O.Smashed;
  }
};

AbsState joinState(const AbsState &A, const AbsState &B) {
  if (!A.Reachable)
    return B;
  if (!B.Reachable)
    return A;
  AbsState Out;
  Out.Reachable = true;
  Out.Regs.resize(A.Regs.size());
  for (size_t I = 0; I < A.Regs.size(); ++I)
    Out.Regs[I] = joinValue(A.Regs[I], B.Regs[I]);
  Out.Locks = joinLocks(A.Locks, B.Locks);
  Out.Smashed = A.Smashed;
  Out.Smashed.insert(B.Smashed.begin(), B.Smashed.end());
  return Out;
}

bool isSmashed(const std::set<std::string> &Smashed,
               const std::string &Field) {
  return Smashed.count(SmashAll) || Smashed.count(Field);
}

/// True when every field in \p Fields still denotes its entry-heap edge.
bool fieldsClean(const std::vector<std::string> &Fields,
                 const std::set<std::string> &Smashed) {
  if (Smashed.empty())
    return true;
  for (const std::string &F : Fields)
    if (isSmashed(Smashed, F))
      return false;
  return true;
}

bool isBuiltinArrayAccess(const Instr &I) {
  return I.Op == Opcode::Invoke && !I.Callee &&
         I.ClassName == IntArrayClassName &&
         (I.Member == "get" || I.Member == "set");
}

/// A non-builtin call site with everything needed to rebase the callee's
/// summary into the caller's frame.
struct CallSite {
  std::string CalleeSymbol;
  AbsValue Receiver;
  std::vector<AbsValue> Args;
  LockState Locks;
  std::set<std::string> Smashed;
};

/// Intra-procedural facts for one function.
struct IntraInfo {
  std::vector<StaticAccess> Accesses; ///< Own (non-inherited) accesses.
  std::vector<CallSite> CallSites;
  std::set<std::string> StoredOwn; ///< Fields this body stores directly.
  bool Incomplete = false;
};

void addLock(LockState &Locks, const AccessPath &Path, unsigned Count,
             const SummaryOptions &Options) {
  unsigned &Slot = Locks.Held[Path];
  Slot = std::min(Slot + Count, Options.MaxLockCount);
}

void addUnknownLocks(LockState &Locks, unsigned Count,
                     const SummaryOptions &Options) {
  Locks.UnknownHeld = std::min(Locks.UnknownHeld + Count,
                               Options.MaxLockCount);
}

/// Applies \p I to \p S.  Returns false when the transfer discovered a
/// monitor imbalance (release with nothing matching held).
bool transfer(AbsState &S, const Instr &I, const SummaryOptions &Options,
              const std::map<std::string, std::set<std::string>> *StoredTrans,
              bool *SawOpaque) {
  auto ValueOf = [&](Reg R) {
    return R < S.Regs.size() ? S.Regs[R] : AbsValue::unknown();
  };
  auto SetReg = [&](Reg R, AbsValue V) {
    if (R != NoReg && R < S.Regs.size())
      S.Regs[R] = std::move(V);
  };

  switch (I.Op) {
  case Opcode::ConstInt:
  case Opcode::ConstBool:
  case Opcode::ConstNull:
  case Opcode::RandInt:
  case Opcode::BinOp:
  case Opcode::UnOp:
    SetReg(I.Dst, AbsValue::unknown());
    break;
  case Opcode::Move:
    SetReg(I.Dst, ValueOf(I.A));
    break;
  case Opcode::NewObject:
    SetReg(I.Dst, AbsValue::fresh());
    break;
  case Opcode::LoadField: {
    AbsValue Base = ValueOf(I.A);
    if (Base.K == AbsValue::Kind::Path &&
        !isSmashed(S.Smashed, I.Member) &&
        Base.P.depth() + 1 <= Options.MaxPathDepth)
      SetReg(I.Dst, AbsValue::path(Base.P.appended(I.Member)));
    else
      SetReg(I.Dst, AbsValue::unknown());
    break;
  }
  case Opcode::StoreField:
    S.Smashed.insert(I.Member);
    break;
  case Opcode::Invoke:
    if (!I.Callee) {
      // Built-in (IntArray).  set mutates elements; nothing else stores.
      if (I.Member == "set")
        S.Smashed.insert("[]");
    } else if (StoredTrans) {
      auto It = StoredTrans->find(I.Callee->name());
      if (It != StoredTrans->end())
        S.Smashed.insert(It->second.begin(), It->second.end());
      else
        S.Smashed.insert(SmashAll);
    } else {
      // Intra-only mode: the callee's effects are unknown.
      S.Smashed.insert(SmashAll);
      if (SawOpaque)
        *SawOpaque = true;
    }
    SetReg(I.Dst, AbsValue::unknown());
    break;
  case Opcode::SpawnThread:
    // The spawned thread runs concurrently and may mutate anything; its
    // own accesses are not attributable to this (sequential) frame.
    S.Smashed.insert(SmashAll);
    if (SawOpaque)
      *SawOpaque = true;
    break;
  case Opcode::MonitorEnter: {
    AbsValue V = ValueOf(I.A);
    if (V.K == AbsValue::Kind::Path)
      addLock(S.Locks, V.P, 1, Options);
    else if (V.K != AbsValue::Kind::Fresh)
      addUnknownLocks(S.Locks, 1, Options);
    break;
  }
  case Opcode::MonitorExit: {
    AbsValue V = ValueOf(I.A);
    if (V.K == AbsValue::Kind::Fresh)
      break; // The matching enter recorded nothing.
    if (V.K == AbsValue::Kind::Path) {
      auto It = S.Locks.Held.find(V.P);
      if (It != S.Locks.Held.end()) {
        if (--It->second == 0)
          S.Locks.Held.erase(It);
        break;
      }
    }
    if (S.Locks.UnknownHeld > 0) {
      --S.Locks.UnknownHeld;
      break;
    }
    if (!S.Locks.Held.empty()) {
      // An untracked release may free any held monitor: drop them all
      // (shrinking a must-set is always sound).
      S.Locks.Held.clear();
      break;
    }
    return false; // Release with nothing held: imbalanced IR.
  }
  case Opcode::Jump:
  case Opcode::Branch:
  case Opcode::Ret:
    break;
  }
  return true;
}

/// Runs the worklist fixpoint over \p F and harvests own accesses and
/// call sites.  \p StoredTrans supplies transitive store effects per
/// callee symbol; null selects the intra-only mode (opaque calls).
IntraInfo
analyzeFunction(const IRFunction &F, const SummaryOptions &Options,
                const std::map<std::string, std::set<std::string>> *StoredTrans) {
  IntraInfo Out;
  const std::vector<Instr> &Body = F.instrs();
  if (Body.empty())
    return Out;

  AbsState Entry;
  Entry.Reachable = true;
  Entry.Regs.assign(F.numRegs(), AbsValue::bottom());
  for (unsigned R = 0; R < F.numParams() && R < F.numRegs(); ++R)
    Entry.Regs[R] = F.kind() == IRFunction::Kind::Method
                        ? AbsValue::path(AccessPath(static_cast<int>(R), {}))
                        : AbsValue::unknown();

  std::vector<AbsState> In(Body.size());
  In[0] = Entry;
  std::deque<uint32_t> Worklist{0};
  std::vector<bool> Queued(Body.size(), false);
  Queued[0] = true;
  bool Imbalanced = false;
  bool SawOpaque = false;

  auto Flow = [&](uint32_t To, const AbsState &S) {
    if (To >= Body.size())
      return;
    AbsState Joined = joinState(In[To], S);
    if (Joined == In[To])
      return;
    In[To] = std::move(Joined);
    if (!Queued[To]) {
      Queued[To] = true;
      Worklist.push_back(To);
    }
  };

  while (!Worklist.empty()) {
    uint32_t Pc = Worklist.front();
    Worklist.pop_front();
    Queued[Pc] = false;
    AbsState S = In[Pc];
    if (!S.Reachable)
      continue;
    const Instr &I = Body[Pc];
    if (!transfer(S, I, Options, StoredTrans, &SawOpaque))
      Imbalanced = true;
    switch (I.Op) {
    case Opcode::Jump:
      Flow(I.Target, S);
      break;
    case Opcode::Branch:
      Flow(I.Target, S);
      Flow(Pc + 1, S);
      break;
    case Opcode::Ret:
      break;
    default:
      Flow(Pc + 1, S);
      break;
    }
  }

  // Harvest: one pass over the (now fixed) instruction states.
  for (uint32_t Pc = 0; Pc < Body.size(); ++Pc) {
    const AbsState &S = In[Pc];
    if (!S.Reachable)
      continue;
    const Instr &I = Body[Pc];
    const bool IsField =
        I.Op == Opcode::LoadField || I.Op == Opcode::StoreField;
    const bool IsElem = isBuiltinArrayAccess(I);
    if (IsField || IsElem) {
      StaticAccess A;
      A.Label = formatString("%s:%u", F.name().c_str(), Pc);
      A.FieldClassName = I.ClassName;
      A.Field = IsElem ? "[]" : I.Member;
      A.IsWrite = I.Op == Opcode::StoreField || I.Member == "set";
      A.IsElem = IsElem;
      AbsValue Base =
          I.A < S.Regs.size() ? S.Regs[I.A] : AbsValue::unknown();
      if (Base.K == AbsValue::Kind::Path) {
        A.Ctrl = Controllability::Param;
        A.BasePath = Base.P;
      } else if (Base.K == AbsValue::Kind::Fresh) {
        A.Ctrl = Controllability::NotParam;
      } else {
        A.Ctrl = Controllability::Unknown;
      }
      A.MustLocks = S.Locks.Held;
      A.UnknownLocks = S.Locks.UnknownHeld;
      Out.Accesses.push_back(std::move(A));
    }
    if (I.Op == Opcode::StoreField)
      Out.StoredOwn.insert(I.Member);
    if (I.Op == Opcode::Invoke && !I.Callee && I.Member == "set")
      Out.StoredOwn.insert("[]");
    if (I.Op == Opcode::SpawnThread)
      Out.StoredOwn.insert(SmashAll);
    if (I.Op == Opcode::Invoke && I.Callee &&
        I.Callee->kind() == IRFunction::Kind::Method) {
      CallSite CS;
      CS.CalleeSymbol = I.Callee->name();
      CS.Receiver =
          I.A < S.Regs.size() ? S.Regs[I.A] : AbsValue::unknown();
      for (Reg Arg : I.Args)
        CS.Args.push_back(Arg < S.Regs.size() ? S.Regs[Arg]
                                              : AbsValue::unknown());
      CS.Locks = S.Locks;
      CS.Smashed = S.Smashed;
      Out.CallSites.push_back(std::move(CS));
    }
  }

  Out.Incomplete = Imbalanced || SawOpaque;
  return Out;
}

/// The caller-frame value a callee-rooted path's root maps to.
AbsValue actualForRoot(int Root, const CallSite &CS) {
  if (Root == 0)
    return CS.Receiver;
  if (Root >= 1 && static_cast<size_t>(Root) <= CS.Args.size())
    return CS.Args[static_cast<size_t>(Root) - 1];
  return AbsValue::unknown();
}

AccessPath concatPath(const AccessPath &Base,
                      const std::vector<std::string> &Fields) {
  AccessPath Out = Base;
  Out.Fields.insert(Out.Fields.end(), Fields.begin(), Fields.end());
  return Out;
}

/// Rebases one callee access through a call site into the caller's frame.
/// The label stays the callee's (innermost site), matching how dynamic
/// AccessRecords label accesses observed in nested callees.
StaticAccess rebaseAccess(const StaticAccess &A, const CallSite &CS,
                          const SummaryOptions &Options) {
  StaticAccess Out = A;
  Out.MustLocks.clear();
  Out.UnknownLocks = 0;
  Out.BasePath.reset();

  // Base object: a callee path is valid in the caller only when its root
  // maps to a tracked caller path and none of the callee-side fields were
  // stored to before the call (the callee re-loads them at call time).
  switch (A.Ctrl) {
  case Controllability::Param: {
    AbsValue V = actualForRoot(A.BasePath->Root, CS);
    if (V.K == AbsValue::Kind::Path &&
        fieldsClean(A.BasePath->Fields, CS.Smashed) &&
        V.P.depth() + A.BasePath->depth() <= Options.MaxPathDepth) {
      Out.Ctrl = Controllability::Param;
      Out.BasePath = concatPath(V.P, A.BasePath->Fields);
    } else if (V.K == AbsValue::Kind::Fresh && A.BasePath->Fields.empty()) {
      Out.Ctrl = Controllability::NotParam;
    } else {
      Out.Ctrl = Controllability::Unknown;
    }
    break;
  }
  case Controllability::NotParam:
    Out.Ctrl = Controllability::NotParam;
    break;
  case Controllability::Unknown:
    Out.Ctrl = Controllability::Unknown;
    break;
  }

  // Locks: rebase the callee's must-locks, then add the caller's own
  // must-locks held at the call site.
  for (const auto &[Path, Count] : A.MustLocks) {
    AbsValue V = actualForRoot(Path.Root, CS);
    if (V.K == AbsValue::Kind::Path && fieldsClean(Path.Fields, CS.Smashed) &&
        V.P.depth() + Path.depth() <= Options.MaxPathDepth) {
      unsigned &Slot = Out.MustLocks[concatPath(V.P, Path.Fields)];
      Slot = std::min(Slot + Count, Options.MaxLockCount);
    } else if (V.K == AbsValue::Kind::Fresh && Path.Fields.empty()) {
      // Monitor on a caller-fresh object: never coincides; drop.
    } else {
      Out.UnknownLocks = std::min(Out.UnknownLocks + Count,
                                  Options.MaxLockCount);
    }
  }
  for (const auto &[Path, Count] : CS.Locks.Held) {
    unsigned &Slot = Out.MustLocks[Path];
    Slot = std::min(Slot + Count, Options.MaxLockCount);
  }
  Out.UnknownLocks = std::min(Out.UnknownLocks + CS.Locks.UnknownHeld,
                              Options.MaxLockCount);
  if (A.UnknownLocks)
    Out.UnknownLocks = std::min(Out.UnknownLocks + A.UnknownLocks,
                                Options.MaxLockCount);
  return Out;
}

} // namespace

MethodSummary
staticrace::summarizeFunctionIntra(const IRFunction &F,
                                   const SummaryOptions &Options) {
  IntraInfo Info = analyzeFunction(F, Options, /*StoredTrans=*/nullptr);
  MethodSummary Out;
  Out.Symbol = F.name();
  Out.Accesses = std::move(Info.Accesses);
  Out.StoredFields = std::move(Info.StoredOwn);
  Out.Incomplete = Info.Incomplete;
  return Out;
}

namespace {

/// What one composition pass produced.  Exact certifies the true least
/// fixpoint (converged, no access cap hit) — the precondition for caching
/// the per-method summaries.  PinsViolated means a pinned (incremental)
/// pass could not finish soundly and the caller must fall back to a full
/// recompute; Summary is empty in that case.
struct ComposeOutcome {
  ModuleSummary Summary;
  bool Exact = false;
  bool PinsViolated = false;
  size_t Reanalyzed = 0; ///< Methods that ran analysis (non-pinned).
};

/// The whole-module summarization pipeline (phases A–C), optionally with
/// \p Pinned methods held fixed at cached finals.  With Pinned == null
/// this *is* summarizeModule, byte for byte; with pins, only non-pinned
/// methods run the intra fixpoint and the Jacobi rounds, consuming pinned
/// finals as callee values.  Pinning is sound because pinned entries are
/// least-fixpoint values of an identical cone: the restricted iteration
/// converges to the same module fixpoint (or trips PinsViolated).
ComposeOutcome
composeModule(const IRModule &M, const SummaryOptions &Options,
              const std::map<std::string, const MethodSummary *> *Pinned) {
  ComposeOutcome Result;
  auto IsPinned = [&](const std::string &Symbol) {
    return Pinned && Pinned->count(Symbol) != 0;
  };

  // Phase A: transitive store effects per method (union closure over the
  // call graph; monotone, so plain iteration converges).  Runs over every
  // method even when pinned — it is cheap, and the Jacobi restriction
  // below needs the full smash sets and call graph anyway.
  std::map<std::string, const IRFunction *> Methods;
  for (const auto &F : M.functions())
    if (F->kind() == IRFunction::Kind::Method)
      Methods[F->name()] = F.get();

  std::map<std::string, std::set<std::string>> Stored;
  std::map<std::string, std::vector<std::string>> Callees;
  for (const auto &[Symbol, F] : Methods) {
    std::set<std::string> Own;
    std::vector<std::string> Out;
    for (const Instr &I : F->instrs()) {
      if (I.Op == Opcode::StoreField)
        Own.insert(I.Member);
      if (I.Op == Opcode::Invoke && !I.Callee && I.Member == "set")
        Own.insert("[]");
      if (I.Op == Opcode::SpawnThread)
        Own.insert(SmashAll);
      if (I.Op == Opcode::Invoke && I.Callee &&
          I.Callee->kind() == IRFunction::Kind::Method)
        Out.push_back(I.Callee->name());
    }
    Stored[Symbol] = std::move(Own);
    Callees[Symbol] = std::move(Out);
  }
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (const auto &[Symbol, Outgoing] : Callees) {
      std::set<std::string> &Mine = Stored[Symbol];
      size_t Before = Mine.size();
      for (const std::string &Callee : Outgoing) {
        auto It = Stored.find(Callee);
        if (It != Stored.end())
          Mine.insert(It->second.begin(), It->second.end());
      }
      Changed |= Mine.size() != Before;
    }
  }

  // Phase B: intra-procedural fixpoint per method, with call effects
  // approximated by the Phase A sets.  Pinned methods skip it — their
  // finals are already known.
  std::map<std::string, IntraInfo> Intra;
  for (const auto &[Symbol, F] : Methods)
    if (!IsPinned(Symbol))
      Intra[Symbol] = analyzeFunction(*F, Options, &Stored);
  Result.Reanalyzed = Intra.size();

  // Phase C: bounded call-digest composition (Jacobi rounds): each round
  // rebases the previous round's callee accesses through every call site.
  // Sets only grow, so "no growth" is convergence.
  std::map<std::string, std::vector<StaticAccess>> Acc;
  std::map<std::string, std::set<std::string>> Seen;
  std::set<std::string> Incomplete;
  for (auto &[Symbol, Info] : Intra) {
    std::vector<StaticAccess> Init;
    std::set<std::string> &Fps = Seen[Symbol];
    for (const StaticAccess &A : Info.Accesses)
      if (Fps.insert(A.fingerprint()).second)
        Init.push_back(A);
    Acc[Symbol] = std::move(Init);
    if (Info.Incomplete)
      Incomplete.insert(Symbol);
  }
  if (Pinned) {
    for (const auto &[Symbol, S] : *Pinned) {
      std::set<std::string> &Fps = Seen[Symbol];
      for (const StaticAccess &A : S->Accesses)
        Fps.insert(A.fingerprint());
      Acc[Symbol] = S->Accesses;
      if (S->Incomplete)
        Incomplete.insert(Symbol);
    }
  }

  auto GrowthOf = [&](const std::string &Symbol,
                      const std::map<std::string, std::vector<StaticAccess>>
                          &Prev) {
    std::vector<StaticAccess> Fresh;
    const std::set<std::string> &Fps = Seen[Symbol];
    for (const CallSite &CS : Intra[Symbol].CallSites) {
      auto It = Prev.find(CS.CalleeSymbol);
      if (It == Prev.end())
        continue;
      for (const StaticAccess &A : It->second) {
        StaticAccess R = rebaseAccess(A, CS, Options);
        if (!Fps.count(R.fingerprint()))
          Fresh.push_back(std::move(R));
      }
    }
    return Fresh;
  };

  bool Converged = false;
  bool CapHit = false;
  for (unsigned Round = 0; Round < Options.MaxInlineRounds; ++Round) {
    std::map<std::string, std::vector<StaticAccess>> Prev = Acc;
    bool Changed = false;
    for (const auto &[Symbol, F] : Methods) {
      (void)F;
      if (IsPinned(Symbol))
        continue; // Already at the fixpoint; cannot grow.
      std::vector<StaticAccess> Fresh = GrowthOf(Symbol, Prev);
      std::set<std::string> &Fps = Seen[Symbol];
      std::vector<StaticAccess> &Mine = Acc[Symbol];
      for (StaticAccess &R : Fresh) {
        if (Mine.size() >= Options.MaxAccessesPerMethod) {
          Incomplete.insert(Symbol);
          CapHit = true;
          break;
        }
        if (Fps.insert(R.fingerprint()).second) {
          Mine.push_back(std::move(R));
          Changed = true;
        }
      }
    }
    if (!Changed) {
      Converged = true;
      break;
    }
  }
  if (Pinned && (CapHit || !Converged)) {
    // A capped or non-converged composition is sensitive to insertion
    // order, so finishing from pins could diverge (bytewise) from what a
    // cold run would produce.  Hand the whole module back for a full
    // recompute instead — correctness first, cache second.
    Result.PinsViolated = true;
    return Result;
  }
  if (!Converged) {
    // A probe round identifies the methods that would still grow — those
    // (recursion deeper than the inline budget) are incomplete.
    std::map<std::string, std::vector<StaticAccess>> Prev = Acc;
    for (const auto &[Symbol, F] : Methods) {
      (void)F;
      if (!GrowthOf(Symbol, Prev).empty())
        Incomplete.insert(Symbol);
    }
  }

  // Incompleteness propagates caller-ward: a summary inheriting from an
  // incomplete callee may itself be missing instances.
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (const auto &[Symbol, Outgoing] : Callees) {
      if (Incomplete.count(Symbol))
        continue;
      for (const std::string &Callee : Outgoing)
        if (Incomplete.count(Callee)) {
          Incomplete.insert(Symbol);
          Changed = true;
          break;
        }
    }
  }

  ModuleSummary &Out = Result.Summary;
  for (const auto &[Symbol, F] : Methods) {
    (void)F;
    MethodSummary S;
    S.Symbol = Symbol;
    S.Accesses = std::move(Acc[Symbol]);
    std::sort(S.Accesses.begin(), S.Accesses.end(),
              [](const StaticAccess &A, const StaticAccess &B) {
                return A.fingerprint() < B.fingerprint();
              });
    S.StoredFields = std::move(Stored[Symbol]);
    S.Incomplete = Incomplete.count(Symbol) != 0;
    Out.Methods.emplace(Symbol, std::move(S));
  }
  Result.Exact = Converged && !CapHit;
  return Result;
}

} // namespace

ModuleSummary staticrace::summarizeModule(const IRModule &M,
                                          const SummaryOptions &Options) {
  ComposeOutcome R = composeModule(M, Options, /*Pinned=*/nullptr);
  obs::MetricsRegistry::global()
      .counter("staticrace.methods_summarized")
      .inc(R.Summary.Methods.size());
  return std::move(R.Summary);
}

std::map<std::string, uint64_t>
staticrace::methodConeDigests(const IRModule &M,
                              const SummaryOptions &Options) {
  std::map<std::string, const IRFunction *> Methods;
  for (const auto &F : M.functions())
    if (F->kind() == IRFunction::Kind::Method)
      Methods[F->name()] = F.get();

  // Per-body digest over the printed IR: the printer covers every field
  // the analysis reads (opcodes, operands, members, callee symbols), so
  // equal prints imply equal transfer behavior.
  std::map<std::string, uint64_t> Own;
  std::map<std::string, std::set<std::string>> CalleeSets;
  for (const auto &[Symbol, F] : Methods) {
    Own[Symbol] = digest::of(printFunction(*F));
    std::set<std::string> &Out = CalleeSets[Symbol];
    for (const Instr &I : F->instrs())
      if (I.Op == Opcode::Invoke && I.Callee &&
          I.Callee->kind() == IRFunction::Kind::Method)
        Out.insert(I.Callee->name());
  }

  // Dependence cone (self + transitive method callees) per method.
  std::map<std::string, std::set<std::string>> Cone;
  for (const auto &[Symbol, F] : Methods) {
    (void)F;
    std::set<std::string> &C = Cone[Symbol];
    std::vector<std::string> Work{Symbol};
    C.insert(Symbol);
    while (!Work.empty()) {
      std::string Cur = std::move(Work.back());
      Work.pop_back();
      for (const std::string &Next : CalleeSets[Cur])
        if (C.insert(Next).second)
          Work.push_back(Next);
    }
  }

  uint64_t OptDigest = digest::Fnv1aOffset;
  OptDigest = digest::updateU64(OptDigest, Options.MaxPathDepth);
  OptDigest = digest::updateU64(OptDigest, Options.MaxLockCount);
  OptDigest = digest::updateU64(OptDigest, Options.MaxInlineRounds);
  OptDigest = digest::updateU64(OptDigest, Options.MaxAccessesPerMethod);

  std::map<std::string, uint64_t> Out;
  for (const auto &[Symbol, C] : Cone) {
    uint64_t H = digest::updateU64(digest::Fnv1aOffset, OptDigest);
    for (const std::string &Sym : C) { // Sorted: std::set iteration order.
      H = digest::update(H, Sym);
      H = digest::updateU64(H, Own[Sym]);
    }
    Out[Symbol] = H;
  }
  return Out;
}

ModuleSummary
staticrace::summarizeModuleIncremental(const IRModule &M, SummaryStore &Store,
                                       IncrementalStats *Stats,
                                       const SummaryOptions &Options) {
  std::map<std::string, uint64_t> Digests = methodConeDigests(M, Options);

  // Pin every method whose cone digest hits an Exact entry.  Non-Exact
  // hits are useless (their values depend on more than the cone) and are
  // treated as misses.
  std::map<std::string, const MethodSummary *> Pinned;
  for (const auto &[Symbol, Digest] : Digests)
    if (const CachedSummary *E = Store.lookup(Symbol, Digest); E && E->Exact)
      Pinned[Symbol] = &E->Summary;

  ComposeOutcome R = composeModule(M, Options, &Pinned);
  bool Full = false;
  if (R.PinsViolated) {
    R = composeModule(M, Options, /*Pinned=*/nullptr);
    Full = true;
  }

  if (R.Exact)
    for (const auto &[Symbol, S] : R.Summary.Methods)
      Store.store(Symbol, Digests[Symbol], CachedSummary{S, /*Exact=*/true});

  size_t Reanalyzed = Full ? R.Summary.Methods.size() : R.Reanalyzed;
  if (Stats) {
    Stats->Methods = R.Summary.Methods.size();
    Stats->Hits = Full ? 0 : Pinned.size();
    Stats->Reanalyzed = Reanalyzed;
    Stats->FullRecompute = Full;
  }
  obs::MetricsRegistry::global()
      .counter("staticrace.methods_summarized")
      .inc(Reanalyzed);
  return std::move(R.Summary);
}
