//===- staticrace/PairClassifier.cpp - Candidate pair verdicts -----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "staticrace/PairClassifier.h"

#include "analysis/AccessAnalysis.h"
#include "ir/IR.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

using namespace narada;
using namespace narada::staticrace;

namespace {

/// A lock suffix relative to the shared base: the empty suffix is a
/// monitor on the base object itself.
using Suffix = std::vector<std::string>;

/// One side of a candidate pair: every static instance of the label under
/// the entry method, plus the aggregate facts the verdicts need.
struct SideView {
  const MethodSummary *Sum = nullptr;
  std::vector<const StaticAccess *> Instances;
  bool Complete = false;      ///< Summary found, not Incomplete, non-empty.
  bool AllParam = false;      ///< Every instance has an entry-rooted base.
  bool LocksResolved = false; ///< No instance lost a monitor's identity.
};

SideView viewOf(const ModuleSummary &S, const std::string &Sym,
                const std::string &Label) {
  SideView Out;
  Out.Sum = S.find(Sym);
  if (!Out.Sum)
    return Out;
  for (const StaticAccess &A : Out.Sum->Accesses)
    if (A.Label == Label)
      Out.Instances.push_back(&A);
  Out.Complete = !Out.Sum->Incomplete && !Out.Instances.empty();
  Out.AllParam = !Out.Instances.empty();
  Out.LocksResolved = true;
  for (const StaticAccess *A : Out.Instances) {
    if (A->Ctrl != Controllability::Param || !A->BasePath)
      Out.AllParam = false;
    if (A->UnknownLocks)
      Out.LocksResolved = false;
  }
  return Out;
}

/// The suffixes of monitors reached through the instance's base — the only
/// monitors the staged sharing can force to coincide with the other side's.
std::set<Suffix> throughBaseSuffixes(const StaticAccess &A) {
  std::set<Suffix> Out;
  if (!A.BasePath)
    return Out;
  for (const auto &[Lock, Count] : A.MustLocks) {
    (void)Count;
    if (Lock.hasPrefix(*A.BasePath))
      Out.insert(Lock.suffixAfter(*A.BasePath));
  }
  return Out;
}

std::set<Suffix> intersectOverInstances(const SideView &Side) {
  std::set<Suffix> Out;
  for (size_t I = 0; I < Side.Instances.size(); ++I) {
    std::set<Suffix> Mine = throughBaseSuffixes(*Side.Instances[I]);
    if (I == 0) {
      Out = std::move(Mine);
    } else {
      std::set<Suffix> Kept;
      std::set_intersection(Out.begin(), Out.end(), Mine.begin(), Mine.end(),
                            std::inserter(Kept, Kept.begin()));
      Out = std::move(Kept);
    }
    if (Out.empty())
      break;
  }
  return Out;
}

std::set<Suffix> unionOverInstances(const SideView &Side) {
  std::set<Suffix> Out;
  for (const StaticAccess *A : Side.Instances) {
    std::set<Suffix> Mine = throughBaseSuffixes(*A);
    Out.insert(Mine.begin(), Mine.end());
  }
  return Out;
}

bool setsIntersect(const std::set<Suffix> &A, const std::set<Suffix> &B) {
  for (const Suffix &S : A)
    if (B.count(S))
      return true;
  return false;
}

} // namespace

PairVerdict staticrace::classifyLabelPair(const ModuleSummary &S,
                                          const std::string &SymA,
                                          const std::string &LabelA,
                                          const std::string &SymB,
                                          const std::string &LabelB) {
  SideView A = viewOf(S, SymA, LabelA);
  SideView B = viewOf(S, SymB, LabelB);
  if (!A.Complete || !B.Complete || !A.AllParam || !B.AllParam)
    return PairVerdict::Unknown;

  // MustGuarded: a suffix every instance of *both* sides locks through its
  // base — the sharing then forces one monitor, serializing the accesses.
  if (setsIntersect(intersectOverInstances(A), intersectOverInstances(B)))
    return PairVerdict::MustGuarded;

  // MayRace: all monitors identity-resolved, and no instance combination
  // has a common through-base suffix — nothing can serialize the pair.
  if (A.LocksResolved && B.LocksResolved &&
      !setsIntersect(unionOverInstances(A), unionOverInstances(B)))
    return PairVerdict::MayRace;

  return PairVerdict::Unknown;
}

PairVerdict staticrace::classifyRecordPair(const ModuleSummary &S,
                                           const AccessRecord &A,
                                           const AccessRecord &B) {
  return classifyLabelPair(S, methodSymbol(A.ClassName, A.Method), A.Label,
                           methodSymbol(B.ClassName, B.Method), B.Label);
}

namespace {

/// The per-side half of the MustRace certificate: every instance of the
/// label is the entry method's own access (not inherited from a callee)
/// and provably holds no monitor at all.
bool sideCertifiable(const SideView &Side, const std::string &Sym,
                     const std::string &Label, bool &SawWrite) {
  if (Side.Instances.empty())
    return false;
  if (Label.compare(0, Sym.size() + 1, Sym + ":") != 0)
    return false; // Inherited from a callee: reachability is conditional.
  for (const StaticAccess *A : Side.Instances) {
    if (!A->MustLocks.empty() || A->UnknownLocks != 0)
      return false; // A held monitor could serialize some interleavings.
    SawWrite = SawWrite || A->IsWrite;
  }
  return true;
}

} // namespace

PairVerdict staticrace::certifyLabelPair(const ModuleSummary &S,
                                         const std::string &SymA,
                                         const std::string &LabelA,
                                         const std::string &SymB,
                                         const std::string &LabelB) {
  PairVerdict Base = classifyLabelPair(S, SymA, LabelA, SymB, LabelB);
  if (Base != PairVerdict::MayRace)
    return Base; // Only the priority candidates can be strengthened.
  SideView A = viewOf(S, SymA, LabelA);
  SideView B = viewOf(S, SymB, LabelB);
  bool SawWrite = false;
  if (!sideCertifiable(A, SymA, LabelA, SawWrite) ||
      !sideCertifiable(B, SymB, LabelB, SawWrite))
    return Base;
  if (!SawWrite)
    return Base; // Read-read pairs are filtered upstream, but be safe.
  return PairVerdict::MustRace;
}

PairVerdict staticrace::certifyRecordPair(const ModuleSummary &S,
                                          const AccessRecord &A,
                                          const AccessRecord &B) {
  return certifyLabelPair(S, methodSymbol(A.ClassName, A.Method), A.Label,
                          methodSymbol(B.ClassName, B.Method), B.Label);
}

namespace {

/// One distinct (entry method, access site) pair in the triage listing.
struct TriageSite {
  std::string Sym;
  std::string Label;
  bool IsWrite = false;

  std::string str() const {
    std::string Out = Label + (IsWrite ? " (write)" : " (read)");
    // The label names the innermost site; note the entry method when the
    // access was inherited from a callee.
    if (Label.compare(0, Sym.size() + 1, Sym + ":") != 0)
      Out += " via " + Sym;
    return Out;
  }
};

/// True for access sites inside constructor bodies, which pair generation
/// discards (paper §4): no client can race the initialization window.
bool isConstructorSite(const std::string &Symbol) {
  size_t Colon = Symbol.find(':');
  std::string Func = Colon == std::string::npos ? Symbol
                                                : Symbol.substr(0, Colon);
  return endsWith(Func, std::string(".") + ConstructorName);
}

} // namespace

std::string staticrace::renderStaticTriage(const ModuleSummary &S,
                                           const std::string &FocusClass) {
  // Collect the statically controllable sites per raced-on field,
  // mirroring the dynamic pipeline's filters: constructor accesses and
  // accesses without an entry-rooted base cannot be staged by a client.
  std::map<std::string, std::vector<TriageSite>> ByField;
  size_t Methods = 0;
  for (const auto &[Symbol, Sum] : S.Methods) {
    std::string Class = Symbol.substr(0, Symbol.find('.'));
    if (!FocusClass.empty() && Class != FocusClass)
      continue;
    if (isConstructorSite(Symbol))
      continue;
    ++Methods;
    std::set<std::string> Emitted;
    for (const StaticAccess &A : Sum.Accesses) {
      if (A.Ctrl != Controllability::Param)
        continue;
      if (isConstructorSite(A.Label))
        continue;
      if (!Emitted.insert(A.Label).second)
        continue;
      TriageSite Site;
      Site.Sym = Symbol;
      Site.Label = A.Label;
      Site.IsWrite = A.IsWrite;
      ByField[A.FieldClassName + "." + A.Field].push_back(std::move(Site));
    }
  }

  std::map<PairVerdict, size_t> Counts;
  size_t Total = 0;
  std::string Body;
  for (auto &[FieldKey, Sites] : ByField) {
    std::sort(Sites.begin(), Sites.end(),
              [](const TriageSite &A, const TriageSite &B) {
                return std::tie(A.Sym, A.Label) < std::tie(B.Sym, B.Label);
              });
    std::vector<std::string> Lines;
    for (size_t I = 0; I < Sites.size(); ++I) {
      for (size_t J = I; J < Sites.size(); ++J) {
        if (!Sites[I].IsWrite && !Sites[J].IsWrite)
          continue; // Read-read never races.
        PairVerdict V = classifyLabelPair(S, Sites[I].Sym, Sites[I].Label,
                                          Sites[J].Sym, Sites[J].Label);
        ++Counts[V];
        ++Total;
        Lines.push_back(formatString("  [%-11s] %s ~ %s\n", verdictName(V),
                                     Sites[I].str().c_str(),
                                     Sites[J].str().c_str()));
      }
    }
    if (Lines.empty())
      continue;
    Body += FieldKey + ":\n";
    for (const std::string &Line : Lines)
      Body += Line;
  }

  std::string Focus =
      FocusClass.empty() ? std::string() : " (focus " + FocusClass + ")";
  std::string Out =
      formatString("== static triage%s: %zu methods, %zu candidate pairs ==\n",
                   Focus.c_str(), Methods, Total);
  Out += Body;
  Out += formatString("total: %zu MayRace, %zu MustGuarded, %zu Unknown\n",
                      Counts[PairVerdict::MayRace],
                      Counts[PairVerdict::MustGuarded],
                      Counts[PairVerdict::Unknown]);
  return Out;
}
