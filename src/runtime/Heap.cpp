//===- runtime/Heap.cpp - Objects and the heap --------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

using namespace narada;

ObjectId Heap::allocate(const ClassInfo *Class) {
  assert(Class && "allocating an object without a class");
  HeapObject Obj;
  Obj.Class = Class;
  Obj.Fields.resize(Class->Fields.size());
  for (size_t I = 0, E = Class->Fields.size(); I != E; ++I) {
    const Type &Ty = Class->Fields[I].DeclaredType;
    if (Ty.isInt())
      Obj.Fields[I] = Value::makeInt(0);
    else if (Ty.isBool())
      Obj.Fields[I] = Value::makeBool(false);
    else
      Obj.Fields[I] = Value::makeNull();
  }
  Objects.push_back(std::move(Obj));
  return static_cast<ObjectId>(Objects.size());
}

ObjectId Heap::allocateArray(const ClassInfo *ArrayClass, size_t Size) {
  assert(ArrayClass && ArrayClass->IsBuiltin && "not the builtin array class");
  HeapObject Obj;
  Obj.Class = ArrayClass;
  Obj.Elems.assign(Size, 0);
  Objects.push_back(std::move(Obj));
  return static_cast<ObjectId>(Objects.size());
}

uint64_t Heap::stateHash() const {
  // FNV-1a over a canonical serialization of the heap.
  uint64_t Hash = 0xcbf29ce484222325ULL;
  auto Mix = [&Hash](uint64_t V) {
    for (int Shift = 0; Shift < 64; Shift += 8) {
      Hash ^= (V >> Shift) & 0xff;
      Hash *= 0x100000001b3ULL;
    }
  };
  for (const HeapObject &Obj : Objects) {
    for (const Value &V : Obj.Fields) {
      Mix(static_cast<uint64_t>(V.kind()));
      if (V.isInt())
        Mix(static_cast<uint64_t>(V.asInt()));
      else if (V.isBool())
        Mix(V.asBool() ? 1 : 0);
      else if (V.isRef())
        Mix(V.asRef());
    }
    for (int64_t E : Obj.Elems)
      Mix(static_cast<uint64_t>(E));
    Mix(Obj.Elems.size());
  }
  return Hash;
}
