//===- runtime/Value.h - Runtime values -------------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamically-typed runtime values: null, int, bool, and object references.
/// Object identity is an index into the owning Heap.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_RUNTIME_VALUE_H
#define NARADA_RUNTIME_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace narada {

/// Identifies a heap object.  0 is reserved as "no object".
using ObjectId = uint32_t;

/// The invalid/absent object id.
inline constexpr ObjectId NoObject = 0;

/// A runtime value.
class Value {
public:
  enum class Kind : uint8_t {
    Null,
    Int,
    Bool,
    Ref,
  };

  Value() = default;

  static Value makeNull() { return Value(); }
  static Value makeInt(int64_t V) {
    Value Out;
    Out.TheKind = Kind::Int;
    Out.IntVal = V;
    return Out;
  }
  static Value makeBool(bool B) {
    Value Out;
    Out.TheKind = Kind::Bool;
    Out.IntVal = B ? 1 : 0;
    return Out;
  }
  static Value makeRef(ObjectId Id) {
    assert(Id != NoObject && "use makeNull() for the absent reference");
    Value Out;
    Out.TheKind = Kind::Ref;
    Out.RefVal = Id;
    return Out;
  }

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isRef() const { return TheKind == Kind::Ref; }

  int64_t asInt() const {
    assert(isInt() && "value is not an int");
    return IntVal;
  }
  bool asBool() const {
    assert(isBool() && "value is not a bool");
    return IntVal != 0;
  }
  ObjectId asRef() const {
    assert(isRef() && "value is not a reference");
    return RefVal;
  }

  /// The referenced object, or NoObject for null/primitives.
  ObjectId refOrNone() const { return isRef() ? RefVal : NoObject; }

  /// Structural equality (null == null; refs by identity).
  bool operator==(const Value &Other) const {
    if (TheKind != Other.TheKind)
      return false;
    switch (TheKind) {
    case Kind::Null:
      return true;
    case Kind::Int:
    case Kind::Bool:
      return IntVal == Other.IntVal;
    case Kind::Ref:
      return RefVal == Other.RefVal;
    }
    return false;
  }
  bool operator!=(const Value &Other) const { return !(*this == Other); }

  /// Human-readable rendering ("null", "42", "true", "@7").
  std::string str() const {
    switch (TheKind) {
    case Kind::Null:
      return "null";
    case Kind::Int:
      return std::to_string(IntVal);
    case Kind::Bool:
      return IntVal ? "true" : "false";
    case Kind::Ref:
      return "@" + std::to_string(RefVal);
    }
    return "?";
  }

private:
  Kind TheKind = Kind::Null;
  int64_t IntVal = 0;
  ObjectId RefVal = NoObject;
};

} // namespace narada

#endif // NARADA_RUNTIME_VALUE_H
