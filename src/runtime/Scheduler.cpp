//===- runtime/Scheduler.cpp - Thread interleaving -----------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "runtime/Scheduler.h"

#include "obs/Metrics.h"

#include <algorithm>

using namespace narada;

SchedulingPolicy::~SchedulingPolicy() = default;

ThreadId RoundRobinPolicy::pick(const std::vector<ThreadId> &Runnable,
                                VM &M) {
  // Prefer the thread after the last one stepped, wrapping around.
  for (ThreadId Candidate : Runnable)
    if (Candidate >= Last)
      return Last = Candidate;
  return Last = Runnable.front();
}

ThreadId RandomPolicy::pick(const std::vector<ThreadId> &Runnable, VM &M) {
  return Runnable[Rand.nextBelow(Runnable.size())];
}

ThreadId PreemptionBoundedPolicy::pick(const std::vector<ThreadId> &Runnable,
                                       VM &M) {
  bool CurrentRunnable =
      Current != NoThread &&
      std::find(Runnable.begin(), Runnable.end(), Current) != Runnable.end();
  if (CurrentRunnable && !Rand.chance(PreemptPercent, 100))
    return Current;
  return Current = Runnable[Rand.nextBelow(Runnable.size())];
}

PCTPolicy::PCTPolicy(uint64_t Seed, unsigned Depth, uint64_t MaxSteps)
    : Rand(Seed) {
  for (unsigned I = 0; I + 1 < Depth; ++I)
    ChangePoints.push_back(Rand.nextBelow(MaxSteps));
  std::sort(ChangePoints.begin(), ChangePoints.end());
  PlannedDrops = static_cast<unsigned>(ChangePoints.size());
}

uint64_t PCTPolicy::priorityOf(ThreadId T) {
  while (Priorities.size() <= T)
    // Initial priorities are random but all above the change-point band
    // [0, d), so a dropped thread always ranks below undropped ones.
    Priorities.push_back(1000 + Rand.nextBelow(1'000'000));
  return Priorities[T];
}

ThreadId PCTPolicy::pick(const std::vector<ThreadId> &Runnable, VM &M) {
  ThreadId Best = Runnable.front();
  uint64_t BestPriority = priorityOf(Best);
  for (ThreadId T : Runnable) {
    if (priorityOf(T) > BestPriority) {
      Best = T;
      BestPriority = priorityOf(T);
    }
  }
  // At a change point the chosen thread's priority drops into the low
  // band.  Duplicate change points (the RNG may draw the same step twice)
  // each perform a drop, so exactly d-1 drops happen overall.
  while (!ChangePoints.empty() && Step == ChangePoints.front()) {
    ChangePoints.erase(ChangePoints.begin());
    Priorities[Best] = NextLowPriority++;
    ++DropsPerformed;
  }
  ++Step;
  return Best;
}

namespace {

/// One entry of the policy registry.  makePolicy() and knownPolicyNames()
/// both read this table, so adding a policy here is the whole change —
/// the --policy validation and the --help text can no longer drift.
struct PolicyEntry {
  const char *Name;
  std::unique_ptr<SchedulingPolicy> (*Make)(uint64_t Seed);
};

const PolicyEntry PolicyRegistry[] = {
    {"roundrobin",
     [](uint64_t) -> std::unique_ptr<SchedulingPolicy> {
       return std::make_unique<RoundRobinPolicy>();
     }},
    {"random",
     [](uint64_t Seed) -> std::unique_ptr<SchedulingPolicy> {
       return std::make_unique<RandomPolicy>(Seed);
     }},
    {"preempt",
     [](uint64_t Seed) -> std::unique_ptr<SchedulingPolicy> {
       return std::make_unique<PreemptionBoundedPolicy>(
           Seed, /*PreemptPercent=*/25);
     }},
    {"pct",
     [](uint64_t Seed) -> std::unique_ptr<SchedulingPolicy> {
       return std::make_unique<PCTPolicy>(Seed);
     }},
};

} // namespace

std::unique_ptr<SchedulingPolicy> narada::makePolicy(std::string_view Name,
                                                     uint64_t Seed) {
  for (const PolicyEntry &Entry : PolicyRegistry)
    if (Name == Entry.Name)
      return Entry.Make(Seed);
  return nullptr;
}

const char *narada::knownPolicyNames() {
  // Rendered from the registry once; the names never change at run time.
  static const std::string Names = [] {
    std::string Out;
    for (const PolicyEntry &Entry : PolicyRegistry) {
      if (!Out.empty())
        Out += ", ";
      Out += Entry.Name;
    }
    return Out;
  }();
  return Names.c_str();
}

RunResult narada::runToCompletion(VM &M, SchedulingPolicy &Policy,
                                  uint64_t MaxSteps) {
  RunResult Result;
  // Scheduling stats accumulate in locals and flush to the registry once
  // after the loop: the step loop is the hottest path in the system and
  // must not touch atomics per iteration.
  uint64_t ContextSwitches = 0;
  ThreadId Prev = NoThread;
  while (!M.allDone()) {
    if (Result.Steps >= MaxSteps) {
      Result.HitStepLimit = true;
      break;
    }
    std::vector<ThreadId> Runnable = M.runnableThreads();
    if (Runnable.empty()) {
      Result.Deadlocked = M.deadlocked();
      break;
    }
    ThreadId Chosen = Policy.pick(Runnable, M);
    if (Prev != NoThread && Chosen != Prev)
      ++ContextSwitches;
    Prev = Chosen;
    M.step(Chosen);
    ++Result.Steps;
  }
  for (size_t T = 0, E = M.numThreads(); T != E; ++T) {
    const ThreadState &Thread = M.thread(static_cast<ThreadId>(T));
    if (Thread.Status == ThreadStatus::Faulted) {
      Result.Faulted = true;
      Result.FaultMessages.push_back(Thread.FaultMessage);
    }
  }

  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  Metrics.counter("runtime.runs").inc();
  Metrics.counter("runtime.steps").inc(Result.Steps);
  Metrics.counter("runtime.context_switches").inc(ContextSwitches);
  if (Result.Deadlocked)
    Metrics.counter("runtime.deadlocks").inc();
  if (Result.Faulted)
    Metrics.counter("runtime.faults").inc();
  if (Result.HitStepLimit)
    Metrics.counter("runtime.step_limit_hits").inc();
  static obs::Histogram &StepsPerRun = Metrics.histogram(
      "runtime.steps_per_run", {100, 1000, 10000, 100000, 1000000});
  StepsPerRun.observe(Result.Steps);
  return Result;
}
