//===- runtime/Execution.cpp - Compile-and-run facade -------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "runtime/Execution.h"

#include "ir/Lowering.h"
#include "ir/Verifier.h"
#include "lang/Parser.h"
#include "obs/Metrics.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

using namespace narada;

Result<CompiledProgram> narada::compileProgram(std::string_view Source) {
  Result<std::unique_ptr<Program>> Prog = Parser::parse(Source);
  if (!Prog)
    return Prog.error();
  CompiledProgram Out;
  Out.Ast = Prog.take();

  Result<std::shared_ptr<ProgramInfo>> Info = analyze(*Out.Ast);
  if (!Info)
    return Info.error();
  Out.Info = Info.take();

  Result<std::shared_ptr<IRModule>> Module = lower(*Out.Ast, Out.Info);
  if (!Module)
    return Module.error();
  Out.Module = Module.take();

  if (Status V = verifyModule(*Out.Module); !V)
    return V.error();
  return Out;
}

Result<TestRun> narada::runTest(const IRModule &M,
                                const std::string &TestName,
                                SchedulingPolicy &Policy, uint64_t RandSeed,
                                ExecutionObserver *Extra,
                                uint64_t MaxSteps) {
  const IRFunction *Test = M.findTest(TestName);
  if (!Test)
    return Error(formatString("no such test '%s'", TestName.c_str()));

  // Injection point for the containment sweep: only fires inside a
  // fault::ScopedUnit (the detection stage's per-test scope) — seed
  // executions during analysis run unscoped and are never injected.
  fault::probe("runtime.run_test");

  TestRun Run;
  VM Machine(M, RandSeed);

  TraceRecorder Recorder(Run.TheTrace);
  ObserverMux Mux;
  Mux.add(&Recorder);
  if (Extra)
    Mux.add(Extra);
  Machine.setObserver(&Mux);

  Machine.spawnThread(Test, {});
  Run.Result = runToCompletion(Machine, Policy, MaxSteps);
  Run.HeapHash = Machine.heap().stateHash();

  const VMStats &Stats = Machine.stats();
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  Metrics.counter("runtime.threads_spawned").inc(Stats.ThreadsSpawned);
  Metrics.counter("runtime.monitor_acquires").inc(Stats.MonitorAcquires);
  Metrics.counter("runtime.monitor_blocks").inc(Stats.MonitorBlocks);
  if (uint64_t Objects =
          Stats.InstrByOp[static_cast<unsigned>(Opcode::NewObject)])
    Metrics.counter("runtime.heap_objects").inc(Objects);
  // Instruction-mix profile: one counter per InstrClass bucket, in enum
  // order.  The names are part of the pinned bench trajectory — keep them
  // in sync with docs/OBSERVABILITY.md.
  static const char *const InstrCounterNames[NumInstrClasses] = {
      "vm.instr.alu",    "vm.instr.heap",   "vm.instr.call",
      "vm.instr.monitor", "vm.instr.branch", "vm.instr.thread"};
  for (unsigned C = 0; C != NumInstrClasses; ++C)
    if (uint64_t Total = Stats.instrClassTotal(static_cast<InstrClass>(C)))
      Metrics.counter(InstrCounterNames[C]).inc(Total);
  return Run;
}

Result<TestRun> narada::runTestSequential(const IRModule &M,
                                          const std::string &TestName,
                                          uint64_t RandSeed) {
  RoundRobinPolicy Policy;
  return runTest(M, TestName, Policy, RandSeed);
}
