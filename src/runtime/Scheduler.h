//===- runtime/Scheduler.h - Thread interleaving ----------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative scheduling over VM threads.  The paper relies on the JVM
/// scheduler plus RaceFuzzer's controlled interleaving; here a seeded policy
/// picks which live thread executes the next instruction, which makes every
/// interleaving reproducible and lets the detect/ library implement
/// RaceFuzzer's pause-at-the-racy-access strategy as just another policy.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_RUNTIME_SCHEDULER_H
#define NARADA_RUNTIME_SCHEDULER_H

#include "runtime/VM.h"
#include "support/RNG.h"

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace narada {

/// Chooses the next thread to step among the currently runnable ones.
class SchedulingPolicy {
public:
  virtual ~SchedulingPolicy();

  /// \p Runnable is non-empty.  Returns an element of \p Runnable.
  virtual ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) = 0;
};

/// Steps threads in index order, exhausting each before the next becomes
/// runnable work.  Deterministic; useful for sequential tests (which only
/// ever have one thread) and as a degenerate baseline.
class RoundRobinPolicy : public SchedulingPolicy {
public:
  ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) override;

private:
  ThreadId Last = 0;
};

/// Picks a uniformly random runnable thread; the seed determines the whole
/// interleaving.
class RandomPolicy : public SchedulingPolicy {
public:
  explicit RandomPolicy(uint64_t Seed) : Rand(Seed) {}
  ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) override;

private:
  RNG Rand;
};

/// Preemption-bounded random policy in the spirit of probabilistic
/// concurrency testing: runs the current thread until it blocks or finishes,
/// with occasional random preemptions.
class PreemptionBoundedPolicy : public SchedulingPolicy {
public:
  PreemptionBoundedPolicy(uint64_t Seed, unsigned PreemptPercent)
      : Rand(Seed), PreemptPercent(PreemptPercent) {}
  ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) override;

private:
  RNG Rand;
  unsigned PreemptPercent;
  ThreadId Current = NoThread;
};

/// Priority-based probabilistic concurrency testing (PCT, Burckhardt et
/// al., ASPLOS'10 — citation [3] of the paper): every thread gets a random
/// priority; the highest-priority runnable thread always runs, except at
/// d-1 pre-chosen steps where the running thread's priority drops below
/// everyone else's.  For a bug of depth d this finds it with probability
/// >= 1/(n * k^(d-1)).  Synthesized racy tests have depth ~2, so PCT with
/// small d exposes them quickly — one reason the paper lists PCT among the
/// tools that "can benefit from the tests synthesized by our
/// implementation".
class PCTPolicy : public SchedulingPolicy {
public:
  /// \p Depth is PCT's d (number of priority change points + 1);
  /// \p MaxSteps bounds k, the step budget the change points are drawn
  /// from.
  PCTPolicy(uint64_t Seed, unsigned Depth = 2, uint64_t MaxSteps = 20'000);

  ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) override;

  /// Change points drawn at construction: always d-1, even when the RNG
  /// lands several on the same step (each still causes its own drop).
  unsigned plannedDrops() const { return PlannedDrops; }
  /// Priority drops performed so far; reaches plannedDrops() once the run
  /// stepped past the last change point.
  unsigned dropsPerformed() const { return DropsPerformed; }

private:
  uint64_t priorityOf(ThreadId T);

  RNG Rand;
  std::vector<uint64_t> ChangePoints; ///< Sorted step indices.
  std::vector<uint64_t> Priorities;   ///< Indexed by thread id.
  uint64_t Step = 0;
  uint64_t NextLowPriority = 1; ///< Counts down: later drops rank lower.
  unsigned PlannedDrops = 0;
  unsigned DropsPerformed = 0;
};

/// Builds the named policy ("roundrobin", "random", "preempt", "pct") —
/// the user-facing policy registry behind narada-cli's --policy flag.
/// Returns nullptr on an unknown name; knownPolicyNames() lists the valid
/// spellings for diagnostics.
std::unique_ptr<SchedulingPolicy> makePolicy(std::string_view Name,
                                             uint64_t Seed);
const char *knownPolicyNames();

/// The outcome of driving a VM to quiescence.
struct RunResult {
  uint64_t Steps = 0;
  bool Deadlocked = false;
  bool Faulted = false;
  bool HitStepLimit = false;
  std::vector<std::string> FaultMessages;
};

/// Steps the VM under \p Policy until every thread finishes, a deadlock is
/// reached, or \p MaxSteps instructions have executed.
RunResult runToCompletion(VM &M, SchedulingPolicy &Policy,
                          uint64_t MaxSteps = 1'000'000);

} // namespace narada

#endif // NARADA_RUNTIME_SCHEDULER_H
