//===- runtime/Heap.h - Objects and the heap --------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM heap: objects with field slots, builtin IntArray storage, and
/// per-object re-entrant monitors.  There is no garbage collector — Narada
/// deliberately keeps collected seed-test objects alive so a synthesized
/// test can reuse them (Algorithm 1's collectObjects), and runs are short.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_RUNTIME_HEAP_H
#define NARADA_RUNTIME_HEAP_H

#include "lang/Sema.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace narada {

/// Identifies a VM thread.  Thread 0 is the test's main thread.
using ThreadId = uint32_t;

/// Sentinel meaning "no thread".
inline constexpr ThreadId NoThread = ~0u;

/// A heap object: class identity, field slots, optional array storage, and
/// its monitor.
struct HeapObject {
  const ClassInfo *Class = nullptr;
  std::vector<Value> Fields;    ///< Indexed by FieldInfo::Index.
  std::vector<int64_t> Elems;   ///< IntArray element storage.

  // Re-entrant monitor state.
  ThreadId MonitorOwner = NoThread;
  uint32_t MonitorDepth = 0;

  bool isArray() const { return Class && Class->IsBuiltin; }
};

/// The object heap.  Object ids are 1-based; id 0 is NoObject.
class Heap {
public:
  /// Allocates an instance of \p Class with default-initialized fields
  /// (null / 0 / false).
  ObjectId allocate(const ClassInfo *Class);

  /// Allocates an IntArray of \p Size zeroed elements.
  ObjectId allocateArray(const ClassInfo *ArrayClass, size_t Size);

  /// Whether \p Id names a live object.
  bool isValid(ObjectId Id) const { return Id != NoObject && Id <= Objects.size(); }

  HeapObject &object(ObjectId Id) {
    assert(isValid(Id) && "dereferencing an invalid object id");
    return Objects[Id - 1];
  }
  const HeapObject &object(ObjectId Id) const {
    assert(isValid(Id) && "dereferencing an invalid object id");
    return Objects[Id - 1];
  }

  /// The number of live objects.
  size_t size() const { return Objects.size(); }

  /// A deterministic structural hash over all objects' field values and
  /// array contents.  Used to classify races as harmful vs benign: if two
  /// orders of a racy access pair leave different heaps, the race has an
  /// observable effect.
  uint64_t stateHash() const;

private:
  std::vector<HeapObject> Objects;
};

} // namespace narada

#endif // NARADA_RUNTIME_HEAP_H
