//===- runtime/VM.h - Small-step virtual machine ----------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small-step interpreter over the register IR.  Each step() executes one
/// instruction of one thread, so a scheduler can interleave threads at the
/// granularity of individual heap accesses — the granularity at which data
/// races manifest.  All heap accesses, monitor transitions and client→library
/// invocations are reported to an ExecutionObserver; that event stream is
/// both the sequential trace Narada analyzes and the multithreaded trace the
/// race detectors consume.
///
/// Faults (null dereference, division by zero, array bounds, monitor misuse)
/// terminate the faulting thread like an uncaught Java exception: its frames
/// unwind and every monitor it holds is released.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_RUNTIME_VM_H
#define NARADA_RUNTIME_VM_H

#include "ir/IR.h"
#include "runtime/Heap.h"
#include "runtime/Value.h"
#include "support/RNG.h"
#include "trace/TraceEvent.h"

#include <optional>
#include <string>
#include <vector>

namespace narada {

/// One activation record.
struct Frame {
  const IRFunction *Func = nullptr;
  uint32_t Pc = 0;
  std::vector<Value> Regs;
  Reg RetDst = NoReg;           ///< Caller register receiving the result.
  bool IsClientBoundary = false; ///< Invoked directly from client code.
};

/// Lifecycle states of a VM thread.
enum class ThreadStatus {
  Runnable,
  Blocked,  ///< Waiting on a monitor (WaitingOn).
  Finished,
  Faulted,
};

/// One VM thread: a stack of frames plus scheduling state.
struct ThreadState {
  ThreadId Id = 0;
  std::vector<Frame> Stack;
  ThreadStatus Status = ThreadStatus::Runnable;
  ObjectId WaitingOn = NoObject;
  std::string FaultMessage;

  bool isLive() const {
    return Status == ThreadStatus::Runnable || Status == ThreadStatus::Blocked;
  }
};

/// Summary of the heap access the next instruction of a thread would
/// perform, used by the RaceFuzzer-style active scheduler to pause threads
/// right before a suspected racy access.
struct PendingAccess {
  ObjectId Obj = NoObject;
  std::string Field;
  unsigned ElemIndex = 0;
  bool IsElem = false;
  bool IsWrite = false;
  const IRFunction *Func = nullptr;
  uint32_t Pc = 0;
};

/// Coarse opcode classes for the instruction-mix profile.  Buckets follow
/// the cost structure of the interpreter loop: register-only arithmetic,
/// heap traffic (the instructions that emit trace events), call/return,
/// monitor transitions, control flow, and thread creation.
enum class InstrClass : unsigned {
  Alu,     ///< Const*/Move/RandInt/UnOp/BinOp.
  Heap,    ///< LoadField/StoreField/NewObject.
  Call,    ///< Invoke/Ret.
  Monitor, ///< MonitorEnter/MonitorExit.
  Branch,  ///< Jump/Branch.
  Thread,  ///< SpawnThread.
};
constexpr unsigned NumInstrClasses = 6;

/// Maps an opcode to its InstrClass bucket.
InstrClass classifyOpcode(Opcode Op);

/// Per-execution counters.  Accumulated in plain fields — the VM is
/// single-OS-threaded — and flushed to the metrics registry once per run by
/// the execution facade, keeping atomics out of the instruction loop.
struct VMStats {
  uint64_t ThreadsSpawned = 0;
  uint64_t MonitorAcquires = 0; ///< Outermost acquisitions (Lock events).
  uint64_t MonitorBlocks = 0;   ///< Transitions into the Blocked state.
  /// Executed instructions per opcode (a blocked MonitorEnter retry counts
  /// each attempt — retries are real interpreter work).  Raw opcodes, not
  /// InstrClass buckets: the interpreter loop pays one indexed increment
  /// and the class aggregation happens once per run at flush time.
  uint64_t InstrByOp[NumOpcodes] = {};

  /// Sums the per-opcode counts into \p C's bucket.
  uint64_t instrClassTotal(InstrClass C) const {
    uint64_t Total = 0;
    for (unsigned Op = 0; Op != NumOpcodes; ++Op)
      if (classifyOpcode(static_cast<Opcode>(Op)) == C)
        Total += InstrByOp[Op];
    return Total;
  }
};

/// The virtual machine.
class VM {
public:
  /// Invocations nested deeper than this fault the thread (the analog of
  /// Java's StackOverflowError); guards against runaway recursion in
  /// analyzed programs.
  static constexpr size_t MaxCallDepth = 2048;

  /// \p RandSeed seeds the 'rand()' value stream so whole executions are
  /// reproducible.
  explicit VM(const IRModule &M, uint64_t RandSeed = 1);

  /// Installs the event observer (may be null to discard events).
  void setObserver(ExecutionObserver *O) { Observer = O; }

  const IRModule &module() const { return M; }
  Heap &heap() { return TheHeap; }
  const Heap &heap() const { return TheHeap; }

  /// Starts a new thread executing \p F with \p Args as its parameter
  /// registers (for methods, Args[0] is the receiver).  Returns its id.
  /// \p Parent identifies the spawning thread for happens-before edges;
  /// NoThread marks a root thread started by the harness.
  ThreadId spawnThread(const IRFunction *F, std::vector<Value> Args,
                       ThreadId Parent = NoThread);

  /// Executes one instruction of thread \p T.  \p T must be live; a blocked
  /// thread retries its monitor acquisition.
  void step(ThreadId T);

  ThreadState &thread(ThreadId T) { return Threads[T]; }
  const ThreadState &thread(ThreadId T) const { return Threads[T]; }
  size_t numThreads() const { return Threads.size(); }

  /// Threads that can make progress now: Runnable ones plus Blocked ones
  /// whose awaited monitor has become available.
  std::vector<ThreadId> runnableThreads() const;

  /// True when no thread is live.
  bool allDone() const;

  /// True if every live thread is blocked — a deadlock.
  bool deadlocked() const;

  /// True if any thread faulted.
  bool anyFault() const;

  /// The instruction thread \p T would execute next, or nullptr when done.
  const Instr *nextInstr(ThreadId T) const;

  /// If the next instruction of \p T is a heap access, describes it.
  std::optional<PendingAccess> peekAccess(ThreadId T) const;

  /// Allocates an object of class \p ClassName directly (used by harness
  /// code when staging receivers without running MiniJava code).
  ObjectId allocateObject(const std::string &ClassName);

  /// Monitors currently held by thread \p T.
  std::vector<ObjectId> heldMonitors(ThreadId T) const;

  /// Counters accumulated over this VM's lifetime.
  const VMStats &stats() const { return Stats; }

private:
  void execInstr(ThreadState &T, Frame &F, const Instr &I);
  void execBuiltinInvoke(ThreadState &T, Frame &F, const Instr &I);
  void doReturn(ThreadState &T, Value RetVal);
  void fault(ThreadState &T, const std::string &Message);
  void emit(TraceEvent Event);
  uint64_t nextLabel() { return ++LabelCounter; }

  /// Fills the static-point and thread fields of an event.
  TraceEvent makeEvent(EventKind Kind, const ThreadState &T);

  const IRModule &M;
  Heap TheHeap;
  std::vector<ThreadState> Threads;
  ExecutionObserver *Observer = nullptr;
  RNG Rand;
  uint64_t LabelCounter = 0;
  VMStats Stats;
};

} // namespace narada

#endif // NARADA_RUNTIME_VM_H
