//===- runtime/Execution.h - Compile-and-run facade -------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry points tying the front end, IR and VM together:
/// compile MiniJava source, run a test under a scheduling policy, and get
/// back the recorded trace.  Used by the Narada pipeline, the detectors,
/// the examples and the benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_RUNTIME_EXECUTION_H
#define NARADA_RUNTIME_EXECUTION_H

#include "ir/IR.h"
#include "lang/AST.h"
#include "lang/Sema.h"
#include "runtime/Scheduler.h"
#include "runtime/VM.h"
#include "support/Error.h"
#include "trace/Trace.h"

#include <memory>
#include <string>
#include <string_view>

namespace narada {

/// Everything produced by compiling one MiniJava source buffer.
struct CompiledProgram {
  std::unique_ptr<Program> Ast;
  std::shared_ptr<ProgramInfo> Info;
  std::shared_ptr<IRModule> Module;
};

/// Lex + parse + check + lower + verify \p Source.
Result<CompiledProgram> compileProgram(std::string_view Source);

/// The outcome of one test execution.
struct TestRun {
  Trace TheTrace;
  RunResult Result;
  uint64_t HeapHash = 0; ///< Heap state hash after the run.
};

/// Runs test \p TestName under \p Policy, recording every event.
/// \p Extra, if non-null, also observes the execution (e.g. a detector).
/// \p RandSeed seeds the VM's rand() stream.
Result<TestRun> runTest(const IRModule &M, const std::string &TestName,
                        SchedulingPolicy &Policy, uint64_t RandSeed = 1,
                        ExecutionObserver *Extra = nullptr,
                        uint64_t MaxSteps = 1'000'000);

/// Runs test \p TestName single-threaded (round-robin degenerates to
/// program order for sequential tests).  This produces the sequential seed
/// traces the Narada analysis consumes.
Result<TestRun> runTestSequential(const IRModule &M,
                                  const std::string &TestName,
                                  uint64_t RandSeed = 1);

} // namespace narada

#endif // NARADA_RUNTIME_EXECUTION_H
