//===- runtime/VM.cpp - Small-step virtual machine ----------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "runtime/VM.h"

#include "support/StringUtils.h"

using namespace narada;

VM::VM(const IRModule &M, uint64_t RandSeed) : M(M), Rand(RandSeed) {}

TraceEvent VM::makeEvent(EventKind Kind, const ThreadState &T) {
  TraceEvent E;
  E.Kind = Kind;
  E.Label = nextLabel();
  E.Thread = T.Id;
  if (!T.Stack.empty()) {
    E.Func = T.Stack.back().Func;
    E.Pc = T.Stack.back().Pc;
  }
  return E;
}

void VM::emit(TraceEvent Event) {
  if (Observer)
    Observer->onEvent(Event);
}

ThreadId VM::spawnThread(const IRFunction *F, std::vector<Value> Args,
                         ThreadId Parent) {
  assert(F && "spawning a thread without code");
  assert(Args.size() == F->numParams() && "argument count mismatch");

  ThreadState T;
  T.Id = static_cast<ThreadId>(Threads.size());

  Frame Entry;
  Entry.Func = F;
  Entry.Regs.resize(F->numRegs());
  for (size_t I = 0, E = Args.size(); I != E; ++I)
    Entry.Regs[I] = Args[I];
  // A method run as a thread root is a client→library boundary: the harness
  // (ConTeGe baseline, direct drivers) plays the client.
  Entry.IsClientBoundary = F->kind() == IRFunction::Kind::Method;
  T.Stack.push_back(std::move(Entry));

  Threads.push_back(std::move(T));
  ++Stats.ThreadsSpawned;
  ThreadState &Created = Threads.back();

  TraceEvent Start = makeEvent(EventKind::ThreadStart, Created);
  Start.ParentThread = Parent;
  emit(Start);
  if (Created.Stack.back().IsClientBoundary) {
    TraceEvent Call = makeEvent(EventKind::ClientCall, Created);
    Call.Method = F->name();
    Call.ClassName = F->className();
    Call.Receiver = Args.empty() ? NoObject : Args[0].refOrNone();
    Call.Args = Args;
    emit(Call);
  }
  return Created.Id;
}

std::vector<ThreadId> VM::runnableThreads() const {
  std::vector<ThreadId> Out;
  for (const ThreadState &T : Threads) {
    if (T.Status == ThreadStatus::Runnable) {
      Out.push_back(T.Id);
      continue;
    }
    if (T.Status == ThreadStatus::Blocked) {
      const HeapObject &Obj = TheHeap.object(T.WaitingOn);
      if (Obj.MonitorOwner == NoThread || Obj.MonitorOwner == T.Id)
        Out.push_back(T.Id);
    }
  }
  return Out;
}

bool VM::allDone() const {
  for (const ThreadState &T : Threads)
    if (T.isLive())
      return false;
  return true;
}

bool VM::deadlocked() const {
  bool AnyLive = false;
  for (const ThreadState &T : Threads) {
    if (!T.isLive())
      continue;
    AnyLive = true;
    if (T.Status == ThreadStatus::Runnable)
      return false;
    const HeapObject &Obj = TheHeap.object(T.WaitingOn);
    if (Obj.MonitorOwner == NoThread || Obj.MonitorOwner == T.Id)
      return false;
  }
  return AnyLive;
}

bool VM::anyFault() const {
  for (const ThreadState &T : Threads)
    if (T.Status == ThreadStatus::Faulted)
      return true;
  return false;
}

const Instr *VM::nextInstr(ThreadId Tid) const {
  const ThreadState &T = Threads[Tid];
  if (!T.isLive() || T.Stack.empty())
    return nullptr;
  const Frame &F = T.Stack.back();
  if (F.Pc >= F.Func->instrs().size())
    return nullptr;
  return &F.Func->instrs()[F.Pc];
}

std::optional<PendingAccess> VM::peekAccess(ThreadId Tid) const {
  const Instr *I = nextInstr(Tid);
  if (!I)
    return std::nullopt;
  const Frame &F = Threads[Tid].Stack.back();

  PendingAccess Out;
  Out.Func = F.Func;
  Out.Pc = F.Pc;
  switch (I->Op) {
  case Opcode::LoadField:
  case Opcode::StoreField: {
    const Value &Base = F.Regs[I->A];
    if (!Base.isRef())
      return std::nullopt;
    Out.Obj = Base.asRef();
    Out.Field = I->Member;
    Out.IsWrite = I->Op == Opcode::StoreField;
    return Out;
  }
  case Opcode::Invoke: {
    // Builtin array accesses surface as element accesses.
    if (I->Callee)
      return std::nullopt;
    const Value &Base = F.Regs[I->A];
    if (!Base.isRef())
      return std::nullopt;
    if (I->Member != "get" && I->Member != "set")
      return std::nullopt;
    const Value &Index = F.Regs[I->Args[0]];
    if (!Index.isInt())
      return std::nullopt;
    Out.Obj = Base.asRef();
    Out.IsElem = true;
    Out.ElemIndex = static_cast<unsigned>(Index.asInt());
    Out.IsWrite = I->Member == "set";
    return Out;
  }
  default:
    return std::nullopt;
  }
}

ObjectId VM::allocateObject(const std::string &ClassName) {
  const ClassInfo *Class = M.programInfo().findClass(ClassName);
  assert(Class && "allocating an unknown class");
  ObjectId Id = Class->IsBuiltin ? TheHeap.allocateArray(Class, 0)
                                 : TheHeap.allocate(Class);
  return Id;
}

std::vector<ObjectId> VM::heldMonitors(ThreadId Tid) const {
  std::vector<ObjectId> Out;
  for (ObjectId Id = 1; Id <= TheHeap.size(); ++Id)
    if (TheHeap.object(Id).MonitorOwner == Tid)
      Out.push_back(Id);
  return Out;
}

void VM::fault(ThreadState &T, const std::string &Message) {
  // Release every monitor the thread holds: its frames unwind as if an
  // exception propagated out of all synchronized regions.
  for (ObjectId Id = 1; Id <= TheHeap.size(); ++Id) {
    HeapObject &Obj = TheHeap.object(Id);
    if (Obj.MonitorOwner == T.Id) {
      Obj.MonitorOwner = NoThread;
      Obj.MonitorDepth = 0;
      TraceEvent E = makeEvent(EventKind::Unlock, T);
      E.Obj = Id;
      emit(E);
    }
  }
  TraceEvent E = makeEvent(EventKind::Fault, T);
  E.Message = Message;
  emit(E);
  T.Status = ThreadStatus::Faulted;
  T.FaultMessage = Message;
  T.Stack.clear();
}

void VM::doReturn(ThreadState &T, Value RetVal) {
  Frame Done = std::move(T.Stack.back());
  T.Stack.pop_back();

  if (Done.IsClientBoundary) {
    TraceEvent E = makeEvent(EventKind::ClientCallEnd, T);
    E.Func = Done.Func;
    E.Val = RetVal;
    emit(E);
  }

  if (T.Stack.empty()) {
    emit(makeEvent(EventKind::ThreadEnd, T));
    T.Status = ThreadStatus::Finished;
    return;
  }
  Frame &Caller = T.Stack.back();
  if (Done.RetDst != NoReg)
    Caller.Regs[Done.RetDst] = RetVal;
}

void VM::step(ThreadId Tid) {
  ThreadState &T = Threads[Tid];
  assert(T.isLive() && "stepping a dead thread");
  assert(!T.Stack.empty() && "live thread with empty stack");

  Frame &F = T.Stack.back();
  assert(F.Pc < F.Func->instrs().size() && "pc ran past function end");
  const Instr &I = F.Func->instrs()[F.Pc];
  execInstr(T, F, I);
}

InstrClass narada::classifyOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt:
  case Opcode::ConstBool:
  case Opcode::ConstNull:
  case Opcode::Move:
  case Opcode::RandInt:
  case Opcode::UnOp:
  case Opcode::BinOp:
    return InstrClass::Alu;
  case Opcode::LoadField:
  case Opcode::StoreField:
  case Opcode::NewObject:
    return InstrClass::Heap;
  case Opcode::Invoke:
  case Opcode::Ret:
    return InstrClass::Call;
  case Opcode::MonitorEnter:
  case Opcode::MonitorExit:
    return InstrClass::Monitor;
  case Opcode::Jump:
  case Opcode::Branch:
    return InstrClass::Branch;
  case Opcode::SpawnThread:
    return InstrClass::Thread;
  }
  narada_unreachable("unknown opcode");
}

void VM::execInstr(ThreadState &T, Frame &F, const Instr &I) {
  ++Stats.InstrByOp[static_cast<unsigned>(I.Op)];

  auto NullCheck = [&](const Value &V, const char *What) -> bool {
    if (V.isRef())
      return true;
    fault(T, formatString("null dereference: %s at %s:%u", What,
                          F.Func->name().c_str(), F.Pc));
    return false;
  };

  switch (I.Op) {
  case Opcode::ConstInt:
    F.Regs[I.Dst] = Value::makeInt(I.Imm);
    ++F.Pc;
    return;
  case Opcode::ConstBool:
    F.Regs[I.Dst] = Value::makeBool(I.Imm != 0);
    ++F.Pc;
    return;
  case Opcode::ConstNull:
    F.Regs[I.Dst] = Value::makeNull();
    ++F.Pc;
    return;
  case Opcode::Move:
    F.Regs[I.Dst] = F.Regs[I.A];
    ++F.Pc;
    return;
  case Opcode::RandInt:
    F.Regs[I.Dst] = Value::makeInt(
        static_cast<int64_t>(Rand.nextBelow(1u << 30)));
    ++F.Pc;
    return;

  case Opcode::UnOp: {
    const Value &A = F.Regs[I.A];
    if (I.UnaryOperator == UnaryOp::Neg)
      F.Regs[I.Dst] = Value::makeInt(-A.asInt());
    else
      F.Regs[I.Dst] = Value::makeBool(!A.asBool());
    ++F.Pc;
    return;
  }

  case Opcode::BinOp: {
    const Value &A = F.Regs[I.A];
    const Value &B = F.Regs[I.B];
    switch (I.BinaryOperator) {
    case BinaryOp::Add:
      F.Regs[I.Dst] = Value::makeInt(A.asInt() + B.asInt());
      break;
    case BinaryOp::Sub:
      F.Regs[I.Dst] = Value::makeInt(A.asInt() - B.asInt());
      break;
    case BinaryOp::Mul:
      F.Regs[I.Dst] = Value::makeInt(A.asInt() * B.asInt());
      break;
    case BinaryOp::Div:
      if (B.asInt() == 0) {
        fault(T, formatString("division by zero at %s:%u",
                              F.Func->name().c_str(), F.Pc));
        return;
      }
      F.Regs[I.Dst] = Value::makeInt(A.asInt() / B.asInt());
      break;
    case BinaryOp::Rem:
      if (B.asInt() == 0) {
        fault(T, formatString("division by zero at %s:%u",
                              F.Func->name().c_str(), F.Pc));
        return;
      }
      F.Regs[I.Dst] = Value::makeInt(A.asInt() % B.asInt());
      break;
    case BinaryOp::Eq:
      F.Regs[I.Dst] = Value::makeBool(A == B);
      break;
    case BinaryOp::Ne:
      F.Regs[I.Dst] = Value::makeBool(A != B);
      break;
    case BinaryOp::Lt:
      F.Regs[I.Dst] = Value::makeBool(A.asInt() < B.asInt());
      break;
    case BinaryOp::Le:
      F.Regs[I.Dst] = Value::makeBool(A.asInt() <= B.asInt());
      break;
    case BinaryOp::Gt:
      F.Regs[I.Dst] = Value::makeBool(A.asInt() > B.asInt());
      break;
    case BinaryOp::Ge:
      F.Regs[I.Dst] = Value::makeBool(A.asInt() >= B.asInt());
      break;
    case BinaryOp::And:
      F.Regs[I.Dst] = Value::makeBool(A.asBool() && B.asBool());
      break;
    case BinaryOp::Or:
      F.Regs[I.Dst] = Value::makeBool(A.asBool() || B.asBool());
      break;
    }
    ++F.Pc;
    return;
  }

  case Opcode::LoadField: {
    const Value &Base = F.Regs[I.A];
    if (!NullCheck(Base, ("read of field '" + I.Member + "'").c_str()))
      return;
    HeapObject &Obj = TheHeap.object(Base.asRef());
    assert(I.FieldIndex < Obj.Fields.size() && "field index out of layout");
    Value Read = Obj.Fields[I.FieldIndex];
    F.Regs[I.Dst] = Read;

    TraceEvent E = makeEvent(EventKind::ReadField, T);
    E.Obj = Base.asRef();
    E.ClassName = Obj.Class->Name;
    E.Field = I.Member;
    E.FieldIndex = I.FieldIndex;
    E.Val = Read;
    emit(E);
    ++F.Pc;
    return;
  }

  case Opcode::StoreField: {
    const Value &Base = F.Regs[I.A];
    if (!NullCheck(Base, ("write of field '" + I.Member + "'").c_str()))
      return;
    HeapObject &Obj = TheHeap.object(Base.asRef());
    assert(I.FieldIndex < Obj.Fields.size() && "field index out of layout");
    Value NewVal = F.Regs[I.B];
    Obj.Fields[I.FieldIndex] = NewVal;

    TraceEvent E = makeEvent(EventKind::WriteField, T);
    E.Obj = Base.asRef();
    E.ClassName = Obj.Class->Name;
    E.Field = I.Member;
    E.FieldIndex = I.FieldIndex;
    E.Val = NewVal;
    emit(E);
    ++F.Pc;
    return;
  }

  case Opcode::NewObject: {
    const ClassInfo *Class = M.programInfo().findClass(I.ClassName);
    assert(Class && "lowering validated the class");
    ObjectId Id = Class->IsBuiltin ? TheHeap.allocateArray(Class, 0)
                                   : TheHeap.allocate(Class);
    F.Regs[I.Dst] = Value::makeRef(Id);

    TraceEvent E = makeEvent(EventKind::Alloc, T);
    E.Obj = Id;
    E.ClassName = Class->Name;
    emit(E);
    ++F.Pc;
    return;
  }

  case Opcode::Invoke: {
    const Value &Receiver = F.Regs[I.A];
    if (!NullCheck(Receiver, ("call of '" + I.Member + "'").c_str()))
      return;
    if (!I.Callee) {
      execBuiltinInvoke(T, F, I);
      return;
    }

    bool ClientBoundary = F.Func->kind() != IRFunction::Kind::Method;
    std::vector<Value> Args;
    Args.reserve(I.Args.size() + 1);
    Args.push_back(Receiver);
    for (Reg R : I.Args)
      Args.push_back(F.Regs[R]);

    if (ClientBoundary) {
      TraceEvent E = makeEvent(EventKind::ClientCall, T);
      E.Method = I.Member;
      E.ClassName = I.ClassName;
      E.Receiver = Receiver.asRef();
      E.Args = Args;
      emit(E);
    }

    ++F.Pc; // Resume after the call upon return.

    if (T.Stack.size() >= MaxCallDepth) {
      fault(T, formatString("call stack overflow (depth %zu) invoking "
                            "'%s.%s'",
                            T.Stack.size(), I.ClassName.c_str(),
                            I.Member.c_str()));
      return;
    }

    Frame Callee;
    Callee.Func = I.Callee;
    Callee.Regs.resize(I.Callee->numRegs());
    for (size_t ArgIdx = 0; ArgIdx != Args.size(); ++ArgIdx)
      Callee.Regs[ArgIdx] = Args[ArgIdx];
    Callee.RetDst = I.Dst;
    Callee.IsClientBoundary = ClientBoundary;
    T.Stack.push_back(std::move(Callee));
    return;
  }

  case Opcode::MonitorEnter: {
    const Value &LockVal = F.Regs[I.A];
    if (!NullCheck(LockVal, "monitor enter"))
      return;
    HeapObject &Obj = TheHeap.object(LockVal.asRef());
    if (Obj.MonitorOwner != NoThread && Obj.MonitorOwner != T.Id) {
      if (T.Status != ThreadStatus::Blocked)
        ++Stats.MonitorBlocks;
      T.Status = ThreadStatus::Blocked;
      T.WaitingOn = LockVal.asRef();
      return; // Pc unchanged: the acquisition is retried when scheduled.
    }
    T.Status = ThreadStatus::Runnable;
    T.WaitingOn = NoObject;
    Obj.MonitorOwner = T.Id;
    if (++Obj.MonitorDepth == 1) {
      ++Stats.MonitorAcquires;
      TraceEvent E = makeEvent(EventKind::Lock, T);
      E.Obj = LockVal.asRef();
      emit(E);
    }
    ++F.Pc;
    return;
  }

  case Opcode::MonitorExit: {
    const Value &LockVal = F.Regs[I.A];
    if (!NullCheck(LockVal, "monitor exit"))
      return;
    HeapObject &Obj = TheHeap.object(LockVal.asRef());
    if (Obj.MonitorOwner != T.Id) {
      fault(T, formatString("monitor exit without ownership at %s:%u",
                            F.Func->name().c_str(), F.Pc));
      return;
    }
    if (--Obj.MonitorDepth == 0) {
      Obj.MonitorOwner = NoThread;
      TraceEvent E = makeEvent(EventKind::Unlock, T);
      E.Obj = LockVal.asRef();
      emit(E);
    }
    ++F.Pc;
    return;
  }

  case Opcode::Jump:
    F.Pc = I.Target;
    return;

  case Opcode::Branch:
    if (!F.Regs[I.A].asBool())
      F.Pc = I.Target;
    else
      ++F.Pc;
    return;

  case Opcode::Ret: {
    Value RetVal = I.A == NoReg ? Value::makeNull() : F.Regs[I.A];
    doReturn(T, RetVal);
    return;
  }

  case Opcode::SpawnThread: {
    std::vector<Value> Args;
    for (Reg R : I.Args)
      Args.push_back(F.Regs[R]);
    ++F.Pc;
    spawnThread(I.Callee, std::move(Args), T.Id);
    return;
  }
  }
  narada_unreachable("unknown opcode");
}

void VM::execBuiltinInvoke(ThreadState &T, Frame &F, const Instr &I) {
  const Value &Receiver = F.Regs[I.A];
  HeapObject &Obj = TheHeap.object(Receiver.asRef());
  assert(Obj.Class && Obj.Class->IsBuiltin && "builtin call on user object");

  auto BoundsCheck = [&](int64_t Index) -> bool {
    if (Index >= 0 && static_cast<size_t>(Index) < Obj.Elems.size())
      return true;
    fault(T, formatString("array index %lld out of bounds (size %zu) at "
                          "%s:%u",
                          static_cast<long long>(Index), Obj.Elems.size(),
                          F.Func->name().c_str(), F.Pc));
    return false;
  };

  if (I.Member == ConstructorName) {
    int64_t Size = F.Regs[I.Args[0]].asInt();
    if (Size < 0) {
      fault(T, formatString("negative array size %lld at %s:%u",
                            static_cast<long long>(Size),
                            F.Func->name().c_str(), F.Pc));
      return;
    }
    Obj.Elems.assign(static_cast<size_t>(Size), 0);
    ++F.Pc;
    return;
  }

  if (I.Member == "get") {
    int64_t Index = F.Regs[I.Args[0]].asInt();
    if (!BoundsCheck(Index))
      return;
    int64_t Read = Obj.Elems[static_cast<size_t>(Index)];
    F.Regs[I.Dst] = Value::makeInt(Read);

    TraceEvent E = makeEvent(EventKind::ReadElem, T);
    E.Obj = Receiver.asRef();
    E.ClassName = Obj.Class->Name;
    E.FieldIndex = static_cast<unsigned>(Index);
    E.Val = Value::makeInt(Read);
    emit(E);
    ++F.Pc;
    return;
  }

  if (I.Member == "set") {
    int64_t Index = F.Regs[I.Args[0]].asInt();
    if (!BoundsCheck(Index))
      return;
    int64_t NewVal = F.Regs[I.Args[1]].asInt();
    Obj.Elems[static_cast<size_t>(Index)] = NewVal;

    TraceEvent E = makeEvent(EventKind::WriteElem, T);
    E.Obj = Receiver.asRef();
    E.ClassName = Obj.Class->Name;
    E.FieldIndex = static_cast<unsigned>(Index);
    E.Val = Value::makeInt(NewVal);
    emit(E);
    ++F.Pc;
    return;
  }

  if (I.Member == "length") {
    F.Regs[I.Dst] = Value::makeInt(static_cast<int64_t>(Obj.Elems.size()));
    ++F.Pc;
    return;
  }

  narada_unreachable("unknown builtin method");
}
