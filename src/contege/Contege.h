//===- contege/Contege.h - Random concurrent test generation ----*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ConTeGe-style baseline (Pradel & Gross, PLDI'12), the system the paper
/// compares against in §5.  ConTeGe generates *random* concurrent tests: a
/// sequential prefix that builds objects and drives the class under test to
/// some state, then two suffixes of random calls executed by two threads
/// against the same instance.  Its oracle is a thread-safety violation:
/// the concurrent execution crashes or deadlocks while every linearization
/// of the two suffixes runs cleanly.
///
/// The contrast the paper draws — and this module reproduces — is search
/// strategy: ConTeGe samples the (method pair × object sharing) space
/// blindly, so it needs thousands of tests where Narada's analysis-directed
/// synthesis needs tens, and it only notices races whose interleavings
/// *crash*; silent lost-update races are invisible to its oracle.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_CONTEGE_CONTEGE_H
#define NARADA_CONTEGE_CONTEGE_H

#include "runtime/Execution.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace narada {

/// Generation and execution parameters.
struct ContegeOptions {
  uint64_t Seed = 1;
  unsigned MaxTests = 200;        ///< Tests to generate and run.
  unsigned PrefixCalls = 3;       ///< Random calls before the threads fork.
  unsigned SuffixCalls = 2;       ///< Random calls per concurrent thread.
  unsigned SchedulesPerTest = 6;  ///< Interleavings tried per test.
  unsigned BatchSize = 50;        ///< Tests compiled per batch.
  bool StopAtFirstViolation = false;
  /// Also count silent data races (via the HB detector) for comparison;
  /// the real ConTeGe oracle ignores them.
  bool TrackSilentRaces = true;
};

/// What the baseline found.
struct ContegeResult {
  unsigned TestsGenerated = 0;
  unsigned ViolationsFound = 0;       ///< Crash/deadlock thread-safety
                                      ///< violations (the ConTeGe oracle).
  unsigned TestsToFirstViolation = 0; ///< 0 when none found.
  unsigned SilentRacyTests = 0;       ///< Tests with HB races but no crash.
  std::vector<std::string> ViolatingTests; ///< Source of violating tests.
  double Seconds = 0.0;
};

/// Runs the baseline against class \p CutClass of \p LibrarySource.
Result<ContegeResult> runContege(std::string_view LibrarySource,
                                 const std::string &CutClass,
                                 const ContegeOptions &Options = {});

} // namespace narada

#endif // NARADA_CONTEGE_CONTEGE_H
