//===- contege/Contege.cpp - Random concurrent test generation -----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "contege/Contege.h"

#include "detect/HBDetector.h"
#include "obs/Log.h"
#include "obs/Span.h"
#include "support/RNG.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <map>

using namespace narada;

namespace {

/// Generates one random test (plus its two linearizations) as source text.
class TestGenerator {
public:
  TestGenerator(const ProgramInfo &Info, const std::string &CutClass,
                RNG &Rand, const ContegeOptions &Options)
      : Info(Info), CutClass(CutClass), Rand(Rand), Options(Options) {}

  /// Emits three tests: Name (concurrent), Name_lin1, Name_lin2.
  std::string generate(const std::string &Name);

private:
  /// Emits statements creating an instance of \p ClassName into \p Body;
  /// returns the variable name, or "null" when construction is impossible.
  std::string createInstance(const std::string &ClassName,
                             std::string &Body, unsigned Depth);

  /// A value expression of type \p Ty: a pool variable, a literal, or a
  /// newly created instance.
  std::string makeValue(const Type &Ty, std::string &Body, unsigned Depth);

  /// Emits one random call on \p Receiver (a variable of class
  /// \p ClassName); results of class type are added to the pool.
  void emitRandomCall(const std::string &Receiver,
                      const std::string &ClassName, std::string &Body,
                      bool AddResultToPool);

  std::string freshVar() { return formatString("g%u", VarCounter++); }

  const ProgramInfo &Info;
  std::string CutClass;
  RNG &Rand;
  const ContegeOptions &Options;
  unsigned VarCounter = 0;
  std::map<std::string, std::vector<std::string>> Pool; ///< class -> vars.
};

} // namespace

std::string TestGenerator::makeValue(const Type &Ty, std::string &Body,
                                     unsigned Depth) {
  if (Ty.isInt())
    return std::to_string(Rand.nextBelow(8));
  if (Ty.isBool())
    return Rand.chance(1, 2) ? "true" : "false";
  assert(Ty.isClass() && "parameters are int, bool or class");

  auto It = Pool.find(Ty.className());
  if (It != Pool.end() && !It->second.empty() && Rand.chance(2, 3))
    return It->second[Rand.nextBelow(It->second.size())];
  return createInstance(Ty.className(), Body, Depth);
}

std::string TestGenerator::createInstance(const std::string &ClassName,
                                          std::string &Body,
                                          unsigned Depth) {
  if (Depth > 3)
    return "null";
  const ClassInfo *Class = Info.findClass(ClassName);
  if (!Class)
    return "null";

  std::vector<std::string> Args;
  if (const MethodInfo *Ctor = Class->findMethod(ConstructorName))
    for (const Type &ParamTy : Ctor->ParamTypes)
      Args.push_back(makeValue(ParamTy, Body, Depth + 1));

  std::string Var = freshVar();
  Body += formatString("  var %s: %s = new %s", Var.c_str(),
                       ClassName.c_str(), ClassName.c_str());
  if (!Args.empty())
    Body += "(" + join(Args, ", ") + ")";
  Body += ";\n";
  Pool[ClassName].push_back(Var);
  return Var;
}

void TestGenerator::emitRandomCall(const std::string &Receiver,
                                   const std::string &ClassName,
                                   std::string &Body,
                                   bool AddResultToPool) {
  const ClassInfo *Class = Info.findClass(ClassName);
  std::vector<const MethodInfo *> Candidates;
  for (const MethodInfo &M : Class->Methods)
    if (M.Name != ConstructorName)
      Candidates.push_back(&M);
  if (Candidates.empty())
    return;
  const MethodInfo *Method = Candidates[Rand.nextBelow(Candidates.size())];

  std::vector<std::string> Args;
  for (const Type &ParamTy : Method->ParamTypes)
    Args.push_back(makeValue(ParamTy, Body, 1));

  std::string Call = formatString("%s.%s(%s)", Receiver.c_str(),
                                  Method->Name.c_str(),
                                  join(Args, ", ").c_str());
  if (Method->ReturnType.isClass() && AddResultToPool) {
    std::string Var = freshVar();
    Body += formatString("  var %s: %s = %s;\n", Var.c_str(),
                         Method->ReturnType.className().c_str(),
                         Call.c_str());
    Pool[Method->ReturnType.className()].push_back(Var);
    return;
  }
  if (Method->ReturnType.isVoid()) {
    Body += "  " + Call + ";\n";
    return;
  }
  std::string Var = freshVar();
  Body += formatString("  var %s: %s = %s;\n", Var.c_str(),
                       Method->ReturnType.str().c_str(), Call.c_str());
}

std::string TestGenerator::generate(const std::string &Name) {
  Pool.clear();
  VarCounter = 0;

  // Shared prefix: create the class under test, then random warm-up calls.
  std::string Prefix;
  std::string Cut = createInstance(CutClass, Prefix, 0);
  for (unsigned I = 0; I < Options.PrefixCalls; ++I) {
    // Pick any pool object; bias toward the class under test.
    std::string Receiver = Cut;
    std::string ReceiverClass = CutClass;
    if (!Rand.chance(1, 2)) {
      std::vector<std::pair<std::string, std::string>> All;
      for (const auto &[ClassName, Vars] : Pool)
        for (const std::string &Var : Vars)
          All.emplace_back(ClassName, Var);
      if (!All.empty()) {
        auto &[C, V] = All[Rand.nextBelow(All.size())];
        ReceiverClass = C;
        Receiver = V;
      }
    }
    emitRandomCall(Receiver, ReceiverClass, Prefix,
                   /*AddResultToPool=*/true);
  }

  // Two random suffixes against the same instance under test.  Each suffix
  // runs in its own spawn scope: objects created while generating one
  // suffix are local to it, so the pool is snapshotted and restored.
  auto PoolAfterPrefix = Pool;
  auto MakeSuffix = [&] {
    Pool = PoolAfterPrefix;
    std::string Suffix;
    for (unsigned I = 0; I < Options.SuffixCalls; ++I)
      emitRandomCall(Cut, CutClass, Suffix, /*AddResultToPool=*/false);
    Pool = PoolAfterPrefix;
    return Suffix;
  };
  std::string Suffix1 = MakeSuffix();
  std::string Suffix2 = MakeSuffix();

  auto Indent = [](const std::string &Body) {
    std::string Out;
    for (const std::string &Line : split(Body, '\n'))
      if (!Line.empty())
        Out += "  " + Line + "\n";
    return Out;
  };

  std::string Out;
  Out += "test " + Name + " {\n" + Prefix;
  Out += "  spawn {\n" + Indent(Suffix1) + "  }\n";
  Out += "  spawn {\n" + Indent(Suffix2) + "  }\n";
  Out += "}\n";
  Out += "test " + Name + "_lin1 {\n" + Prefix + Suffix1 + Suffix2 + "}\n";
  Out += "test " + Name + "_lin2 {\n" + Prefix + Suffix2 + Suffix1 + "}\n";
  return Out;
}

Result<ContegeResult> narada::runContege(std::string_view LibrarySource,
                                         const std::string &CutClass,
                                         const ContegeOptions &Options) {
  obs::Span ContegeSpan("contege");
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  Timer Clock;
  // Compile once up front for the symbol tables the generator needs.
  Result<CompiledProgram> Base = compileProgram(LibrarySource);
  if (!Base)
    return Base.error();
  if (!Base->Info->findClass(CutClass))
    return Error(formatString("class under test '%s' not found",
                              CutClass.c_str()));

  RNG Rand(Options.Seed);
  ContegeResult Out;

  unsigned Generated = 0;
  while (Generated < Options.MaxTests) {
    unsigned Batch = std::min(Options.BatchSize,
                              Options.MaxTests - Generated);

    // Generate a batch and compile it together with the library.
    std::vector<std::string> Names;
    std::vector<std::string> Sources;
    std::string BatchSource(LibrarySource);
    for (unsigned I = 0; I < Batch; ++I) {
      TestGenerator Gen(*Base->Info, CutClass, Rand, Options);
      std::string Name = formatString("ctg_%u", Generated + I);
      std::string TestSource = Gen.generate(Name);
      Names.push_back(Name);
      Sources.push_back(TestSource);
      BatchSource += "\n" + TestSource;
    }
    Result<CompiledProgram> Compiled = [&]() {
      obs::Span CompileSpan("compile_batch");
      return compileProgram(BatchSource);
    }();
    Metrics.counter("contege.batches_compiled").inc();
    if (!Compiled)
      return Error("internal: generated ConTeGe batch failed to compile: " +
                   Compiled.error().str());

    for (unsigned I = 0; I < Batch; ++I) {
      const std::string &Name = Names[I];
      ++Out.TestsGenerated;
      Metrics.counter("contege.tests_generated").inc();

      bool Misbehaved = false;
      bool SilentRace = false;
      for (unsigned Sched = 0;
           Sched < Options.SchedulesPerTest && !Misbehaved; ++Sched) {
        obs::Span ScheduleSpan("schedule");
        Metrics.counter("contege.schedules_explored").inc();
        HBDetector HB;
        RandomPolicy Policy(Options.Seed * 7919 + Generated + I + Sched);
        Result<TestRun> Run =
            runTest(*Compiled->Module, Name, Policy, /*RandSeed=*/1,
                    Options.TrackSilentRaces ? &HB : nullptr);
        if (!Run)
          return Run.error();
        Misbehaved = Run->Result.Faulted || Run->Result.Deadlocked;
        SilentRace = SilentRace || !HB.races().empty();
      }

      if (Misbehaved) {
        // Thread-safety violation only if every linearization is clean.
        bool LinearizationsClean = true;
        for (const char *Suffix : {"_lin1", "_lin2"}) {
          Metrics.counter("contege.linearization_runs").inc();
          Result<TestRun> Run =
              runTestSequential(*Compiled->Module, Name + Suffix);
          if (!Run)
            return Run.error();
          if (Run->Result.Faulted || Run->Result.Deadlocked)
            LinearizationsClean = false;
        }
        if (LinearizationsClean) {
          ++Out.ViolationsFound;
          Metrics.counter("contege.violations_found").inc();
          NARADA_LOG_INFO("contege: violation in test %u (%s)",
                          Out.TestsGenerated, Name.c_str());
          Out.ViolatingTests.push_back(Sources[I]);
          if (Out.TestsToFirstViolation == 0)
            Out.TestsToFirstViolation = Out.TestsGenerated;
          if (Options.StopAtFirstViolation) {
            Out.Seconds = Clock.seconds();
            return Out;
          }
        }
      } else if (SilentRace) {
        ++Out.SilentRacyTests;
        Metrics.counter("contege.silent_racy_tests").inc();
      }
    }
    Generated += Batch;
  }
  Out.Seconds = Clock.seconds();
  return Out;
}
