//===- detect/Detection.h - Detection orchestration -------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a synthesized multithreaded test through the full detector stack,
/// mirroring the paper's §5 protocol (Table 5):
///
///  1. execute the test under several random schedules with the
///     happens-before and lockset detectors attached; the union of their
///     reports (deduplicated by static label pair) is the set of *detected*
///     races;
///  2. each detected race is handed to the RaceFuzzer-style confirmation
///     scheduler, which tries to *reproduce* it by pausing one thread at
///     the access;
///  3. every reproduced race is run in both access orders; differing final
///     heap states, faults or deadlocks classify it *harmful*, identical
///     states *benign* (e.g. racy writes of identical constant values —
///     the paper's C6 reset() pattern).
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_DETECT_DETECTION_H
#define NARADA_DETECT_DETECTION_H

#include "detect/RaceReport.h"
#include "explore/Explorer.h"
#include "explore/ScheduleTrace.h"
#include "runtime/Execution.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace narada {

namespace detectworker {
struct DetectIsolateContext;
} // namespace detectworker

/// How phase 1 chooses the schedules it runs (see src/explore/).
enum class ExplorationMode {
  Random,     ///< RandomRuns executions under RandomPolicy (the default).
  PCT,        ///< RandomRuns executions under PCTPolicy.
  Systematic, ///< Bounded DFS via explore::exploreSchedules; degrades to
              ///< the random loop when the schedule budget is hit before
              ///< the bounded space is exhausted.
  Replay,     ///< Exactly one execution of DetectOptions::ReplayTrace.
};

/// Parses "random" / "pct" / "systematic" / "replay"; false on anything
/// else (\p Mode untouched).
bool parseExplorationMode(const std::string &Name, ExplorationMode &Mode);
const char *explorationModeName(ExplorationMode Mode);

/// Options for the detection protocol.
struct DetectOptions {
  unsigned RandomRuns = 12;    ///< Random-schedule detection executions.
  unsigned ConfirmAttempts = 4; ///< Scheduler seeds tried per confirmation.
  uint64_t BaseSeed = 1;
  uint64_t MaxSteps = 400'000;
  bool UseHB = true;
  bool UseLockSet = true;
  /// Schedule source for phase 1.  Confirmation (phases 2 + 3) is
  /// identical in every mode.
  ExplorationMode Mode = ExplorationMode::Random;
  /// Budgets for Mode == Systematic.  MaxSteps/RandSeed in here are
  /// overridden from the fields above so budget escalation stays uniform.
  explore::ExploreOptions Explore;
  /// When non-empty, every race found in phase 1 emits a minimized,
  /// replayable witness trace file under this directory (all modes).
  std::string WitnessDir;
  /// The trace to execute when Mode == Replay.  Shared because
  /// DetectOptions is copied per worker; the trace is read-only.
  std::shared_ptr<const explore::ScheduleTrace> ReplayTrace;
  /// Watchdog budgets.  A run that exhausts its step budget is retried
  /// with an escalated budget (MaxSteps * StepBudgetEscalation^try) up to
  /// StepLimitRetries times; if the final retry still hits the ceiling the
  /// test is quarantined — never reported as a clean schedule.
  unsigned StepLimitRetries = 2;
  uint64_t StepBudgetEscalation = 4; ///< Budget multiplier per retry (>= 2).
  /// Per-test wall-clock budget in seconds; exceeded => the test is
  /// quarantined with whatever results were already gathered.  0 disables
  /// the watchdog (the default: wall-clock cutoffs are inherently timing-
  /// dependent, so they are opt-in to keep default runs deterministic).
  double WallBudgetSeconds = 0.0;
};

/// One race after confirmation and classification.
struct ConfirmedRace {
  RaceReport Report;
  bool Reproduced = false;
  bool Harmful = false; ///< Meaningful when Reproduced.
  uint64_t HashFirstOrder = 0;
  uint64_t HashSecondOrder = 0;
};

/// The detection outcome for one test.
struct TestDetectionResult {
  std::vector<RaceReport> Detected; ///< Deduplicated by key().
  std::vector<ConfirmedRace> Races; ///< One entry per detected race.
  bool SawFault = false;
  bool SawDeadlock = false;
  /// Some run hit its step ceiling (even if a budget-escalated retry then
  /// completed) — the schedule was NOT clean end to end.
  bool SawStepLimit = false;
  /// The test was pulled from the run: its step/wall budget was exhausted
  /// after retries, or its detection crashed (exception contained by
  /// detectRacesInTests).  Results gathered before quarantine are kept,
  /// but the test must not be counted as having run clean.
  bool Quarantined = false;
  std::string QuarantineReason; ///< Human-readable; empty when !Quarantined.
  /// Phase-1 schedule accounting: executions performed (random runs,
  /// systematic schedules, or the single replay) and, for Systematic,
  /// subtrees the DPOR/preemption-bound pruning discarded.
  unsigned SchedulesRun = 0;
  uint64_t SchedulesPruned = 0;
  /// Systematic mode covered its whole bounded space (no random fallback
  /// was needed).
  bool ExplorationExhausted = false;
  /// Witness trace files written for this test (sorted by race key).
  std::vector<std::string> WitnessFiles;

  unsigned reproducedCount() const;
  unsigned harmfulCount() const;
  unsigned benignCount() const;
};

/// Runs the full protocol on \p TestName.  \p Hints adds candidate label
/// pairs from the synthesizer even if no random schedule detected them.
Result<TestDetectionResult>
detectRacesInTest(const IRModule &M, const std::string &TestName,
                  const DetectOptions &Options = {},
                  const std::vector<std::pair<std::string, std::string>>
                      &Hints = {});

/// One unit of the parallel detection stage: a test and its synthesizer
/// hint pairs.
struct TestDetectJob {
  std::string TestName;
  std::vector<std::pair<std::string, std::string>> Hints;
};

/// Runs detectRacesInTest for every job on \p JobCount worker threads
/// (1 = inline on the calling thread, 0 = one per hardware thread).  Each
/// test's schedule exploration is an independent deterministic function of
/// (module, test, options) — the VM is rebuilt per run over the shared
/// read-only module — so results are returned in input order and are
/// identical for every JobCount.  On failure the first error in input
/// order is returned.
///
/// Fault containment: an exception escaping one test's detection (e.g. an
/// injected fault — see support/FaultInjection.h; jobs run under
/// fault::ScopedUnit(index)) is captured per test and converted into a
/// quarantined TestDetectionResult carrying the exception message; every
/// other test's results are unaffected and the call still succeeds.
///
/// When \p Iso is non-null and enabled, each job instead runs in a worker
/// subprocess (detect/DetectWorker.h): soft faults quarantine identically,
/// and hard faults (SIGSEGV, OOM kill, hang) that would have taken this
/// process down are contained and quarantined with a crash classification.
Result<std::vector<TestDetectionResult>>
detectRacesInTests(const IRModule &M, const std::vector<TestDetectJob> &Jobs,
                   const DetectOptions &Options = {}, unsigned JobCount = 1,
                   const detectworker::DetectIsolateContext *Iso = nullptr);

} // namespace narada

#endif // NARADA_DETECT_DETECTION_H
