//===- detect/LockOrderDetector.h - Potential deadlock detection -*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A GoodLock-style lock-order analyzer running as an execution observer.
/// The paper's authors' companion line of work (OOPSLA'14, [22]) applies
/// the same synthesize-from-sequential-traces idea to *deadlocks*; this
/// detector provides the corresponding checking half for the tests this
/// repository synthesizes: it builds the lock-order graph — an edge X -> Y
/// whenever some thread acquires Y while holding X — and reports every
/// cycle whose edges come from different threads as a potential deadlock,
/// even when the observed schedule did not actually deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_DETECT_LOCKORDERDETECTOR_H
#define NARADA_DETECT_LOCKORDERDETECTOR_H

#include "trace/TraceEvent.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace narada {

/// One potential deadlock: a cyclic lock-acquisition order.
struct LockOrderCycle {
  /// The objects forming the cycle, in order (each acquired while holding
  /// the previous one; the last is held while acquiring the first).
  std::vector<ObjectId> Objects;
  /// Static labels of the inner acquisitions, parallel to Objects.
  std::vector<std::string> AcquireLabels;

  /// Canonical identity (rotation-normalized object sequence).
  std::string key() const;
  std::string str() const;
};

/// Observes an execution and reports lock-order cycles.
class LockOrderDetector : public ExecutionObserver {
public:
  void onEvent(const TraceEvent &Event) override;

  /// Potential deadlocks found so far (deduplicated by cycle identity).
  const std::vector<LockOrderCycle> &cycles() const { return Cycles; }

private:
  struct Edge {
    ObjectId From;
    ObjectId To;

    bool operator<(const Edge &Other) const {
      if (From != Other.From)
        return From < Other.From;
      return To < Other.To;
    }
  };

  void addEdge(ObjectId From, ObjectId To, ThreadId Thread,
               const std::string &Label);
  void findCyclesThrough(const Edge &Seed);

  /// Per-thread stack of currently held monitors, in acquisition order.
  std::map<ThreadId, std::vector<ObjectId>> Held;
  /// Lock-order graph: edge -> (threads that produced it, acquire label).
  std::map<Edge, std::set<ThreadId>> EdgeThreads;
  std::map<Edge, std::string> EdgeLabels;
  std::map<ObjectId, std::set<ObjectId>> Successors;

  std::set<std::string> Seen;
  std::vector<LockOrderCycle> Cycles;
};

} // namespace narada

#endif // NARADA_DETECT_LOCKORDERDETECTOR_H
