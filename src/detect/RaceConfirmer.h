//===- detect/RaceConfirmer.h - RaceFuzzer-style confirmation ---*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An active scheduling policy in the spirit of RaceFuzzer (Sen, PLDI'08),
/// the detector the paper feeds Narada's tests to.  Given a candidate racy
/// pair of static program points, the policy pauses the first thread that
/// is *about to* perform one of the accesses and keeps the rest of the
/// program running; when a second thread arrives at the complementary
/// access on the same memory location, the race is *reproduced* and the two
/// accesses are executed back to back, in a chosen order.  Running the pair
/// in both orders and comparing the resulting program states classifies the
/// race as harmful or benign.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_DETECT_RACECONFIRMER_H
#define NARADA_DETECT_RACECONFIRMER_H

#include "detect/RaceReport.h"
#include "runtime/Scheduler.h"
#include "support/RNG.h"

#include <optional>
#include <string>

namespace narada {

/// The active scheduler.  One instance drives one execution.
class RaceConfirmPolicy : public SchedulingPolicy {
public:
  /// \p LabelA / \p LabelB are the static labels ("Class.method:pc") of the
  /// two accesses.  \p SecondFirst chooses which access runs first once the
  /// race is reproduced (false: the paused side runs first).
  RaceConfirmPolicy(std::string LabelA, std::string LabelB, uint64_t Seed,
                    bool SecondFirst = false)
      : LabelA(std::move(LabelA)), LabelB(std::move(LabelB)), Rand(Seed),
        SecondFirst(SecondFirst) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable, VM &M) override;

  /// True once both threads were simultaneously at the candidate accesses
  /// on the same location.
  bool confirmed() const { return Confirmed.has_value(); }

  /// The reproduced race (valid when confirmed()).
  const RaceReport &confirmedRace() const { return *Confirmed; }

private:
  /// Pending-access label of thread \p T if it matches either candidate.
  std::optional<std::pair<PendingAccess, bool>> matchAt(ThreadId T, VM &M);

  std::string LabelA;
  std::string LabelB;
  RNG Rand;
  bool SecondFirst;

  ThreadId Paused = NoThread;
  PendingAccess PausedAccess;
  bool PausedIsA = false;
  unsigned PausedFor = 0;
  static constexpr unsigned PauseBudget = 4000;

  std::optional<RaceReport> Confirmed;
  ThreadId FireNext = NoThread; ///< Second racer, scheduled right after.
};

} // namespace narada

#endif // NARADA_DETECT_RACECONFIRMER_H
