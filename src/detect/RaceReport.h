//===- detect/RaceReport.h - Race reports -----------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The report format shared by all detectors: which field of which object
/// raced, at which pair of static program points, from which threads.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_DETECT_RACEREPORT_H
#define NARADA_DETECT_RACEREPORT_H

#include "runtime/Heap.h"
#include "runtime/Value.h"
#include "support/RaceKey.h"

#include <string>

namespace narada {

/// One reported race.
struct RaceReport {
  std::string Detector;       ///< "hb" (FastTrack-style) or "lockset".
  std::string ClassName;      ///< Dynamic class of the raced object.
  std::string Field;          ///< Field name, "[]" for array elements.
  ObjectId Obj = NoObject;
  bool IsElem = false;
  unsigned ElemIndex = 0;

  std::string FirstLabel;     ///< Static label of the earlier access.
  std::string SecondLabel;    ///< Static label of the later access.
  /// Verdict name of the static pre-analysis for this label pair
  /// ("MayRace"/"Unknown"/"MustGuarded"); empty when the run was
  /// dynamic-only.  Annotated after detection from the classified pairs —
  /// see staticVerdictsByRaceKey() — so reports distinguish
  /// static-predicted from dynamic-only races.
  std::string StaticVerdict;
  ThreadId FirstThread = 0;
  ThreadId SecondThread = 0;
  bool FirstIsWrite = false;
  bool SecondIsWrite = false;

  /// Identity for deduplication across runs: the raced field plus the
  /// unordered static label pair (object ids differ run to run).  The
  /// components are escaped (support/RaceKey.h) so names containing the
  /// separator characters cannot collide; on ordinary identifiers the
  /// escaped key is byte-identical to the historical concatenation.
  std::string key() const {
    return makeRaceKey(ClassName, Field, FirstLabel, SecondLabel);
  }

  std::string str() const {
    return Detector + " race on " + ClassName + "." + Field + ": " +
           FirstLabel + (FirstIsWrite ? " (write)" : " (read)") + " vs " +
           SecondLabel + (SecondIsWrite ? " (write)" : " (read)");
  }
};

} // namespace narada

#endif // NARADA_DETECT_RACEREPORT_H
