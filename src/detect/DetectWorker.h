//===- detect/DetectWorker.h - Isolated detection worker service -*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The --isolate detection stage's wire contract (support/ProcessPool.h):
/// the supervisor ships the final compiled source plus the full
/// DetectOptions in the `setup` frame; each unit frame names one
/// synthesized test (with its synthesizer hint pairs) and is answered
/// with a fully serialized TestDetectionResult.  The worker recompiles
/// the source — compilation is deterministic, so its module matches the
/// supervisor's — and runs the ordinary detectRacesInTest on it, which
/// keeps schedule exploration bit-for-bit identical to in-process mode.
///
/// A detection that throws inside the worker degrades to the same
/// quarantined result the in-process containment barrier produces; a
/// detection that takes the whole worker down (SIGSEGV, OOM kill, hang)
/// is classified by the supervisor and becomes a crash quarantine.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_DETECT_DETECTWORKER_H
#define NARADA_DETECT_DETECTWORKER_H

#include "detect/Detection.h"
#include "support/ProcessPool.h"
#include "support/Wire.h"

#include <memory>
#include <string>

namespace narada {
namespace detectworker {

/// What an isolated (--isolate) detection stage needs to re-dispatch its
/// tests into worker subprocesses.
struct DetectIsolateContext {
  pool::IsolateOptions Isolate;
  /// The exact source the detection module was compiled from
  /// (NaradaResult::FinalSource) — workers recompile it.
  std::string FinalSource;
  /// Schedule trace file for Mode == Replay (empty = none); workers
  /// reload it themselves, traces do not travel over the wire.
  std::string ReplayPath;
};

/// Appends every DetectOptions field that shapes exploration or
/// classification — the option half of the setup record, shared with the
/// daemon's submit codec (serve/Protocol.h).  ReplayTrace does not travel:
/// workers reload the trace from DetectIsolateContext::ReplayPath.
void encodeDetectOptions(wire::RecordWriter &W, const DetectOptions &Options);

/// Inverse of encodeDetectOptions; absent keys keep the defaults.  Errors
/// on an unknown exploration mode name.
Result<DetectOptions> decodeDetectOptions(const wire::RecordReader &In);

/// Encodes the `setup` frame payload: source, replay path, and every
/// DetectOptions field that shapes exploration or classification.
std::string encodeSetup(const DetectIsolateContext &Iso,
                        const DetectOptions &Options);

/// Encodes one unit request for test \p Job (index \p Unit in the
/// supervisor's job list, which doubles as the fault-injection unit id).
std::string encodeUnit(size_t Unit, const TestDetectJob &Job);

/// Serializes \p Result as reply records on \p Out (detected=/race=
/// carry nested escaped records per race).
void encodeDetectResult(wire::RecordWriter &Out,
                        const TestDetectionResult &Result);

/// Inverse of encodeDetectResult.
TestDetectionResult decodeDetectResult(const wire::RecordReader &In);

/// Worker-side service: the recompiled module plus decoded options,
/// serving one detectRacesInTest call per unit request.
class Service {
public:
  ~Service();

  static Result<std::unique_ptr<Service>> create(
      const wire::RecordReader &Setup);

  /// Handles one unit request.  Soft failures quarantine the test exactly
  /// like the in-process containment barrier; detection errors come back
  /// as err= records; std::bad_alloc propagates for the graceful oom
  /// crash frame; hard faults never return.
  void runUnit(const wire::RecordReader &Request, wire::RecordWriter &Reply);

private:
  Service();
  struct State;
  std::unique_ptr<State> S;
};

} // namespace detectworker
} // namespace narada

#endif // NARADA_DETECT_DETECTWORKER_H
