//===- detect/Detection.cpp - Detection orchestration --------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "detect/Detection.h"

#include "detect/HBDetector.h"
#include "detect/LockSetDetector.h"
#include "detect/RaceConfirmer.h"
#include "obs/Log.h"
#include "obs/Span.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <map>
#include <optional>
#include <set>

using namespace narada;

unsigned TestDetectionResult::reproducedCount() const {
  unsigned N = 0;
  for (const ConfirmedRace &R : Races)
    if (R.Reproduced)
      ++N;
  return N;
}

unsigned TestDetectionResult::harmfulCount() const {
  unsigned N = 0;
  for (const ConfirmedRace &R : Races)
    if (R.Reproduced && R.Harmful)
      ++N;
  return N;
}

unsigned TestDetectionResult::benignCount() const {
  unsigned N = 0;
  for (const ConfirmedRace &R : Races)
    if (R.Reproduced && !R.Harmful)
      ++N;
  return N;
}

namespace {

/// Hashes the values flowing through the two candidate accesses.  A racy
/// *read* does not change the heap, but the value it observes depends on
/// the access order — h2's getCurrentValue() race is harmful precisely
/// because concurrent readers see torn sequence states.  This observer
/// captures that order-sensitivity.
class AccessValueHasher : public ExecutionObserver {
public:
  AccessValueHasher(std::string LabelA, std::string LabelB)
      : LabelA(std::move(LabelA)), LabelB(std::move(LabelB)) {}

  void onEvent(const TraceEvent &Event) override {
    if (!Event.isAccess())
      return;
    std::string Label = Event.staticLabel();
    if (Label != LabelA && Label != LabelB)
      return;
    mix(static_cast<uint64_t>(Event.Val.kind()));
    if (Event.Val.isInt())
      mix(static_cast<uint64_t>(Event.Val.asInt()));
    else if (Event.Val.isBool())
      mix(Event.Val.asBool() ? 1 : 0);
    else if (Event.Val.isRef())
      mix(Event.Val.asRef());
  }

  uint64_t hash() const { return Hash; }

private:
  void mix(uint64_t V) {
    for (int Shift = 0; Shift < 64; Shift += 8) {
      Hash ^= (V >> Shift) & 0xff;
      Hash *= 0x100000001b3ULL;
    }
  }

  std::string LabelA;
  std::string LabelB;
  uint64_t Hash = 0xcbf29ce484222325ULL;
};

/// One confirmation execution; returns the policy (confirmed or not) plus
/// the run outcome.
struct ConfirmRun {
  bool Confirmed = false;
  RaceReport Report;
  uint64_t HeapHash = 0;
  uint64_t ObservedHash = 0; ///< Values seen at the racy accesses.
  bool Faulted = false;
  bool Deadlocked = false;
};

Result<ConfirmRun> runConfirm(const IRModule &M, const std::string &TestName,
                              const std::string &LabelA,
                              const std::string &LabelB, uint64_t Seed,
                              bool SecondFirst, uint64_t MaxSteps) {
  obs::Span ScheduleSpan("schedule");
  obs::MetricsRegistry::global().counter("detect.schedules_explored").inc();
  obs::MetricsRegistry::global().counter("detect.confirm_runs").inc();
  RaceConfirmPolicy Policy(LabelA, LabelB, Seed, SecondFirst);
  AccessValueHasher Hasher(LabelA, LabelB);
  Result<TestRun> Run = runTest(M, TestName, Policy, /*RandSeed=*/1, &Hasher,
                                MaxSteps);
  if (!Run)
    return Run.error();
  ConfirmRun Out;
  Out.Confirmed = Policy.confirmed();
  if (Out.Confirmed)
    Out.Report = Policy.confirmedRace();
  Out.HeapHash = Run->HeapHash;
  Out.ObservedHash = Hasher.hash();
  Out.Faulted = Run->Result.Faulted;
  Out.Deadlocked = Run->Result.Deadlocked;
  return Out;
}

} // namespace

Result<TestDetectionResult> narada::detectRacesInTest(
    const IRModule &M, const std::string &TestName,
    const DetectOptions &Options,
    const std::vector<std::pair<std::string, std::string>> &Hints) {
  obs::Span TestSpan("test");
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  Metrics.counter("detect.tests_run").inc();

  TestDetectionResult Out;
  std::map<std::string, RaceReport> ByKey;

  // Phase 1: random schedules with the passive detectors attached.
  for (unsigned RunIdx = 0; RunIdx < Options.RandomRuns; ++RunIdx) {
    obs::Span ScheduleSpan("schedule");
    Metrics.counter("detect.schedules_explored").inc();
    HBDetector HB;
    LockSetDetector LockSet;
    ObserverMux Mux;
    if (Options.UseHB)
      Mux.add(&HB);
    if (Options.UseLockSet)
      Mux.add(&LockSet);

    RandomPolicy Policy(Options.BaseSeed + RunIdx);
    Result<TestRun> Run = runTest(M, TestName, Policy, /*RandSeed=*/1, &Mux,
                                  Options.MaxSteps);
    if (!Run)
      return Run.error();
    Out.SawFault = Out.SawFault || Run->Result.Faulted;
    Out.SawDeadlock = Out.SawDeadlock || Run->Result.Deadlocked;

    for (const RaceReport &R : HB.races())
      ByKey.emplace(R.key(), R);
    for (const RaceReport &R : LockSet.races())
      ByKey.emplace(R.key(), R);
  }

  for (const auto &[Key, Report] : ByKey)
    Out.Detected.push_back(Report);
  Metrics.counter("detect.races_detected").inc(Out.Detected.size());
  NARADA_LOG_DEBUG("detect %s: %zu distinct races after %u random runs",
                   TestName.c_str(), Out.Detected.size(),
                   Options.RandomRuns);

  // Phase 2 + 3: confirm and classify each detected race (and each
  // synthesizer hint that no random schedule happened to expose).
  std::set<std::string> ConfirmTargets;
  std::vector<std::pair<std::string, std::string>> LabelPairs;
  for (const RaceReport &R : Out.Detected) {
    if (ConfirmTargets.insert(R.key()).second)
      LabelPairs.emplace_back(R.FirstLabel, R.SecondLabel);
  }
  for (const auto &[A, B] : Hints) {
    std::string HintKey = A < B ? A + "~" + B : B + "~" + A;
    if (ConfirmTargets.insert("hint:" + HintKey).second) {
      LabelPairs.emplace_back(A, B);
      Metrics.counter("detect.hint_targets").inc();
    }
  }

  std::set<std::string> Classified;
  for (const auto &[LabelA, LabelB] : LabelPairs) {
    obs::Span ConfirmSpan("confirm");
    ConfirmedRace Entry;
    for (unsigned Attempt = 0; Attempt < Options.ConfirmAttempts;
         ++Attempt) {
      Metrics.counter("detect.confirm_attempts").inc();
      uint64_t Seed = Options.BaseSeed + 1000 + Attempt;
      Result<ConfirmRun> FirstOrder =
          runConfirm(M, TestName, LabelA, LabelB, Seed,
                     /*SecondFirst=*/false, Options.MaxSteps);
      if (!FirstOrder)
        return FirstOrder.error();
      if (!FirstOrder->Confirmed)
        continue;

      Result<ConfirmRun> SecondOrder =
          runConfirm(M, TestName, LabelA, LabelB, Seed,
                     /*SecondFirst=*/true, Options.MaxSteps);
      if (!SecondOrder)
        return SecondOrder.error();

      Entry.Reproduced = true;
      Entry.Report = FirstOrder->Report;
      Entry.HashFirstOrder = FirstOrder->HeapHash;
      Entry.HashSecondOrder =
          SecondOrder->Confirmed ? SecondOrder->HeapHash
                                 : FirstOrder->HeapHash;
      bool StateDiverges = SecondOrder->Confirmed &&
                           FirstOrder->HeapHash != SecondOrder->HeapHash;
      bool ObservationDiverges =
          SecondOrder->Confirmed &&
          FirstOrder->ObservedHash != SecondOrder->ObservedHash;
      bool Misbehaved = FirstOrder->Faulted || FirstOrder->Deadlocked ||
                        SecondOrder->Faulted || SecondOrder->Deadlocked;
      Entry.Harmful = StateDiverges || ObservationDiverges || Misbehaved;
      break;
    }
    if (!Entry.Reproduced) {
      // Keep an unreproduced placeholder so counts line up with Detected.
      Entry.Report.FirstLabel = LabelA;
      Entry.Report.SecondLabel = LabelB;
      Entry.Report.Detector = "confirm";
    }
    if (Classified.insert(Entry.Report.key()).second)
      Out.Races.push_back(std::move(Entry));
  }
  Metrics.counter("detect.races_reproduced").inc(Out.reproducedCount());
  Metrics.counter("detect.races_harmful").inc(Out.harmfulCount());
  Metrics.counter("detect.races_benign").inc(Out.benignCount());
  return Out;
}

Result<std::vector<TestDetectionResult>> narada::detectRacesInTests(
    const IRModule &M, const std::vector<TestDetectJob> &Jobs,
    const DetectOptions &Options, unsigned JobCount) {
  const unsigned Workers = resolveJobs(JobCount);
  std::vector<std::optional<Result<TestDetectionResult>>> Slots(Jobs.size());

  auto RunOne = [&](size_t I) {
    Slots[I].emplace(
        detectRacesInTest(M, Jobs[I].TestName, Options, Jobs[I].Hints));
  };

  if (Workers <= 1 || Jobs.size() <= 1) {
    for (size_t I = 0; I < Jobs.size(); ++I)
      RunOne(I);
  } else {
    // Independent schedule explorations for different tests run
    // concurrently; each slot is written by exactly one task.
    obs::SpanParent Parent{obs::Span::currentPath()};
    std::vector<std::string> WorkerNames;
    for (unsigned W = 0; W < Workers; ++W)
      WorkerNames.push_back(formatString("worker%u", W));
    ThreadPool Pool(Workers);
    Pool.parallelFor(Jobs.size(), [&](size_t I, unsigned W) {
      obs::Span WorkerSpan(WorkerNames[W], Parent);
      RunOne(I);
    });
  }

  // Merge in input order; surface the first error deterministically.
  std::vector<TestDetectionResult> Out;
  Out.reserve(Jobs.size());
  for (std::optional<Result<TestDetectionResult>> &Slot : Slots) {
    if (!Slot->hasValue())
      return Slot->error();
    Out.push_back(Slot->take());
  }
  return Out;
}
