//===- detect/Detection.cpp - Detection orchestration --------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "detect/Detection.h"

#include "detect/DetectWorker.h"
#include "detect/HBDetector.h"
#include "detect/LockSetDetector.h"
#include "detect/RaceConfirmer.h"
#include "obs/MetricsWire.h"
#include "support/ProcessPool.h"
#include "support/Wire.h"
#include "explore/Explorer.h"
#include "explore/WitnessMinimizer.h"
#include "obs/Log.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <map>
#include <optional>
#include <set>

using namespace narada;

bool narada::parseExplorationMode(const std::string &Name,
                                  ExplorationMode &Mode) {
  if (Name == "random")
    Mode = ExplorationMode::Random;
  else if (Name == "pct")
    Mode = ExplorationMode::PCT;
  else if (Name == "systematic")
    Mode = ExplorationMode::Systematic;
  else if (Name == "replay")
    Mode = ExplorationMode::Replay;
  else
    return false;
  return true;
}

const char *narada::explorationModeName(ExplorationMode Mode) {
  switch (Mode) {
  case ExplorationMode::Random:
    return "random";
  case ExplorationMode::PCT:
    return "pct";
  case ExplorationMode::Systematic:
    return "systematic";
  case ExplorationMode::Replay:
    return "replay";
  }
  narada_unreachable("unknown exploration mode");
}

unsigned TestDetectionResult::reproducedCount() const {
  unsigned N = 0;
  for (const ConfirmedRace &R : Races)
    if (R.Reproduced)
      ++N;
  return N;
}

unsigned TestDetectionResult::harmfulCount() const {
  unsigned N = 0;
  for (const ConfirmedRace &R : Races)
    if (R.Reproduced && R.Harmful)
      ++N;
  return N;
}

unsigned TestDetectionResult::benignCount() const {
  unsigned N = 0;
  for (const ConfirmedRace &R : Races)
    if (R.Reproduced && !R.Harmful)
      ++N;
  return N;
}

namespace {

/// Hashes the values flowing through the two candidate accesses.  A racy
/// *read* does not change the heap, but the value it observes depends on
/// the access order — h2's getCurrentValue() race is harmful precisely
/// because concurrent readers see torn sequence states.  This observer
/// captures that order-sensitivity.
class AccessValueHasher : public ExecutionObserver {
public:
  AccessValueHasher(std::string LabelA, std::string LabelB)
      : LabelA(std::move(LabelA)), LabelB(std::move(LabelB)) {}

  void onEvent(const TraceEvent &Event) override {
    if (!Event.isAccess())
      return;
    std::string Label = Event.staticLabel();
    if (Label != LabelA && Label != LabelB)
      return;
    mix(static_cast<uint64_t>(Event.Val.kind()));
    if (Event.Val.isInt())
      mix(static_cast<uint64_t>(Event.Val.asInt()));
    else if (Event.Val.isBool())
      mix(Event.Val.asBool() ? 1 : 0);
    else if (Event.Val.isRef())
      mix(Event.Val.asRef());
  }

  uint64_t hash() const { return Hash; }

private:
  void mix(uint64_t V) {
    for (int Shift = 0; Shift < 64; Shift += 8) {
      Hash ^= (V >> Shift) & 0xff;
      Hash *= 0x100000001b3ULL;
    }
  }

  std::string LabelA;
  std::string LabelB;
  uint64_t Hash = 0xcbf29ce484222325ULL;
};

/// One confirmation execution; returns the policy (confirmed or not) plus
/// the run outcome.
struct ConfirmRun {
  bool Confirmed = false;
  RaceReport Report;
  uint64_t HeapHash = 0;
  uint64_t ObservedHash = 0; ///< Values seen at the racy accesses.
  bool Faulted = false;
  bool Deadlocked = false;
  bool HitStepLimit = false; ///< Ran into its step budget (see retries).
};

Result<ConfirmRun> runConfirm(const IRModule &M, const std::string &TestName,
                              const std::string &LabelA,
                              const std::string &LabelB, uint64_t Seed,
                              bool SecondFirst, uint64_t MaxSteps) {
  obs::Span ScheduleSpan("schedule");
  obs::MetricsRegistry::global().counter("detect.schedules_explored").inc();
  obs::MetricsRegistry::global().counter("detect.confirm_runs").inc();
  fault::probe("detect.confirm");
  if (fault::timeoutProbe("detect.confirm.steps")) {
    // Simulated watchdog expiry: report a step-limited, unconfirmed run
    // without executing, so tests can drive the retry/quarantine path.
    ConfirmRun Out;
    Out.HitStepLimit = true;
    return Out;
  }
  RaceConfirmPolicy Policy(LabelA, LabelB, Seed, SecondFirst);
  AccessValueHasher Hasher(LabelA, LabelB);
  Result<TestRun> Run = runTest(M, TestName, Policy, /*RandSeed=*/1, &Hasher,
                                MaxSteps);
  if (!Run)
    return Run.error();
  ConfirmRun Out;
  Out.Confirmed = Policy.confirmed();
  if (Out.Confirmed)
    Out.Report = Policy.confirmedRace();
  Out.HeapHash = Run->HeapHash;
  Out.ObservedHash = Hasher.hash();
  Out.Faulted = Run->Result.Faulted;
  Out.Deadlocked = Run->Result.Deadlocked;
  Out.HitStepLimit = Run->Result.HitStepLimit;
  return Out;
}

/// The escalated step budget for retry \p Try (0 = first attempt).
uint64_t escalatedBudget(const DetectOptions &Options, unsigned Try) {
  uint64_t Budget = Options.MaxSteps;
  uint64_t Factor =
      Options.StepBudgetEscalation < 2 ? 2 : Options.StepBudgetEscalation;
  for (unsigned I = 0; I < Try; ++I)
    Budget *= Factor;
  return Budget;
}

/// runConfirm with the watchdog-retry protocol: a step-limited run is
/// retried under an escalating budget up to Options.StepLimitRetries
/// times.  The returned run still has HitStepLimit set when even the last
/// budget was exhausted — the caller quarantines then.  \p SawStepLimit is
/// latched when any attempt (retried or not) hit its ceiling.
Result<ConfirmRun>
runConfirmWithRetry(const IRModule &M, const std::string &TestName,
                    const std::string &LabelA, const std::string &LabelB,
                    uint64_t Seed, bool SecondFirst,
                    const DetectOptions &Options, bool &SawStepLimit) {
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  for (unsigned Try = 0;; ++Try) {
    Result<ConfirmRun> Run =
        runConfirm(M, TestName, LabelA, LabelB, Seed, SecondFirst,
                   escalatedBudget(Options, Try));
    if (!Run)
      return Run;
    if (!Run->HitStepLimit)
      return Run;
    SawStepLimit = true;
    Metrics.counter("detect.step_limit_runs").inc();
    if (Try >= Options.StepLimitRetries)
      return Run; // Budget exhausted even after every escalation.
    Metrics.counter("detect.retries").inc();
    NARADA_LOG_DEBUG("confirm run of %s hit step budget %llu, retrying "
                     "with x%llu budget",
                     TestName.c_str(),
                     static_cast<unsigned long long>(
                         escalatedBudget(Options, Try)),
                     static_cast<unsigned long long>(
                         Options.StepBudgetEscalation));
  }
}

/// Marks \p Out quarantined with \p Reason (first reason wins) and counts
/// it; detection results gathered so far stay attached.
void quarantine(TestDetectionResult &Out, const std::string &TestName,
                std::string Reason) {
  if (Out.Quarantined)
    return;
  Out.Quarantined = true;
  Out.QuarantineReason = std::move(Reason);
  obs::MetricsRegistry::global().counter("detect.quarantined").inc();
  NARADA_LOG_WARN("quarantined test %s: %s", TestName.c_str(),
                  Out.QuarantineReason.c_str());
}

} // namespace

Result<TestDetectionResult> narada::detectRacesInTest(
    const IRModule &M, const std::string &TestName,
    const DetectOptions &Options,
    const std::vector<std::pair<std::string, std::string>> &Hints) {
  obs::Span TestSpan("test");
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  Metrics.counter("detect.tests_run").inc();
  fault::probe("detect.test");

  TestDetectionResult Out;
  std::map<std::string, RaceReport> ByKey;

  // Watchdog: per-test wall-clock budget (0 = unlimited), checked at run
  // boundaries — a runaway single run is bounded by the step budget below.
  Timer Wall;
  auto WallExpired = [&] {
    return Options.WallBudgetSeconds > 0.0 &&
           Wall.seconds() > Options.WallBudgetSeconds;
  };
  auto WallReason = [&] {
    return formatString("wall-clock budget of %.3fs exceeded after %.3fs",
                        Options.WallBudgetSeconds, Wall.seconds());
  };

  // Phase 1: pick schedules per Options.Mode with the passive detectors
  // attached.  First-witness traces are kept per race key so witness
  // emission works uniformly across modes.
  const bool WantWitness = !Options.WitnessDir.empty();
  std::map<std::string, explore::ScheduleTrace> WitnessTraces;
  std::optional<Error> PhaseError;

  auto NoteRace = [&](const RaceReport &R,
                      const explore::ScheduleTrace &Trace) {
    if (!ByKey.emplace(R.key(), R).second || !WantWitness)
      return;
    explore::ScheduleTrace T = Trace;
    T.RaceKeys = {R.key()};
    WitnessTraces.emplace(R.key(), std::move(T));
  };

  // The randomized loop (modes Random and PCT, and the Systematic
  // fallback).  A run that exhausts its step budget is retried with an
  // escalated budget; if even the last escalation hits the ceiling the
  // test is quarantined — a runaway schedule must never pass for a clean
  // one.  Returns false when the caller must return immediately (either
  // PhaseError is set or Out was quarantined).
  auto runRandomPhase = [&]() -> bool {
    for (unsigned RunIdx = 0; RunIdx < Options.RandomRuns; ++RunIdx) {
      if (WallExpired()) {
        quarantine(Out, TestName, WallReason());
        return false;
      }
      obs::Span ScheduleSpan("schedule");
      Metrics.counter("detect.schedules_explored").inc();
      ++Out.SchedulesRun;
      fault::probe("detect.random_run");
      for (unsigned Try = 0;; ++Try) {
        // Detectors and policy are rebuilt per attempt so a retry replays
        // the identical schedule, only with more budget.
        HBDetector HB;
        LockSetDetector LockSet;
        ObserverMux Mux;
        if (Options.UseHB)
          Mux.add(&HB);
        if (Options.UseLockSet)
          Mux.add(&LockSet);

        bool Limited = fault::timeoutProbe("detect.random.steps");
        if (!Limited) {
          RandomPolicy Random(Options.BaseSeed + RunIdx);
          PCTPolicy PCT(Options.BaseSeed + RunIdx);
          SchedulingPolicy &Inner =
              Options.Mode == ExplorationMode::PCT
                  ? static_cast<SchedulingPolicy &>(PCT)
                  : static_cast<SchedulingPolicy &>(Random);
          // Recording delegates every pick, so wrapping is transparent to
          // the inner policy's schedule.
          explore::RecordingPolicy Recorder(Inner);
          SchedulingPolicy &Policy =
              WantWitness ? static_cast<SchedulingPolicy &>(Recorder)
                          : Inner;
          Result<TestRun> Run =
              runTest(M, TestName, Policy, /*RandSeed=*/1, &Mux,
                      escalatedBudget(Options, Try));
          if (!Run) {
            PhaseError = Run.error();
            return false;
          }
          Limited = Run->Result.HitStepLimit;
          if (!Limited) {
            Out.SawFault = Out.SawFault || Run->Result.Faulted;
            Out.SawDeadlock = Out.SawDeadlock || Run->Result.Deadlocked;
            explore::ScheduleTrace Trace;
            if (WantWitness)
              Trace = Recorder.trace(TestName, /*RandSeed=*/1);
            for (const RaceReport &R : HB.races())
              NoteRace(R, Trace);
            for (const RaceReport &R : LockSet.races())
              NoteRace(R, Trace);
            break;
          }
        }
        Out.SawStepLimit = true;
        Metrics.counter("detect.step_limit_runs").inc();
        if (Try >= Options.StepLimitRetries) {
          quarantine(Out, TestName,
                     formatString("random-schedule run %u exceeded its step "
                                  "budget (%llu steps after %u retries)",
                                  RunIdx,
                                  static_cast<unsigned long long>(
                                      escalatedBudget(Options, Try)),
                                  Try));
          return false;
        }
        Metrics.counter("detect.retries").inc();
      }
    }
    return true;
  };

  // The bounded DFS (mode Systematic), degrading to the randomized loop
  // when the schedule budget was hit before the pruned space was covered.
  auto runSystematicPhase = [&]() -> bool {
    struct Visitor final : explore::ScheduleVisitor {
      const DetectOptions &Options;
      TestDetectionResult &Out;
      std::function<void(const RaceReport &, const explore::ScheduleTrace &)>
          Note;
      std::function<bool()> Expired;
      std::optional<HBDetector> HB;
      std::optional<LockSetDetector> LockSet;
      ObserverMux Mux;

      Visitor(const DetectOptions &Options, TestDetectionResult &Out,
              decltype(Note) Note, decltype(Expired) Expired)
          : Options(Options), Out(Out), Note(std::move(Note)),
            Expired(std::move(Expired)) {}

      ExecutionObserver *beginSchedule(unsigned) override {
        HB.emplace();
        LockSet.emplace();
        Mux = ObserverMux();
        if (Options.UseHB)
          Mux.add(&*HB);
        if (Options.UseLockSet)
          Mux.add(&*LockSet);
        return &Mux;
      }

      bool endSchedule(const explore::ScheduleTrace &Trace,
                       const TestRun &Run) override {
        Out.SawFault = Out.SawFault || Run.Result.Faulted;
        Out.SawDeadlock = Out.SawDeadlock || Run.Result.Deadlocked;
        if (Run.Result.HitStepLimit) {
          // A step-limited schedule is recorded (its prefix branches were
          // still expanded) but the test can no longer count as clean.
          Out.SawStepLimit = true;
          obs::MetricsRegistry::global()
              .counter("detect.step_limit_runs")
              .inc();
        }
        for (const RaceReport &R : HB->races())
          Note(R, Trace);
        for (const RaceReport &R : LockSet->races())
          Note(R, Trace);
        return !Expired();
      }
    };

    explore::ExploreOptions ExOpts = Options.Explore;
    // Keep the step budget and VM seed uniform with the randomized loop so
    // the two phases explore the same per-schedule universe.
    ExOpts.MaxSteps = Options.MaxSteps;
    ExOpts.RandSeed = 1;
    Visitor V(Options, Out, NoteRace, WallExpired);
    Result<explore::ExploreOutcome> Outcome =
        explore::exploreSchedules(M, TestName, ExOpts, V);
    if (!Outcome) {
      PhaseError = Outcome.error();
      return false;
    }
    Out.SchedulesRun += Outcome->SchedulesRun;
    Out.SchedulesPruned += Outcome->Pruned;
    Out.ExplorationExhausted = Outcome->Exhausted;
    if (WallExpired()) {
      quarantine(Out, TestName, WallReason());
      return false;
    }
    if (!Outcome->Exhausted) {
      // Budget ladder bottom: the bounded space was too large, fall back
      // to the randomized policies over what remains.
      Metrics.counter("explore.fallbacks").inc();
      NARADA_LOG_DEBUG("systematic exploration of %s hit its budget after "
                       "%u schedules; falling back to %u random runs",
                       TestName.c_str(), Outcome->SchedulesRun,
                       Options.RandomRuns);
      return runRandomPhase();
    }
    return true;
  };

  // Mode Replay: exactly one execution of the recorded trace.
  auto runReplayPhase = [&]() -> bool {
    if (!Options.ReplayTrace) {
      PhaseError = Error("replay mode requires a schedule trace");
      return false;
    }
    if (Options.ReplayTrace->TestName != TestName) {
      PhaseError = Error(formatString(
          "schedule trace was recorded for test '%s', not '%s'",
          Options.ReplayTrace->TestName.c_str(), TestName.c_str()));
      return false;
    }
    obs::Span ScheduleSpan("schedule");
    Metrics.counter("detect.schedules_explored").inc();
    Metrics.counter("explore.replays").inc();
    ++Out.SchedulesRun;
    HBDetector HB;
    LockSetDetector LockSet;
    ObserverMux Mux;
    if (Options.UseHB)
      Mux.add(&HB);
    if (Options.UseLockSet)
      Mux.add(&LockSet);
    explore::ReplayPolicy Policy(*Options.ReplayTrace);
    // Replays get the fully escalated budget up front: the recorded run
    // already fit in some budget, so there is nothing to ladder.
    Result<TestRun> Run =
        runTest(M, TestName, Policy, Options.ReplayTrace->RandSeed, &Mux,
                escalatedBudget(Options, Options.StepLimitRetries));
    if (!Run) {
      PhaseError = Run.error();
      return false;
    }
    if (Policy.diverged())
      NARADA_LOG_WARN("replay of %s diverged from its recorded schedule "
                      "(trace from a different module or build?)",
                      TestName.c_str());
    Out.SawFault = Out.SawFault || Run->Result.Faulted;
    Out.SawDeadlock = Out.SawDeadlock || Run->Result.Deadlocked;
    Out.SawStepLimit = Out.SawStepLimit || Run->Result.HitStepLimit;
    for (const RaceReport &R : HB.races())
      ByKey.emplace(R.key(), R);
    for (const RaceReport &R : LockSet.races())
      ByKey.emplace(R.key(), R);
    return true;
  };

  bool PhaseOk = false;
  switch (Options.Mode) {
  case ExplorationMode::Random:
  case ExplorationMode::PCT:
    PhaseOk = runRandomPhase();
    break;
  case ExplorationMode::Systematic:
    PhaseOk = runSystematicPhase();
    break;
  case ExplorationMode::Replay:
    PhaseOk = runReplayPhase();
    break;
  }
  if (!PhaseOk) {
    if (PhaseError)
      return *PhaseError;
    return Out; // Quarantined with partial results attached.
  }

  for (const auto &[Key, Report] : ByKey)
    Out.Detected.push_back(Report);
  Metrics.counter("detect.races_detected").inc(Out.Detected.size());
  NARADA_LOG_DEBUG("detect %s: %zu distinct races after %u phase-1 "
                   "schedules",
                   TestName.c_str(), Out.Detected.size(), Out.SchedulesRun);

  // Witness emission: minimize each race's first-witness schedule to a
  // minimal preemption set, then write it as a replayable trace file.
  // WitnessTraces is a sorted map and file names are derived from
  // (test, index), so output is deterministic and --jobs-independent.
  if (WantWitness && !WitnessTraces.empty()) {
    obs::Span WitnessSpan("witness");
    unsigned Index = 0;
    for (auto &[Key, Trace] : WitnessTraces) {
      // The oracle replays a relaxed segment candidate and hands back the
      // exact re-recorded schedule iff this race key still manifests.
      explore::MinimizeOracle Oracle =
          [&, &Key = Key, &Trace = Trace](
              const std::vector<explore::SegmentReplayPolicy::Segment>
                  &Candidate) -> std::optional<explore::ScheduleTrace> {
        HBDetector HB;
        LockSetDetector LockSet;
        ObserverMux Mux;
        if (Options.UseHB)
          Mux.add(&HB);
        if (Options.UseLockSet)
          Mux.add(&LockSet);
        explore::SegmentReplayPolicy Inner(Candidate);
        explore::RecordingPolicy Recorder(Inner);
        Result<TestRun> Run = runTest(M, TestName, Recorder, Trace.RandSeed,
                                      &Mux, Options.MaxSteps);
        if (!Run || Run->Result.HitStepLimit)
          return std::nullopt;
        bool Seen = false;
        for (const RaceReport &R : HB.races())
          Seen = Seen || R.key() == Key;
        for (const RaceReport &R : LockSet.races())
          Seen = Seen || R.key() == Key;
        if (!Seen)
          return std::nullopt;
        return Recorder.trace(TestName, Trace.RandSeed);
      };
      explore::MinimizeOutcome Min = explore::minimizeWitness(Trace, Oracle);
      Metrics.counter("explore.minimized_steps").inc(Min.PreemptionsRemoved);
      std::string Path = formatString("%s/%s.w%u.trace",
                                      Options.WitnessDir.c_str(),
                                      TestName.c_str(), Index);
      ++Index;
      if (Status S = Min.Minimized.writeFile(Path); !S.ok())
        return S.error();
      Metrics.counter("explore.witnesses").inc();
      Out.WitnessFiles.push_back(std::move(Path));
      NARADA_LOG_DEBUG("witness for %s written to %s (%u -> %u "
                       "preemptions, %u candidates)",
                       Key.c_str(), Out.WitnessFiles.back().c_str(),
                       Trace.preemptions(), Min.Minimized.preemptions(),
                       Min.CandidatesTried);
    }
  }

  // Phase 2 + 3: confirm and classify each detected race (and each
  // synthesizer hint that no random schedule happened to expose).
  std::set<std::string> ConfirmTargets;
  std::vector<std::pair<std::string, std::string>> LabelPairs;
  for (const RaceReport &R : Out.Detected) {
    if (ConfirmTargets.insert(R.key()).second)
      LabelPairs.emplace_back(R.FirstLabel, R.SecondLabel);
  }
  for (const auto &[A, B] : Hints) {
    std::string HintKey = A < B ? A + "~" + B : B + "~" + A;
    if (ConfirmTargets.insert("hint:" + HintKey).second) {
      LabelPairs.emplace_back(A, B);
      Metrics.counter("detect.hint_targets").inc();
    }
  }

  std::set<std::string> Classified;
  for (const auto &[LabelA, LabelB] : LabelPairs) {
    if (WallExpired()) {
      quarantine(Out, TestName, WallReason());
      return Out;
    }
    obs::Span ConfirmSpan("confirm");
    ConfirmedRace Entry;
    for (unsigned Attempt = 0; Attempt < Options.ConfirmAttempts;
         ++Attempt) {
      Metrics.counter("detect.confirm_attempts").inc();
      uint64_t Seed = Options.BaseSeed + 1000 + Attempt;
      Result<ConfirmRun> FirstOrder = runConfirmWithRetry(
          M, TestName, LabelA, LabelB, Seed,
          /*SecondFirst=*/false, Options, Out.SawStepLimit);
      if (!FirstOrder)
        return FirstOrder.error();
      if (FirstOrder->HitStepLimit) {
        // Even the escalated budgets were exhausted: quarantine — this
        // confirmation can not be trusted to have run clean.
        quarantine(Out, TestName,
                   formatString("confirmation of %s~%s exceeded its step "
                                "budget (%llu steps after %u retries)",
                                LabelA.c_str(), LabelB.c_str(),
                                static_cast<unsigned long long>(
                                    escalatedBudget(
                                        Options, Options.StepLimitRetries)),
                                Options.StepLimitRetries));
        return Out;
      }
      if (!FirstOrder->Confirmed)
        continue;

      Result<ConfirmRun> SecondOrder = runConfirmWithRetry(
          M, TestName, LabelA, LabelB, Seed,
          /*SecondFirst=*/true, Options, Out.SawStepLimit);
      if (!SecondOrder)
        return SecondOrder.error();
      if (SecondOrder->HitStepLimit) {
        quarantine(Out, TestName,
                   formatString("confirmation of %s~%s (reversed order) "
                                "exceeded its step budget (%llu steps "
                                "after %u retries)",
                                LabelA.c_str(), LabelB.c_str(),
                                static_cast<unsigned long long>(
                                    escalatedBudget(
                                        Options, Options.StepLimitRetries)),
                                Options.StepLimitRetries));
        return Out;
      }

      Entry.Reproduced = true;
      Entry.Report = FirstOrder->Report;
      Entry.HashFirstOrder = FirstOrder->HeapHash;
      Entry.HashSecondOrder =
          SecondOrder->Confirmed ? SecondOrder->HeapHash
                                 : FirstOrder->HeapHash;
      bool StateDiverges = SecondOrder->Confirmed &&
                           FirstOrder->HeapHash != SecondOrder->HeapHash;
      bool ObservationDiverges =
          SecondOrder->Confirmed &&
          FirstOrder->ObservedHash != SecondOrder->ObservedHash;
      // Step-limited runs count as misbehaving (defense in depth: the
      // retry protocol above normally quarantines them first) — a
      // schedule that ran away is anything but clean.
      bool Misbehaved = FirstOrder->Faulted || FirstOrder->Deadlocked ||
                        FirstOrder->HitStepLimit ||
                        SecondOrder->Faulted || SecondOrder->Deadlocked ||
                        SecondOrder->HitStepLimit;
      Entry.Harmful = StateDiverges || ObservationDiverges || Misbehaved;
      break;
    }
    if (!Entry.Reproduced) {
      // Keep an unreproduced placeholder so counts line up with Detected.
      Entry.Report.FirstLabel = LabelA;
      Entry.Report.SecondLabel = LabelB;
      Entry.Report.Detector = "confirm";
    }
    if (Classified.insert(Entry.Report.key()).second)
      Out.Races.push_back(std::move(Entry));
  }
  Metrics.counter("detect.races_reproduced").inc(Out.reproducedCount());
  Metrics.counter("detect.races_harmful").inc(Out.harmfulCount());
  Metrics.counter("detect.races_benign").inc(Out.benignCount());
  return Out;
}

namespace {

/// The --isolate detection stage: one worker subprocess unit per test.
/// Soft faults come back as ordinary quarantined results built inside the
/// worker (counters travel in the metrics delta); hard faults — the worker
/// dying under a unit — are classified by the pool supervisor and degrade
/// to a crash quarantine here, with every other test unaffected.
Result<std::vector<TestDetectionResult>>
detectIsolated(const std::vector<TestDetectJob> &Jobs,
               const DetectOptions &Options, unsigned JobCount,
               const detectworker::DetectIsolateContext &Iso) {
  pool::ProcessPool Pool(Iso.Isolate.poolOptions(
      resolveJobs(JobCount), detectworker::encodeSetup(Iso, Options)));

  std::vector<std::string> Units;
  Units.reserve(Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I)
    Units.push_back(detectworker::encodeUnit(I, Jobs[I]));
  std::vector<pool::UnitOutcome> Outcomes = Pool.run(Units);

  // Commit in input order — identical to the in-process merge walk.
  std::vector<TestDetectionResult> Out;
  Out.reserve(Jobs.size());
  std::optional<Error> FirstError;
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  for (size_t I = 0; I < Outcomes.size(); ++I) {
    const pool::UnitOutcome &O = Outcomes[I];
    obs::observePoolUnitMicros(O.Micros);
    if (!O.Ok) {
      TestDetectionResult Q;
      Q.Quarantined = true;
      Q.QuarantineReason = pool::describeCrash(O);
      Metrics.counter("detect.quarantined").inc();
      Metrics.counter("detect.worker_crashes").inc();
      NARADA_LOG_WARN("quarantined test %s: %s", Jobs[I].TestName.c_str(),
                      Q.QuarantineReason.c_str());
      Out.push_back(std::move(Q));
      continue;
    }
    wire::RecordReader Reply(O.Payload);
    obs::mergeMetricsDelta(Reply);
    if (std::optional<std::string> Err = Reply.get("err")) {
      if (!FirstError)
        FirstError.emplace(*Err);
      Out.emplace_back();
      continue;
    }
    if (std::optional<std::string> Fault = Reply.get("fault")) {
      TestDetectionResult Q;
      Q.Quarantined = true;
      Q.QuarantineReason = "internal fault: " + *Fault;
      Metrics.counter("detect.quarantined").inc();
      Metrics.counter("detect.internal_faults").inc();
      NARADA_LOG_WARN("quarantined test %s: %s", Jobs[I].TestName.c_str(),
                      Q.QuarantineReason.c_str());
      Out.push_back(std::move(Q));
      continue;
    }
    Out.push_back(detectworker::decodeDetectResult(Reply));
  }
  obs::publishPoolStats(Pool.stats());
  if (FirstError)
    return *FirstError;
  return Out;
}

} // namespace

Result<std::vector<TestDetectionResult>> narada::detectRacesInTests(
    const IRModule &M, const std::vector<TestDetectJob> &Jobs,
    const DetectOptions &Options, unsigned JobCount,
    const detectworker::DetectIsolateContext *Iso) {
  if (Iso && Iso->Isolate.Enabled)
    return detectIsolated(Jobs, Options, JobCount, *Iso);
  const unsigned Workers = resolveJobs(JobCount);
  std::vector<std::optional<Result<TestDetectionResult>>> Slots(Jobs.size());

  // Captures a crash inside one test's detection and degrades it to a
  // quarantined result: one misbehaving synthesized test must cost its own
  // results, never the whole batch (let alone the process).
  auto Quarantined = [&](size_t I, std::exception_ptr E) {
    TestDetectionResult Q;
    Q.Quarantined = true;
    Q.QuarantineReason = "internal fault: " + describeException(E);
    obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
    Metrics.counter("detect.quarantined").inc();
    Metrics.counter("detect.internal_faults").inc();
    NARADA_LOG_WARN("quarantined test %s: %s", Jobs[I].TestName.c_str(),
                    Q.QuarantineReason.c_str());
    return Q;
  };

  auto RunOne = [&](size_t I) {
    fault::ScopedUnit Unit(I);
    obs::TraceScope Scope("test", I);
    try {
      Slots[I].emplace(
          detectRacesInTest(M, Jobs[I].TestName, Options, Jobs[I].Hints));
    } catch (...) {
      Slots[I].emplace(Quarantined(I, std::current_exception()));
    }
  };

  if (Workers <= 1 || Jobs.size() <= 1) {
    for (size_t I = 0; I < Jobs.size(); ++I)
      RunOne(I);
  } else {
    // Independent schedule explorations for different tests run
    // concurrently; each slot is written by exactly one task.
    obs::SpanParent Parent{obs::Span::currentPath()};
    std::vector<std::string> WorkerNames;
    for (unsigned W = 0; W < Workers; ++W)
      WorkerNames.push_back(formatString("worker%u", W));
    ThreadPool Pool(Workers);
    std::vector<ThreadPool::TaskFailure> Failures =
        Pool.parallelFor(Jobs.size(), [&](size_t I, unsigned W) {
          obs::Span WorkerSpan(WorkerNames[W], Parent);
          RunOne(I);
        });
    // RunOne contains exceptions itself; the pool barrier is the backstop
    // for anything escaping the slot bookkeeping.
    for (ThreadPool::TaskFailure &F : Failures)
      Slots[F.Item].emplace(Quarantined(F.Item, std::move(F.Error)));
  }

  // Merge in input order; surface the first error deterministically.
  std::vector<TestDetectionResult> Out;
  Out.reserve(Jobs.size());
  for (std::optional<Result<TestDetectionResult>> &Slot : Slots) {
    if (!Slot->hasValue())
      return Slot->error();
    Out.push_back(Slot->take());
  }
  return Out;
}
