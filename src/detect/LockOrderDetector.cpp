//===- detect/LockOrderDetector.cpp - Potential deadlock detection -------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "detect/LockOrderDetector.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <functional>

using namespace narada;

std::string LockOrderCycle::key() const {
  // Normalize rotation: start the cycle at its smallest object id.
  if (Objects.empty())
    return "";
  size_t Start = 0;
  for (size_t I = 1; I < Objects.size(); ++I)
    if (Objects[I] < Objects[Start])
      Start = I;
  std::string Out;
  for (size_t I = 0; I < Objects.size(); ++I) {
    Out += std::to_string(Objects[(Start + I) % Objects.size()]);
    Out += '>';
  }
  return Out;
}

std::string LockOrderCycle::str() const {
  std::vector<std::string> Parts;
  for (size_t I = 0; I < Objects.size(); ++I)
    Parts.push_back(formatString("@%u (acquired at %s)", Objects[I],
                                 AcquireLabels[I].c_str()));
  return "potential deadlock: " + join(Parts, " -> ");
}

void LockOrderDetector::addEdge(ObjectId From, ObjectId To, ThreadId Thread,
                                const std::string &Label) {
  Edge E{From, To};
  EdgeThreads[E].insert(Thread);
  if (!EdgeLabels.count(E))
    EdgeLabels[E] = Label;
  Successors[From].insert(To);
  findCyclesThrough(E);
}

void LockOrderDetector::findCyclesThrough(const Edge &Seed) {
  // DFS from Seed.To back to Seed.From over the lock-order graph.  The
  // graph stays tiny (locks in one test), so a simple search suffices.
  std::vector<ObjectId> Path{Seed.From, Seed.To};
  std::set<ObjectId> OnPath{Seed.From, Seed.To};

  std::function<void(ObjectId)> Dfs = [&](ObjectId Current) {
    auto It = Successors.find(Current);
    if (It == Successors.end())
      return;
    for (ObjectId Next : It->second) {
      if (Next == Seed.From) {
        // Close the cycle.  It is a *potential deadlock* only if at least
        // two distinct threads contribute edges (one thread acquiring in a
        // cycle with itself cannot deadlock against itself).
        std::set<ThreadId> Contributors;
        LockOrderCycle Cycle;
        for (size_t I = 0; I < Path.size(); ++I) {
          ObjectId From = Path[I];
          ObjectId To = Path[(I + 1) % Path.size()];
          Edge E{From, To};
          for (ThreadId T : EdgeThreads[E])
            Contributors.insert(T);
          Cycle.Objects.push_back(From);
          Cycle.AcquireLabels.push_back(EdgeLabels[E]);
        }
        if (Contributors.size() < 2)
          continue;
        if (Seen.insert(Cycle.key()).second)
          Cycles.push_back(std::move(Cycle));
        continue;
      }
      if (OnPath.count(Next))
        continue;
      Path.push_back(Next);
      OnPath.insert(Next);
      Dfs(Next);
      OnPath.erase(Next);
      Path.pop_back();
    }
  };
  Dfs(Seed.To);
}

void LockOrderDetector::onEvent(const TraceEvent &Event) {
  switch (Event.Kind) {
  case EventKind::Lock: {
    std::vector<ObjectId> &Stack = Held[Event.Thread];
    for (ObjectId Outer : Stack)
      if (Outer != Event.Obj)
        addEdge(Outer, Event.Obj, Event.Thread, Event.staticLabel());
    Stack.push_back(Event.Obj);
    return;
  }
  case EventKind::Unlock: {
    std::vector<ObjectId> &Stack = Held[Event.Thread];
    auto It = std::find(Stack.rbegin(), Stack.rend(), Event.Obj);
    if (It != Stack.rend())
      Stack.erase(std::next(It).base());
    return;
  }
  default:
    return;
  }
}
