//===- detect/HBDetector.h - Happens-before race detection ------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FastTrack-style happens-before race detector running as an execution
/// observer.  Writes are tracked as epochs (the common same-thread case) and
/// reads adaptively as an epoch or a full read map, following FastTrack's
/// design.  Synchronization edges: monitor release->acquire and thread
/// spawn.  Precise: every report is a real race of the observed execution.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_DETECT_HBDETECTOR_H
#define NARADA_DETECT_HBDETECTOR_H

#include "detect/RaceReport.h"
#include "detect/VectorClock.h"
#include "trace/TraceEvent.h"

#include <map>
#include <string>
#include <vector>

namespace narada {

/// Happens-before (FastTrack-style) detector.
class HBDetector : public ExecutionObserver {
public:
  ~HBDetector();

  void onEvent(const TraceEvent &Event) override;

  const std::vector<RaceReport> &races() const { return Races; }

private:
  /// Identifies a memory location: object + field slot or element index.
  struct VarKey {
    ObjectId Obj;
    bool IsElem;
    unsigned Index;       ///< Field index or element index.
    std::string Field;    ///< For reporting.

    bool operator<(const VarKey &Other) const {
      if (Obj != Other.Obj)
        return Obj < Other.Obj;
      if (IsElem != Other.IsElem)
        return IsElem < Other.IsElem;
      return Index < Other.Index;
    }
  };

  /// Per-variable detector state (FastTrack's W/R state).
  struct VarState {
    Epoch Write;
    std::string WriteLabel;
    ThreadId WriteThread = NoThread;

    // Read state: epoch while one thread reads, inflated to a map when a
    // second thread reads concurrently.
    Epoch Read;
    std::string ReadLabel;
    bool ReadShared = false;
    std::map<ThreadId, uint64_t> ReadMap;
    std::map<ThreadId, std::string> ReadLabels;
  };

  VectorClock &clockOf(ThreadId T);
  void handleRead(const TraceEvent &Event);
  void handleWrite(const TraceEvent &Event);
  void report(const TraceEvent &Event, const std::string &PriorLabel,
              ThreadId PriorThread, bool PriorIsWrite);

  std::map<ThreadId, VectorClock> ThreadClocks;
  std::map<ObjectId, VectorClock> LockClocks;
  std::map<VarKey, VarState> Vars;
  std::vector<RaceReport> Races;
  /// Joins performed, flushed to the metrics registry once on destruction
  /// to keep the per-event path free of atomics.
  uint64_t JoinCount = 0;
  /// Epoch-vs-clock leq evaluations — the detector's dominant comparison
  /// cost, and the number FastTrack's epoch optimization keeps small.
  uint64_t CompareCount = 0;
  /// Vector clocks materialized (thread clocks plus lock clocks).
  uint64_t AllocCount = 0;
};

} // namespace narada

#endif // NARADA_DETECT_HBDETECTOR_H
