//===- detect/DetectWorker.cpp - Isolated detection worker service -------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "detect/DetectWorker.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Bundle.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <new>
#include <utility>

using namespace narada;
using namespace narada::detectworker;

void detectworker::encodeDetectOptions(wire::RecordWriter &W,
                                       const DetectOptions &Options) {
  W.add("random_runs", static_cast<uint64_t>(Options.RandomRuns));
  W.add("confirm_attempts", static_cast<uint64_t>(Options.ConfirmAttempts));
  W.add("base_seed", Options.BaseSeed);
  W.add("max_steps", Options.MaxSteps);
  W.addBool("use_hb", Options.UseHB);
  W.addBool("use_lockset", Options.UseLockSet);
  W.add("explore_mode", explorationModeName(Options.Mode));
  W.add("explore_max_schedules",
        static_cast<uint64_t>(Options.Explore.MaxSchedules));
  W.add("explore_max_preemptions",
        static_cast<uint64_t>(Options.Explore.MaxPreemptions));
  W.addDouble("explore_wall_budget", Options.Explore.WallBudgetSeconds);
  W.add("witness_dir", Options.WitnessDir);
  W.add("step_limit_retries",
        static_cast<uint64_t>(Options.StepLimitRetries));
  W.add("step_budget_escalation", Options.StepBudgetEscalation);
  W.addDouble("wall_budget_seconds", Options.WallBudgetSeconds);
}

Result<DetectOptions> detectworker::decodeDetectOptions(
    const wire::RecordReader &In) {
  DetectOptions O;
  O.RandomRuns = static_cast<unsigned>(In.getU64("random_runs", 12));
  O.ConfirmAttempts =
      static_cast<unsigned>(In.getU64("confirm_attempts", 4));
  O.BaseSeed = In.getU64("base_seed", 1);
  O.MaxSteps = In.getU64("max_steps", 400000);
  O.UseHB = In.getBool("use_hb", true);
  O.UseLockSet = In.getBool("use_lockset", true);
  if (!parseExplorationMode(In.getOr("explore_mode", "random"), O.Mode))
    return Error("detect setup record has an unknown exploration mode");
  O.Explore.MaxSchedules =
      static_cast<unsigned>(In.getU64("explore_max_schedules", 256));
  O.Explore.MaxPreemptions =
      static_cast<unsigned>(In.getU64("explore_max_preemptions", 2));
  O.Explore.WallBudgetSeconds = In.getDouble("explore_wall_budget", 0.0);
  O.WitnessDir = In.getOr("witness_dir", "");
  O.StepLimitRetries =
      static_cast<unsigned>(In.getU64("step_limit_retries", 2));
  O.StepBudgetEscalation = In.getU64("step_budget_escalation", 4);
  O.WallBudgetSeconds = In.getDouble("wall_budget_seconds", 0.0);
  return O;
}

std::string detectworker::encodeSetup(const DetectIsolateContext &Iso,
                                      const DetectOptions &Options) {
  wire::RecordWriter W;
  W.add("mode", "detect");
  wire::addBundle(W, Iso.FinalSource, /*Seeds=*/{});
  W.add("replay_path", Iso.ReplayPath);
  encodeDetectOptions(W, Options);
  return W.str();
}

std::string detectworker::encodeUnit(size_t Unit, const TestDetectJob &Job) {
  wire::RecordWriter W;
  W.add("op", "test");
  W.add("unit", static_cast<uint64_t>(Unit));
  W.add("test", Job.TestName);
  for (const auto &[First, Second] : Job.Hints) {
    W.add("hint_first", First);
    W.add("hint_second", Second);
  }
  return W.str();
}

namespace {

/// One RaceReport as a nested record (escaped into a single value of the
/// enclosing reply).
std::string encodeRaceReport(const RaceReport &R) {
  wire::RecordWriter W;
  W.add("detector", R.Detector);
  W.add("class", R.ClassName);
  W.add("field", R.Field);
  W.add("obj", static_cast<uint64_t>(R.Obj));
  W.addBool("is_elem", R.IsElem);
  W.add("elem_index", static_cast<uint64_t>(R.ElemIndex));
  W.add("first_label", R.FirstLabel);
  W.add("second_label", R.SecondLabel);
  W.add("static_verdict", R.StaticVerdict);
  W.add("first_thread", static_cast<uint64_t>(R.FirstThread));
  W.add("second_thread", static_cast<uint64_t>(R.SecondThread));
  W.addBool("first_is_write", R.FirstIsWrite);
  W.addBool("second_is_write", R.SecondIsWrite);
  return W.str();
}

RaceReport decodeRaceReport(const wire::RecordReader &In) {
  RaceReport R;
  R.Detector = In.getOr("detector", "");
  R.ClassName = In.getOr("class", "");
  R.Field = In.getOr("field", "");
  R.Obj = static_cast<ObjectId>(In.getU64("obj", NoObject));
  R.IsElem = In.getBool("is_elem");
  R.ElemIndex = static_cast<unsigned>(In.getU64("elem_index"));
  R.FirstLabel = In.getOr("first_label", "");
  R.SecondLabel = In.getOr("second_label", "");
  R.StaticVerdict = In.getOr("static_verdict", "");
  R.FirstThread = static_cast<ThreadId>(In.getU64("first_thread"));
  R.SecondThread = static_cast<ThreadId>(In.getU64("second_thread"));
  R.FirstIsWrite = In.getBool("first_is_write");
  R.SecondIsWrite = In.getBool("second_is_write");
  return R;
}

} // namespace

void detectworker::encodeDetectResult(wire::RecordWriter &Out,
                                      const TestDetectionResult &Result) {
  Out.addBool("saw_fault", Result.SawFault);
  Out.addBool("saw_deadlock", Result.SawDeadlock);
  Out.addBool("saw_step_limit", Result.SawStepLimit);
  Out.addBool("quarantined", Result.Quarantined);
  Out.add("quarantine_reason", Result.QuarantineReason);
  Out.add("schedules_run", static_cast<uint64_t>(Result.SchedulesRun));
  Out.add("schedules_pruned", Result.SchedulesPruned);
  Out.addBool("exploration_exhausted", Result.ExplorationExhausted);
  for (const std::string &Path : Result.WitnessFiles)
    Out.add("witness", Path);
  for (const RaceReport &R : Result.Detected)
    Out.add("detected", encodeRaceReport(R));
  for (const ConfirmedRace &R : Result.Races) {
    wire::RecordWriter Inner;
    Inner.add("report", encodeRaceReport(R.Report));
    Inner.addBool("reproduced", R.Reproduced);
    Inner.addBool("harmful", R.Harmful);
    Inner.add("hash_first_order", R.HashFirstOrder);
    Inner.add("hash_second_order", R.HashSecondOrder);
    Out.add("race", Inner.str());
  }
}

TestDetectionResult
detectworker::decodeDetectResult(const wire::RecordReader &In) {
  TestDetectionResult Out;
  Out.SawFault = In.getBool("saw_fault");
  Out.SawDeadlock = In.getBool("saw_deadlock");
  Out.SawStepLimit = In.getBool("saw_step_limit");
  Out.Quarantined = In.getBool("quarantined");
  Out.QuarantineReason = In.getOr("quarantine_reason", "");
  Out.SchedulesRun = static_cast<unsigned>(In.getU64("schedules_run"));
  Out.SchedulesPruned = In.getU64("schedules_pruned");
  Out.ExplorationExhausted = In.getBool("exploration_exhausted");
  Out.WitnessFiles = In.all("witness");
  for (const std::string &Entry : In.all("detected"))
    Out.Detected.push_back(decodeRaceReport(wire::RecordReader(Entry)));
  for (const std::string &Entry : In.all("race")) {
    wire::RecordReader Inner(Entry);
    ConfirmedRace R;
    R.Report = decodeRaceReport(wire::RecordReader(Inner.getOr("report", "")));
    R.Reproduced = Inner.getBool("reproduced");
    R.Harmful = Inner.getBool("harmful");
    R.HashFirstOrder = Inner.getU64("hash_first_order");
    R.HashSecondOrder = Inner.getU64("hash_second_order");
    Out.Races.push_back(std::move(R));
  }
  return Out;
}

/// The recompiled module plus decoded options.  Heap-allocated and never
/// moved; Options.ReplayTrace shares ownership of the reloaded trace.
struct Service::State {
  CompiledProgram Program;
  DetectOptions Options;
};

Service::Service() : S(std::make_unique<State>()) {}
Service::~Service() = default;

Result<std::unique_ptr<Service>>
Service::create(const wire::RecordReader &Setup) {
  auto Out = std::unique_ptr<Service>(new Service());
  State &S = *Out->S;

  Result<wire::ModuleBundle> Bundle = wire::readBundle(Setup, "detect setup");
  if (!Bundle)
    return Bundle.error();
  Result<CompiledProgram> Program = compileProgram(Bundle->Source);
  if (!Program)
    return Error("detect worker failed to recompile the final source: " +
                 Program.error().str());
  S.Program = Program.take();

  Result<DetectOptions> Options = decodeDetectOptions(Setup);
  if (!Options)
    return Options.error();
  S.Options = Options.take();
  DetectOptions &O = S.Options;

  std::string ReplayPath = Setup.getOr("replay_path", "");
  if (!ReplayPath.empty()) {
    Result<explore::ScheduleTrace> Trace =
        explore::ScheduleTrace::readFile(ReplayPath);
    if (!Trace)
      return Trace.error();
    O.ReplayTrace =
        std::make_shared<const explore::ScheduleTrace>(Trace.take());
  }
  return Out;
}

void Service::runUnit(const wire::RecordReader &Request,
                      wire::RecordWriter &Reply) {
  std::string Op = Request.getOr("op", "");
  uint64_t I = Request.getU64("unit");
  std::string TestName = Request.getOr("test", "");
  Reply.add("op", Op);
  Reply.add("unit", I);

  if (Op != "test") {
    Reply.add("fault", "unknown detect op '" + Op + "'");
    return;
  }
  if (!S->Program.Ast->findTest(TestName)) {
    Reply.add("fault", formatString("unit %llu names unknown test '%s'",
                                    static_cast<unsigned long long>(I),
                                    TestName.c_str()));
    return;
  }

  std::vector<std::pair<std::string, std::string>> Hints;
  {
    std::vector<std::string> Firsts = Request.all("hint_first");
    std::vector<std::string> Seconds = Request.all("hint_second");
    for (size_t K = 0; K < Firsts.size() && K < Seconds.size(); ++K)
      Hints.emplace_back(Firsts[K], Seconds[K]);
  }

  try {
    fault::ScopedUnit Unit(I);
    obs::TraceScope Scope("test", I);
    Result<TestDetectionResult> Result =
        detectRacesInTest(*S->Program.Module, TestName, S->Options, Hints);
    if (!Result) {
      Reply.add("err", Result.error().str());
      return;
    }
    encodeDetectResult(Reply, *Result);
  } catch (const std::bad_alloc &) {
    throw; // The worker loop answers with a graceful oom crash frame.
  } catch (...) {
    // The in-process containment barrier, replayed worker-side so the
    // quarantine counters ship with this unit's metrics delta.
    TestDetectionResult Q;
    Q.Quarantined = true;
    Q.QuarantineReason =
        "internal fault: " + describeException(std::current_exception());
    obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
    Metrics.counter("detect.quarantined").inc();
    Metrics.counter("detect.internal_faults").inc();
    NARADA_LOG_WARN("quarantined test %s: %s", TestName.c_str(),
                    Q.QuarantineReason.c_str());
    encodeDetectResult(Reply, Q);
  }
}
