//===- detect/LockSetDetector.cpp - Eraser lockset detection -------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "detect/LockSetDetector.h"

#include "obs/Metrics.h"

#include <algorithm>

using namespace narada;

LockSetDetector::~LockSetDetector() {
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  Metrics.counter("detect.lockset_intersections").inc(IntersectionCount);
  Metrics.counter("detect.lockset_reports").inc(Races.size());
}

void LockSetDetector::handleAccess(const TraceEvent &Event) {
  VarKey Key{Event.Obj, Event.isElemAccess(), Event.FieldIndex};
  VarState &S = Vars[Key];
  const std::set<ObjectId> &Locks = Held[Event.Thread];
  bool IsWrite = Event.isWrite();

  switch (S.Phase) {
  case VarPhase::Virgin:
    S.Phase = VarPhase::Exclusive;
    S.Owner = Event.Thread;
    break;
  case VarPhase::Exclusive:
    if (Event.Thread != S.Owner)
      S.Phase = IsWrite ? VarPhase::SharedModified : VarPhase::Shared;
    break;
  case VarPhase::Shared:
    if (IsWrite)
      S.Phase = VarPhase::SharedModified;
    break;
  case VarPhase::SharedModified:
    break;
  }

  // Refine the candidate lockset only once the variable has left the
  // Exclusive state.  This is Eraser's initialization exemption: a single
  // thread may legitimately initialize without locks (constructors!), so
  // C(v) is first materialized from the locks held at the access that
  // makes the variable shared, and intersected thereafter.
  if (S.Phase == VarPhase::Shared || S.Phase == VarPhase::SharedModified) {
    if (!S.CandidatesInitialized) {
      S.Candidates = Locks;
      S.CandidatesInitialized = true;
    } else {
      ++IntersectionCount;
      std::set<ObjectId> Intersection;
      std::set_intersection(S.Candidates.begin(), S.Candidates.end(),
                            Locks.begin(), Locks.end(),
                            std::inserter(Intersection,
                                          Intersection.begin()));
      S.Candidates = std::move(Intersection);
    }
  }

  if (S.Phase == VarPhase::SharedModified && S.Candidates.empty() &&
      S.CandidatesInitialized && !S.Reported) {
    RaceReport R;
    R.Detector = "lockset";
    R.ClassName = Event.ClassName;
    R.Field = Event.isElemAccess() ? "[]" : Event.Field;
    R.Obj = Event.Obj;
    R.IsElem = Event.isElemAccess();
    R.ElemIndex = Event.isElemAccess() ? Event.FieldIndex : 0;
    R.FirstLabel = S.LastLabel.empty() ? Event.staticLabel() : S.LastLabel;
    R.SecondLabel = Event.staticLabel();
    R.FirstThread = S.LastThread == NoThread ? Event.Thread : S.LastThread;
    R.SecondThread = Event.Thread;
    R.FirstIsWrite = S.LastIsWrite;
    R.SecondIsWrite = IsWrite;
    Races.push_back(std::move(R));
    S.Reported = true; // One report per variable, like Eraser.
  }

  S.LastLabel = Event.staticLabel();
  S.LastThread = Event.Thread;
  S.LastIsWrite = IsWrite;
}

void LockSetDetector::onEvent(const TraceEvent &Event) {
  switch (Event.Kind) {
  case EventKind::Lock:
    Held[Event.Thread].insert(Event.Obj);
    return;
  case EventKind::Unlock:
    Held[Event.Thread].erase(Event.Obj);
    return;
  case EventKind::ReadField:
  case EventKind::ReadElem:
  case EventKind::WriteField:
  case EventKind::WriteElem:
    handleAccess(Event);
    return;
  default:
    return;
  }
}
