//===- detect/VectorClock.h - Vector clocks ---------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks and epochs for happens-before race detection, in the style
/// of FastTrack (Flanagan & Freund, PLDI'09) — the detector family the
/// paper's RaceFuzzer integration relies on for precise race checking.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_DETECT_VECTORCLOCK_H
#define NARADA_DETECT_VECTORCLOCK_H

#include "runtime/Heap.h"

#include <cstdint>
#include <vector>

namespace narada {

/// A grow-on-demand vector clock indexed by thread id.
class VectorClock {
public:
  /// The component for thread \p T (0 when never set).
  uint64_t get(ThreadId T) const {
    return T < Clocks.size() ? Clocks[T] : 0;
  }

  void set(ThreadId T, uint64_t Val) {
    if (T >= Clocks.size())
      Clocks.resize(T + 1, 0);
    Clocks[T] = Val;
  }

  /// Advances this thread's own component.
  void tick(ThreadId T) { set(T, get(T) + 1); }

  /// Pointwise maximum with \p Other.
  void joinWith(const VectorClock &Other) {
    if (Other.Clocks.size() > Clocks.size())
      Clocks.resize(Other.Clocks.size(), 0);
    for (size_t I = 0; I < Other.Clocks.size(); ++I)
      if (Other.Clocks[I] > Clocks[I])
        Clocks[I] = Other.Clocks[I];
  }

  /// True when this clock is pointwise <= \p Other (this happens-before or
  /// equals Other's view).
  bool leq(const VectorClock &Other) const {
    for (size_t I = 0; I < Clocks.size(); ++I)
      if (Clocks[I] > Other.get(static_cast<ThreadId>(I)))
        return false;
    return true;
  }

private:
  std::vector<uint64_t> Clocks;
};

/// A FastTrack epoch: one (thread, clock) pair — the compact representation
/// for variables accessed by one thread at a time.
struct Epoch {
  ThreadId Thread = NoThread;
  uint64_t Clock = 0;

  bool isSet() const { return Thread != NoThread; }

  /// epoch ⊑ C  iff  Clock <= C[Thread].
  bool leq(const VectorClock &C) const {
    return !isSet() || Clock <= C.get(Thread);
  }
};

} // namespace narada

#endif // NARADA_DETECT_VECTORCLOCK_H
