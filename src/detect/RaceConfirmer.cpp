//===- detect/RaceConfirmer.cpp - RaceFuzzer-style confirmation ----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "detect/RaceConfirmer.h"

#include "obs/Metrics.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace narada;

static std::string labelOf(const PendingAccess &Access) {
  return formatString("%s:%u", Access.Func->name().c_str(), Access.Pc);
}

std::optional<std::pair<PendingAccess, bool>>
RaceConfirmPolicy::matchAt(ThreadId T, VM &M) {
  std::optional<PendingAccess> Access = M.peekAccess(T);
  if (!Access)
    return std::nullopt;
  std::string Label = labelOf(*Access);
  if (Label == LabelA)
    return std::make_pair(*Access, true);
  if (Label == LabelB)
    return std::make_pair(*Access, false);
  return std::nullopt;
}

ThreadId RaceConfirmPolicy::pick(const std::vector<ThreadId> &Runnable,
                                 VM &M) {
  // After a confirmation, fire the second racer immediately so the two
  // accesses are adjacent in the chosen order.
  if (FireNext != NoThread) {
    ThreadId Next = FireNext;
    FireNext = NoThread;
    if (std::find(Runnable.begin(), Runnable.end(), Next) != Runnable.end())
      return Next;
    return Runnable[Rand.nextBelow(Runnable.size())];
  }

  bool PausedRunnable =
      Paused != NoThread &&
      std::find(Runnable.begin(), Runnable.end(), Paused) != Runnable.end();

  if (Paused != NoThread && PausedRunnable) {
    // Look for a partner at the complementary access on the same location.
    for (ThreadId T : Runnable) {
      if (T == Paused)
        continue;
      std::optional<std::pair<PendingAccess, bool>> Match = matchAt(T, M);
      if (!Match)
        continue;
      // For distinct labels the partner must sit at the *other* access; for
      // a same-label pair (the "concurrent access at the same label from a
      // different thread" case) any second thread at the label qualifies.
      if (LabelA != LabelB && Match->second == PausedIsA)
        continue;
      const PendingAccess &Other = Match->first;
      if (Other.Obj != PausedAccess.Obj ||
          Other.IsElem != PausedAccess.IsElem ||
          (Other.IsElem && Other.ElemIndex != PausedAccess.ElemIndex))
        continue;
      if (!Other.IsWrite && !PausedAccess.IsWrite)
        continue;

      // Reproduced: both threads are at the racy accesses simultaneously.
      RaceReport R;
      R.Detector = "confirm";
      if (M.heap().isValid(PausedAccess.Obj) &&
          M.heap().object(PausedAccess.Obj).Class)
        R.ClassName = M.heap().object(PausedAccess.Obj).Class->Name;
      R.Field = PausedAccess.IsElem ? "[]" : PausedAccess.Field;
      R.Obj = PausedAccess.Obj;
      R.IsElem = PausedAccess.IsElem;
      R.ElemIndex = PausedAccess.ElemIndex;
      R.FirstLabel = labelOf(PausedAccess);
      R.SecondLabel = labelOf(Other);
      R.FirstThread = Paused;
      R.SecondThread = T;
      R.FirstIsWrite = PausedAccess.IsWrite;
      R.SecondIsWrite = Other.IsWrite;
      Confirmed = std::move(R);
      obs::MetricsRegistry::global().counter("confirm.races_paired").inc();

      ThreadId First = SecondFirst ? T : Paused;
      ThreadId Second = SecondFirst ? Paused : T;
      Paused = NoThread;
      FireNext = Second;
      return First;
    }

    if (++PausedFor > PauseBudget) {
      // Give up: the partner never arrived (the context may not share the
      // object).  Release the paused thread.
      obs::MetricsRegistry::global().counter("confirm.pause_timeouts").inc();
      ThreadId Released = Paused;
      Paused = NoThread;
      PausedFor = 0;
      return Released;
    }

    // Keep the paused thread parked; run anyone else.
    std::vector<ThreadId> Others;
    for (ThreadId T : Runnable)
      if (T != Paused)
        Others.push_back(T);
    if (Others.empty()) {
      ThreadId Released = Paused;
      Paused = NoThread;
      return Released;
    }
    return Others[Rand.nextBelow(Others.size())];
  }

  Paused = NoThread;

  // No pause active: park the first thread that reaches a candidate access
  // (unless a confirmation already happened — then just run randomly).
  if (!Confirmed) {
    for (ThreadId T : Runnable) {
      std::optional<std::pair<PendingAccess, bool>> Match = matchAt(T, M);
      if (!Match)
        continue;
      if (Runnable.size() == 1)
        break; // Cannot park the only runnable thread.
      obs::MetricsRegistry::global().counter("confirm.threads_paused").inc();
      Paused = T;
      PausedAccess = Match->first;
      PausedIsA = Match->second;
      PausedFor = 0;
      std::vector<ThreadId> Others;
      for (ThreadId U : Runnable)
        if (U != T)
          Others.push_back(U);
      return Others[Rand.nextBelow(Others.size())];
    }
  }

  return Runnable[Rand.nextBelow(Runnable.size())];
}
