//===- detect/LockSetDetector.h - Eraser lockset detection ------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Eraser-style lockset detector (Savage et al., TOCS'97) running as an
/// execution observer.  The paper points out that Narada *generates* tests
/// using the same discipline Eraser *checks*: a race needs two accesses
/// whose lock sets do not intersect.  Each shared variable goes through the
/// Virgin -> Exclusive -> Shared -> SharedModified state machine; its
/// candidate lockset is refined at every access, and an empty candidate set
/// in the SharedModified state is reported as a (potential) race.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_DETECT_LOCKSETDETECTOR_H
#define NARADA_DETECT_LOCKSETDETECTOR_H

#include "detect/RaceReport.h"
#include "trace/TraceEvent.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace narada {

/// Eraser-style lockset detector.
class LockSetDetector : public ExecutionObserver {
public:
  ~LockSetDetector();

  void onEvent(const TraceEvent &Event) override;

  const std::vector<RaceReport> &races() const { return Races; }

private:
  enum class VarPhase {
    Virgin,         ///< Never accessed.
    Exclusive,      ///< Accessed by one thread only.
    Shared,         ///< Read-shared among threads.
    SharedModified, ///< Written by multiple threads / read-write shared.
  };

  struct VarKey {
    ObjectId Obj;
    bool IsElem;
    unsigned Index;

    bool operator<(const VarKey &Other) const {
      if (Obj != Other.Obj)
        return Obj < Other.Obj;
      if (IsElem != Other.IsElem)
        return IsElem < Other.IsElem;
      return Index < Other.Index;
    }
  };

  struct VarState {
    VarPhase Phase = VarPhase::Virgin;
    ThreadId Owner = NoThread;
    std::set<ObjectId> Candidates;
    bool CandidatesInitialized = false;
    std::string LastLabel;
    ThreadId LastThread = NoThread;
    bool LastIsWrite = false;
    bool Reported = false;
  };

  void handleAccess(const TraceEvent &Event);

  std::map<ThreadId, std::set<ObjectId>> Held;
  std::map<VarKey, VarState> Vars;
  std::vector<RaceReport> Races;
  /// Lockset refinements performed, flushed to the metrics registry once on
  /// destruction to keep the per-access path free of atomics.
  uint64_t IntersectionCount = 0;
};

} // namespace narada

#endif // NARADA_DETECT_LOCKSETDETECTOR_H
