//===- detect/HBDetector.cpp - Happens-before race detection -------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "detect/HBDetector.h"

#include "obs/Metrics.h"

using namespace narada;

HBDetector::~HBDetector() {
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  Metrics.counter("detect.vc_joins").inc(JoinCount);
  Metrics.counter("detect.vc_compares").inc(CompareCount);
  Metrics.counter("detect.vc_allocs").inc(AllocCount);
  Metrics.counter("detect.hb_reports").inc(Races.size());
}

VectorClock &HBDetector::clockOf(ThreadId T) {
  auto It = ThreadClocks.find(T);
  if (It != ThreadClocks.end())
    return It->second;
  ++AllocCount;
  VectorClock &C = ThreadClocks[T];
  C.set(T, 1);
  return C;
}

void HBDetector::report(const TraceEvent &Event,
                        const std::string &PriorLabel, ThreadId PriorThread,
                        bool PriorIsWrite) {
  RaceReport R;
  R.Detector = "hb";
  R.ClassName = Event.ClassName;
  R.Field = Event.isElemAccess() ? "[]" : Event.Field;
  R.Obj = Event.Obj;
  R.IsElem = Event.isElemAccess();
  R.ElemIndex = Event.isElemAccess() ? Event.FieldIndex : 0;
  R.FirstLabel = PriorLabel;
  R.SecondLabel = Event.staticLabel();
  R.FirstThread = PriorThread;
  R.SecondThread = Event.Thread;
  R.FirstIsWrite = PriorIsWrite;
  R.SecondIsWrite = Event.isWrite();
  Races.push_back(std::move(R));
}

void HBDetector::handleRead(const TraceEvent &Event) {
  VarKey Key{Event.Obj, Event.isElemAccess(), Event.FieldIndex,
             Event.isElemAccess() ? "[]" : Event.Field};
  VarState &S = Vars[Key];
  VectorClock &C = clockOf(Event.Thread);

  // write-read race: the last write must happen-before this read.
  if (S.Write.isSet()) {
    ++CompareCount;
    if (!S.Write.leq(C))
      report(Event, S.WriteLabel, S.WriteThread, /*PriorIsWrite=*/true);
  }

  uint64_t Now = C.get(Event.Thread);
  if (!S.ReadShared) {
    // Same-epoch fast path, or exclusive-read ownership transfer.
    if (S.Read.isSet() && S.Read.Thread != Event.Thread) {
      ++CompareCount;
      if (!S.Read.leq(C)) {
        // Two concurrent readers: inflate to the read map.
        S.ReadShared = true;
        S.ReadMap[S.Read.Thread] = S.Read.Clock;
        S.ReadLabels[S.Read.Thread] = S.ReadLabel;
        S.ReadMap[Event.Thread] = Now;
        S.ReadLabels[Event.Thread] = Event.staticLabel();
        return;
      }
    }
    S.Read = Epoch{Event.Thread, Now};
    S.ReadLabel = Event.staticLabel();
    return;
  }
  S.ReadMap[Event.Thread] = Now;
  S.ReadLabels[Event.Thread] = Event.staticLabel();
}

void HBDetector::handleWrite(const TraceEvent &Event) {
  VarKey Key{Event.Obj, Event.isElemAccess(), Event.FieldIndex,
             Event.isElemAccess() ? "[]" : Event.Field};
  VarState &S = Vars[Key];
  VectorClock &C = clockOf(Event.Thread);

  // write-write race.
  if (S.Write.isSet()) {
    ++CompareCount;
    if (!S.Write.leq(C))
      report(Event, S.WriteLabel, S.WriteThread, /*PriorIsWrite=*/true);
  }

  // read-write races.
  if (!S.ReadShared) {
    if (S.Read.isSet()) {
      ++CompareCount;
      if (!S.Read.leq(C))
        report(Event, S.ReadLabel, S.Read.Thread, /*PriorIsWrite=*/false);
    }
  } else {
    for (const auto &[Thread, Clock] : S.ReadMap) {
      Epoch E{Thread, Clock};
      ++CompareCount;
      if (!E.leq(C))
        report(Event, S.ReadLabels[Thread], Thread, /*PriorIsWrite=*/false);
    }
    S.ReadShared = false;
    S.ReadMap.clear();
    S.ReadLabels.clear();
  }
  S.Read = Epoch{};
  S.ReadLabel.clear();

  S.Write = Epoch{Event.Thread, C.get(Event.Thread)};
  S.WriteLabel = Event.staticLabel();
  S.WriteThread = Event.Thread;
}

void HBDetector::onEvent(const TraceEvent &Event) {
  switch (Event.Kind) {
  case EventKind::ThreadStart: {
    VectorClock &Child = clockOf(Event.Thread);
    if (Event.ParentThread != NoThread) {
      VectorClock &Parent = clockOf(Event.ParentThread);
      Child.joinWith(Parent);
      ++JoinCount;
      Child.set(Event.Thread, Child.get(Event.Thread) + 1);
      Parent.tick(Event.ParentThread);
    }
    return;
  }
  case EventKind::Lock: {
    // acquire: C_t := C_t ⊔ L_m.
    auto It = LockClocks.find(Event.Obj);
    if (It != LockClocks.end()) {
      clockOf(Event.Thread).joinWith(It->second);
      ++JoinCount;
    }
    return;
  }
  case EventKind::Unlock: {
    // release: L_m := C_t; C_t.tick().
    VectorClock &C = clockOf(Event.Thread);
    auto [It, Inserted] = LockClocks.try_emplace(Event.Obj);
    if (Inserted)
      ++AllocCount;
    It->second = C;
    C.tick(Event.Thread);
    return;
  }
  case EventKind::ReadField:
  case EventKind::ReadElem:
    handleRead(Event);
    return;
  case EventKind::WriteField:
  case EventKind::WriteElem:
    handleWrite(Event);
    return;
  default:
    return;
  }
}
