//===- racedb/Triage.h - Race database ingest, diff, and gate ---*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The triage engine over RaceDb: folds run reports (obs/RunReport) into
/// the database, advancing each race's lifecycle and certification, and
/// implements the `narada-cli triage` command family:
///
///   triage ingest --db <file> [--jobs N] <report.json>...
///   triage query  --db <file> [--state S] [--input I]
///   triage diff   <old.db> <new.db>
///   triage gate   --baseline <db> [--jobs N] <report.json>...
///
/// Ingest parses reports in parallel but commits them sequentially in
/// argv order with run ids drawn from a monotonic counter, so the
/// resulting database is byte-identical at any --jobs value.  The gate
/// ingests into a scratch copy of the baseline and fails (exit 1) on any
/// regressed race, any race absent from the baseline, or any certified
/// baseline race that resolved — the database-backed replacement for
/// report-diff.py's two-snapshot approximation.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_RACEDB_TRIAGE_H
#define NARADA_RACEDB_TRIAGE_H

#include "obs/RunReport.h"
#include "racedb/RaceDb.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace narada {
namespace racedb {

/// What one run report contributes to the database: the run's input and
/// module digest, plus its deduplicated race set.  Only reports whose
/// detection phase ran (a "races" member exists) are ingestible.
struct RunObservation {
  std::string Input;        ///< "corpus:C1", a file path, ...
  std::string SourceDigest; ///< "source_digest" report option (hex).
  bool DetectionRan = false;
  std::vector<obs::RaceEntry> Races;
};

/// Extracts an observation from a rendered run-report document.
Result<RunObservation> observationFromReportText(std::string_view Text);

/// Reads and parses one report file.
Result<RunObservation> observationFromReportFile(const std::string &Path);

/// What one ingest batch did, for summaries and counters.
struct IngestStats {
  uint64_t Reports = 0;
  uint64_t RacesSeen = 0;   ///< Race entries across all reports.
  uint64_t KeysMigrated = 0; ///< Legacy keys canonicalized on the way in.
  // Final lifecycle tallies over the whole database after the batch.
  uint64_t New = 0;
  uint64_t Persisting = 0;
  uint64_t Resolved = 0;
  uint64_t Regressed = 0;
};

/// Folds the observations into \p Db in order, assigning one run id per
/// observation.  Lifecycle per race key: absent -> New; New/Persisting
/// seen again -> Persisting; Resolved seen -> Regressed; a record whose
/// Input matches an observation that ran detection but lacks the key ->
/// Resolved (input scoping: a C9 run never resolves a C1 race).
/// Certification is cumulative: static MustRace verdicts and dynamic
/// reproduction each set their half.  Deterministic: no clocks, no
/// iteration-order dependence.
IngestStats ingest(RaceDb &Db, const std::vector<RunObservation> &Runs);

/// Parses the report files (in parallel when Jobs > 1) and ingests them
/// in argv order; any unreadable/unparseable file fails the whole batch
/// before the db is touched.
Result<IngestStats> ingestReportFiles(RaceDb &Db,
                                      const std::vector<std::string> &Paths,
                                      unsigned Jobs);

/// Gate outcome: Ok iff re-ingesting the runs over the baseline produced
/// no regression signal.
struct GateResult {
  bool Ok = true;
  std::vector<std::string> Failures; ///< Human-readable, sorted.
  IngestStats Stats;
};

/// Runs the regression gate: ingest into a scratch copy of \p Baseline
/// and fail on (a) any race now Regressed, (b) any race key absent from
/// the baseline (untriaged new race), (c) any certified baseline race
/// that ended Resolved (a lost certified race is a detection regression,
/// not a fix, until a human retires it from the baseline).
GateResult gate(const RaceDb &Baseline,
                const std::vector<RunObservation> &Runs);

/// The `narada-cli triage ...` entry point (argv[1] == "triage").
int runTriage(int Argc, char **Argv);

} // namespace racedb
} // namespace narada

#endif // NARADA_RACEDB_TRIAGE_H
