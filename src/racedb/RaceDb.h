//===- racedb/RaceDb.h - Durable race database ------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-facing race store: one record per stable race identity
/// (support/RaceKey.h), accumulated across runs.  Each record carries
/// provenance (first/last-seen run id and module source digest, the
/// detectors that found it, the static verdict, a witness trace path),
/// the dynamic outcome bits, a certification level cross-checking the
/// static MustRace verdict against dynamic confirmation, and a lifecycle
/// state advanced on every ingest:
///
///   New ──seen again──▶ Persisting ──absent──▶ Resolved ──seen──▶ Regressed
///
/// (an absent New race resolves too; a Regressed race stays Regressed
/// until it goes absent again).  Persistence mirrors serve/CacheFile:
/// length-prefixed Wire frames, a versioned header, all-or-nothing load,
/// atomic temp+rename save.  No wall-clock anywhere — run ids are a
/// monotonic counter — so ingest is deterministic and byte-identical at
/// any job count.  docs/TRIAGE.md documents the schema.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_RACEDB_RACEDB_H
#define NARADA_RACEDB_RACEDB_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace narada {
namespace racedb {

/// Lifecycle of one race identity across the ingested run history.
enum class Lifecycle {
  New,        ///< First seen in the latest ingested run.
  Persisting, ///< Seen in more than one run and still present.
  Resolved,   ///< Previously seen; absent from the latest covering run.
  Regressed,  ///< Resolved once, then seen again — a regression.
};

const char *lifecycleName(Lifecycle L);

/// Certification level: did the static must-race fragment and/or the
/// dynamic confirmation protocol vouch for the race?
enum class Certification {
  None,
  CertifiedStatic,  ///< Static verdict MustRace; not (yet) reproduced.
  CertifiedDynamic, ///< Reproduced dynamically; no static certificate.
  CertifiedBoth,    ///< MustRace *and* reproduced — the gold standard.
};

const char *certificationName(Certification C);

/// One race identity's durable record.
struct RaceRecord {
  std::string Key; ///< Canonical escaped identity (support/RaceKey.h).
  // Parsed identity components; empty when the key was opaque.
  std::string ClassName;
  std::string Field;
  std::string FirstLabel;
  std::string SecondLabel;

  std::string Input; ///< Run input ("corpus:C1", path) that first saw it;
                     ///< scopes resolution — only a later run of the same
                     ///< input can resolve the record.
  Lifecycle State = Lifecycle::New;
  uint64_t FirstSeenRun = 0; ///< Monotonic ingest run id, never wall-clock.
  uint64_t LastSeenRun = 0;
  std::string FirstSourceDigest; ///< Module source digest (hex) of the
                                 ///< first run that saw the race.
  std::string LastSourceDigest;
  std::vector<std::string> Detectors; ///< Sorted unique detector names.
  std::string StaticVerdict;          ///< Best static verdict seen.
  std::string WitnessPath;            ///< Latest recorded witness trace.
  bool Reproduced = false;
  bool Harmful = false;
  bool WriteWrite = false;
  Certification Cert = Certification::None;

  /// Harmful-vs-benign triage bucket, derived (never persisted):
  /// "harmful" (reproduction diverged), "harmful-write-write" (both sides
  /// write — a lost update waiting to happen even without an observed
  /// divergence), "benign-racy-read" (reproduced read/write race with no
  /// divergence), "unconfirmed" otherwise.
  std::string classification() const;
};

/// The whole database: records keyed by canonical race key, plus the next
/// run id to assign.  Deliberately a plain value type — triage logic
/// copies it freely (the gate ingests into a scratch copy).
struct RaceDb {
  uint64_t NextRunId = 1;
  std::map<std::string, RaceRecord> Races;
};

/// Load statistics the loader reports back (legacy-key migration count).
struct LoadStats {
  size_t MigratedKeys = 0;
};

/// Renders the database to its canonical byte string (the exact file
/// contents saveRaceDb writes).  Pure function of the db value, so two
/// equal databases always render byte-identically.
std::string renderRaceDb(const RaceDb &Db);

/// Atomically writes the database (temp file + rename); false on I/O
/// error, in which case the previous file is left untouched.
bool saveRaceDb(const std::string &Path, const RaceDb &Db);

/// Loads a database file.  All-or-nothing: a bad magic, unsupported
/// version, truncated frame, or malformed record yields an Error and no
/// partial state.  Keys written by the pre-escaping format are migrated
/// to the canonical escaped encoding (counted in \p Stats).
Result<RaceDb> loadRaceDb(const std::string &Path,
                          LoadStats *Stats = nullptr);

} // namespace racedb
} // namespace narada

#endif // NARADA_RACEDB_RACEDB_H
