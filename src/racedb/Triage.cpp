//===- racedb/Triage.cpp - Race database ingest, diff, and gate ----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "racedb/Triage.h"

#include "obs/Metrics.h"
#include "support/RaceKey.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

using namespace narada;
using namespace narada::racedb;

Result<RunObservation> racedb::observationFromReportText(
    std::string_view Text) {
  Result<obs::ParsedRunReport> Parsed = obs::parseRunReport(Text);
  if (!Parsed)
    return Parsed.error();
  RunObservation Obs;
  Obs.Input = Parsed->Meta.Input;
  Obs.DetectionRan = Parsed->Meta.RecordRaces;
  Obs.Races = std::move(Parsed->Meta.Races);
  for (const auto &[Key, Value] : Parsed->Meta.Options)
    if (Key == "source_digest")
      Obs.SourceDigest = Value;
  return Obs;
}

Result<RunObservation> racedb::observationFromReportFile(
    const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Error("cannot open report file '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Result<RunObservation> Obs = observationFromReportText(Buffer.str());
  if (!Obs)
    return Error("report file '" + Path + "': " + Obs.error().str());
  return Obs;
}

namespace {

/// Recomputes a record's certification from its accumulated evidence.
Certification certify(const RaceRecord &R) {
  const bool Static = R.StaticVerdict == "MustRace";
  if (Static && R.Reproduced)
    return Certification::CertifiedBoth;
  if (Static)
    return Certification::CertifiedStatic;
  if (R.Reproduced)
    return Certification::CertifiedDynamic;
  return Certification::None;
}

/// Verdict merge: keep the strongest static claim seen across runs
/// (MustRace > MayRace > Unknown > MustGuarded > none).
int verdictRank(const std::string &Name) {
  if (Name == "MustRace")
    return 0;
  if (Name == "MayRace")
    return 1;
  if (Name == "Unknown")
    return 2;
  if (Name == "MustGuarded")
    return 3;
  return 4;
}

void tally(const RaceDb &Db, IngestStats &Stats) {
  Stats.New = Stats.Persisting = Stats.Resolved = Stats.Regressed = 0;
  for (const auto &[Key, R] : Db.Races) {
    (void)Key;
    switch (R.State) {
    case Lifecycle::New:
      ++Stats.New;
      break;
    case Lifecycle::Persisting:
      ++Stats.Persisting;
      break;
    case Lifecycle::Resolved:
      ++Stats.Resolved;
      break;
    case Lifecycle::Regressed:
      ++Stats.Regressed;
      break;
    }
  }
}

} // namespace

IngestStats racedb::ingest(RaceDb &Db,
                           const std::vector<RunObservation> &Runs) {
  IngestStats Stats;
  for (const RunObservation &Run : Runs) {
    if (!Run.DetectionRan)
      continue; // Nothing to learn from a detection-less run.
    const uint64_t RunId = Db.NextRunId++;
    ++Stats.Reports;
    std::set<std::string> SeenKeys;
    for (const obs::RaceEntry &E : Run.Races) {
      ++Stats.RacesSeen;
      bool Migrated = false;
      std::optional<std::string> Key = canonicalRaceKey(E.Key, Migrated);
      if (!Key)
        continue; // An unparseable key cannot form a stable identity.
      if (Migrated)
        ++Stats.KeysMigrated;
      SeenKeys.insert(*Key);
      auto [It, Inserted] = Db.Races.try_emplace(*Key);
      RaceRecord &R = It->second;
      if (Inserted) {
        R.Key = *Key;
        if (std::optional<RaceKeyParts> Parts = parseRaceKey(*Key)) {
          R.ClassName = Parts->ClassName;
          R.Field = Parts->Field;
          R.FirstLabel = Parts->FirstLabel;
          R.SecondLabel = Parts->SecondLabel;
        }
        R.Input = Run.Input;
        R.State = Lifecycle::New;
        R.FirstSeenRun = RunId;
        R.FirstSourceDigest = Run.SourceDigest;
      } else {
        R.State = R.State == Lifecycle::Resolved ||
                          R.State == Lifecycle::Regressed
                      ? Lifecycle::Regressed
                      : Lifecycle::Persisting;
      }
      R.LastSeenRun = RunId;
      R.LastSourceDigest = Run.SourceDigest;
      for (const std::string &Detector : E.Detectors)
        R.Detectors.push_back(Detector);
      std::sort(R.Detectors.begin(), R.Detectors.end());
      R.Detectors.erase(
          std::unique(R.Detectors.begin(), R.Detectors.end()),
          R.Detectors.end());
      if (!E.StaticVerdict.empty() &&
          verdictRank(E.StaticVerdict) < verdictRank(R.StaticVerdict))
        R.StaticVerdict = E.StaticVerdict;
      if (!E.Witness.empty())
        R.WitnessPath = E.Witness;
      R.Reproduced = R.Reproduced || E.Reproduced;
      R.Harmful = R.Harmful || E.Harmful;
      R.WriteWrite = R.WriteWrite || E.WriteWrite;
      R.Cert = certify(R);
    }
    // Resolution pass, scoped to this run's input: a record this very run
    // should have re-found but did not has been fixed (or lost).
    for (auto &[Key, R] : Db.Races) {
      if (R.Input != Run.Input || SeenKeys.count(Key))
        continue;
      if (R.State != Lifecycle::Resolved)
        R.State = Lifecycle::Resolved;
    }
  }
  tally(Db, Stats);
  obs::MetricsRegistry &M = obs::MetricsRegistry::global();
  M.counter("triage.reports_ingested").inc(Stats.Reports);
  if (Stats.KeysMigrated)
    M.counter("racedb.keys_migrated").inc(Stats.KeysMigrated);
  M.counter("racedb.races_new").inc(Stats.New);
  M.counter("racedb.races_persisting").inc(Stats.Persisting);
  M.counter("racedb.races_resolved").inc(Stats.Resolved);
  M.counter("racedb.races_regressed").inc(Stats.Regressed);
  return Stats;
}

Result<IngestStats> racedb::ingestReportFiles(
    RaceDb &Db, const std::vector<std::string> &Paths, unsigned Jobs) {
  // Parse in parallel, commit sequentially in argv order: run ids and db
  // contents are then independent of the worker count by construction.
  std::vector<Result<RunObservation>> Parsed(Paths.size(),
                                             Result<RunObservation>(Error("")));
  if (Paths.size() > 1 && resolveJobs(Jobs) > 1) {
    ThreadPool Pool(std::min<unsigned>(
        resolveJobs(Jobs), static_cast<unsigned>(Paths.size())));
    std::vector<ThreadPool::TaskFailure> Failures =
        Pool.parallelFor(Paths.size(), [&](size_t I, unsigned) {
          Parsed[I] = observationFromReportFile(Paths[I]);
        });
    if (!Failures.empty())
      return Error("report parsing failed internally");
  } else {
    for (size_t I = 0; I < Paths.size(); ++I)
      Parsed[I] = observationFromReportFile(Paths[I]);
  }
  std::vector<RunObservation> Runs;
  Runs.reserve(Paths.size());
  for (Result<RunObservation> &Obs : Parsed) {
    if (!Obs)
      return Obs.error();
    Runs.push_back(Obs.take());
  }
  return ingest(Db, Runs);
}

GateResult racedb::gate(const RaceDb &Baseline,
                        const std::vector<RunObservation> &Runs) {
  // Snapshot what the baseline vouched for before the scratch ingest.
  std::map<std::string, Certification> BaselineCerts;
  for (const auto &[Key, R] : Baseline.Races)
    BaselineCerts[Key] = R.Cert;

  GateResult Out;
  RaceDb Scratch = Baseline;
  Out.Stats = ingest(Scratch, Runs);
  for (const auto &[Key, R] : Scratch.Races) {
    auto InBaseline = BaselineCerts.find(Key);
    if (InBaseline == BaselineCerts.end()) {
      Out.Failures.push_back("new race not in baseline: " + Key);
      continue;
    }
    if (R.State == Lifecycle::Regressed) {
      Out.Failures.push_back("regressed: " + Key);
      continue;
    }
    if (R.State == Lifecycle::Resolved &&
        InBaseline->second != Certification::None)
      Out.Failures.push_back(
          std::string("lost certified race (") +
          certificationName(InBaseline->second) + "): " + Key);
  }
  std::sort(Out.Failures.begin(), Out.Failures.end());
  Out.Ok = Out.Failures.empty();
  if (!Out.Ok)
    obs::MetricsRegistry::global()
        .counter("triage.gate_failures")
        .inc(Out.Failures.size());
  return Out;
}

//===----------------------------------------------------------------------===//
// CLI
//===----------------------------------------------------------------------===//

namespace {

int triageUsage() {
  std::fprintf(
      stderr,
      "usage: narada-cli triage <subcommand> ...\n"
      "  triage ingest --db <file> [--jobs N] <report.json>...\n"
      "      fold run reports into the database (created if missing)\n"
      "  triage query --db <file> [--state <S>] [--input <I>]\n"
      "      list records, one line each, sorted by key\n"
      "  triage diff <old.db> <new.db>\n"
      "      structural difference between two databases\n"
      "  triage gate --baseline <db> [--jobs N] <report.json>...\n"
      "      exit 1 on any regressed, unknown, or lost certified race\n");
  return 2;
}

struct TriageArgs {
  std::string Db;
  std::string State;
  std::string Input;
  unsigned Jobs = 1;
  std::vector<std::string> Positional;
};

bool parseTriageArgs(int Argc, char **Argv, int Start, TriageArgs &Out) {
  for (int I = Start; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "triage: %s requires a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--db" || Arg == "--baseline") {
      const char *V = Value(Arg.c_str());
      if (!V)
        return false;
      Out.Db = V;
    } else if (Arg == "--state") {
      const char *V = Value("--state");
      if (!V)
        return false;
      Out.State = V;
    } else if (Arg == "--input") {
      const char *V = Value("--input");
      if (!V)
        return false;
      Out.Input = V;
    } else if (Arg == "--jobs") {
      const char *V = Value("--jobs");
      if (!V || !parseJobs(V, Out.Jobs)) {
        std::fprintf(stderr, "triage: bad --jobs value\n");
        return false;
      }
    } else if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
      std::fprintf(stderr, "triage: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      Out.Positional.push_back(Arg);
    }
  }
  return true;
}

/// Loads a db file that may not exist yet (fresh ingest target).
Result<RaceDb> loadOrFresh(const std::string &Path) {
  std::ifstream Probe(Path);
  if (!Probe)
    return RaceDb();
  Probe.close();
  return loadRaceDb(Path);
}

std::string recordLine(const RaceRecord &R) {
  std::string Line =
      formatString("[%-10s] %s", lifecycleName(R.State), R.Key.c_str());
  Line += formatString("  cert=%s class=%s runs=%llu..%llu",
                       certificationName(R.Cert),
                       R.classification().c_str(),
                       static_cast<unsigned long long>(R.FirstSeenRun),
                       static_cast<unsigned long long>(R.LastSeenRun));
  if (!R.StaticVerdict.empty())
    Line += " static=" + R.StaticVerdict;
  if (!R.Detectors.empty()) {
    Line += " detectors=";
    for (size_t I = 0; I < R.Detectors.size(); ++I)
      Line += (I ? "," : "") + R.Detectors[I];
  }
  if (!R.Input.empty())
    Line += " input=" + R.Input;
  if (!R.WitnessPath.empty())
    Line += " witness=" + R.WitnessPath;
  return Line;
}

int cmdIngest(const TriageArgs &Args) {
  if (Args.Db.empty() || Args.Positional.empty()) {
    std::fprintf(stderr,
                 "triage ingest: --db <file> and at least one report "
                 "are required\n");
    return 2;
  }
  Result<RaceDb> Db = loadOrFresh(Args.Db);
  if (!Db) {
    std::fprintf(stderr, "error: %s\n", Db.error().str().c_str());
    return 1;
  }
  Result<IngestStats> Stats =
      ingestReportFiles(*Db, Args.Positional, Args.Jobs);
  if (!Stats) {
    std::fprintf(stderr, "error: %s\n", Stats.error().str().c_str());
    return 1;
  }
  if (!saveRaceDb(Args.Db, *Db)) {
    std::fprintf(stderr, "error: cannot write db '%s'\n", Args.Db.c_str());
    return 1;
  }
  std::printf("ingested %llu report(s) into %s: %zu race record(s) "
              "(%llu new, %llu persisting, %llu resolved, %llu regressed)\n",
              static_cast<unsigned long long>(Stats->Reports),
              Args.Db.c_str(), Db->Races.size(),
              static_cast<unsigned long long>(Stats->New),
              static_cast<unsigned long long>(Stats->Persisting),
              static_cast<unsigned long long>(Stats->Resolved),
              static_cast<unsigned long long>(Stats->Regressed));
  if (Stats->KeysMigrated)
    std::printf("migrated %llu legacy key(s)\n",
                static_cast<unsigned long long>(Stats->KeysMigrated));
  return 0;
}

int cmdQuery(const TriageArgs &Args) {
  if (Args.Db.empty()) {
    std::fprintf(stderr, "triage query: --db <file> is required\n");
    return 2;
  }
  Result<RaceDb> Db = loadRaceDb(Args.Db);
  if (!Db) {
    std::fprintf(stderr, "error: %s\n", Db.error().str().c_str());
    return 1;
  }
  size_t Shown = 0;
  for (const auto &[Key, R] : Db->Races) {
    (void)Key;
    if (!Args.State.empty() && Args.State != lifecycleName(R.State))
      continue;
    if (!Args.Input.empty() && Args.Input != R.Input)
      continue;
    std::printf("%s\n", recordLine(R).c_str());
    ++Shown;
  }
  std::printf("%zu of %zu record(s)\n", Shown, Db->Races.size());
  return 0;
}

int cmdDiff(const TriageArgs &Args) {
  if (Args.Positional.size() != 2) {
    std::fprintf(stderr, "triage diff: exactly two db files required\n");
    return 2;
  }
  Result<RaceDb> Old = loadRaceDb(Args.Positional[0]);
  if (!Old) {
    std::fprintf(stderr, "error: %s\n", Old.error().str().c_str());
    return 1;
  }
  Result<RaceDb> New = loadRaceDb(Args.Positional[1]);
  if (!New) {
    std::fprintf(stderr, "error: %s\n", New.error().str().c_str());
    return 1;
  }
  size_t Changes = 0;
  for (const auto &[Key, R] : Old->Races)
    if (!New->Races.count(Key)) {
      std::printf("only in old: %s [%s]\n", Key.c_str(),
                  lifecycleName(R.State));
      ++Changes;
    }
  for (const auto &[Key, R] : New->Races) {
    auto InOld = Old->Races.find(Key);
    if (InOld == Old->Races.end()) {
      std::printf("only in new: %s [%s]\n", Key.c_str(),
                  lifecycleName(R.State));
      ++Changes;
      continue;
    }
    if (InOld->second.State != R.State) {
      std::printf("state changed: %s %s -> %s\n", Key.c_str(),
                  lifecycleName(InOld->second.State),
                  lifecycleName(R.State));
      ++Changes;
    }
    if (InOld->second.Cert != R.Cert) {
      std::printf("cert changed: %s %s -> %s\n", Key.c_str(),
                  certificationName(InOld->second.Cert),
                  certificationName(R.Cert));
      ++Changes;
    }
  }
  std::printf("%zu difference(s)\n", Changes);
  return Changes ? 1 : 0;
}

int cmdGate(const TriageArgs &Args) {
  if (Args.Db.empty() || Args.Positional.empty()) {
    std::fprintf(stderr,
                 "triage gate: --baseline <db> and at least one report "
                 "are required\n");
    return 2;
  }
  Result<RaceDb> Baseline = loadRaceDb(Args.Db);
  if (!Baseline) {
    std::fprintf(stderr, "error: %s\n", Baseline.error().str().c_str());
    return 1;
  }
  std::vector<RunObservation> Runs;
  for (const std::string &Path : Args.Positional) {
    Result<RunObservation> Obs = observationFromReportFile(Path);
    if (!Obs) {
      std::fprintf(stderr, "error: %s\n", Obs.error().str().c_str());
      return 1;
    }
    Runs.push_back(Obs.take());
  }
  GateResult Result = gate(*Baseline, Runs);
  if (Result.Ok) {
    std::printf("gate: OK (%llu report(s), %llu persisting race(s))\n",
                static_cast<unsigned long long>(Result.Stats.Reports),
                static_cast<unsigned long long>(Result.Stats.Persisting));
    return 0;
  }
  std::printf("gate: FAILED (%zu problem(s))\n", Result.Failures.size());
  for (const std::string &Failure : Result.Failures)
    std::printf("  %s\n", Failure.c_str());
  return 1;
}

} // namespace

int racedb::runTriage(int Argc, char **Argv) {
  if (Argc < 3)
    return triageUsage();
  const std::string Sub = Argv[2];
  TriageArgs Args;
  if (!parseTriageArgs(Argc, Argv, 3, Args))
    return 2;
  if (Sub == "ingest")
    return cmdIngest(Args);
  if (Sub == "query")
    return cmdQuery(Args);
  if (Sub == "diff")
    return cmdDiff(Args);
  if (Sub == "gate")
    return cmdGate(Args);
  std::fprintf(stderr, "triage: unknown subcommand '%s'\n", Sub.c_str());
  return triageUsage();
}
