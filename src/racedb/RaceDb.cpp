//===- racedb/RaceDb.cpp - Durable race database -------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "racedb/RaceDb.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "support/RaceKey.h"
#include "support/Wire.h"

#include <algorithm>
#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

using namespace narada;
using namespace narada::racedb;

namespace {

constexpr const char *Magic = "narada.racedb";
constexpr uint64_t Version = 1;

} // namespace

const char *racedb::lifecycleName(Lifecycle L) {
  switch (L) {
  case Lifecycle::New:
    return "New";
  case Lifecycle::Persisting:
    return "Persisting";
  case Lifecycle::Resolved:
    return "Resolved";
  case Lifecycle::Regressed:
    break;
  }
  return "Regressed";
}

const char *racedb::certificationName(Certification C) {
  switch (C) {
  case Certification::None:
    return "none";
  case Certification::CertifiedStatic:
    return "CertifiedStatic";
  case Certification::CertifiedDynamic:
    return "CertifiedDynamic";
  case Certification::CertifiedBoth:
    break;
  }
  return "CertifiedBoth";
}

std::string RaceRecord::classification() const {
  if (Harmful)
    return "harmful";
  if (WriteWrite)
    return "harmful-write-write";
  if (Reproduced)
    return "benign-racy-read";
  return "unconfirmed";
}

namespace {

bool parseLifecycle(const std::string &Name, Lifecycle &Out) {
  for (Lifecycle L : {Lifecycle::New, Lifecycle::Persisting,
                      Lifecycle::Resolved, Lifecycle::Regressed})
    if (Name == lifecycleName(L)) {
      Out = L;
      return true;
    }
  return false;
}

bool parseCertification(const std::string &Name, Certification &Out) {
  for (Certification C :
       {Certification::None, Certification::CertifiedStatic,
        Certification::CertifiedDynamic, Certification::CertifiedBoth})
    if (Name == certificationName(C)) {
      Out = C;
      return true;
    }
  return false;
}

void encodeRaceFrame(wire::RecordWriter &W, const RaceRecord &R) {
  W.add("kind", std::string_view("race"));
  W.add("key", R.Key);
  W.add("input", R.Input);
  W.add("state", std::string_view(lifecycleName(R.State)));
  W.add("first_seen_run", R.FirstSeenRun);
  W.add("last_seen_run", R.LastSeenRun);
  W.add("first_source_digest", R.FirstSourceDigest);
  W.add("last_source_digest", R.LastSourceDigest);
  for (const std::string &Detector : R.Detectors)
    W.add("detector", Detector);
  W.add("static_verdict", R.StaticVerdict);
  W.add("witness", R.WitnessPath);
  W.addBool("reproduced", R.Reproduced);
  W.addBool("harmful", R.Harmful);
  W.addBool("write_write", R.WriteWrite);
  W.add("cert", std::string_view(certificationName(R.Cert)));
}

Result<RaceRecord> decodeRaceFrame(const wire::RecordReader &In,
                                   LoadStats &Stats) {
  std::optional<std::string> Key = In.get("key");
  if (!Key || Key->empty())
    return Error("racedb race entry has no key");
  RaceRecord R;
  bool Migrated = false;
  std::optional<std::string> Canonical = canonicalRaceKey(*Key, Migrated);
  if (!Canonical)
    return Error("racedb race entry has an unparseable key '" + *Key + "'");
  if (Migrated)
    ++Stats.MigratedKeys;
  R.Key = *Canonical;
  if (std::optional<RaceKeyParts> Parts = parseRaceKey(R.Key)) {
    R.ClassName = Parts->ClassName;
    R.Field = Parts->Field;
    R.FirstLabel = Parts->FirstLabel;
    R.SecondLabel = Parts->SecondLabel;
  }
  R.Input = In.getOr("input", "");
  if (!parseLifecycle(In.getOr("state", ""), R.State))
    return Error("racedb race entry has a bad lifecycle state");
  R.FirstSeenRun = In.getU64("first_seen_run", 0);
  R.LastSeenRun = In.getU64("last_seen_run", 0);
  R.FirstSourceDigest = In.getOr("first_source_digest", "");
  R.LastSourceDigest = In.getOr("last_source_digest", "");
  R.Detectors = In.all("detector");
  std::sort(R.Detectors.begin(), R.Detectors.end());
  R.Detectors.erase(std::unique(R.Detectors.begin(), R.Detectors.end()),
                    R.Detectors.end());
  R.StaticVerdict = In.getOr("static_verdict", "");
  R.WitnessPath = In.getOr("witness", "");
  R.Reproduced = In.getBool("reproduced", false);
  R.Harmful = In.getBool("harmful", false);
  R.WriteWrite = In.getBool("write_write", false);
  if (!parseCertification(In.getOr("cert", ""), R.Cert))
    return Error("racedb race entry has a bad certification");
  return R;
}

} // namespace

std::string racedb::renderRaceDb(const RaceDb &Db) {
  std::string Out;
  auto Emit = [&](const wire::RecordWriter &W) {
    Out += wire::frameBytes(W.str());
  };
  {
    wire::RecordWriter Header;
    Header.add("magic", std::string_view(Magic));
    Header.add("version", Version);
    Header.add("next_run_id", Db.NextRunId);
    Emit(Header);
  }
  // std::map iteration: records serialize in sorted key order, so equal
  // databases render byte-identically regardless of insertion history.
  for (const auto &[Key, Record] : Db.Races) {
    (void)Key;
    wire::RecordWriter W;
    encodeRaceFrame(W, Record);
    Emit(W);
  }
  return Out;
}

bool racedb::saveRaceDb(const std::string &Path, const RaceDb &Db) {
  const std::string TempPath = Path + ".tmp";
  int Fd = ::open(TempPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    NARADA_LOG_WARN("racedb: cannot write db file '%s'", TempPath.c_str());
    return false;
  }
  const std::string Bytes = renderRaceDb(Db);
  bool Ok = true;
  size_t Off = 0;
  while (Ok && Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N <= 0)
      Ok = false;
    else
      Off += static_cast<size_t>(N);
  }
  ::close(Fd);
  if (!Ok || ::rename(TempPath.c_str(), Path.c_str()) != 0) {
    NARADA_LOG_WARN("racedb: failed to persist db file '%s'", Path.c_str());
    ::unlink(TempPath.c_str());
    return false;
  }
  return true;
}

Result<RaceDb> racedb::loadRaceDb(const std::string &Path, LoadStats *Stats) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Error("cannot open racedb file '" + Path + "'");
  RaceDb Db;
  LoadStats Local;
  std::string Payload;
  wire::ReadStatus St = wire::readFrame(Fd, Payload);
  if (St != wire::ReadStatus::Ok) {
    ::close(Fd);
    return Error("racedb file '" + Path + "' has no header frame");
  }
  {
    wire::RecordReader Header(Payload);
    if (Header.getOr("magic", "") != Magic) {
      ::close(Fd);
      return Error("racedb file '" + Path + "' has a bad magic");
    }
    if (Header.getU64("version", 0) != Version) {
      ::close(Fd);
      return Error("racedb file '" + Path + "' has an unsupported version");
    }
    Db.NextRunId = Header.getU64("next_run_id", 1);
  }
  for (;;) {
    St = wire::readFrame(Fd, Payload);
    if (St == wire::ReadStatus::Eof)
      break;
    if (St != wire::ReadStatus::Ok) {
      ::close(Fd);
      return Error("racedb file '" + Path + "' is truncated or corrupt");
    }
    wire::RecordReader In(Payload);
    const std::string Kind = In.getOr("kind", "");
    if (Kind != "race") {
      ::close(Fd);
      return Error("racedb file '" + Path + "' has an unknown entry kind '" +
                   Kind + "'");
    }
    Result<RaceRecord> R = decodeRaceFrame(In, Local);
    if (!R) {
      ::close(Fd);
      return R.error();
    }
    std::string Key = R->Key;
    Db.Races[std::move(Key)] = R.take();
  }
  ::close(Fd);
  if (Local.MigratedKeys)
    obs::MetricsRegistry::global()
        .counter("racedb.keys_migrated")
        .inc(Local.MigratedKeys);
  if (Stats)
    *Stats = Local;
  return Db;
}
