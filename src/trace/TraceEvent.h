//===- trace/TraceEvent.h - Execution trace events --------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic execution events the VM emits.  A sequential seed-test trace
/// is the input to the Narada access analysis (Fig. 7/9); a multithreaded
/// synthesized-test trace is the input to the race detectors.  Every event
/// carries a globally unique label (its dynamic execution index, cf. the
/// paper's §3.1) and the static program point (function, pc) it came from.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_TRACE_TRACEEVENT_H
#define NARADA_TRACE_TRACEEVENT_H

#include "ir/IR.h"
#include "runtime/Heap.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace narada {

/// The kinds of events a VM execution produces.
enum class EventKind {
  Alloc,         ///< A new object was allocated.
  ReadField,     ///< Obj.Field was read.
  WriteField,    ///< Obj.Field was written.
  ReadElem,      ///< Array element Obj[Index] was read.
  WriteElem,     ///< Array element Obj[Index] was written.
  Lock,          ///< Monitor of Obj acquired (outermost entry only).
  Unlock,        ///< Monitor of Obj released (outermost exit only).
  ClientCall,    ///< A client (test/spawn) frame invoked a library method.
  ClientCallEnd, ///< That invocation returned to the client.
  ThreadStart,   ///< A thread began execution.
  ThreadEnd,     ///< A thread ran to completion.
  Fault,         ///< The thread died (null deref, div by zero, OOB, ...).
};

/// Returns a short mnemonic for \p Kind.
const char *eventKindName(EventKind Kind);

/// One dynamic event.
struct TraceEvent {
  EventKind Kind;
  uint64_t Label = 0;       ///< Dynamic execution index, globally unique.
  ThreadId Thread = 0;

  // Static program point.
  const IRFunction *Func = nullptr;
  uint32_t Pc = 0;

  // Accessed / locked / allocated object.
  ObjectId Obj = NoObject;
  std::string ClassName;    ///< Dynamic class of Obj where relevant.
  std::string Field;        ///< Field name for field accesses.
  unsigned FieldIndex = 0;  ///< Field slot, or element index for Read/WriteElem.
  Value Val;                ///< Value read / written / returned.

  // ClientCall payload.
  std::string Method;          ///< Invoked method name.
  ObjectId Receiver = NoObject;
  std::vector<Value> Args;

  /// For ThreadStart: the spawning thread (NoThread for root threads).
  /// Gives happens-before detectors the parent->child edge.
  ThreadId ParentThread = NoThread;

  std::string Message;      ///< Fault description.

  /// True for the four heap-access kinds.
  bool isAccess() const {
    return Kind == EventKind::ReadField || Kind == EventKind::WriteField ||
           Kind == EventKind::ReadElem || Kind == EventKind::WriteElem;
  }
  /// True for the write-access kinds.
  bool isWrite() const {
    return Kind == EventKind::WriteField || Kind == EventKind::WriteElem;
  }
  /// True for array-element accesses.
  bool isElemAccess() const {
    return Kind == EventKind::ReadElem || Kind == EventKind::WriteElem;
  }

  /// "Class.method:pc" — the static label used to name racy accesses.
  std::string staticLabel() const;
};

/// Receives events as the VM executes.  Implemented by the trace recorder,
/// the race detectors and the RaceFuzzer-style active scheduler.
class ExecutionObserver {
public:
  virtual ~ExecutionObserver();
  virtual void onEvent(const TraceEvent &Event) = 0;
};

/// Fans one event stream out to several observers.
class ObserverMux : public ExecutionObserver {
public:
  void add(ExecutionObserver *Observer) { Observers.push_back(Observer); }
  void onEvent(const TraceEvent &Event) override {
    for (ExecutionObserver *O : Observers)
      O->onEvent(Event);
  }

private:
  std::vector<ExecutionObserver *> Observers;
};

} // namespace narada

#endif // NARADA_TRACE_TRACEEVENT_H
