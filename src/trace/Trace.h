//===- trace/Trace.h - Recorded traces --------------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recorded event sequence plus convenience queries, and the observer that
/// records it.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_TRACE_TRACE_H
#define NARADA_TRACE_TRACE_H

#include "trace/TraceEvent.h"

#include <string>
#include <vector>

namespace narada {

/// A complete recorded execution trace.
class Trace {
public:
  void append(TraceEvent Event) { Events.push_back(std::move(Event)); }

  const std::vector<TraceEvent> &events() const { return Events; }
  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  const TraceEvent &operator[](size_t I) const { return Events[I]; }

  /// All events of kind \p Kind.
  std::vector<const TraceEvent *> eventsOfKind(EventKind Kind) const;

  /// All heap-access events (field and element reads/writes).
  std::vector<const TraceEvent *> accesses() const;

  /// True if any thread faulted during the execution.
  bool hasFault() const;

  /// The fault messages, in order.
  std::vector<std::string> faultMessages() const;

  void clear() { Events.clear(); }

private:
  std::vector<TraceEvent> Events;
};

/// An observer that appends every event to a Trace.
class TraceRecorder : public ExecutionObserver {
public:
  explicit TraceRecorder(Trace &Out) : Out(Out) {}
  void onEvent(const TraceEvent &Event) override { Out.append(Event); }

private:
  Trace &Out;
};

/// Renders one event as a single human-readable line.
std::string printEvent(const TraceEvent &Event);

/// Renders the whole trace, one line per event.
std::string printTrace(const Trace &T);

} // namespace narada

#endif // NARADA_TRACE_TRACE_H
