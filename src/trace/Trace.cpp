//===- trace/Trace.cpp - Recorded traces --------------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "support/StringUtils.h"

using namespace narada;

ExecutionObserver::~ExecutionObserver() = default;

const char *narada::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::Alloc:
    return "alloc";
  case EventKind::ReadField:
    return "read";
  case EventKind::WriteField:
    return "write";
  case EventKind::ReadElem:
    return "read_elem";
  case EventKind::WriteElem:
    return "write_elem";
  case EventKind::Lock:
    return "lock";
  case EventKind::Unlock:
    return "unlock";
  case EventKind::ClientCall:
    return "client_call";
  case EventKind::ClientCallEnd:
    return "client_call_end";
  case EventKind::ThreadStart:
    return "thread_start";
  case EventKind::ThreadEnd:
    return "thread_end";
  case EventKind::Fault:
    return "fault";
  }
  narada_unreachable("unknown event kind");
}

std::string TraceEvent::staticLabel() const {
  if (!Func)
    return "<unknown>";
  return formatString("%s:%u", Func->name().c_str(), Pc);
}

std::vector<const TraceEvent *> Trace::eventsOfKind(EventKind Kind) const {
  std::vector<const TraceEvent *> Out;
  for (const TraceEvent &E : Events)
    if (E.Kind == Kind)
      Out.push_back(&E);
  return Out;
}

std::vector<const TraceEvent *> Trace::accesses() const {
  std::vector<const TraceEvent *> Out;
  for (const TraceEvent &E : Events)
    if (E.isAccess())
      Out.push_back(&E);
  return Out;
}

bool Trace::hasFault() const {
  for (const TraceEvent &E : Events)
    if (E.Kind == EventKind::Fault)
      return true;
  return false;
}

std::vector<std::string> Trace::faultMessages() const {
  std::vector<std::string> Out;
  for (const TraceEvent &E : Events)
    if (E.Kind == EventKind::Fault)
      Out.push_back(E.Message);
  return Out;
}

std::string narada::printEvent(const TraceEvent &E) {
  std::string Out = formatString("%6llu t%u %-15s",
                                 static_cast<unsigned long long>(E.Label),
                                 E.Thread, eventKindName(E.Kind));
  switch (E.Kind) {
  case EventKind::Alloc:
    Out += formatString(" @%u : %s", E.Obj, E.ClassName.c_str());
    break;
  case EventKind::ReadField:
  case EventKind::WriteField:
    Out += formatString(" @%u.%s = %s  [%s]", E.Obj, E.Field.c_str(),
                        E.Val.str().c_str(), E.staticLabel().c_str());
    break;
  case EventKind::ReadElem:
  case EventKind::WriteElem:
    Out += formatString(" @%u[%u] = %s  [%s]", E.Obj, E.FieldIndex,
                        E.Val.str().c_str(), E.staticLabel().c_str());
    break;
  case EventKind::Lock:
  case EventKind::Unlock:
    Out += formatString(" @%u  [%s]", E.Obj, E.staticLabel().c_str());
    break;
  case EventKind::ClientCall: {
    std::vector<std::string> Args;
    for (const Value &V : E.Args)
      Args.push_back(V.str());
    Out += formatString(" @%u.%s(%s)", E.Receiver, E.Method.c_str(),
                        join(Args, ", ").c_str());
    break;
  }
  case EventKind::ClientCallEnd:
    Out += formatString(" -> %s", E.Val.str().c_str());
    break;
  case EventKind::ThreadStart:
  case EventKind::ThreadEnd:
    break;
  case EventKind::Fault:
    Out += " " + E.Message;
    break;
  }
  return Out;
}

std::string narada::printTrace(const Trace &T) {
  std::string Out;
  for (const TraceEvent &E : T.events()) {
    Out += printEvent(E);
    Out += '\n';
  }
  return Out;
}
