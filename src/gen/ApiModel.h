//===- gen/ApiModel.h - Public-API model for seed generation ----*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generator's view of a checked module: for every class, its
/// constructor signature, its invocable public methods, and — when a static
/// pre-analysis summary is supplied — which fields each method may touch
/// and whether the touched state is client-controllable.  Extracted once
/// per generation run from the same ProgramInfo/ModuleSummary the rest of
/// the pipeline consumes, so the generator can only emit calls that Sema
/// will accept (RamFuzz's "parameter preparation" step, restated over
/// MiniJava's closed type system).
///
/// Constructibility is a fixpoint: a class is constructible when every
/// constructor parameter is producible (int, bool, IntArray, or another
/// constructible class).  Non-constructible reference parameters fall back
/// to 'null' at generation time — still well-typed, possibly faulting,
/// and faulting candidates are discarded by the engine's validation run.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_GEN_APIMODEL_H
#define NARADA_GEN_APIMODEL_H

#include "lang/Sema.h"
#include "staticrace/StaticSummary.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace narada {
namespace gen {

/// One invocable method of a modeled class (constructors excluded; the
/// constructor lives on ClassModel).
struct MethodApi {
  std::string Name;
  std::vector<Type> ParamTypes;
  Type ReturnType = Type::voidTy();
  /// "Class.field" names this method may read or write, transitively
  /// (from the static summary; empty without one).
  std::set<std::string> TouchedFields;
  /// True when some touched access has a client-controllable base — the
  /// static analogue of "this call can participate in a stageable race".
  bool TouchesControllableState = false;
};

/// The generator's model of one class.
struct ClassModel {
  std::string Name;
  /// Constructor parameter types ('init'); empty when the class has no
  /// constructor (plain 'new C()').
  std::vector<Type> CtorParamTypes;
  /// Methods a client may invoke, in declaration order.
  std::vector<MethodApi> Methods;
  /// Every constructor parameter is producible; see file comment.
  bool Constructible = false;

  const MethodApi *findMethod(const std::string &Name) const {
    for (const MethodApi &M : Methods)
      if (M.Name == Name)
        return &M;
    return nullptr;
  }
};

/// The full API model of a module.
struct ApiModel {
  /// Non-builtin classes by name (ordered, so iteration is deterministic).
  std::map<std::string, ClassModel> Classes;

  const ClassModel *find(const std::string &Name) const {
    auto It = Classes.find(Name);
    return It == Classes.end() ? nullptr : &It->second;
  }

  /// True when \p Ty can be produced by the generator: primitives and
  /// IntArray always, class references when the class is constructible.
  bool producible(const Type &Ty) const;
};

/// Extracts the model from a checked program.  \p Static, when non-null,
/// fills TouchedFields/TouchesControllableState from the per-method
/// summaries; without it those stay empty (generation still works, only
/// unsteered).
ApiModel extractApiModel(const ProgramInfo &Info,
                         const staticrace::ModuleSummary *Static = nullptr);

} // namespace gen
} // namespace narada

#endif // NARADA_GEN_APIMODEL_H
