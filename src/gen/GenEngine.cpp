//===- gen/GenEngine.cpp - Generative seed-corpus engine -----------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "gen/GenEngine.h"

#include "analysis/AccessAnalysis.h"
#include "gen/ApiModel.h"
#include "gen/SeedGen.h"
#include "ir/IR.h"
#include "lang/ASTPrinter.h"
#include "obs/Metrics.h"
#include "obs/Span.h"
#include "runtime/Execution.h"
#include "staticrace/LocksetAnalysis.h"
#include "staticrace/PairClassifier.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include "synth/PairGenerator.h"

#include <algorithm>

using namespace narada;
using namespace narada::gen;

uint64_t narada::gen::candidateSeed(uint64_t Base, unsigned Round,
                                    unsigned Index) {
  // Same shape as pairDerivationSeed: SplitMix64 over base xor coordinates,
  // so every candidate owns an independent stream regardless of how many
  // candidates any round emits.
  uint64_t Z = Base ^ ((static_cast<uint64_t>(Round) << 32) |
                       (static_cast<uint64_t>(Index) + 1));
  Z += 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

namespace {

/// A statically suspicious access pair the steering tries to reach: two
/// controllable accesses to one field, at least one write, not provably
/// serialized.  Keyed canonically so coverage by a generated RacyPair is a
/// set lookup.
struct SteerTarget {
  std::string SymA, SymB; ///< Entry-method symbols ("Class.method").
  std::string Key;        ///< Canonical "symA@labelA~symB@labelB".
};

std::string sideCoord(const std::string &Sym, const std::string &Label) {
  return Sym + "@" + Label;
}

std::string targetKey(std::string CoordA, std::string CoordB) {
  if (CoordB < CoordA)
    std::swap(CoordA, CoordB);
  return CoordA + "~" + CoordB;
}

std::vector<SteerTarget>
collectSteerTargets(const staticrace::ModuleSummary &Summary,
                    const std::string &FocusClass) {
  // Flatten to (entry symbol, access) in deterministic map order, keeping
  // only controllable accesses of focus-class entry methods (all methods
  // when unfocused) — the static analogue of "a client can stage this".
  struct Site {
    const std::string *Sym;
    const staticrace::StaticAccess *Access;
  };
  std::vector<Site> Sites;
  for (const auto &[Sym, Method] : Summary.Methods) {
    if (!FocusClass.empty() &&
        Sym.rfind(FocusClass + ".", 0) != 0)
      continue;
    for (const staticrace::StaticAccess &Access : Method.Accesses)
      if (Access.Ctrl == staticrace::Controllability::Param)
        Sites.push_back({&Sym, &Access});
  }

  std::vector<SteerTarget> Targets;
  std::set<std::string> Seen;
  for (size_t I = 0; I < Sites.size(); ++I) {
    for (size_t J = I; J < Sites.size(); ++J) {
      const staticrace::StaticAccess &A = *Sites[I].Access;
      const staticrace::StaticAccess &B = *Sites[J].Access;
      if (A.FieldClassName != B.FieldClassName || A.Field != B.Field)
        continue;
      if (!A.IsWrite && !B.IsWrite)
        continue;
      if (staticrace::classifyLabelPair(Summary, *Sites[I].Sym, A.Label,
                                        *Sites[J].Sym, B.Label) ==
          staticrace::PairVerdict::MustGuarded)
        continue;
      SteerTarget T;
      T.SymA = *Sites[I].Sym;
      T.SymB = *Sites[J].Sym;
      T.Key = targetKey(sideCoord(T.SymA, A.Label), sideCoord(T.SymB, B.Label));
      if (Seen.insert(T.Key).second)
        Targets.push_back(std::move(T));
    }
  }
  return Targets;
}

/// Coverage state of the growing corpus: everything a candidate can be
/// judged against.  Pair keys are recomputed over the *merged* analysis
/// because candidate pairs arise from access combinations across seeds.
struct Coverage {
  AnalysisResult Merged;
  std::set<std::string> PairKeys;
  std::set<std::string> SetterStrs;
  std::set<std::string> ReturnStrs;
};

std::set<std::string> pairKeysOf(const AnalysisResult &Analysis,
                                 const std::string &FocusClass) {
  PairGenOptions Options;
  Options.FocusClass = FocusClass;
  std::set<std::string> Keys;
  for (const RacyPair &Pair : generatePairs(Analysis, Options))
    Keys.insert(Pair.key());
  return Keys;
}

Coverage coverageOf(AnalysisResult Merged, const std::string &FocusClass) {
  Coverage Cov;
  Cov.PairKeys = pairKeysOf(Merged, FocusClass);
  for (const WriteableAssign &Setter : Merged.Setters)
    Cov.SetterStrs.insert(Setter.str());
  for (const ReturnSummary &Ret : Merged.Returns)
    Cov.ReturnStrs.insert(Ret.str());
  Cov.Merged = std::move(Merged);
  return Cov;
}

/// One emitted candidate awaiting validation.
struct Candidate {
  unsigned Round = 0;
  unsigned Index = 0; ///< Within the round.
  unsigned Global = 0;
  std::string Name;
  std::string Source;
};

/// What validation decided for one candidate.
struct Validation {
  bool Valid = false;
  std::string Error; ///< Why invalid (empty when Valid).
  AnalysisResult Analysis;
};

} // namespace

Result<GenResult> narada::gen::generateSeedCorpus(
    const std::string &LibrarySource, const GenOptions &Options) {
  obs::Span GenSpan("pipeline.gen");
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();

  // Compile once to strip hand-written tests: the zero-seed contract is
  // that generation sees only the library classes.
  Result<CompiledProgram> Initial = compileProgram(LibrarySource);
  if (!Initial)
    return Error("gen: library does not compile: " + Initial.error().str());
  std::string LibOnly;
  for (const auto &Class : Initial->Ast->Classes)
    LibOnly += printClass(*Class) + "\n";

  Result<CompiledProgram> Lib = compileProgram(LibOnly);
  if (!Lib)
    return Error("gen: internal: stripped library failed to recompile: " +
                 Lib.error().str());
  const ProgramInfo &Info = *Lib->Info;

  staticrace::ModuleSummary Summary;
  std::vector<SteerTarget> Targets;
  if (Options.StaticSteering) {
    Summary = staticrace::summarizeModule(*Lib->Module);
    Targets = collectSteerTargets(Summary, Options.FocusClass);
  }
  Metrics.counter("gen.static_targets").inc(Targets.size());

  ApiModel Model =
      extractApiModel(Info, Options.StaticSteering ? &Summary : nullptr);

  SeedGenOptions SeedOptions;
  SeedOptions.FocusClass = Options.FocusClass;
  SeedOptions.MaxCalls = Options.MaxCalls;

  GenResult Out;
  Coverage Cov;
  std::vector<AnalysisResult> KeptAnalyses; // parallel to Out.Seeds
  std::set<std::string> CoveredTargets;

  ThreadPool Pool(resolveJobs(Options.Jobs));

  for (unsigned Round = 0; Round < Options.Rounds; ++Round) {
    Metrics.counter("gen.rounds").inc();

    // Steering: entry methods of still-uncovered targets weigh more, so
    // later rounds spend their budget where the static analysis says a
    // race may hide that no generated pair reaches yet.
    MethodWeights Weights;
    for (const SteerTarget &T : Targets) {
      if (CoveredTargets.count(T.Key))
        continue;
      Weights[T.SymA] += 4;
      Weights[T.SymB] += 4;
    }

    // Emit phase: serial, one private split RNG per candidate, so the
    // candidate texts depend only on (Seed, Round, Index).
    std::vector<Candidate> Candidates;
    for (unsigned I = 0; I < Options.Budget; ++I) {
      unsigned Global = Round * Options.Budget + I;
      Candidate C;
      C.Round = Round;
      C.Index = I;
      C.Global = Global;
      C.Name =
          "gen_r" + std::to_string(Round) + "_c" + std::to_string(I);
      try {
        fault::ScopedUnit Unit(Global);
        fault::probe("gen.emit");
        RNG R(candidateSeed(Options.Seed, Round, I));
        // The first two candidates of every round are API sweeps — the
        // construct-populate-exercise shape hand-written suites have,
        // which random chains only reach by luck.  Argument pooling still
        // varies with the candidate RNG, so sweeps differ across rounds.
        C.Source = I < 2 ? generateSweepSeedTest(Model, SeedOptions, C.Name, R)
                         : generateSeedTest(Model, SeedOptions, Weights,
                                            C.Name, R);
      } catch (const std::exception &Ex) {
        Out.Quarantined.push_back({Round, Global, "emit", Ex.what()});
        continue;
      }
      Metrics.counter("gen.candidates").inc();
      Candidates.push_back(std::move(C));
    }

    // Validate phase: parallel compile+run, committed in candidate order
    // below — the same fan-out/serial-commit split runSynthesisStage uses,
    // so the corpus is byte-identical at every job count.
    std::vector<Validation> Checks(Candidates.size());
    std::vector<ThreadPool::TaskFailure> Failures =
        Pool.parallelFor(Candidates.size(), [&](size_t Idx, unsigned) {
          const Candidate &C = Candidates[Idx];
          fault::ScopedUnit Unit(C.Global);
          fault::probe("gen.run");
          Validation &V = Checks[Idx];
          Result<CompiledProgram> Compiled =
              compileProgram(LibOnly + "\n" + C.Source);
          if (!Compiled) {
            V.Error = "does not compile: " + Compiled.error().str();
            return;
          }
          Result<TestRun> Run = runTestSequential(*Compiled->Module, C.Name);
          if (!Run) {
            V.Error = "failed to run: " + Run.error().str();
            return;
          }
          if (Run->Result.Faulted || Run->Result.Deadlocked ||
              Run->Result.HitStepLimit) {
            V.Error = Run->Result.Faulted ? "faulted"
                      : Run->Result.Deadlocked ? "deadlocked"
                                               : "hit step limit";
            return;
          }
          V.Analysis = analyzeTrace(Run->TheTrace, *Compiled->Info);
          V.Valid = true;
        });
    for (ThreadPool::TaskFailure &F : Failures) {
      const Candidate &C = Candidates[F.Item];
      Checks[F.Item] = Validation{}; // Partial state is not trusted.
      Out.Quarantined.push_back(
          {Round, C.Global, "run", describeException(F.Error)});
    }

    // Commit phase: walk candidates in emission order; keep one iff its
    // analysis grows the merged pair-key set or the setter/return material
    // the context deriver mines.
    for (size_t Idx = 0; Idx < Candidates.size(); ++Idx) {
      const Candidate &C = Candidates[Idx];
      Validation &V = Checks[Idx];
      if (!V.Valid) {
        if (!V.Error.empty())
          Metrics.counter("gen.candidates_faulty").inc();
        continue;
      }
      Metrics.counter("gen.candidates_valid").inc();

      AnalysisResult Tentative = Cov.Merged;
      Tentative.merge(V.Analysis);
      Coverage Next = coverageOf(std::move(Tentative), Options.FocusClass);
      if (Next.PairKeys.size() == Cov.PairKeys.size() &&
          Next.SetterStrs.size() == Cov.SetterStrs.size() &&
          Next.ReturnStrs.size() == Cov.ReturnStrs.size()) {
        Metrics.counter("gen.candidates_redundant").inc();
        continue;
      }
      Cov = std::move(Next);
      Out.Seeds.push_back({C.Name, C.Source});
      KeptAnalyses.push_back(std::move(V.Analysis));
    }

    // Steering update: mark targets some generated pair now reaches.
    if (!Targets.empty()) {
      PairGenOptions PairOptions;
      PairOptions.FocusClass = Options.FocusClass;
      std::set<std::string> PairCoords;
      for (const RacyPair &Pair : generatePairs(Cov.Merged, PairOptions))
        PairCoords.insert(targetKey(
            sideCoord(methodSymbol(Pair.First.ClassName, Pair.First.Method),
                      Pair.First.AccessLabel),
            sideCoord(methodSymbol(Pair.Second.ClassName, Pair.Second.Method),
                      Pair.Second.AccessLabel)));
      for (const SteerTarget &T : Targets)
        if (PairCoords.count(T.Key))
          CoveredTargets.insert(T.Key);
    }
  }

  // Reduction: greedy backward elimination.  A seed is dropped only when
  // the remaining corpus covers the identical pair/setter/return sets, so
  // reduction can never shrink coverage (tests/property_test.cpp).
  if (Options.Reduce && Out.Seeds.size() > 1) {
    for (size_t Victim = Out.Seeds.size(); Victim-- > 0;) {
      if (Out.Seeds.size() == 1)
        break;
      AnalysisResult Without;
      for (size_t I = 0; I < KeptAnalyses.size(); ++I)
        if (I != Victim)
          Without.merge(KeptAnalyses[I]);
      Coverage Reduced = coverageOf(std::move(Without), Options.FocusClass);
      if (Reduced.PairKeys == Cov.PairKeys &&
          Reduced.SetterStrs == Cov.SetterStrs &&
          Reduced.ReturnStrs == Cov.ReturnStrs) {
        Out.Seeds.erase(Out.Seeds.begin() + Victim);
        KeptAnalyses.erase(KeptAnalyses.begin() + Victim);
        Cov = std::move(Reduced);
        Metrics.counter("gen.seeds_reduced").inc();
      }
    }
  }

  Out.CorpusSource = LibOnly;
  for (const GenSeed &Seed : Out.Seeds) {
    Out.CorpusSource += "\n" + Seed.Source;
    Out.SeedNames.push_back(Seed.Name);
  }
  Out.PairKeys = Cov.PairKeys;
  Out.StaticTargets = static_cast<unsigned>(Targets.size());
  Out.StaticTargetsCovered = static_cast<unsigned>(CoveredTargets.size());

  std::sort(Out.Quarantined.begin(), Out.Quarantined.end(),
            [](const GenQuarantine &A, const GenQuarantine &B) {
              return A.Candidate < B.Candidate;
            });

  Metrics.counter("gen.seeds_kept").inc(Out.Seeds.size());
  Metrics.counter("gen.pairs_covered").inc(Out.PairKeys.size());
  Metrics.counter("gen.static_targets_covered").inc(Out.StaticTargetsCovered);
  Metrics.counter("gen.quarantined").inc(Out.Quarantined.size());

  // The kept candidates compiled individually; one final compile of the
  // assembled corpus keeps the contract airtight before runNarada sees it.
  if (!Out.Seeds.empty()) {
    Result<CompiledProgram> Final = compileProgram(Out.CorpusSource);
    if (!Final)
      return Error("gen: internal: assembled corpus failed to compile: " +
                   Final.error().str());
  }
  return Out;
}
