//===- gen/GenEngine.h - Generative seed-corpus engine ----------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes a sequential seed suite for a MiniJava library with zero
/// hand-written tests, so the Narada pipeline's input stops being the
/// paper's central practical limitation (§6: no seed touching a racy pair
/// means no racy test).  docs/GENERATION.md describes the design; in
/// outline each round is
///
///   emit    (serial)  : Budget candidates from split RNGs
///                       (candidateSeed(Seed, Round, Index), the
///                       pairDerivationSeed discipline),
///   validate(parallel): compile library+candidate, run it sequentially,
///                       discard faulting/deadlocking/diverging candidates,
///   commit  (serial)  : keep a candidate iff its stage-1 analysis adds a
///                       new candidate-pair key or new setter/return
///                       summary to the corpus built so far,
///   steer             : raise the selection weight of entry methods that
///                       participate in statically suspicious
///                       (non-MustGuarded, controllable, write-sharing)
///                       access pairs not yet covered by a generated pair,
///
/// followed by one greedy backward reduction pass that drops seeds whose
/// removal leaves the covered pair/setter/return sets identical.  Emission
/// is serial and validation commits in candidate order, so the resulting
/// corpus is byte-identical for every --jobs value; the fault probes
/// "gen.emit" and "gen.run" turn injected faults into per-candidate
/// quarantine records instead of lost corpora.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_GEN_GENENGINE_H
#define NARADA_GEN_GENENGINE_H

#include "support/Error.h"

#include <set>
#include <string>
#include <vector>

namespace narada {
namespace gen {

/// Knobs for one corpus generation.
struct GenOptions {
  /// Class under test; steering targets and receiver bias use it.  Empty
  /// generates against every modeled class (unsteered receiver choice).
  std::string FocusClass;
  /// Base seed; the only source of randomness (split per candidate).
  uint64_t Seed = 1;
  /// Generation rounds (steering updates between rounds).
  unsigned Rounds = 2;
  /// Candidates emitted per round.
  unsigned Budget = 16;
  /// Maximum method calls per candidate test.
  unsigned MaxCalls = 16;
  /// Worker threads for the validation runs (0 = hardware concurrency).
  unsigned Jobs = 1;
  /// Run the corpus reducer after the last round.
  bool Reduce = true;
  /// Compute static summaries and steer toward uncovered suspicious pairs.
  bool StaticSteering = true;
};

/// One kept generated seed test.
struct GenSeed {
  std::string Name;   ///< Test name ("gen_r<round>_c<index>").
  std::string Source; ///< Complete "test name {...}" source text.
};

/// A candidate lost to an injected or real fault, for the run report.
struct GenQuarantine {
  unsigned Round = 0;
  unsigned Candidate = 0; ///< Global candidate index (Round*Budget+i).
  std::string Stage;      ///< "emit" or "run".
  std::string Message;
};

/// The generated corpus plus everything the caller reports about it.
struct GenResult {
  /// Kept seeds after reduction, in generation order.
  std::vector<GenSeed> Seeds;
  /// Library source (hand-written tests stripped) + kept seeds: feed this
  /// to runNarada in place of the original source.
  std::string CorpusSource;
  /// Names of the kept seeds, in order (runNarada's SeedNames input).
  std::vector<std::string> SeedNames;
  /// RacyPair keys covered by the kept corpus ("gen.pairs_covered").
  std::set<std::string> PairKeys;
  /// Candidates that faulted during emit/validate.
  std::vector<GenQuarantine> Quarantined;
  /// Statically suspicious target pairs and how many generation covered.
  unsigned StaticTargets = 0;
  unsigned StaticTargetsCovered = 0;
};

/// The per-candidate seed split: SplitMix64 over the base seed and the
/// candidate's (round, index) coordinates, mirroring pairDerivationSeed so
/// candidate streams are independent of emission order and job count.
uint64_t candidateSeed(uint64_t Base, unsigned Round, unsigned Index);

/// Generates a seed corpus for \p LibrarySource (any hand-written tests in
/// it are stripped first — the zero-seed contract).  Fails only on a
/// library that does not compile; lost candidates degrade to quarantine
/// records.  Bumps the gen.* counters under an outer "pipeline.gen" span.
Result<GenResult> generateSeedCorpus(const std::string &LibrarySource,
                                     const GenOptions &Options);

} // namespace gen
} // namespace narada

#endif // NARADA_GEN_GENENGINE_H
