//===- gen/SeedGen.h - Method-sequence seed test generator ------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits one sequential MiniJava seed test at a time: receiver
/// construction, typed value pools, and a weighted method-call chain over
/// the ApiModel — the RamFuzz "method invocation chain" restated for the
/// Narada pipeline's seed-suite input format.  Every emitted program is
/// well-typed by construction (arguments are drawn only from pools of the
/// parameter's exact type, with 'null' as the last resort for reference
/// slots), straight-line, and spawn-free, so it satisfies SeedNormalizer's
/// contract verbatim.
///
/// Determinism contract: generation consumes exactly one caller-provided
/// RNG and iterates only ordered containers, so a fixed (model, options,
/// weights, seed) quadruple reproduces the test source byte for byte — the
/// property the engine's split-seed discipline (candidateSeed) builds on.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_GEN_SEEDGEN_H
#define NARADA_GEN_SEEDGEN_H

#include "gen/ApiModel.h"
#include "support/RNG.h"

#include <map>
#include <string>

namespace narada {
namespace gen {

/// Knobs for one emitted test.
struct SeedGenOptions {
  /// Receivers are drawn from this class (empty: uniformly from every
  /// constructible modeled class).
  std::string FocusClass;
  /// Upper bound on method calls per test (at least 2 are emitted so a
  /// single seed can already exhibit a two-access pair).
  unsigned MaxCalls = 16;
  /// Chance (percent) of constructing a second focus-class receiver, which
  /// diversifies the setter/factory material the context deriver mines.
  unsigned SecondReceiverPercent = 50;
};

/// Per-method steering weights, keyed by "Class.method" (methodSymbol
/// format).  Methods absent from the map weigh 1; the engine raises the
/// weight of methods participating in statically suspicious, not-yet-
/// covered pairs (see GenEngine.h).
using MethodWeights = std::map<std::string, unsigned>;

/// Generates one seed test named \p TestName.  Returns the complete test
/// source ("test name {...}").  \p R is the candidate's private RNG stream.
std::string generateSeedTest(const ApiModel &Model,
                             const SeedGenOptions &Options,
                             const MethodWeights &Weights,
                             const std::string &TestName, RNG &R);

/// Generates the API-sweep variant: constructs every constructible class,
/// then calls every method of every class in declaration order — the focus
/// class twice, so its second pass observes the state the first pass built
/// (hand-written seed suites have exactly this construct-populate-exercise
/// shape, which random chains reach only by luck).  Reference arguments
/// alternate between freshly constructed and pooled objects, so transfer
/// methods see both empty and populated peers.  \p R only varies argument
/// choices; the call skeleton is fixed by the model.
std::string generateSweepSeedTest(const ApiModel &Model,
                                  const SeedGenOptions &Options,
                                  const std::string &TestName, RNG &R);

} // namespace gen
} // namespace narada

#endif // NARADA_GEN_SEEDGEN_H
