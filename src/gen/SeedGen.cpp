//===- gen/SeedGen.cpp - Method-sequence seed test generator -------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "gen/SeedGen.h"

#include "ir/IR.h"

#include <set>
#include <sstream>

using namespace narada;
using namespace narada::gen;

namespace {

/// Mutable state of one test emission: the statement list plus typed value
/// pools the statements have defined so far.
class Emitter {
public:
  Emitter(const ApiModel &Model, const SeedGenOptions &Options,
          const MethodWeights &Weights, RNG &R)
      : Model(Model), Options(Options), Weights(Weights), R(R) {}

  std::string run(const std::string &TestName);
  std::string runSweep(const std::string &TestName);

private:
  /// Depth bound for recursive receiver/argument construction; deeper
  /// reference slots fall back to 'null'.
  static constexpr unsigned MaxConstructDepth = 3;

  std::string freshVar(const char *Prefix) {
    return std::string(Prefix) + std::to_string(VarCount++);
  }

  void stmt(const std::string &S) { Lines.push_back("  " + S); }

  /// Returns an expression of exactly \p Ty, emitting defining statements
  /// as needed.  Never fails: reference slots degrade to 'null'.
  std::string produceValue(const Type &Ty, unsigned Depth);
  /// Constructs a fresh instance of \p Class, pooling it; returns the
  /// variable name.
  std::string constructObject(const ClassModel &Class, unsigned Depth);
  std::string produceIntArray();

  /// Uniform pick of a definitely-non-null pooled var; nullptr if the pool
  /// has none.
  const std::string *pickDefinite(const std::vector<std::string> &Pool) {
    std::vector<const std::string *> Definite;
    for (const std::string &Var : Pool)
      if (!MaybeNull.count(Var))
        Definite.push_back(&Var);
    if (Definite.empty())
      return nullptr;
    return Definite[R.nextBelow(Definite.size())];
  }

  /// Weighted pick over [0, Total) given per-index weights.
  template <typename WeightOf>
  size_t weightedPick(size_t N, WeightOf W) {
    uint64_t Total = 0;
    for (size_t I = 0; I < N; ++I)
      Total += W(I);
    uint64_t Roll = R.nextBelow(Total);
    for (size_t I = 0; I < N; ++I) {
      uint64_t Weight = W(I);
      if (Roll < Weight)
        return I;
      Roll -= Weight;
    }
    return N - 1;
  }

  /// How emitCallTo fills reference-typed parameter slots.
  enum class ArgMode {
    Pooled, ///< Usual produceValue pooling (random chains).
    Fresh,  ///< Always construct a fresh object: inserting a pooled node
            ///< into a second linked structure corrupts the first (next-
            ///< pointer cycles diverge the run), so sweeps stay linear.
    Peer,   ///< Pooled for classes named in PeerTypes (populated backing /
            ///< peer structures), fresh for everything else.
  };

  void emitCall();
  // Recv is taken by value: argument construction pools fresh objects and
  // may reallocate the vector a pooled receiver reference points into.
  void emitCallTo(const ClassModel &Class, const MethodApi &Method,
                  std::string Recv, ArgMode Mode);
  std::string assemble(const std::string &TestName) const;

  const ApiModel &Model;
  const SeedGenOptions &Options;
  const MethodWeights &Weights;
  RNG &R;

  std::vector<std::string> Lines;
  unsigned VarCount = 0;
  /// Reference pools by exact class name (IntArray included); MiniJava has
  /// no subtyping, so exact-type reuse is the only well-typed reuse.
  std::map<std::string, std::vector<std::string>> Refs;
  std::vector<std::string> Ints;
  std::vector<std::string> Bools;
  /// Classes the sweep's Peer mode draws from the pool (see ArgMode::Peer).
  std::set<std::string> PeerTypes;
  /// Pooled vars bound from method returns: possibly null, so sweeps never
  /// use them as receivers or dereferenced arguments (random chains may —
  /// faulting candidates are simply discarded by validation).
  std::set<std::string> MaybeNull;
};

const char *const IntLiterals[] = {"0", "1", "2", "3", "4", "5", "7", "8"};

std::string Emitter::produceIntArray() {
  auto &Pool = Refs[IntArrayClassName];
  if (!Pool.empty() && R.chance(60, 100))
    return Pool[R.nextBelow(Pool.size())];
  const char *const Lens[] = {"1", "2", "4", "8"};
  std::string Var = freshVar("a");
  stmt("var " + Var + ": IntArray = new IntArray(" +
       Lens[R.nextBelow(std::size(Lens))] + ");");
  Pool.push_back(Var);
  return Var;
}

std::string Emitter::constructObject(const ClassModel &Class, unsigned Depth) {
  std::vector<std::string> Args;
  for (const Type &Param : Class.CtorParamTypes)
    Args.push_back(produceValue(Param, Depth + 1));
  std::string Var = freshVar("o");
  std::string Call = "var " + Var + ": " + Class.Name + " = new " + Class.Name +
                     "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Call += ", ";
    Call += Args[I];
  }
  Call += ");";
  stmt(Call);
  Refs[Class.Name].push_back(Var);
  return Var;
}

std::string Emitter::produceValue(const Type &Ty, unsigned Depth) {
  if (Ty.isInt()) {
    if (!Ints.empty() && R.chance(40, 100))
      return Ints[R.nextBelow(Ints.size())];
    return IntLiterals[R.nextBelow(std::size(IntLiterals))];
  }
  if (Ty.isBool()) {
    if (!Bools.empty() && R.chance(40, 100))
      return Bools[R.nextBelow(Bools.size())];
    return R.chance(1, 2) ? "true" : "false";
  }
  if (Ty.isClass()) {
    if (Ty.className() == IntArrayClassName)
      return produceIntArray();
    // Prefer reuse: aliasing two receivers over one pooled object is exactly
    // how wrapper-style races (C1) become stageable from a seed.
    auto PoolIt = Refs.find(Ty.className());
    if (PoolIt != Refs.end() && !PoolIt->second.empty() &&
        R.chance(60, 100))
      return PoolIt->second[R.nextBelow(PoolIt->second.size())];
    const ClassModel *Class = Model.find(Ty.className());
    if (Class && Depth < MaxConstructDepth)
      return constructObject(*Class, Depth);
    if (PoolIt != Refs.end() && !PoolIt->second.empty())
      return PoolIt->second[R.nextBelow(PoolIt->second.size())];
    return "null";
  }
  return "null";
}

void Emitter::emitCall() {
  // Receivers: every pooled object whose class exposes methods.  Focus-class
  // receivers weigh more so the chain exercises the class under test.
  struct Candidate {
    const ClassModel *Class;
    const std::string *Var;
  };
  std::vector<Candidate> Receivers;
  for (const auto &[ClassName, Vars] : Refs) {
    const ClassModel *Class = Model.find(ClassName);
    if (!Class || Class->Methods.empty())
      continue;
    for (const std::string &Var : Vars)
      Receivers.push_back({Class, &Var});
  }
  if (Receivers.empty())
    return;
  size_t RecvIdx = weightedPick(Receivers.size(), [&](size_t I) -> uint64_t {
    return Receivers[I].Class->Name == Options.FocusClass ? 4 : 1;
  });
  const ClassModel &Class = *Receivers[RecvIdx].Class;
  std::string Recv = *Receivers[RecvIdx].Var;

  size_t MethodIdx =
      weightedPick(Class.Methods.size(), [&](size_t I) -> uint64_t {
        auto It = Weights.find(methodSymbol(Class.Name, Class.Methods[I].Name));
        return It == Weights.end() ? 1 : It->second;
      });
  emitCallTo(Class, Class.Methods[MethodIdx], Recv, ArgMode::Pooled);
}

void Emitter::emitCallTo(const ClassModel &Class, const MethodApi &Method,
                         std::string Recv, ArgMode Mode) {
  std::vector<std::string> Args;
  for (const Type &Param : Method.ParamTypes) {
    const ClassModel *ParamClass =
        Param.isClass() && Param.className() != IntArrayClassName
            ? Model.find(Param.className())
            : nullptr;
    bool WantFresh =
        ParamClass && ParamClass->Constructible && Mode != ArgMode::Pooled;
    const std::string *Peer =
        ParamClass && Mode == ArgMode::Peer && PeerTypes.count(ParamClass->Name)
            ? pickDefinite(Refs[ParamClass->Name])
            : nullptr;
    if (Peer) {
      Args.push_back(*Peer);
    } else if (WantFresh) {
      Args.push_back(constructObject(*ParamClass, 1));
    } else {
      Args.push_back(produceValue(Param, 1));
    }
  }

  std::string Call = Recv + "." + Method.Name + "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Call += ", ";
    Call += Args[I];
  }
  Call += ")";

  const Type &Ret = Method.ReturnType;
  if (Ret.isVoid()) {
    stmt(Call + ";");
    return;
  }
  if (Ret.isInt()) {
    std::string Var = freshVar("n");
    stmt("var " + Var + ": int = " + Call + ";");
    Ints.push_back(Var);
    return;
  }
  if (Ret.isBool()) {
    std::string Var = freshVar("b");
    stmt("var " + Var + ": bool = " + Call + ";");
    Bools.push_back(Var);
    return;
  }
  std::string Var = freshVar("r");
  stmt("var " + Var + ": " + Ret.className() + " = " + Call + ";");
  Refs[Ret.className()].push_back(Var);
  MaybeNull.insert(Var);
}

std::string Emitter::run(const std::string &TestName) {
  // Pick the root receiver class: the focus class when given, otherwise
  // uniformly over modeled classes that expose methods.
  const ClassModel *Focus = Model.find(Options.FocusClass);
  if (!Focus) {
    std::vector<const ClassModel *> Eligible;
    for (const auto &[Name, Class] : Model.Classes)
      if (!Class.Methods.empty())
        Eligible.push_back(&Class);
    if (!Eligible.empty())
      Focus = Eligible[R.nextBelow(Eligible.size())];
  }

  if (Focus) {
    constructObject(*Focus, 0);
    if (R.chance(Options.SecondReceiverPercent, 100))
      constructObject(*Focus, 0);

    unsigned NumCalls =
        Options.MaxCalls <= 2
            ? 2
            : 2 + static_cast<unsigned>(R.nextBelow(Options.MaxCalls - 1));
    for (unsigned I = 0; I < NumCalls; ++I)
      emitCall();
  }

  return assemble(TestName);
}

std::string Emitter::runSweep(const std::string &TestName) {
  // Construct the focus class first (its peers get pooled around it), one
  // of every other constructible class, then a second focus receiver —
  // which reuses pooled constructor arguments with the usual bias, the
  // two-wrappers-one-backing-object aliasing of the paper's Fig. 2.
  const ClassModel *Focus = Model.find(Options.FocusClass);
  if (Focus && Focus->Constructible)
    constructObject(*Focus, 0);
  for (const auto &[Name, Class] : Model.Classes)
    if (Class.Constructible && (!Focus || Name != Focus->Name))
      constructObject(Class, 0);
  if (Focus && Focus->Constructible)
    constructObject(*Focus, 0);

  // Peer types: classes the focus constructor takes — the backing / peer
  // structures its transfer-style methods move state between.
  if (Focus)
    for (const Type &Param : Focus->CtorParamTypes)
      if (Param.isClass() && Param.className() != IntArrayClassName)
        PeerTypes.insert(Param.className());

  auto SweepClass = [&](const ClassModel &Class, ArgMode Mode) {
    for (const MethodApi &Method : Class.Methods) {
      const std::string *Recv = pickDefinite(Refs[Class.Name]);
      if (!Recv)
        return;
      emitCallTo(Class, Method, *Recv, Mode);
    }
  };

  // Pass 1 exercises every method of every class with fresh reference
  // arguments — each node object is inserted into at most one structure,
  // so linked-state receivers end the pass populated but uncorrupted.
  // Pass 2 revisits the focus class drawing peer-typed arguments from the
  // pool (now populated by pass 1), so transfer methods finally see a
  // non-empty peer, while everything else stays fresh.
  for (const auto &[Name, Class] : Model.Classes)
    SweepClass(Class, ArgMode::Fresh);
  if (Focus)
    SweepClass(*Focus, ArgMode::Peer);

  return assemble(TestName);
}

std::string Emitter::assemble(const std::string &TestName) const {
  std::ostringstream OS;
  OS << "test " << TestName << " {\n";
  for (const std::string &Line : Lines)
    OS << Line << "\n";
  OS << "}\n";
  return OS.str();
}

} // namespace

std::string narada::gen::generateSeedTest(const ApiModel &Model,
                                          const SeedGenOptions &Options,
                                          const MethodWeights &Weights,
                                          const std::string &TestName,
                                          RNG &R) {
  Emitter E(Model, Options, Weights, R);
  return E.run(TestName);
}

std::string narada::gen::generateSweepSeedTest(const ApiModel &Model,
                                               const SeedGenOptions &Options,
                                               const std::string &TestName,
                                               RNG &R) {
  static const MethodWeights NoWeights;
  Emitter E(Model, Options, NoWeights, R);
  return E.runSweep(TestName);
}
