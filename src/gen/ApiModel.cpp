//===- gen/ApiModel.cpp - Public-API model for seed generation -----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "gen/ApiModel.h"

#include "ir/IR.h"

using namespace narada;
using namespace narada::gen;

bool ApiModel::producible(const Type &Ty) const {
  if (Ty.isPrimitive())
    return true;
  if (!Ty.isClass())
    return false;
  if (Ty.className() == IntArrayClassName)
    return true;
  const ClassModel *Model = find(Ty.className());
  return Model && Model->Constructible;
}

ApiModel narada::gen::extractApiModel(const ProgramInfo &Info,
                                      const staticrace::ModuleSummary *Static) {
  ApiModel Out;
  for (const std::string &Name : Info.classNames()) {
    const ClassInfo *Class = Info.findClass(Name);
    if (!Class || Class->IsBuiltin)
      continue;
    ClassModel Model;
    Model.Name = Name;
    for (const MethodInfo &Method : Class->Methods) {
      if (Method.Name == ConstructorName) {
        Model.CtorParamTypes = Method.ParamTypes;
        continue;
      }
      MethodApi Api;
      Api.Name = Method.Name;
      Api.ParamTypes = Method.ParamTypes;
      Api.ReturnType = Method.ReturnType;
      if (Static) {
        if (const staticrace::MethodSummary *Summary =
                Static->find(methodSymbol(Name, Method.Name))) {
          for (const staticrace::StaticAccess &Access : Summary->Accesses) {
            Api.TouchedFields.insert(Access.FieldClassName + "." +
                                     Access.Field);
            if (Access.Ctrl == staticrace::Controllability::Param)
              Api.TouchesControllableState = true;
          }
        }
      }
      Model.Methods.push_back(std::move(Api));
    }
    Out.Classes.emplace(Name, std::move(Model));
  }

  // Constructibility fixpoint: start from "nothing constructible" and grow.
  // Each round marks classes whose constructor parameters are all already
  // producible; mutually recursive constructor signatures stay out (their
  // reference slots fall back to null at generation time).
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (auto &[Name, Model] : Out.Classes) {
      if (Model.Constructible)
        continue;
      bool Ok = true;
      for (const Type &Param : Model.CtorParamTypes)
        if (!Out.producible(Param)) {
          Ok = false;
          break;
        }
      if (Ok) {
        Model.Constructible = true;
        Changed = true;
      }
    }
  }
  return Out;
}
