//===- lang/SourceLoc.h - Source positions ----------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column positions for diagnostics in the MiniJava front end.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_LANG_SOURCELOC_H
#define NARADA_LANG_SOURCELOC_H

#include "support/StringUtils.h"

#include <string>

namespace narada {

/// A 1-based line/column position within a MiniJava source buffer.
struct SourceLoc {
  int Line = 0;
  int Column = 0;

  bool isValid() const { return Line > 0; }

  std::string str() const {
    return formatString("%d:%d", Line, Column);
  }
};

} // namespace narada

#endif // NARADA_LANG_SOURCELOC_H
