//===- lang/ASTPrinter.h - MiniJava pretty printer --------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders AST nodes back to MiniJava source.  Synthesized racy tests are
/// ASTs; this printer turns them into the human-readable concurrent client
/// programs the paper presents (cf. Fig. 3).
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_LANG_ASTPRINTER_H
#define NARADA_LANG_ASTPRINTER_H

#include "lang/AST.h"

#include <string>

namespace narada {

/// Renders an expression as source text.
std::string printExpr(const Expr *E);

/// Renders a statement as source text, indented by \p Indent levels.
std::string printStmt(const Stmt *S, int Indent = 0);

/// Renders a test declaration as source text.
std::string printTest(const TestDecl &Test);

/// Renders a class declaration as source text.
std::string printClass(const ClassDecl &Class);

/// Renders a whole program as source text.
std::string printProgram(const Program &Prog);

} // namespace narada

#endif // NARADA_LANG_ASTPRINTER_H
