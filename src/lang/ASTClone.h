//===- lang/ASTClone.h - Deep cloning with renaming -------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-copies AST subtrees, optionally renaming variable references.  The
/// test synthesizer inlines a seed test's statements several times into one
/// synthesized test (once per object instance it needs to collect, cf.
/// Algorithm 1's collectObjects), so each copy's locals must get fresh
/// names.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_LANG_ASTCLONE_H
#define NARADA_LANG_ASTCLONE_H

#include "lang/AST.h"

#include <map>
#include <string>

namespace narada {

/// Maps original local variable names to replacement names.  Names absent
/// from the map are kept as-is.
using RenameMap = std::map<std::string, std::string>;

/// Deep-copies \p E, renaming VarRefExpr names through \p Renames.
ExprPtr cloneExpr(const Expr *E, const RenameMap &Renames = {});

/// Deep-copies \p S, renaming variable declarations and references through
/// \p Renames.
StmtPtr cloneStmt(const Stmt *S, const RenameMap &Renames = {});

} // namespace narada

#endif // NARADA_LANG_ASTCLONE_H
