//===- lang/Sema.h - MiniJava semantic analysis -----------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checking and symbol resolution for MiniJava.  Sema annotates every
/// expression with its static type and produces a ProgramInfo symbol table
/// (class/field/method layouts) consumed by IR lowering and by the Narada
/// analyses, which reason about static types when deriving contexts.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_LANG_SEMA_H
#define NARADA_LANG_SEMA_H

#include "lang/AST.h"
#include "support/Error.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace narada {

/// Layout and signature information for one field.
struct FieldInfo {
  std::string Name;
  Type DeclaredType;
  unsigned Index = 0; ///< Slot index within the object layout.
};

/// Signature information for one method.
struct MethodInfo {
  std::string Name;
  std::vector<Type> ParamTypes;
  std::vector<std::string> ParamNames;
  Type ReturnType = Type::voidTy();
  bool IsSynchronized = false;
  bool IsBuiltin = false;     ///< Implemented natively by the VM (IntArray).
  const MethodDecl *Decl = nullptr; ///< Null for builtins.
};

/// Resolved information about one class.
struct ClassInfo {
  std::string Name;
  bool IsBuiltin = false;
  std::vector<FieldInfo> Fields;
  std::vector<MethodInfo> Methods;
  const ClassDecl *Decl = nullptr; ///< Null for builtins.

  const FieldInfo *findField(const std::string &Name) const {
    for (const FieldInfo &F : Fields)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
  const MethodInfo *findMethod(const std::string &Name) const {
    for (const MethodInfo &M : Methods)
      if (M.Name == Name)
        return &M;
    return nullptr;
  }
};

/// The name of the builtin fixed-size integer array class.
inline constexpr const char *IntArrayClassName = "IntArray";

/// The name reserved for constructors.
inline constexpr const char *ConstructorName = "init";

/// Symbol tables for a checked program.
class ProgramInfo {
public:
  /// Returns the class named \p Name, or nullptr.
  const ClassInfo *findClass(const std::string &Name) const {
    auto It = Classes.find(Name);
    return It == Classes.end() ? nullptr : &It->second;
  }

  /// All classes in declaration order (builtins first).
  const std::vector<std::string> &classNames() const { return Order; }

  /// Registers a class; name must be fresh.
  ClassInfo &addClass(ClassInfo Info);

private:
  std::map<std::string, ClassInfo> Classes;
  std::vector<std::string> Order;
};

/// Runs semantic analysis over \p Prog: resolves classes, checks every
/// method and test body, and annotates expressions with types.  On success
/// returns the symbol tables.
Result<std::shared_ptr<ProgramInfo>> analyze(Program &Prog);

} // namespace narada

#endif // NARADA_LANG_SEMA_H
