//===- lang/Type.h - MiniJava types -----------------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJava type representation: int, bool, class references, null and
/// void.  Types are small value objects; class identity is by name.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_LANG_TYPE_H
#define NARADA_LANG_TYPE_H

#include <string>
#include <utility>

namespace narada {

/// A MiniJava static type.
class Type {
public:
  enum class Kind {
    Invalid, ///< Not yet resolved by semantic analysis.
    Int,
    Bool,
    Class, ///< A reference to a user-defined or builtin class.
    Null,  ///< The type of the 'null' literal; compatible with any class.
    Void,  ///< Methods without a return type.
  };

  Type() = default;
  explicit Type(Kind K) : TheKind(K) {}
  Type(Kind K, std::string ClassName)
      : TheKind(K), ClassName(std::move(ClassName)) {}

  static Type intTy() { return Type(Kind::Int); }
  static Type boolTy() { return Type(Kind::Bool); }
  static Type voidTy() { return Type(Kind::Void); }
  static Type nullTy() { return Type(Kind::Null); }
  static Type classTy(std::string Name) {
    return Type(Kind::Class, std::move(Name));
  }

  Kind kind() const { return TheKind; }
  bool isValid() const { return TheKind != Kind::Invalid; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isClass() const { return TheKind == Kind::Class; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isVoid() const { return TheKind == Kind::Void; }
  bool isPrimitive() const { return isInt() || isBool(); }
  /// True for class references and null: values stored as heap references.
  bool isReference() const { return isClass() || isNull(); }

  /// The class name; only meaningful for Kind::Class.
  const std::string &className() const { return ClassName; }

  /// Structural equality.  null == null, classes compare by name.
  bool operator==(const Type &Other) const {
    return TheKind == Other.TheKind && ClassName == Other.ClassName;
  }
  bool operator!=(const Type &Other) const { return !(*this == Other); }

  /// True if a value of type \p From may be assigned to a slot of this type
  /// (identical types, or null into any class slot).
  bool acceptsValueOf(const Type &From) const {
    if (*this == From)
      return true;
    return isClass() && From.isNull();
  }

  /// Human-readable spelling.
  std::string str() const {
    switch (TheKind) {
    case Kind::Invalid:
      return "<invalid>";
    case Kind::Int:
      return "int";
    case Kind::Bool:
      return "bool";
    case Kind::Class:
      return ClassName;
    case Kind::Null:
      return "null";
    case Kind::Void:
      return "void";
    }
    return "<invalid>";
  }

private:
  Kind TheKind = Kind::Invalid;
  std::string ClassName;
};

} // namespace narada

#endif // NARADA_LANG_TYPE_H
