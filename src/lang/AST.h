//===- lang/AST.h - MiniJava abstract syntax --------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJava AST.  The statement set is deliberately the trace grammar of
/// Fig. 7 in the paper (assignments, field reads/writes, allocation, lock /
/// unlock via 'synchronized', return, method invocation) plus structured
/// control flow and a 'spawn' statement used by *synthesized* multithreaded
/// tests.  Nodes carry an LLVM-style kind discriminator instead of RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_LANG_AST_H
#define NARADA_LANG_AST_H

#include "lang/SourceLoc.h"
#include "lang/Type.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace narada {

class Expr;
class Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary operator kinds.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

/// Unary operator kinds.
enum class UnaryOp {
  Neg,
  Not,
};

/// Returns the source spelling of \p Op ("+", "==", ...).
const char *binaryOpSpelling(BinaryOp Op);

/// Returns the source spelling of \p Op ("-", "!").
const char *unaryOpSpelling(UnaryOp Op);

/// Base class of all expressions.
class Expr {
public:
  enum class Kind {
    IntLit,
    BoolLit,
    NullLit,
    This,
    VarRef,
    FieldAccess,
    Call,
    New,
    Unary,
    Binary,
    Rand,
  };

  virtual ~Expr() = default;

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

  /// The static type computed by semantic analysis; Invalid before Sema runs.
  const Type &type() const { return Ty; }
  void setType(Type T) { Ty = std::move(T); }

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
  Type Ty;
};

/// An integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A 'true' or 'false' literal.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(Kind::BoolLit, Loc), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::BoolLit; }

private:
  bool Value;
};

/// The 'null' literal.
class NullLitExpr : public Expr {
public:
  explicit NullLitExpr(SourceLoc Loc) : Expr(Kind::NullLit, Loc) {}

  static bool classof(const Expr *E) { return E->kind() == Kind::NullLit; }
};

/// The 'this' receiver reference; valid only inside methods.
class ThisExpr : public Expr {
public:
  explicit ThisExpr(SourceLoc Loc) : Expr(Kind::This, Loc) {}

  static bool classof(const Expr *E) { return E->kind() == Kind::This; }
};

/// A reference to a local variable or parameter.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
};

/// A field read 'base.field' (also the left-hand side of field writes).
class FieldAccessExpr : public Expr {
public:
  FieldAccessExpr(ExprPtr Base, std::string Field, SourceLoc Loc)
      : Expr(Kind::FieldAccess, Loc), Base(std::move(Base)),
        Field(std::move(Field)) {}

  Expr *base() const { return Base.get(); }
  ExprPtr takeBase() { return std::move(Base); }
  const std::string &field() const { return Field; }

  static bool classof(const Expr *E) { return E->kind() == Kind::FieldAccess; }

private:
  ExprPtr Base;
  std::string Field;
};

/// A method invocation 'base.m(args)'.
class CallExpr : public Expr {
public:
  CallExpr(ExprPtr Base, std::string Method, std::vector<ExprPtr> Args,
           SourceLoc Loc)
      : Expr(Kind::Call, Loc), Base(std::move(Base)),
        Method(std::move(Method)), Args(std::move(Args)) {}

  Expr *base() const { return Base.get(); }
  const std::string &method() const { return Method; }
  const std::vector<ExprPtr> &args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  ExprPtr Base;
  std::string Method;
  std::vector<ExprPtr> Args;
};

/// An allocation 'new C(args)'.  If class C declares a method named 'init',
/// the arguments are passed to it; otherwise no arguments are allowed.
class NewExpr : public Expr {
public:
  NewExpr(std::string ClassName, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::New, Loc), ClassName(std::move(ClassName)),
        Args(std::move(Args)) {}

  const std::string &className() const { return ClassName; }
  const std::vector<ExprPtr> &args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == Kind::New; }

private:
  std::string ClassName;
  std::vector<ExprPtr> Args;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS.get(); }
  Expr *rhs() const { return RHS.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// 'rand()': an int whose value a client cannot control.  Mirrors the
/// paper's rand() used to mark non-controllable data sources (Fig. 8).
class RandExpr : public Expr {
public:
  explicit RandExpr(SourceLoc Loc) : Expr(Kind::Rand, Loc) {}

  static bool classof(const Expr *E) { return E->kind() == Kind::Rand; }
};

/// LLVM-style checked cast helpers for AST nodes (no RTTI).
template <typename To, typename From> bool isa(const From *Node) {
  return To::classof(Node);
}

template <typename To, typename From> To *cast(From *Node) {
  assert(isa<To>(Node) && "cast to incompatible AST node");
  return static_cast<To *>(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast to incompatible AST node");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> To *dyn_cast(From *Node) {
  return isa<To>(Node) ? static_cast<To *>(Node) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all statements.
class Stmt {
public:
  enum class Kind {
    Block,
    VarDecl,
    Assign,
    ExprStmt,
    If,
    While,
    Return,
    Sync,
    Spawn,
  };

  virtual ~Stmt() = default;

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// A brace-delimited statement list.
class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}

  const std::vector<StmtPtr> &stmts() const { return Stmts; }
  std::vector<StmtPtr> &stmts() { return Stmts; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

/// 'var x: T = init;' — a local variable declaration.
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(std::string Name, Type DeclaredType, ExprPtr Init,
              SourceLoc Loc)
      : Stmt(Kind::VarDecl, Loc), Name(std::move(Name)),
        DeclaredType(std::move(DeclaredType)), Init(std::move(Init)) {}

  const std::string &name() const { return Name; }
  const Type &declaredType() const { return DeclaredType; }
  Expr *init() const { return Init.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::VarDecl; }

private:
  std::string Name;
  Type DeclaredType;
  ExprPtr Init; ///< May be null: default-initialized.
};

/// 'lvalue = expr;' where lvalue is a variable or a field path.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr Target, ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}

  /// The assignment target: a VarRefExpr or FieldAccessExpr.
  Expr *target() const { return Target.get(); }
  Expr *value() const { return Value.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  ExprPtr Target;
  ExprPtr Value;
};

/// An expression evaluated for its side effects (a call, typically).
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc) : Stmt(Kind::ExprStmt, Loc),
                                       TheExpr(std::move(E)) {}

  Expr *expr() const { return TheExpr.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::ExprStmt; }

private:
  ExprPtr TheExpr;
};

/// 'if (cond) { ... } else { ... }'.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *thenBranch() const { return Then.get(); }
  Stmt *elseBranch() const { return Else.get(); } ///< May be null.

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else;
};

/// 'while (cond) { ... }'.
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

/// 'return expr?;'.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}

  Expr *value() const { return Value.get(); } ///< May be null.

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  ExprPtr Value;
};

/// 'synchronized (expr) { ... }' — acquires the monitor of the evaluated
/// object for the duration of the block.  Method-level 'synchronized' is
/// desugared by the parser into a body-wide sync block on 'this'.
class SyncStmt : public Stmt {
public:
  SyncStmt(ExprPtr LockExpr, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::Sync, Loc), LockExpr(std::move(LockExpr)),
        Body(std::move(Body)) {}

  Expr *lockExpr() const { return LockExpr.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Sync; }

private:
  ExprPtr LockExpr;
  StmtPtr Body;
};

/// 'spawn { ... }' — runs the block on a new thread.  Appears only in tests
/// (synthesized racy tests and hand-written multithreaded examples); the
/// spawning test implicitly joins all spawned threads at its end.
class SpawnStmt : public Stmt {
public:
  SpawnStmt(StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::Spawn, Loc), Body(std::move(Body)) {}

  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Spawn; }

private:
  StmtPtr Body;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A field declaration inside a class.
struct FieldDecl {
  std::string Name;
  Type DeclaredType;
  SourceLoc Loc;
};

/// A formal parameter.
struct ParamDecl {
  std::string Name;
  Type DeclaredType;
  SourceLoc Loc;
};

/// A method declaration.  A method named 'init' acts as the constructor.
struct MethodDecl {
  std::string Name;
  std::vector<ParamDecl> Params;
  Type ReturnType = Type::voidTy();
  bool IsSynchronized = false;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
};

/// A class declaration.
struct ClassDecl {
  std::string Name;
  std::vector<FieldDecl> Fields;
  std::vector<std::unique_ptr<MethodDecl>> Methods;
  SourceLoc Loc;

  /// Finds a method by name, or nullptr.
  const MethodDecl *findMethod(const std::string &Name) const {
    for (const auto &M : Methods)
      if (M->Name == Name)
        return M.get();
    return nullptr;
  }

  /// Finds a field by name, or nullptr.
  const FieldDecl *findField(const std::string &Name) const {
    for (const auto &F : Fields)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// A top-level test: sequential seed tests and synthesized racy tests.
struct TestDecl {
  std::string Name;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
};

/// A whole MiniJava compilation unit.
struct Program {
  std::vector<std::unique_ptr<ClassDecl>> Classes;
  std::vector<std::unique_ptr<TestDecl>> Tests;

  /// Finds a class by name, or nullptr.
  const ClassDecl *findClass(const std::string &Name) const {
    for (const auto &C : Classes)
      if (C->Name == Name)
        return C.get();
    return nullptr;
  }

  /// Finds a test by name, or nullptr.
  const TestDecl *findTest(const std::string &Name) const {
    for (const auto &T : Tests)
      if (T->Name == Name)
        return T.get();
    return nullptr;
  }
};

} // namespace narada

#endif // NARADA_LANG_AST_H
