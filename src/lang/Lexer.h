//===- lang/Lexer.h - MiniJava lexer ----------------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the MiniJava language.  Supports '//' line comments
/// and '/* */' block comments.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_LANG_LEXER_H
#define NARADA_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Error.h"

#include <string>
#include <string_view>
#include <vector>

namespace narada {

/// Converts a MiniJava source buffer into a token stream.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Lexes the entire buffer.  On success the returned vector always ends
  /// with an Eof token.
  Result<std::vector<Token>> lexAll();

private:
  Result<Token> lexToken();
  void skipWhitespaceAndComments();
  Token makeToken(TokenKind Kind, size_t Begin);
  char peek(size_t Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc currentLoc() const { return SourceLoc{Line, Column}; }

  std::string_view Source;
  size_t Pos = 0;
  int Line = 1;
  int Column = 1;
};

} // namespace narada

#endif // NARADA_LANG_LEXER_H
