//===- lang/Token.h - MiniJava tokens ---------------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the MiniJava lexer.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_LANG_TOKEN_H
#define NARADA_LANG_TOKEN_H

#include "lang/SourceLoc.h"

#include <cstdint>
#include <string>

namespace narada {

/// The lexical categories of the MiniJava language.
enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,

  // Keywords.
  KwClass,
  KwField,
  KwMethod,
  KwVar,
  KwTest,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwSynchronized,
  KwSpawn,
  KwNew,
  KwThis,
  KwNull,
  KwTrue,
  KwFalse,
  KwInt,
  KwBool,
  KwRand,

  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semicolon,
  Colon,
  Comma,
  Dot,
  Assign,

  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  BangEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang,
};

/// Returns a human-readable spelling for diagnostics ("'{'", "identifier").
const char *tokenKindName(TokenKind Kind);

/// A single lexed token: kind, source text, position, and (for integer
/// literals) the decoded value.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  SourceLoc Loc;
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace narada

#endif // NARADA_LANG_TOKEN_H
