//===- lang/ASTPrinter.cpp - MiniJava pretty printer ------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "lang/ASTPrinter.h"

#include "support/Error.h"
#include "support/StringUtils.h"

using namespace narada;

static std::string indentString(int Indent) {
  return std::string(static_cast<size_t>(Indent) * 2, ' ');
}

std::string narada::printExpr(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return std::to_string(cast<IntLitExpr>(E)->value());
  case Expr::Kind::BoolLit:
    return cast<BoolLitExpr>(E)->value() ? "true" : "false";
  case Expr::Kind::NullLit:
    return "null";
  case Expr::Kind::This:
    return "this";
  case Expr::Kind::Rand:
    return "rand()";
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(E)->name();
  case Expr::Kind::FieldAccess: {
    const auto *Access = cast<FieldAccessExpr>(E);
    return printExpr(Access->base()) + "." + Access->field();
  }
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    std::vector<std::string> Args;
    for (const ExprPtr &Arg : Call->args())
      Args.push_back(printExpr(Arg.get()));
    return printExpr(Call->base()) + "." + Call->method() + "(" +
           join(Args, ", ") + ")";
  }
  case Expr::Kind::New: {
    const auto *New = cast<NewExpr>(E);
    std::string Out = "new " + New->className();
    if (!New->args().empty()) {
      std::vector<std::string> Args;
      for (const ExprPtr &Arg : New->args())
        Args.push_back(printExpr(Arg.get()));
      Out += "(" + join(Args, ", ") + ")";
    }
    return Out;
  }
  case Expr::Kind::Unary: {
    const auto *Unary = cast<UnaryExpr>(E);
    return std::string(unaryOpSpelling(Unary->op())) +
           printExpr(Unary->operand());
  }
  case Expr::Kind::Binary: {
    const auto *Binary = cast<BinaryExpr>(E);
    return "(" + printExpr(Binary->lhs()) + " " +
           binaryOpSpelling(Binary->op()) + " " + printExpr(Binary->rhs()) +
           ")";
  }
  }
  narada_unreachable("unknown expression kind");
}

std::string narada::printStmt(const Stmt *S, int Indent) {
  std::string Pad = indentString(Indent);
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    const auto *Block = cast<BlockStmt>(S);
    std::string Out = Pad + "{\n";
    for (const StmtPtr &Child : Block->stmts())
      Out += printStmt(Child.get(), Indent + 1);
    Out += Pad + "}\n";
    return Out;
  }
  case Stmt::Kind::VarDecl: {
    const auto *Decl = cast<VarDeclStmt>(S);
    std::string Out = Pad + "var " + Decl->name() + ": " +
                      Decl->declaredType().str();
    if (Decl->init())
      Out += " = " + printExpr(Decl->init());
    return Out + ";\n";
  }
  case Stmt::Kind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    return Pad + printExpr(Assign->target()) + " = " +
           printExpr(Assign->value()) + ";\n";
  }
  case Stmt::Kind::ExprStmt:
    return Pad + printExpr(cast<ExprStmt>(S)->expr()) + ";\n";
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    std::string Out = Pad + "if (" + printExpr(If->cond()) + ")\n";
    Out += printStmt(If->thenBranch(), Indent);
    if (If->elseBranch()) {
      Out += Pad + "else\n";
      Out += printStmt(If->elseBranch(), Indent);
    }
    return Out;
  }
  case Stmt::Kind::While: {
    const auto *While = cast<WhileStmt>(S);
    return Pad + "while (" + printExpr(While->cond()) + ")\n" +
           printStmt(While->body(), Indent);
  }
  case Stmt::Kind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    if (Ret->value())
      return Pad + "return " + printExpr(Ret->value()) + ";\n";
    return Pad + "return;\n";
  }
  case Stmt::Kind::Sync: {
    const auto *Sync = cast<SyncStmt>(S);
    return Pad + "synchronized (" + printExpr(Sync->lockExpr()) + ")\n" +
           printStmt(Sync->body(), Indent);
  }
  case Stmt::Kind::Spawn: {
    const auto *Spawn = cast<SpawnStmt>(S);
    return Pad + "spawn\n" + printStmt(Spawn->body(), Indent);
  }
  }
  narada_unreachable("unknown statement kind");
}

std::string narada::printTest(const TestDecl &Test) {
  return "test " + Test.Name + "\n" + printStmt(Test.Body.get(), 0);
}

std::string narada::printClass(const ClassDecl &Class) {
  std::string Out = "class " + Class.Name + " {\n";
  for (const FieldDecl &F : Class.Fields)
    Out += "  field " + F.Name + ": " + F.DeclaredType.str() + ";\n";
  for (const auto &M : Class.Methods) {
    Out += "  method " + M->Name + "(";
    std::vector<std::string> Params;
    for (const ParamDecl &P : M->Params)
      Params.push_back(P.Name + ": " + P.DeclaredType.str());
    Out += join(Params, ", ") + ")";
    if (!M->ReturnType.isVoid())
      Out += ": " + M->ReturnType.str();
    if (M->IsSynchronized)
      Out += " synchronized";
    Out += "\n";
    Out += printStmt(M->Body.get(), 1);
  }
  Out += "}\n";
  return Out;
}

std::string narada::printProgram(const Program &Prog) {
  std::string Out;
  for (const auto &Class : Prog.Classes)
    Out += printClass(*Class) + "\n";
  for (const auto &Test : Prog.Tests)
    Out += printTest(*Test) + "\n";
  return Out;
}
