//===- lang/Parser.h - MiniJava parser --------------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniJava.  Grammar sketch:
///
/// \code
///   program   := (classDecl | testDecl)*
///   classDecl := 'class' ID '{' (fieldDecl | methodDecl)* '}'
///   fieldDecl := 'field' ID ':' type ';'
///   methodDecl:= 'method' ID '(' params? ')' (':' type)? 'synchronized'?
///                block
///   testDecl  := 'test' ID block
///   stmt      := varDecl | assign | exprStmt | if | while | return
///              | synchronized | spawn | block
///   expr      := precedence-climbing over || && == != < <= > >= + - * / %
///                with unary ! - and postfix '.field' / '.m(args)'
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_LANG_PARSER_H
#define NARADA_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Token.h"
#include "support/Error.h"

#include <memory>
#include <vector>

namespace narada {

/// Parses a token stream into a Program.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  /// Parses a whole compilation unit.
  Result<std::unique_ptr<Program>> parseProgram();

  /// Convenience: lex + parse a source buffer in one step.
  static Result<std::unique_ptr<Program>> parse(std::string_view Source);

private:
  Result<std::unique_ptr<ClassDecl>> parseClass();
  Result<std::unique_ptr<TestDecl>> parseTest();
  Result<FieldDecl> parseField();
  Result<std::unique_ptr<MethodDecl>> parseMethod();
  Result<Type> parseType();
  Result<std::unique_ptr<BlockStmt>> parseBlock();
  Result<StmtPtr> parseStmt();
  Result<StmtPtr> parseVarDecl();
  Result<StmtPtr> parseIf();
  Result<StmtPtr> parseWhile();
  Result<StmtPtr> parseReturn();
  Result<StmtPtr> parseSynchronized();
  Result<StmtPtr> parseSpawn();
  Result<StmtPtr> parseExprOrAssign();

  Result<ExprPtr> parseExpr();
  Result<ExprPtr> parseBinaryRHS(int MinPrec, ExprPtr LHS);
  Result<ExprPtr> parseUnary();
  Result<ExprPtr> parsePostfix();
  Result<ExprPtr> parsePrimary();
  Result<std::vector<ExprPtr>> parseArgs();

  const Token &peek(size_t Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool match(TokenKind Kind);
  Result<Token> expect(TokenKind Kind, const char *Context);
  Error errorHere(const std::string &Message) const;

  std::vector<Token> Tokens;
  size_t Pos = 0;
};

} // namespace narada

#endif // NARADA_LANG_PARSER_H
