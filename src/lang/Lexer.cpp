//===- lang/Lexer.cpp - MiniJava lexer -------------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace narada;

const char *narada::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwField:
    return "'field'";
  case TokenKind::KwMethod:
    return "'method'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwTest:
    return "'test'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSynchronized:
    return "'synchronized'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwRand:
    return "'rand'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  }
  narada_unreachable("unknown token kind");
}

static const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"class", TokenKind::KwClass},
      {"field", TokenKind::KwField},
      {"method", TokenKind::KwMethod},
      {"var", TokenKind::KwVar},
      {"test", TokenKind::KwTest},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"return", TokenKind::KwReturn},
      {"synchronized", TokenKind::KwSynchronized},
      {"spawn", TokenKind::KwSpawn},
      {"new", TokenKind::KwNew},
      {"this", TokenKind::KwThis},
      {"null", TokenKind::KwNull},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"int", TokenKind::KwInt},
      {"bool", TokenKind::KwBool},
      {"rand", TokenKind::KwRand},
  };
  return Table;
}

char Lexer::peek(size_t Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!atEnd()) {
        advance();
        advance();
      }
      continue;
    }
    return;
  }
}

Result<Token> Lexer::lexToken() {
  skipWhitespaceAndComments();
  SourceLoc Loc = currentLoc();
  if (atEnd()) {
    Token T;
    T.Kind = TokenKind::Eof;
    T.Loc = Loc;
    return T;
  }

  size_t Begin = Pos;
  char C = advance();

  auto Simple = [&](TokenKind Kind) {
    Token T;
    T.Kind = Kind;
    T.Text = std::string(Source.substr(Begin, Pos - Begin));
    T.Loc = Loc;
    return T;
  };

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      advance();
    Token T;
    T.Text = std::string(Source.substr(Begin, Pos - Begin));
    T.Loc = Loc;
    auto It = keywordTable().find(T.Text);
    T.Kind = It == keywordTable().end() ? TokenKind::Identifier : It->second;
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    Token T;
    T.Kind = TokenKind::IntLiteral;
    T.Text = std::string(Source.substr(Begin, Pos - Begin));
    T.Loc = Loc;
    // Accumulate with an explicit overflow check: library code must not
    // throw, and a 20-digit literal is a program error, not a crash.
    int64_t Value = 0;
    for (char Digit : T.Text) {
      int64_t Unit = Digit - '0';
      if (Value > (INT64_MAX - Unit) / 10)
        return Error("integer literal too large", Loc.str());
      Value = Value * 10 + Unit;
    }
    T.IntValue = Value;
    return T;
  }

  switch (C) {
  case '{':
    return Simple(TokenKind::LBrace);
  case '}':
    return Simple(TokenKind::RBrace);
  case '(':
    return Simple(TokenKind::LParen);
  case ')':
    return Simple(TokenKind::RParen);
  case '[':
    return Simple(TokenKind::LBracket);
  case ']':
    return Simple(TokenKind::RBracket);
  case ';':
    return Simple(TokenKind::Semicolon);
  case ':':
    return Simple(TokenKind::Colon);
  case ',':
    return Simple(TokenKind::Comma);
  case '.':
    return Simple(TokenKind::Dot);
  case '+':
    return Simple(TokenKind::Plus);
  case '-':
    return Simple(TokenKind::Minus);
  case '*':
    return Simple(TokenKind::Star);
  case '/':
    return Simple(TokenKind::Slash);
  case '%':
    return Simple(TokenKind::Percent);
  case '=':
    if (peek() == '=') {
      advance();
      return Simple(TokenKind::EqEq);
    }
    return Simple(TokenKind::Assign);
  case '!':
    if (peek() == '=') {
      advance();
      return Simple(TokenKind::BangEq);
    }
    return Simple(TokenKind::Bang);
  case '<':
    if (peek() == '=') {
      advance();
      return Simple(TokenKind::LessEq);
    }
    return Simple(TokenKind::Less);
  case '>':
    if (peek() == '=') {
      advance();
      return Simple(TokenKind::GreaterEq);
    }
    return Simple(TokenKind::Greater);
  case '&':
    if (peek() == '&') {
      advance();
      return Simple(TokenKind::AmpAmp);
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      return Simple(TokenKind::PipePipe);
    }
    break;
  default:
    break;
  }
  return Error(formatString("unexpected character '%c'", C), Loc.str());
}

Result<std::vector<Token>> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Result<Token> T = lexToken();
    if (!T)
      return T.error();
    bool IsEof = T->is(TokenKind::Eof);
    Tokens.push_back(T.take());
    if (IsEof)
      return Tokens;
  }
}
