//===- lang/Parser.cpp - MiniJava parser -----------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

using namespace narada;

const char *narada::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  narada_unreachable("unknown binary op");
}

const char *narada::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::Not:
    return "!";
  }
  narada_unreachable("unknown unary op");
}

const Token &Parser::peek(size_t Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // Eof token.
  return Tokens[Index];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

Result<Token> Parser::expect(TokenKind Kind, const char *Context) {
  if (check(Kind))
    return advance();
  return errorHere(formatString("expected %s %s, found %s",
                                tokenKindName(Kind), Context,
                                tokenKindName(peek().Kind)));
}

Error Parser::errorHere(const std::string &Message) const {
  return Error(Message, peek().Loc.str());
}

Result<std::unique_ptr<Program>>
Parser::parse(std::string_view Source) {
  Lexer Lex(Source);
  Result<std::vector<Token>> Tokens = Lex.lexAll();
  if (!Tokens)
    return Tokens.error();
  Parser P(Tokens.take());
  return P.parseProgram();
}

Result<std::unique_ptr<Program>> Parser::parseProgram() {
  auto Prog = std::make_unique<Program>();
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwClass)) {
      Result<std::unique_ptr<ClassDecl>> C = parseClass();
      if (!C)
        return C.error();
      Prog->Classes.push_back(C.take());
      continue;
    }
    if (check(TokenKind::KwTest)) {
      Result<std::unique_ptr<TestDecl>> T = parseTest();
      if (!T)
        return T.error();
      Prog->Tests.push_back(T.take());
      continue;
    }
    return errorHere(formatString("expected 'class' or 'test', found %s",
                                  tokenKindName(peek().Kind)));
  }
  return Prog;
}

Result<std::unique_ptr<ClassDecl>> Parser::parseClass() {
  Token ClassTok = advance(); // 'class'
  Result<Token> Name = expect(TokenKind::Identifier, "after 'class'");
  if (!Name)
    return Name.error();
  if (auto R = expect(TokenKind::LBrace, "to open class body"); !R)
    return R.error();

  auto Class = std::make_unique<ClassDecl>();
  Class->Name = Name->Text;
  Class->Loc = ClassTok.Loc;

  while (!check(TokenKind::RBrace)) {
    if (check(TokenKind::KwField)) {
      Result<FieldDecl> F = parseField();
      if (!F)
        return F.error();
      Class->Fields.push_back(F.take());
      continue;
    }
    if (check(TokenKind::KwMethod)) {
      Result<std::unique_ptr<MethodDecl>> M = parseMethod();
      if (!M)
        return M.error();
      Class->Methods.push_back(M.take());
      continue;
    }
    return errorHere("expected 'field' or 'method' in class body");
  }
  advance(); // '}'
  return Class;
}

Result<FieldDecl> Parser::parseField() {
  Token FieldTok = advance(); // 'field'
  Result<Token> Name = expect(TokenKind::Identifier, "after 'field'");
  if (!Name)
    return Name.error();
  if (auto R = expect(TokenKind::Colon, "after field name"); !R)
    return R.error();
  Result<Type> Ty = parseType();
  if (!Ty)
    return Ty.error();
  if (auto R = expect(TokenKind::Semicolon, "after field declaration"); !R)
    return R.error();
  FieldDecl F;
  F.Name = Name->Text;
  F.DeclaredType = Ty.take();
  F.Loc = FieldTok.Loc;
  return F;
}

Result<std::unique_ptr<MethodDecl>> Parser::parseMethod() {
  Token MethodTok = advance(); // 'method'
  Result<Token> Name = expect(TokenKind::Identifier, "after 'method'");
  if (!Name)
    return Name.error();
  if (auto R = expect(TokenKind::LParen, "to open parameter list"); !R)
    return R.error();

  auto Method = std::make_unique<MethodDecl>();
  Method->Name = Name->Text;
  Method->Loc = MethodTok.Loc;

  if (!check(TokenKind::RParen)) {
    while (true) {
      Result<Token> ParamName =
          expect(TokenKind::Identifier, "as parameter name");
      if (!ParamName)
        return ParamName.error();
      if (auto R = expect(TokenKind::Colon, "after parameter name"); !R)
        return R.error();
      Result<Type> Ty = parseType();
      if (!Ty)
        return Ty.error();
      Method->Params.push_back(
          ParamDecl{ParamName->Text, Ty.take(), ParamName->Loc});
      if (!match(TokenKind::Comma))
        break;
    }
  }
  if (auto R = expect(TokenKind::RParen, "to close parameter list"); !R)
    return R.error();

  if (match(TokenKind::Colon)) {
    Result<Type> Ty = parseType();
    if (!Ty)
      return Ty.error();
    Method->ReturnType = Ty.take();
  }
  Method->IsSynchronized = match(TokenKind::KwSynchronized);

  Result<std::unique_ptr<BlockStmt>> Body = parseBlock();
  if (!Body)
    return Body.error();
  Method->Body = Body.take();
  return Method;
}

Result<std::unique_ptr<TestDecl>> Parser::parseTest() {
  Token TestTok = advance(); // 'test'
  Result<Token> Name = expect(TokenKind::Identifier, "after 'test'");
  if (!Name)
    return Name.error();
  Result<std::unique_ptr<BlockStmt>> Body = parseBlock();
  if (!Body)
    return Body.error();
  auto Test = std::make_unique<TestDecl>();
  Test->Name = Name->Text;
  Test->Body = Body.take();
  Test->Loc = TestTok.Loc;
  return Test;
}

Result<Type> Parser::parseType() {
  if (match(TokenKind::KwInt))
    return Type::intTy();
  if (match(TokenKind::KwBool))
    return Type::boolTy();
  if (check(TokenKind::Identifier)) {
    Token T = advance();
    return Type::classTy(T.Text);
  }
  return errorHere(formatString("expected a type, found %s",
                                tokenKindName(peek().Kind)));
}

Result<std::unique_ptr<BlockStmt>> Parser::parseBlock() {
  Result<Token> Open = expect(TokenKind::LBrace, "to open block");
  if (!Open)
    return Open.error();
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace)) {
    if (check(TokenKind::Eof))
      return errorHere("unterminated block");
    Result<StmtPtr> S = parseStmt();
    if (!S)
      return S.error();
    Stmts.push_back(S.take());
  }
  advance(); // '}'
  return std::make_unique<BlockStmt>(std::move(Stmts), Open->Loc);
}

Result<StmtPtr> Parser::parseStmt() {
  switch (peek().Kind) {
  case TokenKind::KwVar:
    return parseVarDecl();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwSynchronized:
    return parseSynchronized();
  case TokenKind::KwSpawn:
    return parseSpawn();
  case TokenKind::LBrace: {
    Result<std::unique_ptr<BlockStmt>> B = parseBlock();
    if (!B)
      return B.error();
    return StmtPtr(B.take());
  }
  default:
    return parseExprOrAssign();
  }
}

Result<StmtPtr> Parser::parseVarDecl() {
  Token VarTok = advance(); // 'var'
  Result<Token> Name = expect(TokenKind::Identifier, "after 'var'");
  if (!Name)
    return Name.error();
  if (auto R = expect(TokenKind::Colon, "after variable name"); !R)
    return R.error();
  Result<Type> Ty = parseType();
  if (!Ty)
    return Ty.error();
  ExprPtr Init;
  if (match(TokenKind::Assign)) {
    Result<ExprPtr> E = parseExpr();
    if (!E)
      return E.error();
    Init = E.take();
  }
  if (auto R = expect(TokenKind::Semicolon, "after variable declaration"); !R)
    return R.error();
  return StmtPtr(std::make_unique<VarDeclStmt>(Name->Text, Ty.take(),
                                               std::move(Init), VarTok.Loc));
}

Result<StmtPtr> Parser::parseIf() {
  Token IfTok = advance(); // 'if'
  if (auto R = expect(TokenKind::LParen, "after 'if'"); !R)
    return R.error();
  Result<ExprPtr> Cond = parseExpr();
  if (!Cond)
    return Cond.error();
  if (auto R = expect(TokenKind::RParen, "to close condition"); !R)
    return R.error();
  Result<std::unique_ptr<BlockStmt>> Then = parseBlock();
  if (!Then)
    return Then.error();
  StmtPtr Else;
  if (match(TokenKind::KwElse)) {
    if (check(TokenKind::KwIf)) {
      Result<StmtPtr> ElseIf = parseIf();
      if (!ElseIf)
        return ElseIf.error();
      Else = ElseIf.take();
    } else {
      Result<std::unique_ptr<BlockStmt>> ElseBlock = parseBlock();
      if (!ElseBlock)
        return ElseBlock.error();
      Else = StmtPtr(ElseBlock.take());
    }
  }
  return StmtPtr(std::make_unique<IfStmt>(Cond.take(), StmtPtr(Then.take()),
                                          std::move(Else), IfTok.Loc));
}

Result<StmtPtr> Parser::parseWhile() {
  Token WhileTok = advance(); // 'while'
  if (auto R = expect(TokenKind::LParen, "after 'while'"); !R)
    return R.error();
  Result<ExprPtr> Cond = parseExpr();
  if (!Cond)
    return Cond.error();
  if (auto R = expect(TokenKind::RParen, "to close condition"); !R)
    return R.error();
  Result<std::unique_ptr<BlockStmt>> Body = parseBlock();
  if (!Body)
    return Body.error();
  return StmtPtr(std::make_unique<WhileStmt>(Cond.take(),
                                             StmtPtr(Body.take()),
                                             WhileTok.Loc));
}

Result<StmtPtr> Parser::parseReturn() {
  Token RetTok = advance(); // 'return'
  ExprPtr Value;
  if (!check(TokenKind::Semicolon)) {
    Result<ExprPtr> E = parseExpr();
    if (!E)
      return E.error();
    Value = E.take();
  }
  if (auto R = expect(TokenKind::Semicolon, "after return"); !R)
    return R.error();
  return StmtPtr(std::make_unique<ReturnStmt>(std::move(Value), RetTok.Loc));
}

Result<StmtPtr> Parser::parseSynchronized() {
  Token SyncTok = advance(); // 'synchronized'
  if (auto R = expect(TokenKind::LParen, "after 'synchronized'"); !R)
    return R.error();
  Result<ExprPtr> LockExpr = parseExpr();
  if (!LockExpr)
    return LockExpr.error();
  if (auto R = expect(TokenKind::RParen, "to close lock expression"); !R)
    return R.error();
  Result<std::unique_ptr<BlockStmt>> Body = parseBlock();
  if (!Body)
    return Body.error();
  return StmtPtr(std::make_unique<SyncStmt>(LockExpr.take(),
                                            StmtPtr(Body.take()),
                                            SyncTok.Loc));
}

Result<StmtPtr> Parser::parseSpawn() {
  Token SpawnTok = advance(); // 'spawn'
  Result<std::unique_ptr<BlockStmt>> Body = parseBlock();
  if (!Body)
    return Body.error();
  return StmtPtr(std::make_unique<SpawnStmt>(StmtPtr(Body.take()),
                                             SpawnTok.Loc));
}

Result<StmtPtr> Parser::parseExprOrAssign() {
  SourceLoc Loc = peek().Loc;
  Result<ExprPtr> LHS = parseExpr();
  if (!LHS)
    return LHS.error();
  if (match(TokenKind::Assign)) {
    Expr *Target = LHS->get();
    if (!isa<VarRefExpr>(Target) && !isa<FieldAccessExpr>(Target))
      return Error("assignment target must be a variable or a field",
                   Loc.str());
    Result<ExprPtr> Value = parseExpr();
    if (!Value)
      return Value.error();
    if (auto R = expect(TokenKind::Semicolon, "after assignment"); !R)
      return R.error();
    return StmtPtr(
        std::make_unique<AssignStmt>(LHS.take(), Value.take(), Loc));
  }
  if (auto R = expect(TokenKind::Semicolon, "after expression"); !R)
    return R.error();
  return StmtPtr(std::make_unique<ExprStmt>(LHS.take(), Loc));
}

/// Binding strength for binary operators; higher binds tighter.
static int binaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::EqEq:
  case TokenKind::BangEq:
    return 3;
  case TokenKind::Less:
  case TokenKind::LessEq:
  case TokenKind::Greater:
  case TokenKind::GreaterEq:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return -1;
  }
}

static BinaryOp binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return BinaryOp::Or;
  case TokenKind::AmpAmp:
    return BinaryOp::And;
  case TokenKind::EqEq:
    return BinaryOp::Eq;
  case TokenKind::BangEq:
    return BinaryOp::Ne;
  case TokenKind::Less:
    return BinaryOp::Lt;
  case TokenKind::LessEq:
    return BinaryOp::Le;
  case TokenKind::Greater:
    return BinaryOp::Gt;
  case TokenKind::GreaterEq:
    return BinaryOp::Ge;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Rem;
  default:
    narada_unreachable("not a binary operator token");
  }
}

Result<ExprPtr> Parser::parseExpr() {
  Result<ExprPtr> LHS = parseUnary();
  if (!LHS)
    return LHS.error();
  return parseBinaryRHS(1, LHS.take());
}

Result<ExprPtr> Parser::parseBinaryRHS(int MinPrec, ExprPtr LHS) {
  while (true) {
    int Prec = binaryPrecedence(peek().Kind);
    if (Prec < MinPrec)
      return LHS;
    Token OpTok = advance();
    Result<ExprPtr> RHS = parseUnary();
    if (!RHS)
      return RHS.error();
    // Left associativity: fold anything that binds tighter into RHS first.
    while (binaryPrecedence(peek().Kind) > Prec) {
      Result<ExprPtr> Folded =
          parseBinaryRHS(binaryPrecedence(peek().Kind), RHS.take());
      if (!Folded)
        return Folded.error();
      RHS = Folded.take();
    }
    LHS = std::make_unique<BinaryExpr>(binaryOpFor(OpTok.Kind),
                                       std::move(LHS), RHS.take(), OpTok.Loc);
  }
}

Result<ExprPtr> Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    Token OpTok = advance();
    Result<ExprPtr> Operand = parseUnary();
    if (!Operand)
      return Operand.error();
    return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::Neg, Operand.take(),
                                               OpTok.Loc));
  }
  if (check(TokenKind::Bang)) {
    Token OpTok = advance();
    Result<ExprPtr> Operand = parseUnary();
    if (!Operand)
      return Operand.error();
    return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::Not, Operand.take(),
                                               OpTok.Loc));
  }
  return parsePostfix();
}

Result<ExprPtr> Parser::parsePostfix() {
  Result<ExprPtr> E = parsePrimary();
  if (!E)
    return E.error();
  ExprPtr Node = E.take();
  while (check(TokenKind::Dot)) {
    Token DotTok = advance();
    Result<Token> Member = expect(TokenKind::Identifier, "after '.'");
    if (!Member)
      return Member.error();
    if (check(TokenKind::LParen)) {
      Result<std::vector<ExprPtr>> Args = parseArgs();
      if (!Args)
        return Args.error();
      Node = std::make_unique<CallExpr>(std::move(Node), Member->Text,
                                        Args.take(), DotTok.Loc);
    } else {
      Node = std::make_unique<FieldAccessExpr>(std::move(Node), Member->Text,
                                               DotTok.Loc);
    }
  }
  return Node;
}

Result<std::vector<ExprPtr>> Parser::parseArgs() {
  if (auto R = expect(TokenKind::LParen, "to open argument list"); !R)
    return R.error();
  std::vector<ExprPtr> Args;
  if (!check(TokenKind::RParen)) {
    while (true) {
      Result<ExprPtr> Arg = parseExpr();
      if (!Arg)
        return Arg.error();
      Args.push_back(Arg.take());
      if (!match(TokenKind::Comma))
        break;
    }
  }
  if (auto R = expect(TokenKind::RParen, "to close argument list"); !R)
    return R.error();
  return Args;
}

Result<ExprPtr> Parser::parsePrimary() {
  Token T = peek();
  switch (T.Kind) {
  case TokenKind::IntLiteral:
    advance();
    return ExprPtr(std::make_unique<IntLitExpr>(T.IntValue, T.Loc));
  case TokenKind::KwTrue:
    advance();
    return ExprPtr(std::make_unique<BoolLitExpr>(true, T.Loc));
  case TokenKind::KwFalse:
    advance();
    return ExprPtr(std::make_unique<BoolLitExpr>(false, T.Loc));
  case TokenKind::KwNull:
    advance();
    return ExprPtr(std::make_unique<NullLitExpr>(T.Loc));
  case TokenKind::KwThis:
    advance();
    return ExprPtr(std::make_unique<ThisExpr>(T.Loc));
  case TokenKind::KwRand: {
    advance();
    if (auto R = expect(TokenKind::LParen, "after 'rand'"); !R)
      return R.error();
    if (auto R = expect(TokenKind::RParen, "after 'rand('"); !R)
      return R.error();
    return ExprPtr(std::make_unique<RandExpr>(T.Loc));
  }
  case TokenKind::KwNew: {
    advance();
    Result<Token> ClassName = expect(TokenKind::Identifier, "after 'new'");
    if (!ClassName)
      return ClassName.error();
    std::vector<ExprPtr> Args;
    if (check(TokenKind::LParen)) {
      Result<std::vector<ExprPtr>> Parsed = parseArgs();
      if (!Parsed)
        return Parsed.error();
      Args = Parsed.take();
    }
    return ExprPtr(std::make_unique<NewExpr>(ClassName->Text, std::move(Args),
                                             T.Loc));
  }
  case TokenKind::Identifier:
    advance();
    return ExprPtr(std::make_unique<VarRefExpr>(T.Text, T.Loc));
  case TokenKind::LParen: {
    advance();
    Result<ExprPtr> Inner = parseExpr();
    if (!Inner)
      return Inner.error();
    if (auto R = expect(TokenKind::RParen, "to close parenthesis"); !R)
      return R.error();
    return Inner;
  }
  default:
    return errorHere(formatString("expected an expression, found %s",
                                  tokenKindName(T.Kind)));
  }
}
