//===- lang/ASTClone.cpp - Deep cloning with renaming ----------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "lang/ASTClone.h"

#include "support/Error.h"

using namespace narada;

static std::string renamed(const std::string &Name,
                           const RenameMap &Renames) {
  auto It = Renames.find(Name);
  return It == Renames.end() ? Name : It->second;
}

ExprPtr narada::cloneExpr(const Expr *E, const RenameMap &Renames) {
  ExprPtr Clone;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    Clone = std::make_unique<IntLitExpr>(cast<IntLitExpr>(E)->value(),
                                         E->loc());
    break;
  case Expr::Kind::BoolLit:
    Clone = std::make_unique<BoolLitExpr>(cast<BoolLitExpr>(E)->value(),
                                          E->loc());
    break;
  case Expr::Kind::NullLit:
    Clone = std::make_unique<NullLitExpr>(E->loc());
    break;
  case Expr::Kind::This:
    Clone = std::make_unique<ThisExpr>(E->loc());
    break;
  case Expr::Kind::Rand:
    Clone = std::make_unique<RandExpr>(E->loc());
    break;
  case Expr::Kind::VarRef:
    Clone = std::make_unique<VarRefExpr>(
        renamed(cast<VarRefExpr>(E)->name(), Renames), E->loc());
    break;
  case Expr::Kind::FieldAccess: {
    const auto *Access = cast<FieldAccessExpr>(E);
    Clone = std::make_unique<FieldAccessExpr>(
        cloneExpr(Access->base(), Renames), Access->field(), E->loc());
    break;
  }
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &Arg : Call->args())
      Args.push_back(cloneExpr(Arg.get(), Renames));
    Clone = std::make_unique<CallExpr>(cloneExpr(Call->base(), Renames),
                                       Call->method(), std::move(Args),
                                       E->loc());
    break;
  }
  case Expr::Kind::New: {
    const auto *New = cast<NewExpr>(E);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &Arg : New->args())
      Args.push_back(cloneExpr(Arg.get(), Renames));
    Clone = std::make_unique<NewExpr>(New->className(), std::move(Args),
                                      E->loc());
    break;
  }
  case Expr::Kind::Unary: {
    const auto *Unary = cast<UnaryExpr>(E);
    Clone = std::make_unique<UnaryExpr>(
        Unary->op(), cloneExpr(Unary->operand(), Renames), E->loc());
    break;
  }
  case Expr::Kind::Binary: {
    const auto *Binary = cast<BinaryExpr>(E);
    Clone = std::make_unique<BinaryExpr>(
        Binary->op(), cloneExpr(Binary->lhs(), Renames),
        cloneExpr(Binary->rhs(), Renames), E->loc());
    break;
  }
  }
  assert(Clone && "unhandled expression kind");
  Clone->setType(E->type());
  return Clone;
}

StmtPtr narada::cloneStmt(const Stmt *S, const RenameMap &Renames) {
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    const auto *Block = cast<BlockStmt>(S);
    std::vector<StmtPtr> Stmts;
    for (const StmtPtr &Child : Block->stmts())
      Stmts.push_back(cloneStmt(Child.get(), Renames));
    return std::make_unique<BlockStmt>(std::move(Stmts), S->loc());
  }
  case Stmt::Kind::VarDecl: {
    const auto *Decl = cast<VarDeclStmt>(S);
    ExprPtr Init;
    if (Decl->init())
      Init = cloneExpr(Decl->init(), Renames);
    return std::make_unique<VarDeclStmt>(renamed(Decl->name(), Renames),
                                         Decl->declaredType(),
                                         std::move(Init), S->loc());
  }
  case Stmt::Kind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    return std::make_unique<AssignStmt>(cloneExpr(Assign->target(), Renames),
                                        cloneExpr(Assign->value(), Renames),
                                        S->loc());
  }
  case Stmt::Kind::ExprStmt:
    return std::make_unique<ExprStmt>(
        cloneExpr(cast<ExprStmt>(S)->expr(), Renames), S->loc());
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    StmtPtr Else;
    if (If->elseBranch())
      Else = cloneStmt(If->elseBranch(), Renames);
    return std::make_unique<IfStmt>(cloneExpr(If->cond(), Renames),
                                    cloneStmt(If->thenBranch(), Renames),
                                    std::move(Else), S->loc());
  }
  case Stmt::Kind::While: {
    const auto *While = cast<WhileStmt>(S);
    return std::make_unique<WhileStmt>(cloneExpr(While->cond(), Renames),
                                       cloneStmt(While->body(), Renames),
                                       S->loc());
  }
  case Stmt::Kind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    ExprPtr Value;
    if (Ret->value())
      Value = cloneExpr(Ret->value(), Renames);
    return std::make_unique<ReturnStmt>(std::move(Value), S->loc());
  }
  case Stmt::Kind::Sync: {
    const auto *Sync = cast<SyncStmt>(S);
    return std::make_unique<SyncStmt>(cloneExpr(Sync->lockExpr(), Renames),
                                      cloneStmt(Sync->body(), Renames),
                                      S->loc());
  }
  case Stmt::Kind::Spawn: {
    const auto *Spawn = cast<SpawnStmt>(S);
    return std::make_unique<SpawnStmt>(cloneStmt(Spawn->body(), Renames),
                                       S->loc());
  }
  }
  narada_unreachable("unknown statement kind");
}
