//===- lang/Sema.cpp - MiniJava semantic analysis --------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "support/StringUtils.h"

#include <set>

using namespace narada;

ClassInfo &ProgramInfo::addClass(ClassInfo Info) {
  assert(!Classes.count(Info.Name) && "duplicate class registration");
  Order.push_back(Info.Name);
  return Classes.emplace(Info.Name, std::move(Info)).first->second;
}

namespace {

/// A lexical scope mapping local variable names to types.
class Scope {
public:
  explicit Scope(Scope *Parent = nullptr) : Parent(Parent) {}

  bool declare(const std::string &Name, Type Ty) {
    return Locals.emplace(Name, std::move(Ty)).second;
  }

  const Type *lookup(const std::string &Name) const {
    auto It = Locals.find(Name);
    if (It != Locals.end())
      return &It->second;
    return Parent ? Parent->lookup(Name) : nullptr;
  }

private:
  Scope *Parent;
  std::map<std::string, Type> Locals;
};

/// The type checker.  Walks declarations, then every statement/expression.
class SemaChecker {
public:
  SemaChecker(Program &Prog, ProgramInfo &Info) : Prog(Prog), Info(Info) {}

  Status run();

private:
  Status registerBuiltins();
  Status registerClass(const ClassDecl &Class);
  Status checkClassBodies(const ClassDecl &Class);
  Status checkMethod(const ClassInfo &Class, const MethodDecl &Method);
  Status checkTest(const TestDecl &Test);

  Status checkStmt(Stmt *S, Scope &Sc);
  Status checkBlock(BlockStmt *Block, Scope &Sc);
  Result<Type> checkExpr(Expr *E, Scope &Sc);
  Result<Type> checkCall(CallExpr *Call, Scope &Sc);
  Result<Type> checkNew(NewExpr *New, Scope &Sc);

  Status validateType(const Type &Ty, SourceLoc Loc);
  Error errorAt(SourceLoc Loc, const std::string &Message) {
    return Error(Message, Loc.str());
  }

  Program &Prog;
  ProgramInfo &Info;

  /// Context while checking a body.
  const ClassInfo *CurrentClass = nullptr; ///< Null inside tests.
  Type CurrentReturnType = Type::voidTy();
  bool InTest = false;
  bool SawSpawn = false;
};

} // namespace

Status SemaChecker::registerBuiltins() {
  ClassInfo Arr;
  Arr.Name = IntArrayClassName;
  Arr.IsBuiltin = true;

  MethodInfo Ctor;
  Ctor.Name = ConstructorName;
  Ctor.ParamTypes = {Type::intTy()};
  Ctor.ParamNames = {"size"};
  Ctor.ReturnType = Type::voidTy();
  Ctor.IsBuiltin = true;
  Arr.Methods.push_back(Ctor);

  MethodInfo Get;
  Get.Name = "get";
  Get.ParamTypes = {Type::intTy()};
  Get.ParamNames = {"index"};
  Get.ReturnType = Type::intTy();
  Get.IsBuiltin = true;
  Arr.Methods.push_back(Get);

  MethodInfo Set;
  Set.Name = "set";
  Set.ParamTypes = {Type::intTy(), Type::intTy()};
  Set.ParamNames = {"index", "value"};
  Set.ReturnType = Type::voidTy();
  Set.IsBuiltin = true;
  Arr.Methods.push_back(Set);

  MethodInfo Length;
  Length.Name = "length";
  Length.ReturnType = Type::intTy();
  Length.IsBuiltin = true;
  Arr.Methods.push_back(Length);

  Info.addClass(std::move(Arr));
  return Status::success();
}

Status SemaChecker::validateType(const Type &Ty, SourceLoc Loc) {
  if (Ty.isClass() && !Info.findClass(Ty.className()))
    return errorAt(Loc, formatString("unknown class '%s'",
                                     Ty.className().c_str()));
  return Status::success();
}

Status SemaChecker::registerClass(const ClassDecl &Class) {
  if (Info.findClass(Class.Name))
    return errorAt(Class.Loc,
                   formatString("duplicate class '%s'", Class.Name.c_str()));

  ClassInfo CI;
  CI.Name = Class.Name;
  CI.Decl = &Class;

  std::set<std::string> FieldNames;
  for (const FieldDecl &F : Class.Fields) {
    if (!FieldNames.insert(F.Name).second)
      return errorAt(F.Loc, formatString("duplicate field '%s' in class '%s'",
                                         F.Name.c_str(), Class.Name.c_str()));
    FieldInfo FI;
    FI.Name = F.Name;
    FI.DeclaredType = F.DeclaredType;
    FI.Index = static_cast<unsigned>(CI.Fields.size());
    CI.Fields.push_back(std::move(FI));
  }

  std::set<std::string> MethodNames;
  for (const auto &M : Class.Methods) {
    if (!MethodNames.insert(M->Name).second)
      return errorAt(M->Loc,
                     formatString("duplicate method '%s' in class '%s'",
                                  M->Name.c_str(), Class.Name.c_str()));
    MethodInfo MI;
    MI.Name = M->Name;
    MI.ReturnType = M->ReturnType;
    MI.IsSynchronized = M->IsSynchronized;
    MI.Decl = M.get();
    for (const ParamDecl &P : M->Params) {
      MI.ParamTypes.push_back(P.DeclaredType);
      MI.ParamNames.push_back(P.Name);
    }
    if (M->Name == ConstructorName && !M->ReturnType.isVoid())
      return errorAt(M->Loc, "constructor 'init' must not return a value");
    CI.Methods.push_back(std::move(MI));
  }

  Info.addClass(std::move(CI));
  return Status::success();
}

Status SemaChecker::checkClassBodies(const ClassDecl &Class) {
  const ClassInfo *CI = Info.findClass(Class.Name);
  assert(CI && "class was registered in the first pass");

  // Field and parameter types may reference classes declared later, so
  // validate them only now, after all classes are registered.
  for (const FieldDecl &F : Class.Fields)
    if (Status S = validateType(F.DeclaredType, F.Loc); !S)
      return S;

  for (const auto &M : Class.Methods) {
    for (const ParamDecl &P : M->Params)
      if (Status S = validateType(P.DeclaredType, P.Loc); !S)
        return S;
    if (!M->ReturnType.isVoid())
      if (Status S = validateType(M->ReturnType, M->Loc); !S)
        return S;
    if (Status S = checkMethod(*CI, *M); !S)
      return S;
  }
  return Status::success();
}

Status SemaChecker::checkMethod(const ClassInfo &Class,
                                const MethodDecl &Method) {
  CurrentClass = &Class;
  CurrentReturnType = Method.ReturnType;
  InTest = false;

  Scope Params;
  for (const ParamDecl &P : Method.Params)
    if (!Params.declare(P.Name, P.DeclaredType))
      return errorAt(P.Loc, formatString("duplicate parameter '%s'",
                                         P.Name.c_str()));

  Scope Body(&Params);
  Status S = checkBlock(Method.Body.get(), Body);
  CurrentClass = nullptr;
  return S;
}

Status SemaChecker::checkTest(const TestDecl &Test) {
  CurrentClass = nullptr;
  CurrentReturnType = Type::voidTy();
  InTest = true;
  Scope Sc;
  Status S = checkBlock(Test.Body.get(), Sc);
  InTest = false;
  return S;
}

Status SemaChecker::checkBlock(BlockStmt *Block, Scope &Sc) {
  Scope Inner(&Sc);
  for (const StmtPtr &S : Block->stmts())
    if (Status St = checkStmt(S.get(), Inner); !St)
      return St;
  return Status::success();
}

Status SemaChecker::checkStmt(Stmt *S, Scope &Sc) {
  switch (S->kind()) {
  case Stmt::Kind::Block:
    return checkBlock(cast<BlockStmt>(S), Sc);

  case Stmt::Kind::VarDecl: {
    auto *Decl = cast<VarDeclStmt>(S);
    if (Status St = validateType(Decl->declaredType(), Decl->loc()); !St)
      return St;
    if (Decl->init()) {
      Result<Type> InitTy = checkExpr(Decl->init(), Sc);
      if (!InitTy)
        return InitTy.error();
      if (!Decl->declaredType().acceptsValueOf(*InitTy))
        return errorAt(Decl->loc(),
                       formatString("cannot initialize '%s' of type %s "
                                    "with a value of type %s",
                                    Decl->name().c_str(),
                                    Decl->declaredType().str().c_str(),
                                    InitTy->str().c_str()));
    }
    if (!Sc.declare(Decl->name(), Decl->declaredType()))
      return errorAt(Decl->loc(),
                     formatString("redeclaration of '%s'",
                                  Decl->name().c_str()));
    return Status::success();
  }

  case Stmt::Kind::Assign: {
    auto *Assign = cast<AssignStmt>(S);
    Result<Type> TargetTy = checkExpr(Assign->target(), Sc);
    if (!TargetTy)
      return TargetTy.error();
    Result<Type> ValueTy = checkExpr(Assign->value(), Sc);
    if (!ValueTy)
      return ValueTy.error();
    if (!TargetTy->acceptsValueOf(*ValueTy))
      return errorAt(Assign->loc(),
                     formatString("cannot assign a value of type %s to a "
                                  "target of type %s",
                                  ValueTy->str().c_str(),
                                  TargetTy->str().c_str()));
    return Status::success();
  }

  case Stmt::Kind::ExprStmt:
    if (Result<Type> Ty = checkExpr(cast<ExprStmt>(S)->expr(), Sc); !Ty)
      return Ty.error();
    return Status::success();

  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    Result<Type> CondTy = checkExpr(If->cond(), Sc);
    if (!CondTy)
      return CondTy.error();
    if (!CondTy->isBool())
      return errorAt(If->loc(), "if condition must be bool");
    if (Status St = checkStmt(If->thenBranch(), Sc); !St)
      return St;
    if (If->elseBranch())
      return checkStmt(If->elseBranch(), Sc);
    return Status::success();
  }

  case Stmt::Kind::While: {
    auto *While = cast<WhileStmt>(S);
    Result<Type> CondTy = checkExpr(While->cond(), Sc);
    if (!CondTy)
      return CondTy.error();
    if (!CondTy->isBool())
      return errorAt(While->loc(), "while condition must be bool");
    return checkStmt(While->body(), Sc);
  }

  case Stmt::Kind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    if (InTest)
      return errorAt(Ret->loc(), "'return' is not allowed in tests");
    if (!Ret->value()) {
      if (!CurrentReturnType.isVoid())
        return errorAt(Ret->loc(), "non-void method must return a value");
      return Status::success();
    }
    Result<Type> ValueTy = checkExpr(Ret->value(), Sc);
    if (!ValueTy)
      return ValueTy.error();
    if (!CurrentReturnType.acceptsValueOf(*ValueTy))
      return errorAt(Ret->loc(),
                     formatString("returning %s from a method returning %s",
                                  ValueTy->str().c_str(),
                                  CurrentReturnType.str().c_str()));
    return Status::success();
  }

  case Stmt::Kind::Sync: {
    auto *Sync = cast<SyncStmt>(S);
    Result<Type> LockTy = checkExpr(Sync->lockExpr(), Sc);
    if (!LockTy)
      return LockTy.error();
    if (!LockTy->isClass())
      return errorAt(Sync->loc(),
                     "synchronized requires an object expression");
    return checkStmt(Sync->body(), Sc);
  }

  case Stmt::Kind::Spawn: {
    auto *Spawn = cast<SpawnStmt>(S);
    if (!InTest)
      return errorAt(Spawn->loc(), "'spawn' is only allowed in tests");
    if (SawSpawn)
      // Nested spawn inside spawn body would need per-thread scoping of
      // InTest; keep tests simple and flat.
      return errorAt(Spawn->loc(), "nested 'spawn' is not supported");
    SawSpawn = true;
    Status St = checkStmt(Spawn->body(), Sc);
    SawSpawn = false;
    return St;
  }
  }
  narada_unreachable("unknown statement kind");
}

Result<Type> SemaChecker::checkExpr(Expr *E, Scope &Sc) {
  auto SetAndReturn = [E](Type Ty) -> Result<Type> {
    E->setType(Ty);
    return Ty;
  };

  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Rand:
    return SetAndReturn(Type::intTy());
  case Expr::Kind::BoolLit:
    return SetAndReturn(Type::boolTy());
  case Expr::Kind::NullLit:
    return SetAndReturn(Type::nullTy());

  case Expr::Kind::This:
    if (!CurrentClass)
      return errorAt(E->loc(), "'this' is only valid inside a method");
    return SetAndReturn(Type::classTy(CurrentClass->Name));

  case Expr::Kind::VarRef: {
    auto *Var = cast<VarRefExpr>(E);
    if (const Type *Ty = Sc.lookup(Var->name()))
      return SetAndReturn(*Ty);
    return errorAt(E->loc(), formatString("use of undeclared variable '%s'",
                                          Var->name().c_str()));
  }

  case Expr::Kind::FieldAccess: {
    auto *Access = cast<FieldAccessExpr>(E);
    Result<Type> BaseTy = checkExpr(Access->base(), Sc);
    if (!BaseTy)
      return BaseTy.error();
    if (!BaseTy->isClass())
      return errorAt(E->loc(),
                     formatString("field access on non-object type %s",
                                  BaseTy->str().c_str()));
    const ClassInfo *Class = Info.findClass(BaseTy->className());
    assert(Class && "validated class type");
    const FieldInfo *Field = Class->findField(Access->field());
    if (!Field)
      return errorAt(E->loc(),
                     formatString("class '%s' has no field '%s'",
                                  Class->Name.c_str(),
                                  Access->field().c_str()));
    return SetAndReturn(Field->DeclaredType);
  }

  case Expr::Kind::Call:
    return checkCall(cast<CallExpr>(E), Sc);
  case Expr::Kind::New:
    return checkNew(cast<NewExpr>(E), Sc);

  case Expr::Kind::Unary: {
    auto *Unary = cast<UnaryExpr>(E);
    Result<Type> OperandTy = checkExpr(Unary->operand(), Sc);
    if (!OperandTy)
      return OperandTy.error();
    if (Unary->op() == UnaryOp::Neg) {
      if (!OperandTy->isInt())
        return errorAt(E->loc(), "unary '-' requires an int operand");
      return SetAndReturn(Type::intTy());
    }
    if (!OperandTy->isBool())
      return errorAt(E->loc(), "unary '!' requires a bool operand");
    return SetAndReturn(Type::boolTy());
  }

  case Expr::Kind::Binary: {
    auto *Binary = cast<BinaryExpr>(E);
    Result<Type> LHS = checkExpr(Binary->lhs(), Sc);
    if (!LHS)
      return LHS.error();
    Result<Type> RHS = checkExpr(Binary->rhs(), Sc);
    if (!RHS)
      return RHS.error();
    switch (Binary->op()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Rem:
      if (!LHS->isInt() || !RHS->isInt())
        return errorAt(E->loc(), "arithmetic requires int operands");
      return SetAndReturn(Type::intTy());
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (!LHS->isInt() || !RHS->isInt())
        return errorAt(E->loc(), "comparison requires int operands");
      return SetAndReturn(Type::boolTy());
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      bool Comparable = LHS->acceptsValueOf(*RHS) || RHS->acceptsValueOf(*LHS);
      if (!Comparable)
        return errorAt(E->loc(),
                       formatString("cannot compare %s with %s",
                                    LHS->str().c_str(), RHS->str().c_str()));
      return SetAndReturn(Type::boolTy());
    }
    case BinaryOp::And:
    case BinaryOp::Or:
      if (!LHS->isBool() || !RHS->isBool())
        return errorAt(E->loc(), "logical operator requires bool operands");
      return SetAndReturn(Type::boolTy());
    }
    narada_unreachable("unknown binary op");
  }
  }
  narada_unreachable("unknown expression kind");
}

Result<Type> SemaChecker::checkCall(CallExpr *Call, Scope &Sc) {
  Result<Type> BaseTy = checkExpr(Call->base(), Sc);
  if (!BaseTy)
    return BaseTy.error();
  if (!BaseTy->isClass())
    return Error(formatString("method call on non-object type %s",
                              BaseTy->str().c_str()),
                 Call->loc().str());
  const ClassInfo *Class = Info.findClass(BaseTy->className());
  assert(Class && "validated class type");
  const MethodInfo *Method = Class->findMethod(Call->method());
  if (!Method)
    return Error(formatString("class '%s' has no method '%s'",
                              Class->Name.c_str(), Call->method().c_str()),
                 Call->loc().str());
  if (Call->method() == ConstructorName)
    return Error("constructors may only be invoked via 'new'",
                 Call->loc().str());
  if (Call->args().size() != Method->ParamTypes.size())
    return Error(formatString("method '%s.%s' expects %zu argument(s), got "
                              "%zu",
                              Class->Name.c_str(), Method->Name.c_str(),
                              Method->ParamTypes.size(), Call->args().size()),
                 Call->loc().str());
  for (size_t I = 0, N = Call->args().size(); I != N; ++I) {
    Result<Type> ArgTy = checkExpr(Call->args()[I].get(), Sc);
    if (!ArgTy)
      return ArgTy.error();
    if (!Method->ParamTypes[I].acceptsValueOf(*ArgTy))
      return Error(formatString("argument %zu of '%s.%s': expected %s, got "
                                "%s",
                                I + 1, Class->Name.c_str(),
                                Method->Name.c_str(),
                                Method->ParamTypes[I].str().c_str(),
                                ArgTy->str().c_str()),
                   Call->loc().str());
  }
  Call->setType(Method->ReturnType);
  return Method->ReturnType;
}

Result<Type> SemaChecker::checkNew(NewExpr *New, Scope &Sc) {
  const ClassInfo *Class = Info.findClass(New->className());
  if (!Class)
    return Error(formatString("unknown class '%s'", New->className().c_str()),
                 New->loc().str());
  const MethodInfo *Ctor = Class->findMethod(ConstructorName);
  if (!Ctor && !New->args().empty())
    return Error(formatString("class '%s' has no constructor but 'new' was "
                              "given arguments",
                              Class->Name.c_str()),
                 New->loc().str());
  if (Ctor) {
    if (New->args().size() != Ctor->ParamTypes.size())
      return Error(formatString("constructor of '%s' expects %zu "
                                "argument(s), got %zu",
                                Class->Name.c_str(), Ctor->ParamTypes.size(),
                                New->args().size()),
                   New->loc().str());
    for (size_t I = 0, N = New->args().size(); I != N; ++I) {
      Result<Type> ArgTy = checkExpr(New->args()[I].get(), Sc);
      if (!ArgTy)
        return ArgTy.error();
      if (!Ctor->ParamTypes[I].acceptsValueOf(*ArgTy))
        return Error(formatString("constructor argument %zu of '%s': "
                                  "expected %s, got %s",
                                  I + 1, Class->Name.c_str(),
                                  Ctor->ParamTypes[I].str().c_str(),
                                  ArgTy->str().c_str()),
                     New->loc().str());
    }
  }
  Type Ty = Type::classTy(New->className());
  New->setType(Ty);
  return Ty;
}

Status SemaChecker::run() {
  if (Status S = registerBuiltins(); !S)
    return S;
  for (const auto &Class : Prog.Classes)
    if (Status S = registerClass(*Class); !S)
      return S;
  for (const auto &Class : Prog.Classes)
    if (Status S = checkClassBodies(*Class); !S)
      return S;
  std::set<std::string> TestNames;
  for (const auto &Test : Prog.Tests) {
    if (!TestNames.insert(Test->Name).second)
      return Error(formatString("duplicate test '%s'", Test->Name.c_str()),
                   Test->Loc.str());
    if (Status S = checkTest(*Test); !S)
      return S;
  }
  return Status::success();
}

Result<std::shared_ptr<ProgramInfo>> narada::analyze(Program &Prog) {
  auto Info = std::make_shared<ProgramInfo>();
  SemaChecker Checker(Prog, *Info);
  if (Status S = Checker.run(); !S)
    return S.error();
  return Info;
}
