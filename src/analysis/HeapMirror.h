//===- analysis/HeapMirror.h - Trace-replayed heap shadow -------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shadow of the program heap reconstructed purely from trace events.
/// The Fig. 7 rules build an abstract heap H as they walk the trace; because
/// our traces record every allocation and field write, the mirror can
/// maintain the exact points-to state at every trace position and answer the
/// two queries the analysis needs: "which objects are reachable from these
/// roots?" (controllability bootstrap R) and "by what field path?" (the src
/// operator of §3.2).
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_ANALYSIS_HEAPMIRROR_H
#define NARADA_ANALYSIS_HEAPMIRROR_H

#include "analysis/AccessPath.h"
#include "runtime/Value.h"
#include "trace/TraceEvent.h"

#include <map>
#include <string>
#include <vector>

namespace narada {

/// Field state of one mirrored object.
struct MirrorObject {
  std::string ClassName;
  std::map<std::string, Value> Fields; ///< By field name; refs only matter.
};

/// The heap shadow.  Feed it every event in trace order via apply().
class HeapMirror {
public:
  /// Updates the mirror for \p Event (Alloc and WriteField matter; all other
  /// kinds are ignored).
  void apply(const TraceEvent &Event);

  /// Whether \p Id has been seen.
  bool knows(ObjectId Id) const { return Objects.count(Id) != 0; }

  /// The mirrored object; it must be known.
  const MirrorObject &object(ObjectId Id) const;

  /// Objects reachable from \p Roots (each pairs a root index with an
  /// object), mapped to their shortest access path (BFS order; the first
  /// discovered path wins, preferring earlier roots).
  std::map<ObjectId, AccessPath>
  reachableFrom(const std::vector<std::pair<int, ObjectId>> &Roots) const;

  /// Resolves \p Fields starting at \p Root through current field values.
  /// Returns NoObject when a hop is null, primitive or unknown.
  ObjectId resolve(ObjectId Root, const std::vector<std::string> &Fields) const;

private:
  std::map<ObjectId, MirrorObject> Objects;
};

} // namespace narada

#endif // NARADA_ANALYSIS_HEAPMIRROR_H
