//===- analysis/AccessPath.h - Client-rooted access paths -------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access paths rooted at a client-visible value: the receiver (I0), an
/// argument (Ii), or a method's return value (Ir).  These are the paper's
/// shadow parameter variables of §3.2: when the analysis reports that the
/// unprotected access at some label touches "I0.x.o", a synthesized test can
/// arrange a race by making I0.x of two invocations reference one object.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_ANALYSIS_ACCESSPATH_H
#define NARADA_ANALYSIS_ACCESSPATH_H

#include <string>
#include <vector>

namespace narada {

/// Root index of the return value pseudo-parameter Ir.
inline constexpr int ReturnRoot = -1;

/// A field path rooted at a client-visible value of a library invocation.
struct AccessPath {
  /// 0 = receiver (I0), i >= 1 = i-th argument (Ii), ReturnRoot = Ir.
  int Root = 0;
  std::vector<std::string> Fields;

  AccessPath() = default;
  AccessPath(int Root, std::vector<std::string> Fields)
      : Root(Root), Fields(std::move(Fields)) {}

  bool isReceiverOnly() const { return Root == 0 && Fields.empty(); }
  size_t depth() const { return Fields.size(); }

  /// Returns this path extended by \p Field.
  AccessPath appended(const std::string &Field) const {
    AccessPath Out = *this;
    Out.Fields.push_back(Field);
    return Out;
  }

  /// Returns the path without its last field; requires depth() > 0.
  AccessPath parent() const {
    AccessPath Out = *this;
    Out.Fields.pop_back();
    return Out;
  }

  /// True if \p Prefix is a (non-strict) prefix of this path: same root and
  /// this->Fields starts with Prefix.Fields.
  bool hasPrefix(const AccessPath &Prefix) const {
    if (Root != Prefix.Root || Prefix.Fields.size() > Fields.size())
      return false;
    for (size_t I = 0; I != Prefix.Fields.size(); ++I)
      if (Fields[I] != Prefix.Fields[I])
        return false;
    return true;
  }

  /// The fields of this path after removing \p Prefix; requires
  /// hasPrefix(Prefix).
  std::vector<std::string> suffixAfter(const AccessPath &Prefix) const {
    return std::vector<std::string>(Fields.begin() +
                                        static_cast<long>(Prefix.Fields.size()),
                                    Fields.end());
  }

  bool operator==(const AccessPath &Other) const {
    return Root == Other.Root && Fields == Other.Fields;
  }
  bool operator!=(const AccessPath &Other) const { return !(*this == Other); }
  bool operator<(const AccessPath &Other) const {
    if (Root != Other.Root)
      return Root < Other.Root;
    return Fields < Other.Fields;
  }

  /// "I0.x.o", "I2", "Ir.queue".
  std::string str() const {
    std::string Out = Root == ReturnRoot ? "Ir" : "I" + std::to_string(Root);
    for (const std::string &F : Fields) {
      Out += '.';
      Out += F;
    }
    return Out;
  }
};

} // namespace narada

#endif // NARADA_ANALYSIS_ACCESSPATH_H
