//===- analysis/AccessAnalysis.cpp - Narada stage 1 ----------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "analysis/AccessAnalysis.h"

#include "obs/Span.h"
#include "support/StringUtils.h"

#include <deque>

using namespace narada;

std::string AccessRecord::dedupKey() const {
  std::string Locks;
  for (const auto &Lock : HeldLockPaths) {
    Locks += Lock ? Lock->str() : "?";
    Locks += '|';
  }
  return formatString("%s.%s %s %s base=%s locks=%s", ClassName.c_str(),
                      Method.c_str(), staticLabel().c_str(),
                      IsWrite ? "W" : "R",
                      BasePath ? BasePath->str().c_str() : "-",
                      Locks.c_str());
}

std::string WriteableAssign::str() const {
  return formatString("%s.%s: %s <- %s%s", ClassName.c_str(), Method.c_str(),
                      Lhs.str().c_str(), Rhs.str().c_str(),
                      IsConstructor ? " (ctor)" : "");
}

std::string ReturnSummary::str() const {
  return formatString("%s.%s: %s <- %s", ClassName.c_str(), Method.c_str(),
                      RetPath.str().c_str(), Rhs.str().c_str());
}

std::vector<const WriteableAssign *>
AnalysisResult::settersFor(const std::string &ClassName,
                           const AccessPath &Lhs) const {
  std::vector<const WriteableAssign *> Out;
  for (const WriteableAssign &W : Setters)
    if (W.ClassName == ClassName && W.Lhs == Lhs)
      Out.push_back(&W);
  return Out;
}

void AnalysisResult::merge(const AnalysisResult &Other) {
  std::set<std::string> AccessKeys;
  for (const AccessRecord &R : Accesses)
    AccessKeys.insert(R.dedupKey());
  for (const AccessRecord &R : Other.Accesses)
    if (AccessKeys.insert(R.dedupKey()).second)
      Accesses.push_back(R);

  std::set<std::string> SetterKeys;
  for (const WriteableAssign &W : Setters)
    SetterKeys.insert(W.str());
  for (const WriteableAssign &W : Other.Setters)
    if (SetterKeys.insert(W.str()).second)
      Setters.push_back(W);

  std::set<std::string> ReturnKeys;
  for (const ReturnSummary &R : Returns)
    ReturnKeys.insert(R.str());
  for (const ReturnSummary &R : Other.Returns)
    if (ReturnKeys.insert(R.str()).second)
      Returns.push_back(R);
}

namespace {

/// Walks one trace, maintaining the heap mirror and per-invocation state.
class TraceAnalyzer {
public:
  TraceAnalyzer(const Trace &T, const ProgramInfo &Info,
                const AnalysisOptions &Options)
      : T(T), Info(Info), Options(Options) {}

  AnalysisResult run();

private:
  /// State of the client invocation currently being analyzed.
  struct InvocationContext {
    std::string ClassName;
    std::string Method;
    bool IsConstructor = false;
    /// Entry snapshot: every object the client could see at entry, with the
    /// shortest parameter-rooted path to it (the R bootstrap + src).
    std::map<ObjectId, AccessPath> Snapshot;
    /// Receiver and argument objects, for the return-rule walk.
    std::vector<std::pair<int, ObjectId>> Roots;
    /// Monitors currently held (object -> nesting depth), acquisition order.
    std::map<ObjectId, unsigned> LockDepth;
    std::vector<ObjectId> LockOrder;
  };

  void beginInvocation(const TraceEvent &Event);
  void endInvocation(const TraceEvent &Event);
  void handleAccess(const TraceEvent &Event);
  void handleLock(const TraceEvent &Event, bool Acquire);
  void recordReturnSummaries(const TraceEvent &Event);

  std::optional<AccessPath> pathOf(ObjectId Id) const {
    if (!Current)
      return std::nullopt;
    auto It = Current->Snapshot.find(Id);
    if (It == Current->Snapshot.end())
      return std::nullopt;
    return It->second;
  }

  void addAccess(AccessRecord Record) {
    if (DedupKeys.insert(Record.dedupKey()).second)
      Result.Accesses.push_back(std::move(Record));
  }

  const Trace &T;
  const ProgramInfo &Info;
  const AnalysisOptions &Options;
  HeapMirror Mirror;
  std::optional<InvocationContext> Current;
  AnalysisResult Result;
  std::set<std::string> DedupKeys;
  std::set<std::string> SetterKeys;
  std::set<std::string> ReturnKeys;
};

} // namespace

void TraceAnalyzer::beginInvocation(const TraceEvent &Event) {
  InvocationContext Ctx;
  Ctx.ClassName = Event.ClassName;
  Ctx.Method = Event.Method;
  Ctx.IsConstructor = Event.Method == ConstructorName;

  for (size_t I = 0, E = Event.Args.size(); I != E; ++I)
    if (Event.Args[I].isRef())
      Ctx.Roots.emplace_back(static_cast<int>(I), Event.Args[I].asRef());
  Ctx.Snapshot = Mirror.reachableFrom(Ctx.Roots);
  Current = std::move(Ctx);
}

void TraceAnalyzer::handleLock(const TraceEvent &Event, bool Acquire) {
  if (!Current)
    return;
  if (Acquire) {
    if (Current->LockDepth[Event.Obj]++ == 0)
      Current->LockOrder.push_back(Event.Obj);
    return;
  }
  auto It = Current->LockDepth.find(Event.Obj);
  if (It == Current->LockDepth.end())
    return;
  if (--It->second == 0) {
    Current->LockDepth.erase(It);
    std::erase(Current->LockOrder, Event.Obj);
  }
}

void TraceAnalyzer::handleAccess(const TraceEvent &Event) {
  if (!Current)
    return; // Accesses by client code itself are not library accesses.

  AccessRecord Record;
  Record.ClassName = Current->ClassName;
  Record.Method = Current->Method;
  Record.Label = Event.staticLabel();
  Record.IsWrite = Event.isWrite();
  Record.IsElem = Event.isElemAccess();
  Record.Field = Record.IsElem ? "[]" : Event.Field;
  Record.FieldClassName = Event.ClassName;
  Record.BasePath = pathOf(Event.Obj);
  Record.InConstructor =
      Event.Func && endsWith(Event.Func->name(),
                             std::string(".") + ConstructorName);


  bool BaseLocked = Current->LockDepth.count(Event.Obj) != 0;
  Record.Unprotected = Record.BasePath.has_value() && !BaseLocked;

  for (ObjectId Lock : Current->LockOrder)
    Record.HeldLockPaths.push_back(pathOf(Lock));

  // Writeable: a field write whose target and value are both controllable
  // (the Fig. 7 write rule's H(x,l,C,_) && H(y,l,C,_) condition).
  if (Record.IsWrite && !Record.IsElem && Record.BasePath &&
      Event.Val.isRef()) {
    std::optional<AccessPath> ValuePath = pathOf(Event.Val.asRef());
    if (ValuePath) {
      Record.Writeable = true;
      // Only receiver- or argument-rooted assignments become setters a
      // client can use.
      WriteableAssign Setter;
      Setter.ClassName = Current->ClassName;
      Setter.Method = Current->Method;
      Setter.Lhs = Record.BasePath->appended(Event.Field);
      Setter.Rhs = *ValuePath;
      Setter.IsConstructor = Current->IsConstructor;
      if (SetterKeys.insert(Setter.str()).second)
        Result.Setters.push_back(std::move(Setter));
    }
  }

  addAccess(std::move(Record));
}

void TraceAnalyzer::recordReturnSummaries(const TraceEvent &Event) {
  if (!Current || !Event.Val.isRef())
    return;
  ObjectId Ret = Event.Val.asRef();

  auto AddSummary = [&](AccessPath RetPath, AccessPath Rhs) {
    ReturnSummary Summary;
    Summary.ClassName = Current->ClassName;
    Summary.Method = Current->Method;
    Summary.RetPath = std::move(RetPath);
    Summary.Rhs = std::move(Rhs);
    if (ReturnKeys.insert(Summary.str()).second)
      Result.Returns.push_back(std::move(Summary));
  };

  // A getter: the returned object itself is client-visible state.
  if (std::optional<AccessPath> Direct = pathOf(Ret))
    AddSummary(AccessPath(ReturnRoot, {}), *Direct);

  // The Fig. 9 return rule: walk the returned object's fields (N(x)) and
  // record every slot holding a client-controllable object.
  struct WorkItem {
    ObjectId Obj;
    AccessPath Path;
  };
  std::deque<WorkItem> Queue;
  std::set<ObjectId> Visited;
  Queue.push_back({Ret, AccessPath(ReturnRoot, {})});
  Visited.insert(Ret);

  while (!Queue.empty()) {
    WorkItem Item = Queue.front();
    Queue.pop_front();
    if (Item.Path.depth() >= Options.ReturnWalkDepth || !Mirror.knows(Item.Obj))
      continue;
    for (const auto &[Field, Val] : Mirror.object(Item.Obj).Fields) {
      if (!Val.isRef())
        continue;
      ObjectId Child = Val.asRef();
      AccessPath ChildPath = Item.Path.appended(Field);
      if (std::optional<AccessPath> Src = pathOf(Child))
        AddSummary(ChildPath, *Src);
      if (Visited.insert(Child).second)
        Queue.push_back({Child, ChildPath});
    }
  }
}

void TraceAnalyzer::endInvocation(const TraceEvent &Event) {
  recordReturnSummaries(Event);
  Current.reset();
}

AnalysisResult TraceAnalyzer::run() {
  for (const TraceEvent &Event : T.events()) {
    switch (Event.Kind) {
    case EventKind::ClientCall:
      beginInvocation(Event);
      break;
    case EventKind::ClientCallEnd:
      endInvocation(Event);
      break;
    case EventKind::Lock:
      handleLock(Event, /*Acquire=*/true);
      break;
    case EventKind::Unlock:
      handleLock(Event, /*Acquire=*/false);
      break;
    case EventKind::ReadField:
    case EventKind::WriteField:
    case EventKind::ReadElem:
    case EventKind::WriteElem:
      handleAccess(Event);
      break;
    default:
      break;
    }
    // Mirror updates happen after the access is analyzed so that snapshots
    // and writeable checks see the pre-write heap, then the write lands.
    Mirror.apply(Event);
  }
  return Result;
}

AnalysisResult narada::analyzeTrace(const Trace &T, const ProgramInfo &Info,
                                    const AnalysisOptions &Options) {
  // Nested under "pipeline.analyze" when driven by runNarada; benches and
  // tests calling analyzeTrace directly get a top-level "trace" phase.
  obs::Span TraceSpan("trace");
  TraceAnalyzer Analyzer(T, Info, Options);
  AnalysisResult Result = Analyzer.run();

  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  Metrics.counter("analysis.traces_analyzed").inc();
  Metrics.counter("analysis.events_visited").inc(T.events().size());
  Metrics.counter("analysis.accesses_recorded").inc(Result.Accesses.size());
  Metrics.counter("analysis.setters_recorded").inc(Result.Setters.size());
  Metrics.counter("analysis.returns_recorded").inc(Result.Returns.size());
  return Result;
}
