//===- analysis/AnalysisPrinter.cpp - Analysis result rendering ----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPrinter.h"

#include "support/StringUtils.h"

using namespace narada;

std::string narada::printAccessRecord(const AccessRecord &Record) {
  std::string Out = formatString(
      "%s.%s %s %s.%s via %s", Record.ClassName.c_str(),
      Record.Method.c_str(), Record.IsWrite ? "WRITE" : "READ",
      Record.FieldClassName.c_str(), Record.Field.c_str(),
      Record.BasePath ? Record.BasePath->str().c_str() : "<internal>");
  if (Record.Unprotected)
    Out += " [unprotected]";
  if (Record.Writeable)
    Out += " [writeable]";
  if (Record.InConstructor)
    Out += " [ctor]";
  if (!Record.HeldLockPaths.empty()) {
    std::vector<std::string> Locks;
    for (const auto &Lock : Record.HeldLockPaths)
      Locks.push_back(Lock ? Lock->str() : "<internal>");
    Out += " locks={" + join(Locks, ", ") + "}";
  }
  Out += "  @" + Record.staticLabel();
  return Out;
}

std::string narada::printAnalysis(const AnalysisResult &Result,
                                  bool UnprotectedOnly) {
  std::string Out = UnprotectedOnly ? "== unprotected accesses ==\n"
                                    : "== accesses ==\n";
  for (const AccessRecord &Record : Result.Accesses) {
    if (UnprotectedOnly && !Record.Unprotected)
      continue;
    Out += "  " + printAccessRecord(Record) + "\n";
  }
  Out += "\n== writeable assignments (setters) ==\n";
  for (const WriteableAssign &W : Result.Setters)
    Out += "  " + W.str() + "\n";
  Out += "\n== return summaries (getters/factories) ==\n";
  for (const ReturnSummary &R : Result.Returns)
    Out += "  " + R.str() + "\n";
  return Out;
}
