//===- analysis/AnalysisPrinter.h - Analysis result rendering ---*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable rendering of stage-1 results: the unprotected/writeable
/// access listing (the paper's A projection), the setter database and the
/// return summaries (D).  Used by narada-cli and handy when debugging why
/// a pair was or was not generated.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_ANALYSIS_ANALYSISPRINTER_H
#define NARADA_ANALYSIS_ANALYSISPRINTER_H

#include "analysis/AccessAnalysis.h"

#include <string>

namespace narada {

/// One line describing an access record, e.g.
/// "Lib.update WRITE Counter.count via I0.c [unprotected] locks={I0}".
std::string printAccessRecord(const AccessRecord &Record);

/// Renders the full result: accesses (optionally only unprotected ones),
/// setters and return summaries, section by section.
std::string printAnalysis(const AnalysisResult &Result,
                          bool UnprotectedOnly = false);

} // namespace narada

#endif // NARADA_ANALYSIS_ANALYSISPRINTER_H
