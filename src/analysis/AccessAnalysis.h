//===- analysis/AccessAnalysis.h - Narada stage 1 ---------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential-trace analysis of §3.1–§3.2.  For every client→library
/// invocation in a seed-test trace it computes, per dynamic heap access:
///
///  - *controllability* (the paper's C/NC flags in H): whether the accessed
///    object was part of the client-visible world at invocation entry —
///    reachable from the receiver or an argument, the set the bootstrap
///    function R initializes as controllable;
///  - *unprotected* (the U component of A): controllable and accessed while
///    no monitor on the base object is held;
///  - *writeable* (the W component of A): a field write whose target object
///    and written value are both controllable;
///  - the access summary D: the client-rooted paths (src operator) for the
///    base object, the written value, and every monitor held at the access.
///
/// It additionally extracts the two databases the context deriver queries:
/// writeable assignments ("method m sets I0.f to I1") including constructor
/// assignments, and return summaries ("method m returns an object whose
/// field f is its argument I1" — the Fig. 9 return rule with Ir).
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_ANALYSIS_ACCESSANALYSIS_H
#define NARADA_ANALYSIS_ACCESSANALYSIS_H

#include "analysis/AccessPath.h"
#include "analysis/HeapMirror.h"
#include "lang/Sema.h"
#include "trace/Trace.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace narada {

/// One (deduplicated) heap access observed inside a library invocation.
struct AccessRecord {
  std::string ClassName; ///< Static class of the invoked library method.
  std::string Method;    ///< The client-invoked method containing the access.

  /// Static label ("Class.method:pc") of the access itself (possibly in a
  /// nested callee).  Materialized as a string so records stay valid after
  /// the module they were computed against is gone.
  std::string Label;

  bool IsWrite = false;
  bool IsElem = false;          ///< Array element access.
  std::string Field;            ///< Field name, or "[]" for elements.
  std::string FieldClassName;   ///< Dynamic class of the base object.

  /// Path of the base object from the invocation's parameters; empty
  /// optional when the base is not controllable.
  std::optional<AccessPath> BasePath;

  bool Unprotected = false; ///< Controllable base, no lock on it held.
  bool Writeable = false;   ///< Write with controllable base and value.
  bool InConstructor = false; ///< Access occurs inside an 'init' body.

  /// Client-rooted paths of every monitor held at the access; monitors on
  /// library-internal objects (no client path) are std::nullopt.
  std::vector<std::optional<AccessPath>> HeldLockPaths;

  /// "Class.method:pc" of the access.
  const std::string &staticLabel() const { return Label; }
  /// A stable identity used for deduplication across invocations.
  std::string dedupKey() const;
};

/// A writeable assignment usable to set library state from a client:
/// invoking \p Method on an instance of \p ClassName assigns the object at
/// \p Rhs (a parameter or a parameter's field path) into \p Lhs.
struct WriteableAssign {
  std::string ClassName;
  std::string Method;
  AccessPath Lhs; ///< Receiver-rooted path being assigned (e.g. I0.x).
  AccessPath Rhs; ///< Parameter-rooted source (e.g. I1 or I1.w).
  bool IsConstructor = false;

  std::string str() const;
};

/// A return summary: invoking \p Method yields an object whose \p RetPath
/// (rooted at Ir) is the caller-supplied \p Rhs.  With an empty RetPath the
/// method returns a client-visible object itself (a getter), which lets a
/// test *obtain* internal state; with a non-empty RetPath the method is a
/// factory wiring its argument into the returned object.
struct ReturnSummary {
  std::string ClassName;
  std::string Method;
  AccessPath RetPath; ///< Rooted at Ir (Root == ReturnRoot).
  AccessPath Rhs;     ///< Parameter- or receiver-rooted source.

  std::string str() const;
};

/// Everything stage 1 learns from one or more seed traces.
struct AnalysisResult {
  std::vector<AccessRecord> Accesses;
  std::vector<WriteableAssign> Setters;
  std::vector<ReturnSummary> Returns;

  /// Setters assigning exactly \p Lhs on class \p ClassName.
  std::vector<const WriteableAssign *>
  settersFor(const std::string &ClassName, const AccessPath &Lhs) const;

  /// Merges \p Other into this result, deduplicating.
  void merge(const AnalysisResult &Other);
};

/// Options controlling the analysis.
struct AnalysisOptions {
  /// Maximum depth of the return-rule walk over the returned object.
  unsigned ReturnWalkDepth = 3;
};

/// Runs stage 1 over a recorded sequential trace.
AnalysisResult analyzeTrace(const Trace &T, const ProgramInfo &Info,
                            const AnalysisOptions &Options = {});

} // namespace narada

#endif // NARADA_ANALYSIS_ACCESSANALYSIS_H
