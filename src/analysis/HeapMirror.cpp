//===- analysis/HeapMirror.cpp - Trace-replayed heap shadow --------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "analysis/HeapMirror.h"

#include <cassert>
#include <deque>

using namespace narada;

void HeapMirror::apply(const TraceEvent &Event) {
  switch (Event.Kind) {
  case EventKind::Alloc: {
    MirrorObject Obj;
    Obj.ClassName = Event.ClassName;
    Objects[Event.Obj] = std::move(Obj);
    return;
  }
  case EventKind::WriteField: {
    // Objects the VM staged outside of traced code (direct harness
    // allocations) may be first seen here.
    MirrorObject &Obj = Objects[Event.Obj];
    if (Obj.ClassName.empty())
      Obj.ClassName = Event.ClassName;
    Obj.Fields[Event.Field] = Event.Val;
    return;
  }
  default:
    return;
  }
}

const MirrorObject &HeapMirror::object(ObjectId Id) const {
  auto It = Objects.find(Id);
  assert(It != Objects.end() && "querying an unknown object");
  return It->second;
}

std::map<ObjectId, AccessPath> HeapMirror::reachableFrom(
    const std::vector<std::pair<int, ObjectId>> &Roots) const {
  std::map<ObjectId, AccessPath> Out;
  std::deque<ObjectId> Queue;

  for (const auto &[RootIndex, Id] : Roots) {
    if (Id == NoObject || Out.count(Id))
      continue;
    Out.emplace(Id, AccessPath(RootIndex, {}));
    Queue.push_back(Id);
  }

  while (!Queue.empty()) {
    ObjectId Id = Queue.front();
    Queue.pop_front();
    auto It = Objects.find(Id);
    if (It == Objects.end())
      continue; // Allocated before tracing began; fields unknown.
    const AccessPath &Base = Out.at(Id);
    for (const auto &[Field, Val] : It->second.Fields) {
      if (!Val.isRef() || Out.count(Val.asRef()))
        continue;
      Out.emplace(Val.asRef(), Base.appended(Field));
      Queue.push_back(Val.asRef());
    }
  }
  return Out;
}

ObjectId HeapMirror::resolve(ObjectId Root,
                             const std::vector<std::string> &Fields) const {
  ObjectId Current = Root;
  for (const std::string &Field : Fields) {
    auto It = Objects.find(Current);
    if (It == Objects.end())
      return NoObject;
    auto FieldIt = It->second.Fields.find(Field);
    if (FieldIt == It->second.Fields.end() || !FieldIt->second.isRef())
      return NoObject;
    Current = FieldIt->second.asRef();
  }
  return Current;
}
