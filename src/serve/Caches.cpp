//===- serve/Caches.cpp - The daemon's persistent cache layer ------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "serve/Caches.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "support/Digest.h"

#include <sys/stat.h>
#include <utility>

using namespace narada;
using namespace narada::serve;

namespace {

obs::Counter &counter(const char *Name) {
  return obs::MetricsRegistry::global().counter(Name);
}

} // namespace

class ServeCaches::SummaryStoreImpl : public staticrace::SummaryStore {
public:
  explicit SummaryStoreImpl(
      std::map<std::string, CacheSnapshot::SummaryEntry> &Map)
      : Map(Map) {}

  const staticrace::CachedSummary *lookup(const std::string &Symbol,
                                          uint64_t Digest) const override {
    auto It = Map.find(Symbol);
    if (It == Map.end() || It->second.Digest != Digest)
      return nullptr;
    return &It->second.Value;
  }

  void store(const std::string &Symbol, uint64_t Digest,
             staticrace::CachedSummary Value) override {
    auto It = Map.find(Symbol);
    if (It != Map.end() && It->second.Digest != Digest)
      counter("serve.cache.summary.invalidated").inc();
    CacheSnapshot::SummaryEntry &Entry = Map[Symbol];
    Entry.Digest = Digest;
    Entry.Value = std::move(Value);
  }

private:
  std::map<std::string, CacheSnapshot::SummaryEntry> &Map;
};

ServeCaches::ServeCaches(std::string CacheFilePath)
    : CacheFilePath(std::move(CacheFilePath)) {
  if (this->CacheFilePath.empty())
    return;
  struct stat St;
  if (::stat(this->CacheFilePath.c_str(), &St) != 0)
    return; // No file yet: a normal cold start.
  Result<CacheSnapshot> Loaded = loadCacheFile(this->CacheFilePath);
  if (!Loaded) {
    NARADA_LOG_WARN("serve: starting cold: %s", Loaded.error().str().c_str());
    return;
  }
  State = Loaded.take();
  LoadedFromDisk = true;
  NARADA_LOG_INFO("serve: cache loaded: %zu summaries, %zu memo scopes",
                  State.Summaries.size(), State.MemoScopes.size());
}

void ServeCaches::touchInput(const std::string &InputName, uint64_t Digest) {
  if (InputName.empty())
    return;
  auto It = State.InputDigests.find(InputName);
  if (It != State.InputDigests.end() && It->second != Digest) {
    // Same input, new content: the old scope's memo entries can never hit
    // again through this name — drop them so the daemon's footprint
    // follows the working set, and account for the invalidation.
    auto Old = State.MemoScopes.find(It->second);
    if (Old != State.MemoScopes.end()) {
      counter("serve.cache.memo.invalidated").inc(Old->second->size());
      State.MemoScopes.erase(Old);
    }
    SeedAnalysis.erase(It->second);
  }
  State.InputDigests[InputName] = Digest;
}

DerivationMemo &ServeCaches::memoScopeFor(uint64_t Digest) {
  auto It = State.MemoScopes.find(Digest);
  if (It != State.MemoScopes.end()) {
    // Every pre-warmed entry is a lookup the synthesis stage will not
    // re-derive; counting them on scope attach is what makes warm-run
    // reports show nonzero memo hits even though the memo itself never
    // distinguishes warm entries from ones inserted seconds ago.
    counter("serve.cache.memo.hits").inc(It->second->size());
    return *It->second;
  }
  counter("serve.cache.memo.misses").inc();
  auto Memo = std::make_unique<DerivationMemo>();
  DerivationMemo &Ref = *Memo;
  State.MemoScopes[Digest] = std::move(Memo);
  return Ref;
}

std::unique_ptr<ServeCaches::Request>
ServeCaches::beginRequest(const std::string &InputName) {
  auto Req = std::make_unique<Request>();
  Request *R = Req.get();

  Req->Hooks.PipelineFor =
      [this, R, InputName](const std::string &Source) -> const PipelineCaches * {
    const uint64_t Digest = digest::of(Source);
    touchInput(InputName, Digest);

    auto P = std::make_unique<PipelineCaches>();
    P->SharedMemo = &memoScopeFor(Digest);
    P->LookupSeedAnalysis =
        [this, Digest](const std::string &SeedName) -> const AnalysisResult * {
      auto Scope = SeedAnalysis.find(Digest);
      if (Scope != SeedAnalysis.end()) {
        auto Hit = Scope->second.find(SeedName);
        if (Hit != Scope->second.end()) {
          counter("serve.cache.analysis.hits").inc();
          return &Hit->second;
        }
      }
      counter("serve.cache.analysis.misses").inc();
      return nullptr;
    };
    P->StoreSeedAnalysis = [this, Digest](const std::string &SeedName,
                                          const AnalysisResult &Analysis) {
      SeedAnalysis[Digest].emplace(SeedName, Analysis);
    };
    P->Summarize = [this](const IRModule &M) {
      SummaryStoreImpl Store(State.Summaries);
      staticrace::IncrementalStats Stats;
      staticrace::ModuleSummary Summary =
          staticrace::summarizeModuleIncremental(M, Store, &Stats);
      counter("serve.cache.summary.hits").inc(Stats.Hits);
      counter("serve.cache.summary.misses").inc(Stats.Methods - Stats.Hits);
      counter("serve.cone_reanalyzed_methods").inc(Stats.Reanalyzed);
      return Summary;
    };
    R->Pipeline = std::move(P);
    return R->Pipeline.get();
  };

  Req->Hooks.LookupDetect =
      [this](uint64_t Key) -> const std::vector<TestDetectionResult> * {
    auto It = State.DetectMemo.find(Key);
    if (It == State.DetectMemo.end()) {
      counter("serve.cache.detect.misses").inc();
      return nullptr;
    }
    counter("serve.cache.detect.hits").inc();
    return &It->second;
  };
  Req->Hooks.StoreDetect = [this](uint64_t Key,
                                  const std::vector<TestDetectionResult> &R) {
    if (State.DetectMemo.count(Key))
      return;
    while (State.DetectMemo.size() >= MaxDetectEntries) {
      State.DetectMemo.erase(State.DetectOrder.front());
      State.DetectOrder.pop_front();
    }
    State.DetectMemo.emplace(Key, R);
    State.DetectOrder.push_back(Key);
  };
  return Req;
}

bool ServeCaches::save() const {
  if (CacheFilePath.empty())
    return true;
  return saveCacheFile(CacheFilePath, State);
}
