//===- serve/CacheFile.h - On-disk daemon cache persistence -----*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of the daemon's durable caches (docs/SERVING.md): the
/// content-addressed static summary store and the per-source derivation
/// memo scopes.  The file is a sequence of support/Wire.h frames — the
/// same length-prefixed record format every other Narada wire surface
/// uses — starting with a versioned header:
///
///   frame 0:  magic=narada.serve_cache  version=2
///   frame N:  kind=summary      one (symbol, cone digest) summary entry
///             kind=memo_scope   one source digest's derivation memo
///             kind=input        one input-name -> source-digest binding
///             kind=detect_memo  one detect-stage memo entry (v2+)
///
/// Version 1 files (no detect_memo frames) still load; the detect memo
/// simply starts empty.
///
/// Loading is all-or-nothing per file: any anomaly (bad magic, future
/// version, truncated frame, malformed entry) fails the load and the
/// daemon starts cold — a cache is a speedup, never a correctness input,
/// so the only safe reaction to corruption is to ignore the file.
/// Writing goes through a temp file + rename so a crash mid-save leaves
/// the previous cache intact.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SERVE_CACHEFILE_H
#define NARADA_SERVE_CACHEFILE_H

#include "detect/Detection.h"
#include "staticrace/LocksetAnalysis.h"
#include "support/Error.h"
#include "synth/ContextDeriver.h"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace narada {
namespace serve {

/// Everything the cache file holds, in load/store form.
struct CacheSnapshot {
  /// One persisted summary-store entry: the summary plus the cone digest
  /// it was computed under (see staticrace::methodConeDigests).
  struct SummaryEntry {
    uint64_t Digest = 0;
    staticrace::CachedSummary Value;
  };
  /// Keyed by method symbol — the store keeps only the latest digest per
  /// symbol, so one entry per symbol is exactly its in-memory shape.
  std::map<std::string, SummaryEntry> Summaries;
  /// Derivation memo scopes keyed by source digest.  unique_ptr because
  /// DerivationMemo is neither copyable nor movable (sharded mutexes).
  std::map<uint64_t, std::unique_ptr<DerivationMemo>> MemoScopes;
  /// Input name (file path / corpus id) -> last seen source digest; the
  /// invalidation edge that lets an edited module drop its stale scope.
  std::map<std::string, uint64_t> InputDigests;
  /// Detect-stage memo: detect stage key (detectStageKey) -> the per-test
  /// detection results a prior identical run produced.  Bounded (the serve
  /// layer evicts FIFO via DetectOrder), and persisted so a daemon restart
  /// keeps replay-free detection hits warm.
  std::map<uint64_t, std::vector<TestDetectionResult>> DetectMemo;
  /// Insertion order of DetectMemo keys — the FIFO eviction queue.  Saved
  /// and restored so eviction behaves identically across a restart.
  std::deque<uint64_t> DetectOrder;
};

/// Serializes \p Snapshot to \p Path atomically (temp file + rename).
/// Returns false (with a warning on stderr) when the file cannot be
/// written; the daemon keeps serving from memory.
bool saveCacheFile(const std::string &Path, const CacheSnapshot &Snapshot);

/// Loads \p Path.  Errors on any corruption or version mismatch — the
/// caller logs and starts cold.  A missing file is also an error (callers
/// that treat "no file yet" as a normal cold start should stat first or
/// just ignore the error).
Result<CacheSnapshot> loadCacheFile(const std::string &Path);

} // namespace serve
} // namespace narada

#endif // NARADA_SERVE_CACHEFILE_H
