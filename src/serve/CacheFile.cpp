//===- serve/CacheFile.cpp - On-disk daemon cache persistence ------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "serve/CacheFile.h"

#include "detect/DetectWorker.h"
#include "obs/Log.h"
#include "support/Wire.h"

#include <cstdio>
#include <fcntl.h>
#include <unistd.h>
#include <utility>
#include <vector>

using namespace narada;
using namespace narada::serve;
using staticrace::CachedSummary;
using staticrace::Controllability;
using staticrace::MethodSummary;
using staticrace::StaticAccess;

namespace {

constexpr const char *Magic = "narada.serve_cache";
// Version 2 added kind=detect_memo frames; version-1 files (which simply
// lack them) are still accepted on load.
constexpr uint64_t Version = 2;
constexpr uint64_t MinVersion = 1;

// Nested records: a whole sub-record rides as one escaped value (the wire
// escaping turns its newlines into \n), so arbitrarily deep structures —
// summary -> access -> lock path, memo scope -> plan -> plan... — stay
// inside the flat line-oriented format every other Narada surface uses.

std::string encodePath(const AccessPath &Path) {
  wire::RecordWriter W;
  W.add("root", static_cast<int64_t>(Path.Root));
  for (const std::string &Field : Path.Fields)
    W.add("field", Field);
  return W.str();
}

AccessPath decodePath(const std::string &Text) {
  wire::RecordReader In(Text);
  return AccessPath(static_cast<int>(In.getI64("root", 0)), In.all("field"));
}

std::string encodeAccess(const StaticAccess &A) {
  wire::RecordWriter W;
  W.add("label", A.Label);
  W.add("class", A.FieldClassName);
  W.add("field", A.Field);
  W.addBool("write", A.IsWrite);
  W.addBool("elem", A.IsElem);
  W.add("ctrl", static_cast<uint64_t>(A.Ctrl));
  if (A.BasePath)
    W.add("base", encodePath(*A.BasePath));
  for (const auto &[Path, Count] : A.MustLocks) {
    wire::RecordWriter Lock;
    Lock.add("path", encodePath(Path));
    Lock.add("count", static_cast<uint64_t>(Count));
    W.add("lock", Lock.str());
  }
  W.add("unknown_locks", static_cast<uint64_t>(A.UnknownLocks));
  return W.str();
}

Result<StaticAccess> decodeAccess(const std::string &Text) {
  wire::RecordReader In(Text);
  StaticAccess A;
  std::optional<std::string> Label = In.get("label");
  if (!Label)
    return Error("cache access entry has no label");
  A.Label = *Label;
  A.FieldClassName = In.getOr("class", "");
  A.Field = In.getOr("field", "");
  A.IsWrite = In.getBool("write", false);
  A.IsElem = In.getBool("elem", false);
  uint64_t Ctrl = In.getU64("ctrl", ~0ull);
  if (Ctrl > static_cast<uint64_t>(Controllability::Unknown))
    return Error("cache access entry has a bad controllability");
  A.Ctrl = static_cast<Controllability>(Ctrl);
  if (std::optional<std::string> Base = In.get("base"))
    A.BasePath = decodePath(*Base);
  for (const std::string &LockText : In.all("lock")) {
    wire::RecordReader Lock(LockText);
    std::optional<std::string> Path = Lock.get("path");
    if (!Path)
      return Error("cache lock entry has no path");
    A.MustLocks[decodePath(*Path)] =
        static_cast<unsigned>(Lock.getU64("count", 1));
  }
  A.UnknownLocks = static_cast<unsigned>(In.getU64("unknown_locks", 0));
  return A;
}

void encodeSummaryFrame(wire::RecordWriter &W, const std::string &Symbol,
                        const CacheSnapshot::SummaryEntry &Entry) {
  W.add("kind", std::string_view("summary"));
  W.add("symbol", Symbol);
  W.add("digest", Entry.Digest);
  W.addBool("exact", Entry.Value.Exact);
  const MethodSummary &S = Entry.Value.Summary;
  W.add("method_symbol", S.Symbol);
  W.addBool("incomplete", S.Incomplete);
  for (const std::string &Field : S.StoredFields)
    W.add("stored_field", Field);
  for (const StaticAccess &A : S.Accesses)
    W.add("access", encodeAccess(A));
}

Result<std::pair<std::string, CacheSnapshot::SummaryEntry>>
decodeSummaryFrame(const wire::RecordReader &In) {
  std::optional<std::string> Symbol = In.get("symbol");
  std::optional<std::string> Digest = In.get("digest");
  if (!Symbol || !Digest)
    return Error("cache summary entry has no symbol/digest");
  CacheSnapshot::SummaryEntry Entry;
  Entry.Digest = In.getU64("digest", 0);
  Entry.Value.Exact = In.getBool("exact", false);
  MethodSummary &S = Entry.Value.Summary;
  S.Symbol = In.getOr("method_symbol", *Symbol);
  S.Incomplete = In.getBool("incomplete", false);
  for (const std::string &Field : In.all("stored_field"))
    S.StoredFields.insert(Field);
  for (const std::string &AccessText : In.all("access")) {
    Result<StaticAccess> A = decodeAccess(AccessText);
    if (!A)
      return A.error();
    S.Accesses.push_back(A.take());
  }
  return std::make_pair(*Symbol, std::move(Entry));
}

uint64_t planKindId(ProvidePlan::Kind K) {
  return static_cast<uint64_t>(K);
}

std::string encodePlan(const ProvidePlan &Plan) {
  wire::RecordWriter W;
  W.add("kind", planKindId(Plan.K));
  W.add("class", Plan.ClassName);
  W.add("method", Plan.Method);
  W.add("param", static_cast<int64_t>(Plan.ConstrainedParam));
  W.addBool("complete", Plan.Complete);
  if (Plan.Base)
    W.add("base", encodePlan(*Plan.Base));
  if (Plan.Value)
    W.add("value", encodePlan(*Plan.Value));
  return W.str();
}

Result<std::unique_ptr<ProvidePlan>> decodePlan(const std::string &Text) {
  wire::RecordReader In(Text);
  auto Plan = std::make_unique<ProvidePlan>();
  uint64_t Kind = In.getU64("kind", ~0ull);
  if (Kind > planKindId(ProvidePlan::Kind::ViaFactory))
    return Error("cache memo plan has a bad kind");
  Plan->K = static_cast<ProvidePlan::Kind>(Kind);
  Plan->ClassName = In.getOr("class", "");
  Plan->Method = In.getOr("method", "");
  Plan->ConstrainedParam = static_cast<int>(In.getI64("param", 0));
  Plan->Complete = In.getBool("complete", true);
  if (std::optional<std::string> Base = In.get("base")) {
    Result<std::unique_ptr<ProvidePlan>> Sub = decodePlan(*Base);
    if (!Sub)
      return Sub.error();
    Plan->Base = Sub.take();
  }
  if (std::optional<std::string> Value = In.get("value")) {
    Result<std::unique_ptr<ProvidePlan>> Sub = decodePlan(*Value);
    if (!Sub)
      return Sub.error();
    Plan->Value = Sub.take();
  }
  return Plan;
}

void encodeMemoFrame(wire::RecordWriter &W, uint64_t Digest,
                     const DerivationMemo &Memo) {
  W.add("kind", std::string_view("memo_scope"));
  W.add("digest", Digest);
  // forEach visits in sorted key order, so identical memo contents always
  // serialize to identical bytes.
  Memo.forEach([&](const std::string &Key, const ProvidePlan &Plan) {
    wire::RecordWriter Entry;
    Entry.add("key", Key);
    Entry.add("plan", encodePlan(Plan));
    W.add("entry", Entry.str());
  });
}

void encodeDetectMemoFrame(wire::RecordWriter &W, uint64_t Key,
                           const std::vector<TestDetectionResult> &Results) {
  W.add("kind", std::string_view("detect_memo"));
  W.add("key", Key);
  for (const TestDetectionResult &R : Results) {
    wire::RecordWriter Entry;
    detectworker::encodeDetectResult(Entry, R);
    W.add("result", Entry.str());
  }
}

Result<std::pair<uint64_t, std::vector<TestDetectionResult>>>
decodeDetectMemoFrame(const wire::RecordReader &In) {
  std::optional<std::string> Key = In.get("key");
  if (!Key)
    return Error("cache detect memo entry has no key");
  std::vector<TestDetectionResult> Results;
  for (const std::string &Text : In.all("result")) {
    wire::RecordReader Entry(Text);
    Results.push_back(detectworker::decodeDetectResult(Entry));
  }
  return std::make_pair(In.getU64("key", 0), std::move(Results));
}

Result<std::unique_ptr<DerivationMemo>>
decodeMemoFrame(const wire::RecordReader &In) {
  auto Memo = std::make_unique<DerivationMemo>();
  for (const std::string &EntryText : In.all("entry")) {
    wire::RecordReader Entry(EntryText);
    std::optional<std::string> Key = Entry.get("key");
    std::optional<std::string> PlanText = Entry.get("plan");
    if (!Key || !PlanText)
      return Error("cache memo entry has no key/plan");
    Result<std::unique_ptr<ProvidePlan>> Plan = decodePlan(*PlanText);
    if (!Plan)
      return Plan.error();
    Memo->insert(*Key, **Plan);
  }
  return Memo;
}

} // namespace

bool serve::saveCacheFile(const std::string &Path,
                          const CacheSnapshot &Snapshot) {
  const std::string TempPath = Path + ".tmp";
  int Fd = ::open(TempPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    NARADA_LOG_WARN("serve: cannot write cache file '%s'", TempPath.c_str());
    return false;
  }
  bool Ok = true;
  auto Emit = [&](const wire::RecordWriter &W) {
    if (Ok && !wire::writeFrame(Fd, W.str()))
      Ok = false;
  };
  {
    wire::RecordWriter Header;
    Header.add("magic", std::string_view(Magic));
    Header.add("version", Version);
    Emit(Header);
  }
  for (const auto &[Symbol, Entry] : Snapshot.Summaries) {
    wire::RecordWriter W;
    encodeSummaryFrame(W, Symbol, Entry);
    Emit(W);
  }
  for (const auto &[Digest, Memo] : Snapshot.MemoScopes) {
    wire::RecordWriter W;
    encodeMemoFrame(W, Digest, *Memo);
    Emit(W);
  }
  for (const auto &[Name, Digest] : Snapshot.InputDigests) {
    wire::RecordWriter W;
    W.add("kind", std::string_view("input"));
    W.add("name", Name);
    W.add("digest", Digest);
    Emit(W);
  }
  // Written in FIFO order so the eviction queue reloads exactly as it was.
  for (uint64_t Key : Snapshot.DetectOrder) {
    auto It = Snapshot.DetectMemo.find(Key);
    if (It == Snapshot.DetectMemo.end())
      continue;
    wire::RecordWriter W;
    encodeDetectMemoFrame(W, Key, It->second);
    Emit(W);
  }
  ::close(Fd);
  if (!Ok || ::rename(TempPath.c_str(), Path.c_str()) != 0) {
    NARADA_LOG_WARN("serve: failed to persist cache file '%s'", Path.c_str());
    ::unlink(TempPath.c_str());
    return false;
  }
  return true;
}

Result<CacheSnapshot> serve::loadCacheFile(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Error("cannot open cache file '" + Path + "'");
  CacheSnapshot Snapshot;
  std::string Payload;
  wire::ReadStatus St = wire::readFrame(Fd, Payload);
  if (St != wire::ReadStatus::Ok) {
    ::close(Fd);
    return Error("cache file '" + Path + "' has no header frame");
  }
  {
    wire::RecordReader Header(Payload);
    if (Header.getOr("magic", "") != Magic) {
      ::close(Fd);
      return Error("cache file '" + Path + "' has a bad magic");
    }
    const uint64_t V = Header.getU64("version", 0);
    if (V < MinVersion || V > Version) {
      ::close(Fd);
      return Error("cache file '" + Path + "' has an unsupported version");
    }
  }
  for (;;) {
    St = wire::readFrame(Fd, Payload);
    if (St == wire::ReadStatus::Eof)
      break;
    if (St != wire::ReadStatus::Ok) {
      ::close(Fd);
      return Error("cache file '" + Path + "' is truncated or corrupt");
    }
    wire::RecordReader In(Payload);
    const std::string Kind = In.getOr("kind", "");
    if (Kind == "summary") {
      Result<std::pair<std::string, CacheSnapshot::SummaryEntry>> Entry =
          decodeSummaryFrame(In);
      if (!Entry) {
        ::close(Fd);
        return Entry.error();
      }
      Snapshot.Summaries[Entry->first] = std::move(Entry->second);
    } else if (Kind == "memo_scope") {
      std::optional<std::string> Digest = In.get("digest");
      if (!Digest) {
        ::close(Fd);
        return Error("cache memo scope has no digest");
      }
      Result<std::unique_ptr<DerivationMemo>> Memo = decodeMemoFrame(In);
      if (!Memo) {
        ::close(Fd);
        return Memo.error();
      }
      Snapshot.MemoScopes[In.getU64("digest", 0)] = Memo.take();
    } else if (Kind == "detect_memo") {
      Result<std::pair<uint64_t, std::vector<TestDetectionResult>>> Entry =
          decodeDetectMemoFrame(In);
      if (!Entry) {
        ::close(Fd);
        return Entry.error();
      }
      if (Snapshot.DetectMemo.emplace(Entry->first, std::move(Entry->second))
              .second)
        Snapshot.DetectOrder.push_back(Entry->first);
    } else if (Kind == "input") {
      std::optional<std::string> Name = In.get("name");
      std::optional<std::string> Digest = In.get("digest");
      if (!Name || !Digest) {
        ::close(Fd);
        return Error("cache input binding has no name/digest");
      }
      Snapshot.InputDigests[*Name] = In.getU64("digest", 0);
    } else {
      ::close(Fd);
      return Error("cache file '" + Path + "' has an unknown entry kind '" +
                   Kind + "'");
    }
  }
  ::close(Fd);
  return Snapshot;
}
