//===- serve/Daemon.h - The narada-cli serve daemon -------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `narada-cli serve --socket <path> [--cache <file>]`: a persistent
/// analysis daemon.  It listens on a Unix-domain socket, accepts one
/// framed request per connection (serve/Protocol.h), executes submits
/// through the shared engine with the ServeCaches hooks attached, and
/// ships back captured stdout/stderr/report bytes plus the exit code —
/// which is why a warm daemon answer can be byte-compared against a cold
/// single-shot CLI run (docs/SERVING.md).
///
/// Requests are handled sequentially; the parallelism knob is the
/// submitted --jobs value, which fans out *inside* a request exactly as
/// the CLI would.  Before each request the metrics registry is reset, so
/// a request's report covers its own counters and spans just like a fresh
/// CLI process.
///
/// Fault containment: each request runs inside fault::ScopedUnit(request
/// index) with a "serve.request" probe at the top — an injected fault
/// turns into an error response for that one client while the daemon
/// keeps serving.  When NARADA_FAULT_INJECT is armed the cache hooks are
/// withheld entirely, so a fault can never poison a cache entry that
/// later requests would trust.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SERVE_DAEMON_H
#define NARADA_SERVE_DAEMON_H

#include "racedb/RaceDb.h"
#include "serve/Caches.h"
#include "serve/Protocol.h"

#include <functional>
#include <string>

namespace narada {
namespace serve {

/// Runs \p Fn with stdout/stderr redirected into temp files, restores the
/// real descriptors, and returns Fn's result with the captured bytes in
/// \p OutBytes / \p ErrBytes.  The capture covers C stdio *and* raw fd
/// writes (the engine prints via printf/fputs), which is exactly what the
/// byte-identity contract needs.
int captureRun(const std::function<int()> &Fn, std::string &OutBytes,
               std::string &ErrBytes);

/// Executes one decoded submit request against \p Caches (null = run
/// cold, e.g. under armed fault injection) and returns the response.
/// \p WorkerExe is the daemon's own executable path for --isolate
/// re-exec; \p RequestIndex scopes the fault-injection unit.  Exposed so
/// tests can drive warm-vs-cold loopback without a socket.
///
/// When \p Db is non-null (`serve --racedb`), the run's report is always
/// produced internally and — on success — folded into the database as one
/// triage observation; the report bytes still ship to the client only
/// when the request asked for them, so response bytes are unchanged.
SubmitResponse handleSubmit(SubmitRequest Request, ServeCaches *Caches,
                            const std::string &WorkerExe,
                            uint64_t RequestIndex,
                            racedb::RaceDb *Db = nullptr);

/// The `narada-cli serve` entrypoint: Argv past the subcommand, i.e.
/// "--socket <path> [--cache <file>] [--racedb <file>]".  Returns the
/// process exit code.
int runServe(int Argc, char **Argv);

} // namespace serve
} // namespace narada

#endif // NARADA_SERVE_DAEMON_H
