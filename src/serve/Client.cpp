//===- serve/Client.cpp - narada-cli submit client -----------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "serve/Engine.h"
#include "serve/Protocol.h"
#include "support/Wire.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

using namespace narada;
using namespace narada::serve;

namespace {

/// Connects to the daemon socket; -1 with a message on failure.
int connectTo(const std::string &SocketPath) {
  sockaddr_un Addr{};
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "submit: socket path too long\n");
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "submit: socket: %s\n", std::strerror(errno));
    return -1;
  }
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "submit: cannot connect to '%s': %s\n",
                 SocketPath.c_str(), std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// One request/response round trip; false on any transport failure.
bool roundTrip(const std::string &SocketPath, const std::string &Request,
               std::string &ResponsePayload) {
  int Fd = connectTo(SocketPath);
  if (Fd < 0)
    return false;
  if (!wire::writeFrame(Fd, Request)) {
    std::fprintf(stderr, "submit: write to daemon failed\n");
    ::close(Fd);
    return false;
  }
  wire::ReadStatus St = wire::readFrame(Fd, ResponsePayload);
  ::close(Fd);
  if (St != wire::ReadStatus::Ok) {
    std::fprintf(stderr, "submit: daemon closed the connection mid-reply\n");
    return false;
  }
  return true;
}

int simpleVerb(const std::string &SocketPath, const char *Verb) {
  wire::RecordWriter W;
  W.add("verb", std::string_view(Verb));
  std::string Payload;
  if (!roundTrip(SocketPath, W.str(), Payload))
    return 1;
  wire::RecordReader In(Payload);
  std::printf("%s\n", In.getOr("verb", "?").c_str());
  return 0;
}

} // namespace

int serve::runSubmit(int Argc, char **Argv) {
  // Peel off the transport options; everything else re-enters the normal
  // CLI grammar so `submit --socket S detect corpus:C1 --jobs 4` parses
  // exactly like `narada-cli detect corpus:C1 --jobs 4` would.
  std::string SocketPath;
  bool Ping = false, Shutdown = false;
  std::vector<char *> Rest;
  Rest.push_back(Argv[0]);
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--socket" && I + 1 < Argc) {
      SocketPath = Argv[++I];
    } else if (Arg == "--ping") {
      Ping = true;
    } else if (Arg == "--shutdown") {
      Shutdown = true;
    } else {
      Rest.push_back(Argv[I]);
    }
  }
  if (SocketPath.empty()) {
    std::fprintf(stderr, "submit: --socket <path> is required\n");
    return 2;
  }
  if (Ping)
    return simpleVerb(SocketPath, "ping");
  if (Shutdown)
    return simpleVerb(SocketPath, "shutdown");

  std::optional<CliArgs> Args =
      parseArgs(static_cast<int>(Rest.size()), Rest.data());
  if (!Args || Args->Input.empty()) {
    std::fprintf(stderr,
                 "submit: usage: narada-cli submit --socket <path> "
                 "<command> <input> [args]\n");
    return 2;
  }
  // Daemon-side filesystem side effects don't relay; reject up front
  // rather than letting the daemon scribble files next to itself.
  if (!Args->TracePath.empty() || !Args->ReplayPath.empty() ||
      !Args->Detect.WitnessDir.empty()) {
    std::fprintf(stderr, "submit: --trace/--replay/--emit-witness are not "
                         "supported over a daemon\n");
    return 2;
  }

  // Load the source client-side (corpus expansion fills seed/class
  // defaults here, so the shipped bundle is self-contained).
  Result<std::string> Source = loadSource(*Args);
  if (!Source) {
    std::fprintf(stderr, "error: %s\n", Source.error().str().c_str());
    return 1;
  }

  wire::RecordWriter W;
  encodeSubmit(W, *Args, *Source);
  std::string Payload;
  if (!roundTrip(SocketPath, W.str(), Payload))
    return 1;
  wire::RecordReader In(Payload);
  if (In.getOr("verb", "") != "result") {
    std::fprintf(stderr, "submit: daemon error: %s\n",
                 In.getOr("error", "unexpected reply").c_str());
    return 1;
  }
  SubmitResponse Resp = decodeResponse(In);
  // Relay the captured bytes verbatim — stdout must diff clean against a
  // cold local run of the same command.
  std::fwrite(Resp.Stdout.data(), 1, Resp.Stdout.size(), stdout);
  std::fwrite(Resp.Stderr.data(), 1, Resp.Stderr.size(), stderr);
  if (!Resp.Ok) {
    std::fprintf(stderr, "submit: %s\n", Resp.ErrorMessage.c_str());
    return Resp.Exit ? Resp.Exit : 1;
  }
  if (!Args->ReportPath.empty() && !Resp.Report.empty()) {
    std::ofstream Out(Args->ReportPath, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "submit: cannot write report '%s'\n",
                   Args->ReportPath.c_str());
      return 1;
    }
    Out.write(Resp.Report.data(),
              static_cast<std::streamsize>(Resp.Report.size()));
  }
  return Resp.Exit;
}
