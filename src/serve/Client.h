//===- serve/Client.h - narada-cli submit client ----------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `narada-cli submit --socket <path> <command> [args]`: runs one command
/// on a serve daemon and relays the result so the invocation is a drop-in
/// replacement for running the command locally — captured stdout/stderr
/// bytes are re-emitted verbatim, --report bytes are written to the
/// client-side path, and the daemon's exit code becomes the client's.
///
/// The client does the filesystem work: it resolves corpus: inputs and
/// reads source files locally (filling in corpus seed/class defaults
/// exactly like the CLI), then ships a self-contained bundle.  Submissions
/// that need daemon-side filesystem side effects (--trace, --replay,
/// --emit-witness) are rejected client-side with a usage error.
///
/// `narada-cli submit --socket <path> --ping` checks liveness;
/// `--shutdown` stops the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SERVE_CLIENT_H
#define NARADA_SERVE_CLIENT_H

namespace narada {
namespace serve {

/// The `narada-cli submit` entrypoint: full process Argv (Argv[1] ==
/// "submit").  Returns the process exit code — the daemon-side command's
/// code on success, 1 on transport failure, 2 on usage errors.
int runSubmit(int Argc, char **Argv);

} // namespace serve
} // namespace narada

#endif // NARADA_SERVE_CLIENT_H
