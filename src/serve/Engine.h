//===- serve/Engine.h - Command engine shared by CLI and daemon -*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command engine behind both faces of the tool: `narada-cli <cmd>`
/// (one process, one run) and `narada-cli serve` (a persistent daemon
/// executing the same commands per request).  The CLI's argument grammar,
/// command dispatch, stdout/stderr output, and report emission all live
/// here — narada-cli.cpp is a thin main() and the daemon replays requests
/// through runCommandAndReport(), which is why a warm daemon answer can be
/// byte-compared against a cold CLI run.
///
/// EngineHooks is the daemon's seam: per-request pipeline caches (seed
/// analysis, incremental static summaries, the derivation memo) and a
/// whole-detection-stage memo.  Every hook is optional and a null hooks
/// pointer (the CLI) runs everything cold.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SERVE_ENGINE_H
#define NARADA_SERVE_ENGINE_H

#include "detect/Detection.h"
#include "support/Error.h"
#include "support/ProcessPool.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace narada {

struct PipelineCaches;

namespace serve {

/// Parsed command line (or decoded submit request).
struct CliArgs {
  std::string Command;
  std::string Input;                 ///< File path or "corpus:Cx".
  std::vector<std::string> Names;    ///< Test / seed names.
  std::string FocusClass;
  uint64_t Seed = 1;
  unsigned Tests = 400;
  std::string ReportPath;            ///< --report: JSON run report target.
  std::string TracePath;             ///< --trace: Chrome trace target.
  bool Stats = false;                ///< --stats: summary on stderr.
  unsigned Jobs = 1;                 ///< --jobs: worker threads (0 = all).
  DetectOptions Detect;              ///< Watchdog/budget knobs for detect.
  std::string PolicyName = "random"; ///< --policy: scheduler for `run`.
  std::string ReplayPath;            ///< --replay: witness trace to re-run.
  bool StaticPrefilter = false;      ///< --static-prefilter.
  bool StaticRank = false;           ///< --static-rank.
  bool StaticOnly = false;           ///< --static-only: triage, no seeds.
  bool GenSeeds = false;             ///< --gen-seeds: synthesize the seeds.
  unsigned GenRounds = 2;            ///< --gen-rounds.
  unsigned GenBudget = 16;           ///< --gen-budget (candidates/round).
  pool::IsolateOptions Isolate;      ///< --isolate / --worker-* flags.
};

/// The daemon's cache seam into the engine.  All members optional.
struct EngineHooks {
  /// Returns request-scoped PipelineCaches for the source a pipeline
  /// command is about to run on (called *after* --gen-seeds replaced the
  /// source, so cache keys always cover the exact pipeline input), or
  /// null to run cold.  The pointee must outlive the command.
  std::function<const PipelineCaches *(const std::string &Source)> PipelineFor;
  /// Whole-detection-stage memo, keyed by a digest of (final source,
  /// detect options, job list).  Lookup returns null on miss; the pointee
  /// must stay valid until the command returns.  Consulted only for
  /// plain detection runs — witness emission, replay, and armed fault
  /// injection bypass the memo entirely.
  std::function<const std::vector<TestDetectionResult> *(uint64_t Key)>
      LookupDetect;
  std::function<void(uint64_t Key, const std::vector<TestDetectionResult> &)>
      StoreDetect;
};

/// Prints the CLI usage text to stderr; returns 2 (the usage exit code).
int usage();

/// Parses a narada-cli command line; nullopt (after printing a complaint)
/// on malformed input.  Seeds Jobs/Isolate from NARADA_JOBS/NARADA_ISOLATE
/// and resolves Argv[0] into Isolate.WorkerExe.
std::optional<CliArgs> parseArgs(int Argc, char **Argv);

/// Loads the program source: either a corpus entry or a file.  When a
/// corpus entry is used, its seeds and focus class become the defaults.
Result<std::string> loadSource(CliArgs &Args);

/// `narada-cli corpus`: lists the built-in benchmark corpus.
int cmdCorpus();

/// Dispatches \p Args.Command over \p Source and returns the process exit
/// code (2 = usage error).  Output goes to stdout/stderr exactly as the
/// historical CLI wrote it.
int runCommand(CliArgs &Args, std::string Source,
               const EngineHooks *Hooks = nullptr);

/// runCommand plus the --report/--stats emission (skipped on usage
/// errors, matching the CLI's historical behavior).  This is the one call
/// both narada-cli main() and the daemon's request handler make.
int runCommandAndReport(CliArgs &Args, std::string Source,
                        const EngineHooks *Hooks = nullptr);

} // namespace serve
} // namespace narada

#endif // NARADA_SERVE_ENGINE_H
