//===- serve/Protocol.h - Daemon request/response codec ---------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon wire protocol: one framed record per request, one per
/// response, over a Unix-domain socket (support/Wire.h framing — the same
/// format the --isolate workers speak, so a captured exchange reads the
/// same way in both subsystems).
///
/// Requests carry a verb:
///   verb=ping      liveness check, answered with verb=pong.
///   verb=shutdown  stop accepting requests, answered before exiting.
///   verb=submit    a full module+seed bundle plus the command to run on
///                  it.  The *client* resolves corpus: inputs and reads
///                  files — the daemon never touches the filesystem for
///                  sources, so a submit is self-contained and replayable.
///
/// A submit reuses the shared codecs end to end: wire::addBundle for the
/// source + seed names (support/Bundle.h, same records the isolation
/// workers decode) and detectworker::encodeDetectOptions for the detect
/// knobs.  Everything else is one flat key per CliArgs field.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SERVE_PROTOCOL_H
#define NARADA_SERVE_PROTOCOL_H

#include "serve/Engine.h"
#include "support/Error.h"
#include "support/Wire.h"

#include <string>

namespace narada {
namespace serve {

/// A decoded submit request: the command arguments plus the already-loaded
/// module source the daemon should run them against.
struct SubmitRequest {
  CliArgs Args;
  std::string Source;
  bool WantReport = false; ///< Client passed --report; ship report bytes back.
};

/// Encodes a submit request.  \p Args.ReportPath presence becomes the
/// want_report bit (the path itself stays client-side); TracePath,
/// ReplayPath and Isolate.WorkerExe are intentionally not shipped — the
/// client rejects trace/replay submissions and the daemon resolves its own
/// worker executable.
void encodeSubmit(wire::RecordWriter &W, const CliArgs &Args,
                  const std::string &Source);

/// Decodes a submit request (inverse of encodeSubmit).  Defaults mirror
/// CliArgs so omitted keys decode to CLI behavior.
Result<SubmitRequest> decodeSubmit(const wire::RecordReader &In);

/// What the daemon sends back for one submit.
struct SubmitResponse {
  bool Ok = false;   ///< False: the request itself failed (see ErrorMessage).
  int Exit = 0;      ///< The command's process-style exit code.
  std::string Stdout; ///< Captured command stdout, byte for byte.
  std::string Stderr; ///< Captured command stderr, byte for byte.
  std::string Report; ///< --report JSON bytes (empty unless requested).
  std::string ErrorMessage; ///< Set when !Ok.
};

void encodeResponse(wire::RecordWriter &W, const SubmitResponse &R);
SubmitResponse decodeResponse(const wire::RecordReader &In);

} // namespace serve
} // namespace narada

#endif // NARADA_SERVE_PROTOCOL_H
