//===- serve/Caches.h - The daemon's persistent cache layer -----*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heart of `narada-cli serve` (docs/SERVING.md): content-addressed
/// caches that survive in memory across requests and, via serve/CacheFile,
/// on disk across restarts.  Four stores, all keyed by source digests so a
/// resubmitted bundle hits and an edited one invalidates exactly what its
/// edit reaches:
///
///  - summary store: per-method StaticSummary entries keyed by (symbol,
///    dependence-cone digest) — the staticrace::SummaryStore behind
///    summarizeModuleIncremental, so editing one method re-analyzes only
///    the methods whose cone contains it (persisted);
///  - derivation memo scopes: one DerivationMemo per source digest,
///    pre-warming Q-query results for identical resubmits (persisted);
///  - seed analysis: per-(source digest, seed name) AnalysisResult — a
///    hit skips executing that seed entirely (in-memory only);
///  - detection stage memo: whole detectRacesInTests result vectors keyed
///    by the engine's stage digest (FIFO-capped, persisted since cache
///    file version 2 so restarts keep replay-free detection warm).
///
/// Correctness rests on every cached value being exactly what the cold
/// computation would produce for the same keyed inputs; the serve tests
/// and the CI daemon-smoke job gate warm-equals-cold byte identity.
///
/// Counters (config-dependent, see tools/report-diff.py):
/// serve.cache.{summary,memo,analysis,detect}.{hits,misses},
/// serve.cache.{summary,memo}.invalidated, serve.cone_reanalyzed_methods.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SERVE_CACHES_H
#define NARADA_SERVE_CACHES_H

#include "serve/CacheFile.h"
#include "serve/Engine.h"
#include "synth/Narada.h"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace narada {
namespace serve {

/// All daemon caches plus the hook plumbing that threads them through the
/// engine.  Single-threaded by design: the daemon serves requests
/// sequentially (the parallelism lives inside a request's pipeline).
class ServeCaches {
public:
  /// \p CacheFilePath: where to persist summaries/memos ("" = in-memory
  /// only).  An existing file is loaded eagerly; corruption or a version
  /// mismatch logs a warning and starts cold (never an error).
  explicit ServeCaches(std::string CacheFilePath);

  ServeCaches(const ServeCaches &) = delete;
  ServeCaches &operator=(const ServeCaches &) = delete;

  /// Hook state for one request; must outlive the engine call it is
  /// passed to.  Hooks is wired to this ServeCaches instance.
  struct Request {
    EngineHooks Hooks;
    /// Built lazily when the engine calls PipelineFor (after --gen-seeds
    /// source replacement, so keys cover the true pipeline input).
    std::unique_ptr<PipelineCaches> Pipeline;
  };

  /// Builds the hook set for a request on \p InputName (file path or
  /// corpus id — the invalidation edge for renamed-content detection).
  std::unique_ptr<Request> beginRequest(const std::string &InputName);

  /// Persists the durable stores to the cache file; no-op (true) when no
  /// path was configured, false on write failure (daemon keeps serving).
  bool save() const;

  /// True when construction found and loaded a valid cache file.
  bool loadedFromDisk() const { return LoadedFromDisk; }

  // Introspection for tests and logs.
  size_t summaryCount() const { return State.Summaries.size(); }
  size_t memoScopeCount() const { return State.MemoScopes.size(); }
  size_t detectMemoCount() const { return State.DetectMemo.size(); }

private:
  /// staticrace::SummaryStore over State.Summaries, counting digest
  /// replacements as serve.cache.summary.invalidated.
  class SummaryStoreImpl;

  /// Records that \p InputName now resolves to \p Digest, dropping (and
  /// counting as invalidated) the previous digest's memo scope when the
  /// content changed under the same name.
  void touchInput(const std::string &InputName, uint64_t Digest);

  /// The memo scope for \p Digest, created on miss (with hit/miss
  /// accounting: a hit pre-warms lookup with every cached entry).
  DerivationMemo &memoScopeFor(uint64_t Digest);

  std::string CacheFilePath;
  bool LoadedFromDisk = false;
  CacheSnapshot State; ///< The durable stores, in persistable form.

  /// Seed-name -> analysis scopes keyed by source digest (volatile).
  std::map<uint64_t, std::map<std::string, AnalysisResult>> SeedAnalysis;

  /// FIFO cap on State.DetectMemo — result vectors for big corpora are
  /// large, and a bounded daemon must not grow without limit.
  static constexpr size_t MaxDetectEntries = 64;
};

} // namespace serve
} // namespace narada

#endif // NARADA_SERVE_CACHES_H
