//===- serve/Protocol.cpp - Daemon request/response codec ----------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "detect/DetectWorker.h"
#include "support/Bundle.h"

using namespace narada;
using namespace narada::serve;

void serve::encodeSubmit(wire::RecordWriter &W, const CliArgs &Args,
                         const std::string &Source) {
  W.add("verb", std::string_view("submit"));
  W.add("command", Args.Command);
  W.add("input", Args.Input); // Cosmetic: report metadata, not a path read.
  // Source + seed/test names ride the shared bundle record (key "seed" is
  // the bundle's name list, hence "rng_seed" for the numeric seed below).
  wire::addBundle(W, Source, Args.Names);
  if (!Args.FocusClass.empty())
    W.add("class", Args.FocusClass);
  W.add("rng_seed", Args.Seed);
  W.add("tests", static_cast<uint64_t>(Args.Tests));
  W.addBool("want_report", !Args.ReportPath.empty());
  W.addBool("stats", Args.Stats);
  W.add("jobs", static_cast<uint64_t>(Args.Jobs));
  W.add("policy", Args.PolicyName);
  W.addBool("static_prefilter", Args.StaticPrefilter);
  W.addBool("static_rank", Args.StaticRank);
  W.addBool("static_only", Args.StaticOnly);
  W.addBool("gen_seeds", Args.GenSeeds);
  W.add("gen_rounds", static_cast<uint64_t>(Args.GenRounds));
  W.add("gen_budget", static_cast<uint64_t>(Args.GenBudget));
  W.addBool("isolate", Args.Isolate.Enabled);
  W.addDouble("worker_deadline", Args.Isolate.UnitDeadlineSeconds);
  W.add("worker_cpu_limit", Args.Isolate.WorkerCpuLimitSeconds);
  W.add("worker_mem_limit", Args.Isolate.WorkerMemLimitMb);
  detectworker::encodeDetectOptions(W, Args.Detect);
}

Result<SubmitRequest> serve::decodeSubmit(const wire::RecordReader &In) {
  SubmitRequest Req;
  Result<wire::ModuleBundle> Bundle = wire::readBundle(In, "submit");
  if (!Bundle)
    return Bundle.error();
  Req.Source = std::move(Bundle->Source);
  Req.Args.Names = std::move(Bundle->Seeds);

  CliArgs &Args = Req.Args;
  Args.Command = In.getOr("command", "");
  if (Args.Command.empty())
    return Error("submit record has no command");
  Args.Input = In.getOr("input", "");
  Args.FocusClass = In.getOr("class", "");
  Args.Seed = In.getU64("rng_seed", 1);
  Args.Tests = static_cast<unsigned>(In.getU64("tests", 400));
  Req.WantReport = In.getBool("want_report", false);
  Args.Stats = In.getBool("stats", false);
  Args.Jobs = static_cast<unsigned>(In.getU64("jobs", 1));
  Args.PolicyName = In.getOr("policy", "random");
  Args.StaticPrefilter = In.getBool("static_prefilter", false);
  Args.StaticRank = In.getBool("static_rank", false);
  Args.StaticOnly = In.getBool("static_only", false);
  Args.GenSeeds = In.getBool("gen_seeds", false);
  Args.GenRounds = static_cast<unsigned>(In.getU64("gen_rounds", 2));
  Args.GenBudget = static_cast<unsigned>(In.getU64("gen_budget", 16));
  Args.Isolate.Enabled = In.getBool("isolate", false);
  Args.Isolate.UnitDeadlineSeconds =
      In.getDouble("worker_deadline", Args.Isolate.UnitDeadlineSeconds);
  Args.Isolate.WorkerCpuLimitSeconds = In.getU64("worker_cpu_limit", 0);
  Args.Isolate.WorkerMemLimitMb = In.getU64("worker_mem_limit", 0);
  Result<DetectOptions> Detect = detectworker::decodeDetectOptions(In);
  if (!Detect)
    return Detect.error();
  Args.Detect = Detect.take();
  return Req;
}

void serve::encodeResponse(wire::RecordWriter &W, const SubmitResponse &R) {
  W.add("verb", std::string_view("result"));
  W.addBool("ok", R.Ok);
  W.add("exit", static_cast<int64_t>(R.Exit));
  W.add("stdout", R.Stdout);
  W.add("stderr", R.Stderr);
  if (!R.Report.empty())
    W.add("report", R.Report);
  if (!R.ErrorMessage.empty())
    W.add("error", R.ErrorMessage);
}

SubmitResponse serve::decodeResponse(const wire::RecordReader &In) {
  SubmitResponse R;
  R.Ok = In.getBool("ok", false);
  R.Exit = static_cast<int>(In.getI64("exit", 1));
  R.Stdout = In.getOr("stdout", "");
  R.Stderr = In.getOr("stderr", "");
  R.Report = In.getOr("report", "");
  R.ErrorMessage = In.getOr("error", "");
  return R;
}
