//===- serve/Engine.cpp - Command engine shared by CLI and daemon --------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
// Moved essentially verbatim from tools/narada-cli.cpp so the daemon can
// execute the same commands in-process; behavior changes are limited to
// the EngineHooks cache seams (inert when no hooks are installed).
//
//===----------------------------------------------------------------------===//

#include "serve/Engine.h"

#include "analysis/AnalysisPrinter.h"
#include "contege/Contege.h"
#include "corpus/Corpus.h"
#include "detect/DetectWorker.h"
#include "detect/LockOrderDetector.h"
#include "explore/ScheduleTrace.h"
#include "gen/GenEngine.h"
#include "obs/RunReport.h"
#include "obs/Span.h"
#include "runtime/Execution.h"
#include "runtime/Scheduler.h"
#include "staticrace/LocksetAnalysis.h"
#include "staticrace/PairClassifier.h"
#include "support/Digest.h"
#include "support/Env.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Wire.h"
#include "synth/Narada.h"
#include "synth/PairGenerator.h"
#include "trace/Trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace narada;
using namespace narada::serve;

namespace {

/// Races collected by cmdDetect() for the run report.  emitObservability()
/// runs after the command returns, so the detect command stashes its
/// deduplicated race set here instead of threading a RunMeta through every
/// cmd* signature.  DetectionRan distinguishes "detect ran and found
/// nothing" (empty races array in the report) from commands that never
/// detect (no races member at all).  One RunState per engine invocation —
/// the daemon reuses the process for many requests, so this must not be a
/// global.
struct RunState {
  std::vector<obs::RaceEntry> CollectedRaces;
  bool DetectionRan = false;
  /// Hex digest of the final (post-generation) module source the detect
  /// stage ran against; recorded as the "source_digest" report option so
  /// the race database can tie provenance to a module version.
  std::string SourceDigest;
};

/// Parses a strictly positive count the way parseJobs() parses worker
/// counts: digits-only base-10, and additionally rejects 0 — callers keep
/// their default (with a warning) instead of degrading to "never try".
bool parsePositiveCount(const char *Text, unsigned &Out) {
  unsigned Value = 0;
  if (!parseJobs(Text, Value) || Value == 0)
    return false;
  Out = Value;
  return true;
}

int cmdRun(CliArgs &Args, const std::string &Source) {
  if (Args.Names.empty()) {
    std::fprintf(stderr, "run: missing test name\n");
    return 2;
  }
  Result<CompiledProgram> P = compileProgram(Source);
  if (!P) {
    std::fprintf(stderr, "error: %s\n", P.error().str().c_str());
    return 1;
  }
  std::unique_ptr<SchedulingPolicy> Policy =
      makePolicy(Args.PolicyName, Args.Seed);
  if (!Policy) { // parseArgs validated; defensive for programmatic use.
    std::fprintf(stderr, "run: unknown policy '%s'\n",
                 Args.PolicyName.c_str());
    return 2;
  }
  Result<TestRun> Run = runTest(*P->Module, Args.Names[0], *Policy);
  if (!Run) {
    std::fprintf(stderr, "error: %s\n", Run.error().str().c_str());
    return 1;
  }
  std::printf("test %s: %llu steps, heap hash %016llx\n",
              Args.Names[0].c_str(),
              static_cast<unsigned long long>(Run->Result.Steps),
              static_cast<unsigned long long>(Run->HeapHash));
  if (Run->Result.Deadlocked)
    std::printf("  DEADLOCK\n");
  for (const std::string &Message : Run->Result.FaultMessages)
    std::printf("  FAULT: %s\n", Message.c_str());
  return Run->Result.Faulted || Run->Result.Deadlocked ? 1 : 0;
}

int cmdTrace(CliArgs &Args, const std::string &Source) {
  if (Args.Names.empty()) {
    std::fprintf(stderr, "trace: missing test name\n");
    return 2;
  }
  Result<CompiledProgram> P = compileProgram(Source);
  if (!P) {
    std::fprintf(stderr, "error: %s\n", P.error().str().c_str());
    return 1;
  }
  Result<TestRun> Run = runTestSequential(*P->Module, Args.Names[0]);
  if (!Run) {
    std::fprintf(stderr, "error: %s\n", Run.error().str().c_str());
    return 1;
  }
  std::fputs(printTrace(Run->TheTrace).c_str(), stdout);
  return 0;
}

/// Builds the NaradaOptions shared by analyze/synthesize/detect, wiring
/// the daemon's pipeline caches through when hooks are installed.
NaradaOptions pipelineOptions(const CliArgs &Args, const std::string &Source,
                              const EngineHooks *Hooks) {
  NaradaOptions Options;
  Options.FocusClass = Args.FocusClass;
  Options.Jobs = Args.Jobs;
  Options.StaticPrefilter = Args.StaticPrefilter;
  Options.StaticRank = Args.StaticRank;
  Options.Isolate = Args.Isolate;
  if (Hooks && Hooks->PipelineFor)
    Options.Caches = Hooks->PipelineFor(Source);
  return Options;
}

int cmdAnalyze(CliArgs &Args, const std::string &Source,
               const EngineHooks *Hooks) {
  NaradaOptions Options = pipelineOptions(Args, Source, Hooks);
  Result<NaradaResult> R = runNarada(Source, Args.Names, Options);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.error().str().c_str());
    return 1;
  }
  std::fputs(printAnalysis(R->Analysis, /*UnprotectedOnly=*/true).c_str(),
             stdout);
  std::printf("\n== racy pairs (%zu) ==\n", R->Pairs.size());
  for (const RacyPair &Pair : R->Pairs) {
    std::string Line = Pair.str();
    if (Pair.Classified)
      Line += std::string(" [static: ") +
              (Pair.CertifiedMustRace
                   ? "MustRace"
                   : staticrace::verdictName(Pair.Verdict)) +
              "]";
    std::printf("  %s\n", Line.c_str());
  }
  return 0;
}

/// --static-only: classify candidate pairs without running a single seed
/// test.  Only the frontend runs — no traces, no synthesis — so it works
/// on modules that have no seed tests at all and its output depends only
/// on the source text (deterministic by construction).
int cmdStaticTriage(CliArgs &Args, const std::string &Source) {
  Result<CompiledProgram> P = compileProgram(Source);
  if (!P) {
    std::fprintf(stderr, "error: %s\n", P.error().str().c_str());
    return 1;
  }
  double Seconds = 0.0;
  staticrace::ModuleSummary Summary;
  {
    obs::Span StaticSpan("staticrace", &Seconds);
    Summary = staticrace::summarizeModule(*P->Module);
  }
  std::fputs(
      staticrace::renderStaticTriage(Summary, Args.FocusClass).c_str(),
      stdout);
  return 0;
}

int cmdSynthesize(CliArgs &Args, const std::string &Source,
                  const EngineHooks *Hooks) {
  NaradaOptions Options = pipelineOptions(Args, Source, Hooks);
  Result<NaradaResult> R = runNarada(Source, Args.Names, Options);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.error().str().c_str());
    return 1;
  }
  std::printf("// %zu racy pairs -> %zu synthesized tests "
              "(analysis %.3fs, synthesis %.3fs)\n\n",
              R->Pairs.size(), R->Tests.size(),
              R->Stages.AnalysisSeconds + R->Stages.PairGenSeconds,
              R->Stages.SynthesisSeconds);
  for (const SynthesizedTestInfo &T : R->Tests) {
    std::printf("// covers %zu pair(s); shares %s; context %s\n%s\n",
                T.CoveredPairKeys.size(), T.SharedClassName.c_str(),
                T.ContextComplete ? "complete" : "partial",
                T.SourceText.c_str());
  }
  return 0;
}

/// Digest identifying one detection stage: final source, every detect
/// option that shapes exploration, and the job list (test names + hint
/// pairs).  --jobs is deliberately not keyed — detection output is
/// byte-identical for every worker count, so a memoized result serves all
/// of them.
uint64_t detectStageKey(const std::string &FinalSource,
                        const DetectOptions &Options,
                        const std::vector<TestDetectJob> &Jobs) {
  wire::RecordWriter Opt;
  detectworker::encodeDetectOptions(Opt, Options);
  uint64_t H = digest::of(FinalSource);
  H = digest::update(H, Opt.str());
  for (const TestDetectJob &J : Jobs) {
    H = digest::update(H, J.TestName);
    for (const auto &[First, Second] : J.Hints) {
      H = digest::update(H, First);
      H = digest::update(H, Second);
    }
  }
  return H;
}

int cmdDetect(CliArgs &Args, const std::string &Source,
              const EngineHooks *Hooks, RunState &State) {
  // Replay: load the witness trace up front so detection can be narrowed
  // to the test it was recorded for.
  if (!Args.ReplayPath.empty()) {
    Result<explore::ScheduleTrace> Trace =
        explore::ScheduleTrace::readFile(Args.ReplayPath);
    if (!Trace) {
      std::fprintf(stderr, "error: %s\n", Trace.error().str().c_str());
      return 1;
    }
    Args.Detect.ReplayTrace =
        std::make_shared<const explore::ScheduleTrace>(Trace.take());
  }
  if (Args.Detect.Mode == ExplorationMode::Replay &&
      !Args.Detect.ReplayTrace) {
    std::fprintf(stderr,
                 "detect: --explore replay requires --replay <trace>\n");
    return 2;
  }
  if (!Args.Detect.WitnessDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Args.Detect.WitnessDir, EC);
    if (EC) {
      std::fprintf(stderr, "error: cannot create witness directory '%s': %s\n",
                   Args.Detect.WitnessDir.c_str(), EC.message().c_str());
      return 1;
    }
  }

  NaradaOptions Options = pipelineOptions(Args, Source, Hooks);
  Result<NaradaResult> R = runNarada(Source, Args.Names, Options);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.error().str().c_str());
    return 1;
  }

  // Schedule explorations for different tests are independent; fan them
  // out across the worker pool.  Results come back in test order, so the
  // printed summary is identical for every --jobs value.
  std::vector<TestDetectJob> Jobs;
  for (const SynthesizedTestInfo &T : R->Tests) {
    if (Args.Detect.ReplayTrace &&
        T.Name != Args.Detect.ReplayTrace->TestName)
      continue;
    Jobs.push_back({T.Name, T.CandidateLabels});
  }
  if (Args.Detect.ReplayTrace && Jobs.empty()) {
    std::fprintf(stderr,
                 "error: trace test '%s' was not synthesized in this run\n",
                 Args.Detect.ReplayTrace->TestName.c_str());
    return 1;
  }

  // Whole-stage memo: a detection stage is a pure function of (final
  // source, options, job list), so the daemon can replay its result
  // vector instead of re-exploring schedules.  Side-effecting (witness
  // emission) and externally-keyed (replay) runs bypass it, as does armed
  // fault injection — a fault must hit the real computation.
  const bool CanMemoDetect = Hooks && Hooks->LookupDetect &&
                             Hooks->StoreDetect &&
                             Args.Detect.WitnessDir.empty() &&
                             !Args.Detect.ReplayTrace && !fault::armed();
  uint64_t StageKey = 0;
  std::vector<TestDetectionResult> Results;
  bool Memoized = false;
  if (CanMemoDetect) {
    StageKey = detectStageKey(R->FinalSource, Args.Detect, Jobs);
    if (const std::vector<TestDetectionResult> *Hit =
            Hooks->LookupDetect(StageKey)) {
      Results = *Hit;
      Memoized = true;
    }
  }
  if (!Memoized) {
    detectworker::DetectIsolateContext DetectIso;
    DetectIso.Isolate = Args.Isolate;
    DetectIso.FinalSource = R->FinalSource;
    DetectIso.ReplayPath = Args.ReplayPath;
    Result<std::vector<TestDetectionResult>> Fresh =
        detectRacesInTests(*R->Program.Module, Jobs, Args.Detect, Args.Jobs,
                           Args.Isolate.Enabled ? &DetectIso : nullptr);
    if (!Fresh) {
      std::fprintf(stderr, "error: %s\n", Fresh.error().str().c_str());
      return 1;
    }
    Results = Fresh.take();
    if (CanMemoDetect)
      Hooks->StoreDetect(StageKey, Results); // Pre-annotation: canonical.
  }
  State.DetectionRan = true;
  State.SourceDigest = digest::hex(digest::of(R->FinalSource));

  // Annotate every report with the static verdict of its label pair (the
  // map is empty when no static pass ran, leaving verdicts blank).
  const std::map<std::string, std::string> Verdicts =
      staticVerdictsByRaceKey(R->Pairs);
  for (TestDetectionResult &D : Results) {
    for (RaceReport &Rep : D.Detected) {
      auto V = Verdicts.find(Rep.key());
      if (V != Verdicts.end())
        Rep.StaticVerdict = V->second;
    }
    for (ConfirmedRace &C : D.Races) {
      auto V = Verdicts.find(C.Report.key());
      if (V != Verdicts.end())
        C.Report.StaticVerdict = V->second;
    }
  }

  unsigned Detected = 0, Reproduced = 0, Harmful = 0, Benign = 0;
  unsigned Quarantined = 0, Witnesses = 0;
  unsigned long long Schedules = 0, Pruned = 0;
  std::map<std::string, obs::RaceEntry> RaceLog;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    const std::string &TestName = Jobs[I].TestName;
    const TestDetectionResult &D = Results[I];
    Schedules += D.SchedulesRun;
    Pruned += D.SchedulesPruned;
    Witnesses += static_cast<unsigned>(D.WitnessFiles.size());
    if (D.Quarantined) {
      // Contained failure: the test is reported, not trusted — and the
      // rest of the batch ran to completion regardless.
      std::printf("%s: QUARANTINED: %s\n", TestName.c_str(),
                  D.QuarantineReason.c_str());
      ++Quarantined;
    }
    if (D.Detected.empty() && D.reproducedCount() == 0)
      continue;
    std::printf("%s:\n", TestName.c_str());
    if (Args.Detect.ReplayTrace) {
      // A replayed schedule's value is what it detected, reproduced or
      // not — print the phase-1 reports so witness round trips can be
      // compared byte for byte.
      for (const RaceReport &Rep : D.Detected)
        std::printf("  replayed: %s\n", Rep.str().c_str());
    }
    // Witness files are emitted one per unique detected key, in sorted
    // key order (detect/Detection.cpp), so index i of WitnessFiles names
    // the witness of the i-th sorted key.
    std::map<std::string, std::string> WitnessByKey;
    if (!D.WitnessFiles.empty()) {
      std::set<std::string> Keys;
      for (const RaceReport &Rep : D.Detected)
        Keys.insert(Rep.key());
      if (Keys.size() == D.WitnessFiles.size()) {
        size_t Index = 0;
        for (const std::string &Key : Keys)
          WitnessByKey[Key] = D.WitnessFiles[Index++];
      }
    }
    // Detector attribution comes from the phase-1 reports: the same key
    // may be found by both detectors while only one confirmation runs.
    std::map<std::string, std::vector<std::string>> DetectorsByKey;
    for (const RaceReport &Rep : D.Detected)
      DetectorsByKey[Rep.key()].push_back(Rep.Detector);
    for (const ConfirmedRace &C : D.Races) {
      obs::RaceEntry &Entry = RaceLog[C.Report.key()];
      Entry.Key = C.Report.key();
      if (Entry.StaticVerdict.empty())
        Entry.StaticVerdict = C.Report.StaticVerdict;
      Entry.Reproduced = Entry.Reproduced || C.Reproduced;
      Entry.Harmful = Entry.Harmful || C.Harmful;
      Entry.WriteWrite = Entry.WriteWrite ||
                         (C.Report.FirstIsWrite && C.Report.SecondIsWrite);
      if (!C.Report.Detector.empty())
        Entry.Detectors.push_back(C.Report.Detector);
      if (auto Found = DetectorsByKey.find(Entry.Key);
          Found != DetectorsByKey.end())
        Entry.Detectors.insert(Entry.Detectors.end(), Found->second.begin(),
                               Found->second.end());
      if (Entry.Witness.empty())
        if (auto W = WitnessByKey.find(Entry.Key); W != WitnessByKey.end())
          Entry.Witness = W->second;
      if (!C.Reproduced)
        continue;
      std::string Suffix = C.Report.StaticVerdict.empty()
                               ? std::string()
                               : " [static: " + C.Report.StaticVerdict + "]";
      std::printf("  %s [%s]%s\n", C.Report.str().c_str(),
                  C.Harmful ? "HARMFUL" : "benign", Suffix.c_str());
    }
    for (const std::string &W : D.WitnessFiles)
      std::printf("  witness: %s\n", W.c_str());
    Detected += static_cast<unsigned>(D.Detected.size());
    Reproduced += D.reproducedCount();
    Harmful += D.harmfulCount();
    Benign += D.benignCount();

    // Also surface potential deadlocks (lock-order inversions).  Runs
    // live even when the detection stage was memoized: it is cheap,
    // deterministic, and keeps the printed output identical either way.
    LockOrderDetector LockOrder;
    RandomPolicy Policy(1);
    (void)runTest(*R->Program.Module, TestName, Policy, 1, &LockOrder);
    for (const LockOrderCycle &Cycle : LockOrder.cycles())
      std::printf("  %s\n", Cycle.str().c_str());
  }
  for (const auto &[Key, Entry] : RaceLog)
    State.CollectedRaces.push_back(Entry);
  std::printf("\ntotal over %zu tests: %u detected, %u reproduced, "
              "%u harmful, %u benign",
              Jobs.size(), Detected, Reproduced, Harmful, Benign);
  if (Quarantined)
    std::printf(", %u quarantined", Quarantined);
  std::printf("\n%llu schedules explored (%llu pruned)\n", Schedules,
              Pruned);
  if (Witnesses)
    std::printf("%u witness trace(s) written\n", Witnesses);
  return 0;
}

int cmdContege(CliArgs &Args, const std::string &Source) {
  if (Args.FocusClass.empty()) {
    std::fprintf(stderr, "contege: --class is required\n");
    return 2;
  }
  ContegeOptions Options;
  Options.MaxTests = Args.Tests;
  Options.Seed = Args.Seed;
  Result<ContegeResult> R = runContege(Source, Args.FocusClass, Options);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.error().str().c_str());
    return 1;
  }
  std::printf("generated %u tests in %.2fs: %u thread-safety violations, "
              "%u silently racy tests\n",
              R->TestsGenerated, R->Seconds, R->ViolationsFound,
              R->SilentRacyTests);
  if (!R->ViolatingTests.empty())
    std::printf("\nfirst violating test:\n%s\n",
                R->ViolatingTests[0].c_str());
  return 0;
}

/// Emits the run report and/or stderr stats summary after a command ran.
void emitObservability(const CliArgs &Args, const RunState &State) {
  if (Args.ReportPath.empty() && !Args.Stats)
    return;
  obs::RunMeta Meta;
  Meta.Tool = "narada-cli";
  Meta.Command = Args.Command;
  Meta.Input = Args.Input;
  if (startsWith(Args.Input, "corpus:"))
    Meta.CorpusId = Args.Input.substr(7);
  Meta.FocusClass = Args.FocusClass;
  Meta.Seed = Args.Seed;
  Meta.addOption("jobs", std::to_string(Args.Jobs));
  if (Args.Isolate.Enabled) {
    Meta.addOption("isolate", "1");
    Meta.addOption("worker_deadline",
                   std::to_string(Args.Isolate.UnitDeadlineSeconds));
    if (Args.Isolate.WorkerCpuLimitSeconds)
      Meta.addOption("worker_cpu_limit",
                     std::to_string(Args.Isolate.WorkerCpuLimitSeconds));
    if (Args.Isolate.WorkerMemLimitMb)
      Meta.addOption("worker_mem_limit",
                     std::to_string(Args.Isolate.WorkerMemLimitMb));
  }
  if (Args.StaticPrefilter)
    Meta.addOption("static_prefilter", "1");
  if (Args.StaticRank)
    Meta.addOption("static_rank", "1");
  if (Args.StaticOnly)
    Meta.addOption("static_only", "1");
  if (Args.GenSeeds) {
    Meta.addOption("gen_seeds", "1");
    Meta.addOption("gen_rounds", std::to_string(Args.GenRounds));
    Meta.addOption("gen_budget", std::to_string(Args.GenBudget));
  }
  if (Args.Command == "contege")
    Meta.addOption("tests", std::to_string(Args.Tests));
  if (Args.Command == "run")
    Meta.addOption("policy", Args.PolicyName);
  if (Args.Command == "detect") {
    Meta.addOption("max_steps", std::to_string(Args.Detect.MaxSteps));
    Meta.addOption("step_retries",
                   std::to_string(Args.Detect.StepLimitRetries));
    if (Args.Detect.WallBudgetSeconds > 0.0)
      Meta.addOption("wall_budget_seconds",
                     std::to_string(Args.Detect.WallBudgetSeconds));
    Meta.addOption("explore", explorationModeName(Args.Detect.Mode));
    Meta.addOption("confirm_attempts",
                   std::to_string(Args.Detect.ConfirmAttempts));
    if (Args.Detect.Mode == ExplorationMode::Systematic)
      Meta.addOption("max_schedules",
                     std::to_string(Args.Detect.Explore.MaxSchedules));
    if (!Args.ReplayPath.empty())
      Meta.addOption("replay", Args.ReplayPath);
    if (!Args.Detect.WitnessDir.empty())
      Meta.addOption("witness_dir", Args.Detect.WitnessDir);
  }
  if (!State.SourceDigest.empty())
    Meta.addOption("source_digest", State.SourceDigest);
  if (State.DetectionRan)
    Meta.RecordRaces = true;
  for (const obs::RaceEntry &Entry : State.CollectedRaces)
    Meta.addRace(Entry);
  if (!Args.ReportPath.empty())
    obs::writeRunReport(Args.ReportPath, Meta);
  if (Args.Stats)
    obs::printRunStats(stderr, obs::MetricsRegistry::global().snapshot());
}

int runCommandImpl(CliArgs &Args, std::string Source,
                   const EngineHooks *Hooks, RunState &State) {
  if (Args.StaticOnly) {
    if (Args.Command == "analyze" || Args.Command == "synthesize" ||
        Args.Command == "detect")
      return cmdStaticTriage(Args, Source);
    std::fprintf(stderr,
                 "--static-only applies to analyze/synthesize/detect\n");
    return 2;
  }
  if (Args.GenSeeds) {
    if (Args.Command != "analyze" && Args.Command != "synthesize" &&
        Args.Command != "detect") {
      std::fprintf(stderr,
                   "--gen-seeds applies to analyze/synthesize/detect\n");
      return 2;
    }
    gen::GenOptions Options;
    Options.FocusClass = Args.FocusClass;
    Options.Seed = Args.Seed;
    Options.Rounds = Args.GenRounds;
    Options.Budget = Args.GenBudget;
    Options.Jobs = Args.Jobs;
    Result<gen::GenResult> Gen = gen::generateSeedCorpus(Source, Options);
    if (!Gen) {
      std::fprintf(stderr, "error: %s\n", Gen.error().str().c_str());
      return 1;
    }
    std::printf("// gen: %zu seeds kept, %zu candidate pairs covered, "
                "%u/%u static targets reached, %zu quarantined\n",
                Gen->Seeds.size(), Gen->PairKeys.size(),
                Gen->StaticTargetsCovered, Gen->StaticTargets,
                Gen->Quarantined.size());
    for (const gen::GenQuarantine &Q : Gen->Quarantined)
      std::fprintf(stderr, "gen: candidate %u quarantined at %s: %s\n",
                   Q.Candidate, Q.Stage.c_str(), Q.Message.c_str());
    // The generated corpus replaces both the source (hand tests are
    // stripped) and the seed list for the downstream command, so every
    // cache hook below keys on the generated source.
    Source = Gen->CorpusSource;
    Args.Names = Gen->SeedNames;
  }
  if (Args.Command == "run")
    return cmdRun(Args, Source);
  if (Args.Command == "trace")
    return cmdTrace(Args, Source);
  if (Args.Command == "analyze")
    return cmdAnalyze(Args, Source, Hooks);
  if (Args.Command == "synthesize")
    return cmdSynthesize(Args, Source, Hooks);
  if (Args.Command == "detect")
    return cmdDetect(Args, Source, Hooks, State);
  if (Args.Command == "contege")
    return cmdContege(Args, Source);
  return usage();
}

} // namespace

int serve::usage() {
  std::fprintf(
      stderr,
      "usage: narada-cli <command> [args]\n"
      "  run <file.mj|corpus:Cx> <test> [--seed N] [--policy P]\n"
      "  trace <file.mj|corpus:Cx> <test>\n"
      "  analyze <file.mj|corpus:Cx> [seed-test]... [--class C]\n"
      "  synthesize <file.mj|corpus:Cx> [seed-test]... [--class C]\n"
      "  detect <file.mj|corpus:Cx> [seed-test]... [--class C]\n"
      "  contege <file.mj|corpus:Cx> --class C [--tests N] [--seed N]\n"
      "  corpus\n"
      "  serve --socket <path> [--cache <file>] [--racedb <file>]\n"
      "                        persistent daemon; see docs/SERVING.md\n"
      "  submit --socket <path> <command> [args]\n"
      "                        run a command on a daemon (also --ping,\n"
      "                        --shutdown)\n"
      "  triage ingest --db <file> [--jobs N] <report.json>...\n"
      "  triage query --db <file> [--state S] [--input I]\n"
      "  triage diff <old.db> <new.db>\n"
      "  triage gate --baseline <db> [--jobs N] <report.json>...\n"
      "                        durable race database; see docs/TRIAGE.md\n"
      "  worker                (internal: --isolate subprocess entrypoint)\n"
      "global flags:\n"
      "  --jobs N              worker threads for synthesis/detection\n"
      "                        (0 = all hardware threads; default\n"
      "                        $NARADA_JOBS or 1; output is identical\n"
      "                        for every N)\n"
      "  --report <file.json>  write a structured run report\n"
      "  --trace <file.json>   write a Chrome trace-event timeline\n"
      "                        (open in Perfetto / chrome://tracing)\n"
      "  --stats               print a metrics summary to stderr\n"
      "static pre-analysis flags (see docs/STATIC.md):\n"
      "  --static-prefilter    prune candidate pairs proven MustGuarded\n"
      "                        (conservative; confirmed races unchanged)\n"
      "  --static-rank         synthesize most-racy candidates first\n"
      "  --static-only         classify pairs purely statically and print\n"
      "                        the triage listing (no seed tests needed)\n"
      "seed generation flags (see docs/GENERATION.md):\n"
      "  --gen-seeds           generate the seed suite instead of using\n"
      "                        hand-written seeds (strips existing tests;\n"
      "                        applies to analyze/synthesize/detect)\n"
      "  --gen-rounds N        generation rounds (default 2)\n"
      "  --gen-budget N        candidate tests per round (default 16)\n"
      "scheduling flags (see docs/EXPLORATION.md):\n"
      "  --policy P            scheduler for `run` (default random):\n"
      "                        %s\n"
      "  --explore MODE        detect phase-1 schedules: random, pct,\n"
      "                        systematic, replay (default random)\n"
      "  --max-schedules N     systematic schedule budget (default 256)\n"
      "  --replay <trace>      re-run a recorded witness trace\n"
      "                        (implies --explore replay)\n"
      "  --emit-witness <dir>  write a minimized replayable trace per\n"
      "                        phase-1 race into <dir>\n"
      "  --confirm-attempts N  scheduler seeds per confirmation\n"
      "                        (default 4, never 0)\n"
      "detect watchdog flags (see docs/ROBUSTNESS.md):\n"
      "  --max-steps N         per-run step budget (default 400000)\n"
      "  --step-retries N      escalated-budget retries for step-limit\n"
      "                        hits before quarantining (default 2)\n"
      "  --wall-budget SECS    per-test wall-clock budget (default: off)\n"
      "process isolation flags (see docs/ROBUSTNESS.md):\n"
      "  --isolate             run synthesis/detection units in crash-\n"
      "                        isolated worker subprocesses (default\n"
      "                        $NARADA_ISOLATE or off; clean-run output\n"
      "                        is byte-identical to in-process mode)\n"
      "  --worker-deadline S   per-unit wall deadline in seconds\n"
      "                        (default 60; 0 disables)\n"
      "  --worker-cpu-limit S  RLIMIT_CPU per worker in seconds\n"
      "                        (default 0 = inherit)\n"
      "  --worker-mem-limit M  RLIMIT_AS per worker in MiB\n"
      "                        (default 0 = inherit)\n"
      "  (see docs/OBSERVABILITY.md; NARADA_LOG=debug|info|warn for "
      "diagnostics; NARADA_FAULT_INJECT=<site>:<unit>"
      "[:throw|:timeout|:crash|:segv|:hang|:oom] "
      "injects a deterministic fault — hard modes need --isolate)\n",
      knownPolicyNames());
  return 2;
}

std::optional<CliArgs> serve::parseArgs(int Argc, char **Argv) {
  if (Argc < 2)
    return std::nullopt;
  CliArgs Args;
  Args.Command = Argv[1];
  Args.Jobs = env::jobs(Args.Jobs);
  Args.Isolate.Enabled = env::isolate(Args.Isolate.Enabled);
  Args.Isolate.WorkerExe = pool::currentExecutablePath(Argv[0]);
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--class" && I + 1 < Argc) {
      Args.FocusClass = Argv[++I];
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Args.Seed = std::stoull(Argv[++I]);
    } else if (Arg == "--tests" && I + 1 < Argc) {
      Args.Tests = static_cast<unsigned>(std::stoul(Argv[++I]));
    } else if (Arg == "--jobs" && I + 1 < Argc) {
      Args.Jobs = static_cast<unsigned>(std::stoul(Argv[++I]));
    } else if (Arg == "--report" && I + 1 < Argc) {
      Args.ReportPath = Argv[++I];
    } else if (Arg == "--trace" && I + 1 < Argc) {
      Args.TracePath = Argv[++I];
    } else if (Arg == "--max-steps" && I + 1 < Argc) {
      Args.Detect.MaxSteps = std::stoull(Argv[++I]);
    } else if (Arg == "--step-retries" && I + 1 < Argc) {
      Args.Detect.StepLimitRetries =
          static_cast<unsigned>(std::stoul(Argv[++I]));
    } else if (Arg == "--wall-budget" && I + 1 < Argc) {
      Args.Detect.WallBudgetSeconds = std::stod(Argv[++I]);
    } else if (Arg == "--policy" && I + 1 < Argc) {
      Args.PolicyName = Argv[++I];
      if (!makePolicy(Args.PolicyName, /*Seed=*/1)) {
        std::fprintf(stderr, "error: unknown policy '%s' (known: %s)\n",
                     Args.PolicyName.c_str(), knownPolicyNames());
        return std::nullopt;
      }
    } else if (Arg == "--explore" && I + 1 < Argc) {
      std::string Mode = Argv[++I];
      if (!parseExplorationMode(Mode, Args.Detect.Mode)) {
        std::fprintf(stderr,
                     "error: unknown exploration mode '%s' (known: "
                     "random, pct, systematic, replay)\n",
                     Mode.c_str());
        return std::nullopt;
      }
    } else if (Arg == "--max-schedules" && I + 1 < Argc) {
      const char *Value = Argv[++I];
      if (!parsePositiveCount(Value, Args.Detect.Explore.MaxSchedules))
        std::fprintf(stderr,
                     "warning: ignoring invalid --max-schedules '%s' "
                     "(keeping %u)\n",
                     Value, Args.Detect.Explore.MaxSchedules);
    } else if (Arg == "--confirm-attempts" && I + 1 < Argc) {
      const char *Value = Argv[++I];
      if (!parsePositiveCount(Value, Args.Detect.ConfirmAttempts))
        std::fprintf(stderr,
                     "warning: ignoring invalid --confirm-attempts '%s' "
                     "(keeping %u)\n",
                     Value, Args.Detect.ConfirmAttempts);
    } else if (Arg == "--replay" && I + 1 < Argc) {
      Args.ReplayPath = Argv[++I];
      Args.Detect.Mode = ExplorationMode::Replay;
    } else if (Arg == "--emit-witness" && I + 1 < Argc) {
      Args.Detect.WitnessDir = Argv[++I];
    } else if (Arg == "--static-prefilter") {
      Args.StaticPrefilter = true;
    } else if (Arg == "--static-rank") {
      Args.StaticRank = true;
    } else if (Arg == "--static-only") {
      Args.StaticOnly = true;
    } else if (Arg == "--gen-seeds") {
      Args.GenSeeds = true;
    } else if (Arg == "--gen-rounds" && I + 1 < Argc) {
      const char *Value = Argv[++I];
      if (!parsePositiveCount(Value, Args.GenRounds))
        std::fprintf(stderr,
                     "warning: ignoring invalid --gen-rounds '%s' "
                     "(keeping %u)\n",
                     Value, Args.GenRounds);
    } else if (Arg == "--gen-budget" && I + 1 < Argc) {
      const char *Value = Argv[++I];
      if (!parsePositiveCount(Value, Args.GenBudget))
        std::fprintf(stderr,
                     "warning: ignoring invalid --gen-budget '%s' "
                     "(keeping %u)\n",
                     Value, Args.GenBudget);
    } else if (Arg == "--isolate") {
      Args.Isolate.Enabled = true;
    } else if (Arg == "--worker-deadline" && I + 1 < Argc) {
      Args.Isolate.UnitDeadlineSeconds = std::stod(Argv[++I]);
    } else if (Arg == "--worker-cpu-limit" && I + 1 < Argc) {
      Args.Isolate.WorkerCpuLimitSeconds = std::stoull(Argv[++I]);
    } else if (Arg == "--worker-mem-limit" && I + 1 < Argc) {
      Args.Isolate.WorkerMemLimitMb = std::stoull(Argv[++I]);
    } else if (Arg == "--stats") {
      Args.Stats = true;
    } else if (Arg.rfind("--", 0) == 0) {
      // A flag we did not consume above: either unknown or missing its value.
      std::fprintf(stderr, "error: unknown or incomplete option '%s'\n",
                   Arg.c_str());
      return std::nullopt;
    } else if (Args.Input.empty()) {
      Args.Input = Arg;
    } else {
      Args.Names.push_back(Arg);
    }
  }
  return Args;
}

Result<std::string> serve::loadSource(CliArgs &Args) {
  if (startsWith(Args.Input, "corpus:")) {
    const CorpusEntry *Entry = findCorpusEntry(Args.Input.substr(7));
    if (!Entry)
      return Error("unknown corpus entry '" + Args.Input + "'");
    if (Args.Names.empty())
      Args.Names = Entry->SeedNames;
    if (Args.FocusClass.empty())
      Args.FocusClass = Entry->ClassName;
    return Entry->Source;
  }
  std::ifstream In(Args.Input);
  if (!In)
    return Error("cannot open '" + Args.Input + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

int serve::cmdCorpus() {
  for (const CorpusEntry &Entry : corpus())
    std::printf("%s  %-10s %-8s %-30s %u LoC\n", Entry.Id.c_str(),
                Entry.Benchmark.c_str(), Entry.Version.c_str(),
                Entry.ClassName.c_str(), Entry.linesOfCode());
  return 0;
}

int serve::runCommand(CliArgs &Args, std::string Source,
                      const EngineHooks *Hooks) {
  RunState State;
  return runCommandImpl(Args, std::move(Source), Hooks, State);
}

int serve::runCommandAndReport(CliArgs &Args, std::string Source,
                               const EngineHooks *Hooks) {
  RunState State;
  int Rc = runCommandImpl(Args, std::move(Source), Hooks, State);
  if (Rc != 2) // Not a usage error: the pipeline actually ran.
    emitObservability(Args, State);
  return Rc;
}
