//===- serve/Daemon.cpp - The narada-cli serve daemon --------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "serve/Daemon.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "racedb/Triage.h"
#include "support/FaultInjection.h"
#include "support/ProcessPool.h"
#include "support/Wire.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>
#include <vector>

using namespace narada;
using namespace narada::serve;

namespace {

/// Creates an empty temp file and returns its path ("" on failure).
std::string makeTempFile(const char *Tag) {
  std::string Template = "/tmp/narada-serve-";
  Template += Tag;
  Template += "-XXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  int Fd = ::mkstemp(Buf.data());
  if (Fd < 0)
    return "";
  ::close(Fd);
  return std::string(Buf.data());
}

/// Reads a whole file; "" when absent (a command that failed before
/// emitting its report simply ships no report bytes).
std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

} // namespace

int serve::captureRun(const std::function<int()> &Fn, std::string &OutBytes,
                      std::string &ErrBytes) {
  const std::string OutPath = makeTempFile("stdout");
  const std::string ErrPath = makeTempFile("stderr");
  std::fflush(stdout);
  std::fflush(stderr);
  int SavedOut = ::dup(1);
  int SavedErr = ::dup(2);
  int OutFd = ::open(OutPath.c_str(), O_WRONLY | O_TRUNC);
  int ErrFd = ::open(ErrPath.c_str(), O_WRONLY | O_TRUNC);
  if (OutFd >= 0)
    ::dup2(OutFd, 1);
  if (ErrFd >= 0)
    ::dup2(ErrFd, 2);
  if (OutFd >= 0)
    ::close(OutFd);
  if (ErrFd >= 0)
    ::close(ErrFd);

  int Rc;
  try {
    Rc = Fn();
  } catch (...) {
    // Restore the real descriptors before rethrowing so the caller's
    // error handling prints somewhere visible.
    std::fflush(stdout);
    std::fflush(stderr);
    ::dup2(SavedOut, 1);
    ::dup2(SavedErr, 2);
    ::close(SavedOut);
    ::close(SavedErr);
    OutBytes = slurp(OutPath);
    ErrBytes = slurp(ErrPath);
    ::unlink(OutPath.c_str());
    ::unlink(ErrPath.c_str());
    throw;
  }

  std::fflush(stdout);
  std::fflush(stderr);
  ::dup2(SavedOut, 1);
  ::dup2(SavedErr, 2);
  ::close(SavedOut);
  ::close(SavedErr);
  OutBytes = slurp(OutPath);
  ErrBytes = slurp(ErrPath);
  ::unlink(OutPath.c_str());
  ::unlink(ErrPath.c_str());
  return Rc;
}

SubmitResponse serve::handleSubmit(SubmitRequest Request, ServeCaches *Caches,
                                   const std::string &WorkerExe,
                                   uint64_t RequestIndex,
                                   racedb::RaceDb *Db) {
  SubmitResponse Resp;
  // A fresh CLI process starts with zeroed metrics and an empty phase
  // table; mirroring that per request keeps warm reports structurally
  // identical to cold single-shot runs.
  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::global().counter("serve.requests").inc();

  CliArgs &Args = Request.Args;
  Args.Isolate.WorkerExe = WorkerExe;
  std::string ReportPath;
  // The race database ingests from the run report, so --racedb forces an
  // internal report even when the client did not ask for one; the bytes
  // ship back only on WantReport, keeping the response unchanged.
  if (Request.WantReport || Db) {
    ReportPath = makeTempFile("report");
    Args.ReportPath = ReportPath;
  }

  std::unique_ptr<ServeCaches::Request> Hooks;
  if (Caches)
    Hooks = Caches->beginRequest(Args.Input);

  try {
    fault::ScopedUnit Unit(RequestIndex);
    fault::probe("serve.request");
    Resp.Exit = captureRun(
        [&] {
          return runCommandAndReport(Args, std::move(Request.Source),
                                     Hooks ? &Hooks->Hooks : nullptr);
        },
        Resp.Stdout, Resp.Stderr);
    Resp.Ok = true;
  } catch (const std::exception &E) {
    // Quarantine: this request is answered with an error, the daemon —
    // and every cache (hooks are withheld while injection is armed) —
    // is untouched for the next client.
    Resp.Ok = false;
    Resp.Exit = 1;
    Resp.ErrorMessage = std::string("request quarantined: ") + E.what();
  }
  if (!ReportPath.empty()) {
    const std::string ReportBytes = Resp.Ok ? slurp(ReportPath) : "";
    ::unlink(ReportPath.c_str());
    if (Request.WantReport)
      Resp.Report = ReportBytes;
    if (Db && Resp.Ok && Resp.Exit == 0 && !ReportBytes.empty()) {
      Result<racedb::RunObservation> Obs =
          racedb::observationFromReportText(ReportBytes);
      if (Obs) {
        racedb::ingest(*Db, {Obs.take()});
      } else {
        NARADA_LOG_WARN("serve: racedb skipped a report: %s",
                        Obs.error().str().c_str());
      }
    }
  }
  return Resp;
}

int serve::runServe(int Argc, char **Argv) {
  std::string SocketPath, CachePath, RaceDbPath;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--socket" && I + 1 < Argc) {
      SocketPath = Argv[++I];
    } else if (Arg == "--cache" && I + 1 < Argc) {
      CachePath = Argv[++I];
    } else if (Arg == "--racedb" && I + 1 < Argc) {
      RaceDbPath = Argv[++I];
    } else {
      std::fprintf(stderr, "serve: unknown option '%s'\n", Arg.c_str());
      return 2;
    }
  }
  if (SocketPath.empty()) {
    std::fprintf(stderr, "serve: --socket <path> is required\n");
    return 2;
  }
  sockaddr_un Addr{};
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "serve: socket path too long\n");
    return 2;
  }

  const std::string WorkerExe = pool::currentExecutablePath(Argv[0]);
  // Cache poisoning guard: with injection armed, every request runs cold.
  // A fault that fires mid-pipeline must never leave a half-computed
  // entry behind for later (clean) requests to trust.
  const bool FaultArmed = fault::armed();
  if (FaultArmed)
    NARADA_LOG_WARN("serve: fault injection armed; caches disabled");
  ServeCaches Caches(FaultArmed ? std::string() : CachePath);

  // The race database is a triage record, not a cache: unlike a corrupt
  // cache file (start cold), a corrupt database must stop the daemon —
  // silently dropping triage history would turn every tracked race into
  // an untracked one.  A missing file is a normal fresh start.  Armed
  // fault injection withholds the database just like the caches.
  racedb::RaceDb Db;
  bool HaveDb = false;
  if (!RaceDbPath.empty() && !FaultArmed) {
    struct stat St;
    if (::stat(RaceDbPath.c_str(), &St) == 0) {
      Result<racedb::RaceDb> Loaded = racedb::loadRaceDb(RaceDbPath);
      if (!Loaded) {
        std::fprintf(stderr, "serve: refusing to start: %s\n",
                     Loaded.error().str().c_str());
        return 1;
      }
      Db = Loaded.take();
    }
    HaveDb = true;
  } else if (!RaceDbPath.empty()) {
    NARADA_LOG_WARN("serve: fault injection armed; race database disabled");
  }

  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::fprintf(stderr, "serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  ::unlink(SocketPath.c_str()); // Stale socket from a previous daemon.
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Listen, 16) < 0) {
    std::fprintf(stderr, "serve: bind/listen on '%s': %s\n",
                 SocketPath.c_str(), std::strerror(errno));
    ::close(Listen);
    return 1;
  }
  std::fprintf(stderr, "narada-cli serve: listening on %s\n",
               SocketPath.c_str());

  uint64_t RequestIndex = 0;
  bool Shutdown = false;
  while (!Shutdown) {
    int Conn = ::accept(Listen, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "serve: accept: %s\n", std::strerror(errno));
      break;
    }
    std::string Payload;
    if (wire::readFrame(Conn, Payload) != wire::ReadStatus::Ok) {
      ::close(Conn); // Garbled or empty request; nothing to answer.
      continue;
    }
    wire::RecordReader In(Payload);
    const std::string Verb = In.getOr("verb", "");
    wire::RecordWriter Reply;
    if (Verb == "ping") {
      Reply.add("verb", std::string_view("pong"));
    } else if (Verb == "shutdown") {
      Reply.add("verb", std::string_view("bye"));
      Shutdown = true;
    } else if (Verb == "submit") {
      SubmitResponse Resp;
      Result<SubmitRequest> Request = decodeSubmit(In);
      if (!Request) {
        Resp.Exit = 1;
        Resp.ErrorMessage = Request.error().str();
      } else {
        Resp = handleSubmit(Request.take(), FaultArmed ? nullptr : &Caches,
                            WorkerExe, RequestIndex++,
                            HaveDb ? &Db : nullptr);
        // Persist after every request: a daemon kill never costs more
        // than the entries of the request in flight.
        if (!FaultArmed)
          Caches.save();
        if (HaveDb)
          racedb::saveRaceDb(RaceDbPath, Db);
      }
      encodeResponse(Reply, Resp);
    } else {
      Reply.add("verb", std::string_view("error"));
      Reply.add("error", "unknown verb '" + Verb + "'");
    }
    wire::writeFrame(Conn, Reply.str());
    ::close(Conn);
  }
  ::close(Listen);
  ::unlink(SocketPath.c_str());
  return 0;
}
