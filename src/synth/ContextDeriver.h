//===- synth/ContextDeriver.h - Narada stage 2b -----------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Q query operator of §3.3 (Fig. 10): given a racy pair, derive the
/// method sequence a client must invoke so both threads' base objects are
/// one shared instance.  The derivation searches the stage-1 databases:
///
///  - *set*: a method assigns a parameter into the target field
///    (bar: I0.x <- I1.w; baz: I0.w <- I1 — the paper's running example);
///  - *concat* / *deep-set*: compose setters when the target is a deep path
///    or the setter's source is a field of its parameter;
///  - constructors count as setters (paper §4), realized as 'new T(S)';
///  - factory methods that wire an argument into the object they return
///    (the hazelcast createSafeWriteBehindQueue pattern) realize the target
///    binding at creation time.
///
/// When no complete derivation exists the deriver falls back to sharing a
/// prefix of the path (paper §4), producing a test that may not expose the
/// race — mirroring the paper's C4 results.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_CONTEXTDERIVER_H
#define NARADA_SYNTH_CONTEXTDERIVER_H

#include "support/RNG.h"
#include "synth/RacyPair.h"

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace narada {

/// A recipe for producing one object instance, possibly constrained so that
/// a given field path resolves to the test's shared object.
struct ProvidePlan {
  enum class Kind {
    SharedObject,   ///< Use the shared object S itself.
    FromSeed,       ///< Any fresh instance obtained from a seed test.
    ViaSetter,      ///< Produce Base, then call Base.Method(..., Value, ...).
    ViaConstructor, ///< new ClassName(..., Value, ...).
    ViaFactory,     ///< Produce the factory (Base), call Base.Method(...,
                    ///< Value, ...) and use its return value.
  };

  Kind K = Kind::FromSeed;
  std::string ClassName; ///< Type of the produced instance.
  std::string Method;    ///< Setter/factory/constructor method name.
  /// Root index (1-based argument position) of the constrained parameter
  /// within Method's signature.
  int ConstrainedParam = 0;
  std::unique_ptr<ProvidePlan> Base;  ///< Mutated instance / factory receiver.
  std::unique_ptr<ProvidePlan> Value; ///< The constrained argument.
  bool Complete = true;

  /// Deep copy (plans are immutable trees once derived; the memo hands
  /// out clones so callers can move them into SharingPlans freely).
  std::unique_ptr<ProvidePlan> clone() const;

  /// "setter[A.bar(#1=plan)]" style rendering for tests and logs.
  std::string str() const;
};

/// A sharded memo table for Q-query derivations, keyed by (class,
/// field-path, remaining depth budget).  The same (class, path) target
/// recurs across pairs — every pair racing on C1's queue.buffer re-derives
/// the same setter chain — and, with the parallel driver, across worker
/// threads, so the table is shared and mutex-sharded by key hash.
///
/// Only *deterministic* derivations are memoized: with a selection RNG
/// active the chosen candidate depends on the pair's private stream, and
/// caching one pair's choice would leak it into another pair's derivation
/// (breaking the jobs-1 == jobs-N guarantee).  Callers simply get no hits
/// in that mode.
class DerivationMemo {
public:
  /// Returns a clone of the cached plan for \p Key, or null on miss.
  std::unique_ptr<ProvidePlan> lookup(const std::string &Key) const;

  /// Caches a clone of \p Plan under \p Key (first writer wins).
  void insert(const std::string &Key, const ProvidePlan &Plan);

  /// Visits every cached (key, plan) entry in sorted key order — the
  /// serve-layer memo persistence walks the table this way so on-disk
  /// cache files are deterministic.  Do not call concurrently with
  /// inserts from worker threads.
  void forEach(const std::function<void(const std::string &,
                                        const ProvidePlan &)> &Fn) const;

  /// Number of cached entries.
  size_t size() const;

  /// Builds the canonical "class|f1.f2|depth" key.
  static std::string key(const std::string &ClassName,
                         const std::vector<std::string> &Fields,
                         unsigned Depth);

private:
  static constexpr size_t NumShards = 16;
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<std::string, std::unique_ptr<ProvidePlan>> Map;
  };
  Shard &shardFor(const std::string &Key) const;
  mutable Shard Shards[NumShards];
};

/// The object-sharing recipe for one racy pair.
struct SharingPlan {
  /// Dynamic class of the shared object S.
  std::string SharedClassName;

  /// Per side: which invocation parameter is constrained (0 = receiver) and
  /// the recipe producing it.  When the side's path is empty the plan is
  /// simply SharedObject (pass S itself).
  struct Side {
    int Root = 0;
    std::unique_ptr<ProvidePlan> Plan;
    AccessPath EffectivePath; ///< Possibly a shortened prefix.
  };
  Side First;
  Side Second;

  /// False when a prefix fallback (or no sharing at all) was used: the test
  /// is still synthesized but may not expose the race.
  bool Complete = true;

  std::string str() const;
};

/// Derives sharing plans from the stage-1 analysis databases.
class ContextDeriver {
public:
  /// With \p SelectionSeed unset the deriver deterministically picks the
  /// first applicable setter; with a seed it chooses uniformly among the
  /// complete candidate derivations — the paper's §4 behavior ("randomly
  /// selects one of the possible methods").
  ContextDeriver(const AnalysisResult &Analysis, const ProgramInfo &Info,
                 std::optional<uint64_t> SelectionSeed = std::nullopt)
      : Analysis(Analysis), Info(Info) {
    if (SelectionSeed)
      SelectionRand.emplace(*SelectionSeed);
  }

  /// Attaches a (possibly shared, thread-safe) derivation memo; null
  /// detaches.  Hits are only taken on the deterministic path — see
  /// DerivationMemo.
  void setMemo(DerivationMemo *Table) { Memo = Table; }

  /// Derives the context for one racy pair using the construction-time
  /// selection stream (serial pipeline behavior).
  SharingPlan deriveSharing(const RacyPair &Pair) const;

  /// Derives the context for one racy pair with a private selection
  /// stream seeded by \p PairSeed (unset = deterministic first-candidate
  /// choice).  Pair-indexed seeds are what make randomized derivation
  /// reproducible independent of pair execution order — the parallel
  /// driver's entry point.
  SharingPlan deriveSharing(const RacyPair &Pair,
                            std::optional<uint64_t> PairSeed) const;

  /// Derives a recipe for an instance of \p ClassName whose \p Fields path
  /// resolves to the shared object.  Never returns null; incomplete plans
  /// are marked.  Exposed for testing.
  std::unique_ptr<ProvidePlan>
  derive(const std::string &ClassName,
         const std::vector<std::string> &Fields, unsigned Depth = 0) const;

  /// The static type reached by walking \p Fields from \p ClassName through
  /// declared field types; empty when the walk fails.
  std::string typeAtPath(const std::string &ClassName,
                         const std::vector<std::string> &Fields) const;

  /// The declared class of the constrained root of \p Side (its receiver
  /// class or the parameter's class).
  std::string rootClassOf(const RacySide &Side) const;

private:
  /// The recursive worker behind derive(): \p Rand, when non-null, picks
  /// among complete candidates; null picks the first (and enables memo
  /// hits).
  std::unique_ptr<ProvidePlan> deriveImpl(const std::string &ClassName,
                                          const std::vector<std::string> &Fields,
                                          unsigned Depth, RNG *Rand) const;

  SharingPlan deriveSharingImpl(const RacyPair &Pair, RNG *Rand) const;

  const AnalysisResult &Analysis;
  const ProgramInfo &Info;
  /// Present when random setter selection is enabled; mutable because the
  /// derivation API is logically const.
  mutable std::optional<RNG> SelectionRand;
  DerivationMemo *Memo = nullptr;

  static constexpr unsigned MaxDepth = 5;
};

} // namespace narada

#endif // NARADA_SYNTH_CONTEXTDERIVER_H
