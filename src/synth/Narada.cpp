//===- synth/Narada.cpp - End-to-end test synthesis pipeline -------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "synth/Narada.h"

#include "analysis/AccessAnalysis.h"
#include "lang/ASTPrinter.h"
#include "obs/Log.h"
#include "obs/Span.h"
#include "staticrace/LocksetAnalysis.h"
#include "support/StringUtils.h"
#include "synth/ParallelDriver.h"
#include "synth/SeedNormalizer.h"
#include "synth/TestSynthesizer.h"

using namespace narada;

const char *narada::skipReasonId(SkipReason Reason) {
  switch (Reason) {
  case SkipReason::NoSeedProvider:
    return "no_seed_provider";
  case SkipReason::NoSeedCallSite:
    return "no_seed_call_site";
  case SkipReason::DerivationMismatch:
    return "derivation_mismatch";
  case SkipReason::TestBudget:
    return "test_budget";
  case SkipReason::InternalFault:
    return "internal_fault";
  case SkipReason::WorkerCrash:
    return "worker_crash";
  case SkipReason::Other:
    break;
  }
  return "other";
}

std::string SkippedPair::str() const {
  std::string Out = PairKey + ": " + skipReasonId(Reason);
  if (!Message.empty())
    Out += ": " + Message;
  return Out;
}

Result<NaradaResult>
narada::runNarada(std::string_view LibrarySource,
                  const std::vector<std::string> &SeedNames,
                  const NaradaOptions &Options) {
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  obs::Span PipelineSpan("pipeline");
  Metrics.counter("pipeline.runs").inc();

  NaradaResult Out;

  // Pass 1: compile the library + original seeds, then normalize the seeds
  // so collectObjects is a syntactic prefix inline.
  std::string NormalizedSource;
  Result<CompiledProgram> Normalized = [&]() -> Result<CompiledProgram> {
    obs::Span FrontendSpan("frontend", &Out.Stages.FrontendSeconds);
    Result<CompiledProgram> Original = compileProgram(LibrarySource);
    if (!Original)
      return Original;

    for (const auto &Class : Original->Ast->Classes)
      NormalizedSource += printClass(*Class) + "\n";
    for (const std::string &SeedName : SeedNames) {
      const TestDecl *Seed = Original->Ast->findTest(SeedName);
      if (!Seed)
        return Error(
            formatString("no seed test named '%s'", SeedName.c_str()));
      Result<std::unique_ptr<TestDecl>> Norm =
          normalizeSeed(*Seed, *Original->Info);
      if (!Norm)
        return Norm.error();
      NormalizedSource += printTest(**Norm) + "\n";
    }

    Result<CompiledProgram> Recompiled = compileProgram(NormalizedSource);
    if (!Recompiled)
      return Error("internal: normalized seeds failed to recompile: " +
                   Recompiled.error().str());
    return Recompiled;
  }();
  if (!Normalized)
    return Normalized.error();

  // Stage 1: execute the sequential seeds and analyze their traces.
  {
    obs::Span AnalyzeSpan("analyze", &Out.Stages.AnalysisSeconds);
    const PipelineCaches *Caches = Options.Caches;
    for (const std::string &SeedName : SeedNames) {
      if (Caches && Caches->LookupSeedAnalysis)
        if (const AnalysisResult *Hit = Caches->LookupSeedAnalysis(SeedName)) {
          Out.Analysis.merge(*Hit);
          continue;
        }
      Result<TestRun> Run = runTestSequential(*Normalized->Module, SeedName);
      if (!Run)
        return Run.error();
      if (Run->Result.Faulted)
        return Error(formatString("seed test '%s' faulted: %s",
                                  SeedName.c_str(),
                                  Run->Result.FaultMessages[0].c_str()));
      Metrics.counter("analysis.seeds_executed").inc();
      AnalysisResult One = analyzeTrace(Run->TheTrace, *Normalized->Info);
      if (Caches && Caches->StoreSeedAnalysis)
        Caches->StoreSeedAnalysis(SeedName, One);
      Out.Analysis.merge(One);
    }
    NARADA_LOG_INFO("analyze: %zu seeds -> %zu accesses, %zu setters, "
                    "%zu returns",
                    SeedNames.size(), Out.Analysis.Accesses.size(),
                    Out.Analysis.Setters.size(),
                    Out.Analysis.Returns.size());
  }

  // Optional static pre-analysis: per-method must-lockset summaries over
  // the lowered module (same lowering the detectors run on, so static
  // labels line up with dynamic ones).
  if (Options.StaticPrefilter || Options.StaticRank) {
    obs::Span StaticSpan("staticrace", &Out.Stages.StaticRaceSeconds);
    Out.Static = std::make_shared<const staticrace::ModuleSummary>(
        Options.Caches && Options.Caches->Summarize
            ? Options.Caches->Summarize(*Normalized->Module)
            : staticrace::summarizeModule(*Normalized->Module));
    NARADA_LOG_INFO("staticrace: %zu method summaries",
                    Out.Static->Methods.size());
  }

  // Stage 2a: candidate racy pairs.
  {
    obs::Span PairGenSpan("pairgen", &Out.Stages.PairGenSeconds);
    PairGenOptions PairOptions;
    PairOptions.FocusClass = Options.FocusClass;
    PairOptions.Static = Out.Static.get();
    PairOptions.StaticPrefilter = Options.StaticPrefilter;
    PairOptions.StaticRank = Options.StaticRank;
    Out.Pairs = generatePairs(Out.Analysis, PairOptions);
    Metrics.counter("synth.pairs_generated").inc(Out.Pairs.size());
    NARADA_LOG_INFO("pairgen: %zu candidate racy pairs%s%s",
                    Out.Pairs.size(),
                    Options.FocusClass.empty() ? "" : " for class ",
                    Options.FocusClass.c_str());
  }

  // Stage 2b + 3: contexts and tests, fanned across pairs by the parallel
  // driver (Options.Jobs workers; byte-identical output for every count).
  std::string SynthesizedSource;
  {
    obs::Span SynthSpan("synth", &Out.Stages.SynthesisSeconds);
    std::vector<const TestDecl *> Seeds;
    for (const std::string &SeedName : SeedNames)
      Seeds.push_back(Normalized->Ast->findTest(SeedName));
    Result<SeedRegistry> Registry =
        SeedRegistry::build(Seeds, *Normalized->Info);
    if (!Registry)
      return Registry.error();

    // Under --isolate the stage re-dispatches each unit to worker
    // subprocesses, which rebuild this same pipeline state from the
    // original source + seed names (all stages up to here are
    // deterministic, so worker-side pairs match ours index for index).
    SynthIsolateContext Iso;
    Iso.Isolate = Options.Isolate;
    Iso.LibrarySource = std::string(LibrarySource);
    Iso.SeedNames = SeedNames;
    SynthStageOutput Stage = runSynthesisStage(
        Out.Analysis, *Normalized->Info, *Registry, Out.Pairs, Options,
        Options.Isolate.Enabled ? &Iso : nullptr);
    Out.Tests = std::move(Stage.Tests);
    Out.Skipped = std::move(Stage.Skipped);
    SynthesizedSource = std::move(Stage.SynthesizedSource);
    NARADA_LOG_INFO("synth: %zu tests from %zu pairs (%zu skipped)",
                    Out.Tests.size(), Out.Pairs.size(), Out.Skipped.size());
  }

  // Final pass: compile library + seeds + synthesized tests together.
  {
    obs::Span RecompileSpan("recompile", &Out.Stages.RecompileSeconds);
    Out.FinalSource = NormalizedSource + "\n" + SynthesizedSource;
    Result<CompiledProgram> Final = compileProgram(Out.FinalSource);
    if (!Final)
      return Error("internal: synthesized tests failed to compile: " +
                   Final.error().str() + "\n--- source ---\n" +
                   SynthesizedSource);
    Out.Program = Final.take();
  }
  return Out;
}
