//===- synth/Narada.cpp - End-to-end test synthesis pipeline -------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "synth/Narada.h"

#include "analysis/AccessAnalysis.h"
#include "lang/ASTPrinter.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "synth/SeedNormalizer.h"
#include "synth/TestSynthesizer.h"

#include <map>

using namespace narada;

Result<NaradaResult>
narada::runNarada(std::string_view LibrarySource,
                  const std::vector<std::string> &SeedNames,
                  const NaradaOptions &Options) {
  // Pass 1: compile the library + original seeds.
  Result<CompiledProgram> Original = compileProgram(LibrarySource);
  if (!Original)
    return Original.error();

  // Normalize the seeds so collectObjects is a syntactic prefix inline.
  std::string NormalizedSource;
  for (const auto &Class : Original->Ast->Classes)
    NormalizedSource += printClass(*Class) + "\n";
  for (const std::string &SeedName : SeedNames) {
    const TestDecl *Seed = Original->Ast->findTest(SeedName);
    if (!Seed)
      return Error(formatString("no seed test named '%s'", SeedName.c_str()));
    Result<std::unique_ptr<TestDecl>> Norm =
        normalizeSeed(*Seed, *Original->Info);
    if (!Norm)
      return Norm.error();
    NormalizedSource += printTest(**Norm) + "\n";
  }

  Result<CompiledProgram> Normalized = compileProgram(NormalizedSource);
  if (!Normalized)
    return Error("internal: normalized seeds failed to recompile: " +
                 Normalized.error().str());

  NaradaResult Out;

  // Stage 1: execute the sequential seeds and analyze their traces.
  Timer AnalysisTimer;
  for (const std::string &SeedName : SeedNames) {
    Result<TestRun> Run = runTestSequential(*Normalized->Module, SeedName);
    if (!Run)
      return Run.error();
    if (Run->Result.Faulted)
      return Error(formatString("seed test '%s' faulted: %s",
                                SeedName.c_str(),
                                Run->Result.FaultMessages[0].c_str()));
    Out.Analysis.merge(analyzeTrace(Run->TheTrace, *Normalized->Info));
  }

  // Stage 2a: candidate racy pairs.
  PairGenOptions PairOptions;
  PairOptions.FocusClass = Options.FocusClass;
  Out.Pairs = generatePairs(Out.Analysis, PairOptions);
  Out.AnalysisSeconds = AnalysisTimer.seconds();

  // Stage 2b + 3: contexts and tests.
  Timer SynthesisTimer;
  ContextDeriver Deriver(Out.Analysis, *Normalized->Info,
                         Options.DerivationSeed);

  std::vector<const TestDecl *> Seeds;
  for (const std::string &SeedName : SeedNames)
    Seeds.push_back(Normalized->Ast->findTest(SeedName));
  Result<SeedRegistry> Registry =
      SeedRegistry::build(Seeds, *Normalized->Info);
  if (!Registry)
    return Registry.error();
  TestSynthesizer Synthesizer(*Registry, *Normalized->Info);

  // One test per unique sharing shape; multiple pairs map onto one test
  // (the paper synthesizes 15 tests for C1's 65 pairs).
  std::map<std::string, size_t> TestByShape;
  std::string SynthesizedSource;

  for (const RacyPair &Pair : Out.Pairs) {
    SharingPlan Plan = Deriver.deriveSharing(Pair);
    if (!Options.EnableContextDerivation) {
      // Ablation: strip all constraints; both sides get fresh instances.
      auto Fresh = [&](SharingPlan::Side &Side, const RacySide &RS) {
        Side.Plan = std::make_unique<ProvidePlan>();
        Side.Plan->K = ProvidePlan::Kind::FromSeed;
        Side.Plan->ClassName = Deriver.rootClassOf(RS);
        Side.EffectivePath = AccessPath(RS.BasePath.Root, {});
      };
      Fresh(Plan.First, Pair.First);
      Fresh(Plan.Second, Pair.Second);
      Plan.Complete = false;
    }

    std::string Shape = formatString(
        "%s.%s|%s.%s|%s|%s|%s", Pair.First.ClassName.c_str(),
        Pair.First.Method.c_str(), Pair.Second.ClassName.c_str(),
        Pair.Second.Method.c_str(), Plan.First.EffectivePath.str().c_str(),
        Plan.Second.EffectivePath.str().c_str(),
        Plan.SharedClassName.c_str());

    auto Existing = TestByShape.find(Shape);
    if (Existing != TestByShape.end()) {
      SynthesizedTestInfo &Test = Out.Tests[Existing->second];
      Test.CoveredPairKeys.push_back(Pair.key());
      Test.CandidateLabels.emplace_back(Pair.First.AccessLabel,
                                        Pair.Second.AccessLabel);
      continue;
    }
    if (Options.MaxTests && Out.Tests.size() >= Options.MaxTests)
      continue;

    std::string Name = formatString("%s_%03zu", Options.TestNamePrefix.c_str(),
                                    Out.Tests.size());
    Result<std::unique_ptr<TestDecl>> Test =
        Synthesizer.synthesize(Pair, Plan, Name);
    if (!Test) {
      Out.Skipped.push_back(Pair.key() + ": " + Test.error().str());
      continue;
    }

    SynthesizedTestInfo Info;
    Info.Name = Name;
    Info.SourceText = printTest(**Test);
    Info.Representative = Pair;
    Info.CoveredPairKeys.push_back(Pair.key());
    Info.ContextComplete = Plan.Complete;
    Info.SharedClassName = Plan.SharedClassName;
    Info.Field = Pair.Field;
    Info.CandidateLabels.emplace_back(Pair.First.AccessLabel,
                                      Pair.Second.AccessLabel);
    SynthesizedSource += Info.SourceText + "\n";
    TestByShape[Shape] = Out.Tests.size();
    Out.Tests.push_back(std::move(Info));
  }

  // Final pass: compile library + seeds + synthesized tests together.
  Result<CompiledProgram> Final =
      compileProgram(NormalizedSource + "\n" + SynthesizedSource);
  if (!Final)
    return Error("internal: synthesized tests failed to compile: " +
                 Final.error().str() + "\n--- source ---\n" +
                 SynthesizedSource);
  Out.Program = Final.take();
  Out.SynthesisSeconds = SynthesisTimer.seconds();
  return Out;
}
