//===- synth/Narada.cpp - End-to-end test synthesis pipeline -------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "synth/Narada.h"

#include "analysis/AccessAnalysis.h"
#include "lang/ASTPrinter.h"
#include "obs/Log.h"
#include "obs/Span.h"
#include "support/StringUtils.h"
#include "synth/SeedNormalizer.h"
#include "synth/TestSynthesizer.h"

#include <map>

using namespace narada;

const char *narada::skipReasonId(SkipReason Reason) {
  switch (Reason) {
  case SkipReason::NoSeedProvider:
    return "no_seed_provider";
  case SkipReason::NoSeedCallSite:
    return "no_seed_call_site";
  case SkipReason::DerivationMismatch:
    return "derivation_mismatch";
  case SkipReason::TestBudget:
    return "test_budget";
  case SkipReason::Other:
    break;
  }
  return "other";
}

std::string SkippedPair::str() const {
  std::string Out = PairKey + ": " + skipReasonId(Reason);
  if (!Message.empty())
    Out += ": " + Message;
  return Out;
}

namespace {

/// Maps a synthesizer failure onto a skip category.  The synthesizer's
/// message families are part of its contract (tests assert on them), so
/// prefix matching here is the lightest classification that keeps Error
/// a plain message type.
SkipReason classifySkip(const Error &E) {
  const std::string &Message = E.message();
  if (startsWith(Message, "no provider for") ||
      startsWith(Message, "no seed provides"))
    return SkipReason::NoSeedProvider;
  if (startsWith(Message, "no seed call site") ||
      startsWith(Message, "no seed constructor site"))
    return SkipReason::NoSeedCallSite;
  if (startsWith(Message, "constrained parameter") ||
      Message.find("is not normalized") != std::string::npos)
    return SkipReason::DerivationMismatch;
  return SkipReason::Other;
}

void countSkip(SkipReason Reason) {
  obs::MetricsRegistry &R = obs::MetricsRegistry::global();
  R.counter("synth.pairs_skipped").inc();
  R.counter(std::string("synth.pairs_skipped.") + skipReasonId(Reason))
      .inc();
}

} // namespace

Result<NaradaResult>
narada::runNarada(std::string_view LibrarySource,
                  const std::vector<std::string> &SeedNames,
                  const NaradaOptions &Options) {
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  obs::Span PipelineSpan("pipeline");
  Metrics.counter("pipeline.runs").inc();

  NaradaResult Out;

  // Pass 1: compile the library + original seeds, then normalize the seeds
  // so collectObjects is a syntactic prefix inline.
  std::string NormalizedSource;
  Result<CompiledProgram> Normalized = [&]() -> Result<CompiledProgram> {
    obs::Span FrontendSpan("frontend", &Out.Stages.FrontendSeconds);
    Result<CompiledProgram> Original = compileProgram(LibrarySource);
    if (!Original)
      return Original;

    for (const auto &Class : Original->Ast->Classes)
      NormalizedSource += printClass(*Class) + "\n";
    for (const std::string &SeedName : SeedNames) {
      const TestDecl *Seed = Original->Ast->findTest(SeedName);
      if (!Seed)
        return Error(
            formatString("no seed test named '%s'", SeedName.c_str()));
      Result<std::unique_ptr<TestDecl>> Norm =
          normalizeSeed(*Seed, *Original->Info);
      if (!Norm)
        return Norm.error();
      NormalizedSource += printTest(**Norm) + "\n";
    }

    Result<CompiledProgram> Recompiled = compileProgram(NormalizedSource);
    if (!Recompiled)
      return Error("internal: normalized seeds failed to recompile: " +
                   Recompiled.error().str());
    return Recompiled;
  }();
  if (!Normalized)
    return Normalized.error();

  // Stage 1: execute the sequential seeds and analyze their traces.
  {
    obs::Span AnalyzeSpan("analyze", &Out.Stages.AnalysisSeconds);
    for (const std::string &SeedName : SeedNames) {
      Result<TestRun> Run = runTestSequential(*Normalized->Module, SeedName);
      if (!Run)
        return Run.error();
      if (Run->Result.Faulted)
        return Error(formatString("seed test '%s' faulted: %s",
                                  SeedName.c_str(),
                                  Run->Result.FaultMessages[0].c_str()));
      Metrics.counter("analysis.seeds_executed").inc();
      Out.Analysis.merge(analyzeTrace(Run->TheTrace, *Normalized->Info));
    }
    NARADA_LOG_INFO("analyze: %zu seeds -> %zu accesses, %zu setters, "
                    "%zu returns",
                    SeedNames.size(), Out.Analysis.Accesses.size(),
                    Out.Analysis.Setters.size(),
                    Out.Analysis.Returns.size());
  }

  // Stage 2a: candidate racy pairs.
  {
    obs::Span PairGenSpan("pairgen", &Out.Stages.PairGenSeconds);
    PairGenOptions PairOptions;
    PairOptions.FocusClass = Options.FocusClass;
    Out.Pairs = generatePairs(Out.Analysis, PairOptions);
    Metrics.counter("synth.pairs_generated").inc(Out.Pairs.size());
    NARADA_LOG_INFO("pairgen: %zu candidate racy pairs%s%s",
                    Out.Pairs.size(),
                    Options.FocusClass.empty() ? "" : " for class ",
                    Options.FocusClass.c_str());
  }

  // Stage 2b + 3: contexts and tests.
  std::string SynthesizedSource;
  {
    obs::Span SynthSpan("synth", &Out.Stages.SynthesisSeconds);
    ContextDeriver Deriver(Out.Analysis, *Normalized->Info,
                           Options.DerivationSeed);

    std::vector<const TestDecl *> Seeds;
    for (const std::string &SeedName : SeedNames)
      Seeds.push_back(Normalized->Ast->findTest(SeedName));
    Result<SeedRegistry> Registry =
        SeedRegistry::build(Seeds, *Normalized->Info);
    if (!Registry)
      return Registry.error();
    TestSynthesizer Synthesizer(*Registry, *Normalized->Info);

    // One test per unique sharing shape; multiple pairs map onto one test
    // (the paper synthesizes 15 tests for C1's 65 pairs).
    std::map<std::string, size_t> TestByShape;

    for (const RacyPair &Pair : Out.Pairs) {
      SharingPlan Plan;
      {
        obs::Span DeriveSpan("derive");
        Plan = Deriver.deriveSharing(Pair);
      }
      if (!Options.EnableContextDerivation) {
        // Ablation: strip all constraints; both sides get fresh instances.
        auto Fresh = [&](SharingPlan::Side &Side, const RacySide &RS) {
          Side.Plan = std::make_unique<ProvidePlan>();
          Side.Plan->K = ProvidePlan::Kind::FromSeed;
          Side.Plan->ClassName = Deriver.rootClassOf(RS);
          Side.EffectivePath = AccessPath(RS.BasePath.Root, {});
        };
        Fresh(Plan.First, Pair.First);
        Fresh(Plan.Second, Pair.Second);
        Plan.Complete = false;
      }

      std::string Shape = formatString(
          "%s.%s|%s.%s|%s|%s|%s", Pair.First.ClassName.c_str(),
          Pair.First.Method.c_str(), Pair.Second.ClassName.c_str(),
          Pair.Second.Method.c_str(), Plan.First.EffectivePath.str().c_str(),
          Plan.Second.EffectivePath.str().c_str(),
          Plan.SharedClassName.c_str());

      auto Existing = TestByShape.find(Shape);
      if (Existing != TestByShape.end()) {
        SynthesizedTestInfo &Test = Out.Tests[Existing->second];
        Test.CoveredPairKeys.push_back(Pair.key());
        Test.CandidateLabels.emplace_back(Pair.First.AccessLabel,
                                          Pair.Second.AccessLabel);
        Metrics.counter("synth.pairs_deduped").inc();
        continue;
      }
      if (Options.MaxTests && Out.Tests.size() >= Options.MaxTests) {
        Out.Skipped.push_back({Pair.key(), SkipReason::TestBudget, ""});
        countSkip(SkipReason::TestBudget);
        continue;
      }

      std::string Name = formatString(
          "%s_%03zu", Options.TestNamePrefix.c_str(), Out.Tests.size());
      Result<std::unique_ptr<TestDecl>> Test =
          Synthesizer.synthesize(Pair, Plan, Name);
      if (!Test) {
        SkipReason Reason = classifySkip(Test.error());
        NARADA_LOG_DEBUG("skip %s (%s): %s", Pair.key().c_str(),
                         skipReasonId(Reason), Test.error().str().c_str());
        Out.Skipped.push_back(
            {Pair.key(), Reason, Test.error().str()});
        countSkip(Reason);
        continue;
      }

      SynthesizedTestInfo Info;
      Info.Name = Name;
      Info.SourceText = printTest(**Test);
      Info.Representative = Pair;
      Info.CoveredPairKeys.push_back(Pair.key());
      Info.ContextComplete = Plan.Complete;
      Info.SharedClassName = Plan.SharedClassName;
      Info.Field = Pair.Field;
      Info.CandidateLabels.emplace_back(Pair.First.AccessLabel,
                                        Pair.Second.AccessLabel);
      SynthesizedSource += Info.SourceText + "\n";
      TestByShape[Shape] = Out.Tests.size();
      Out.Tests.push_back(std::move(Info));
      Metrics.counter("synth.tests_synthesized").inc();
      if (!Plan.Complete)
        Metrics.counter("synth.tests_partial_context").inc();
    }
    NARADA_LOG_INFO("synth: %zu tests from %zu pairs (%zu skipped)",
                    Out.Tests.size(), Out.Pairs.size(), Out.Skipped.size());
  }

  // Final pass: compile library + seeds + synthesized tests together.
  {
    obs::Span RecompileSpan("recompile", &Out.Stages.RecompileSeconds);
    Result<CompiledProgram> Final =
        compileProgram(NormalizedSource + "\n" + SynthesizedSource);
    if (!Final)
      return Error("internal: synthesized tests failed to compile: " +
                   Final.error().str() + "\n--- source ---\n" +
                   SynthesizedSource);
    Out.Program = Final.take();
  }
  return Out;
}
