//===- synth/PairGenerator.h - Narada stage 2a ------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds candidate racy pairs from the stage-1 access records (§3.3):
///
///  - an unprotected access can race with a concurrent execution of itself
///    from a second thread, and with any other (un)protected access to the
///    same field;
///  - both base objects must be drivable to one shared instance, i.e. both
///    sides carry a client-rooted base path;
///  - the pair is kept only if the sharing that makes the bases coincide
///    does NOT also force a common monitor: two lock objects coincide
///    exactly when both are reached through the shared object by the same
///    suffix.  This check is how "the receivers must be distinct or the lock
///    on them serializes the accesses" falls out (paper §3.3's discussion of
///    a/a' and Eraser's empty-intersection criterion).
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_PAIRGENERATOR_H
#define NARADA_SYNTH_PAIRGENERATOR_H

#include "synth/RacyPair.h"

#include <vector>

namespace narada {

/// Options for pair generation.
struct PairGenOptions {
  /// Restrict to accesses whose invoked method belongs to this class
  /// (empty = all classes).  Matches the paper's per-class evaluation.
  std::string FocusClass;
  /// Drop pairs whose accesses happen inside constructors (paper §4).
  bool DiscardConstructorAccesses = true;
};

/// Whether the sharing required by (\p A, \p B) forces two held monitors to
/// be one object.  Exposed for testing.
bool locksCollideUnderSharing(const AccessRecord &A, const AccessRecord &B);

/// Generates all candidate racy pairs from \p Analysis.
std::vector<RacyPair> generatePairs(const AnalysisResult &Analysis,
                                    const PairGenOptions &Options = {});

} // namespace narada

#endif // NARADA_SYNTH_PAIRGENERATOR_H
