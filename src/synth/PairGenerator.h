//===- synth/PairGenerator.h - Narada stage 2a ------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds candidate racy pairs from the stage-1 access records (§3.3):
///
///  - an unprotected access can race with a concurrent execution of itself
///    from a second thread, and with any other (un)protected access to the
///    same field;
///  - both base objects must be drivable to one shared instance, i.e. both
///    sides carry a client-rooted base path;
///  - the pair is kept only if the sharing that makes the bases coincide
///    does NOT also force a common monitor: two lock objects coincide
///    exactly when both are reached through the shared object by the same
///    suffix.  This check is how "the receivers must be distinct or the lock
///    on them serializes the accesses" falls out (paper §3.3's discussion of
///    a/a' and Eraser's empty-intersection criterion).
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_PAIRGENERATOR_H
#define NARADA_SYNTH_PAIRGENERATOR_H

#include "synth/RacyPair.h"

#include <map>
#include <vector>

namespace narada {

namespace staticrace {
struct ModuleSummary;
}

/// Options for pair generation.
struct PairGenOptions {
  /// Restrict to accesses whose invoked method belongs to this class
  /// (empty = all classes).  Matches the paper's per-class evaluation.
  std::string FocusClass;
  /// Drop pairs whose accesses happen inside constructors (paper §4).
  bool DiscardConstructorAccesses = true;

  /// Static module summary; when set every generated pair carries a
  /// staticrace::PairVerdict.  Null leaves generation byte-identical to
  /// the classic (dynamic-only) behaviour.
  const staticrace::ModuleSummary *Static = nullptr;
  /// With Static: additionally scan the protected candidate space and drop
  /// every candidate classified MustGuarded before the feasibility checks,
  /// counting distinct pruned keys in "staticrace.pairs_pruned".  Sound by
  /// construction: a MustGuarded candidate is serialized under the staged
  /// sharing (see docs/STATIC.md), so the generated pair set is unchanged.
  bool StaticPrefilter = false;
  /// With Static: stable-sort the generated pairs MayRace < Unknown <
  /// MustGuarded (original order within a rank), so the synthesis budget
  /// is spent on the most promising candidates first.  Runs before the
  /// parallel synthesis stage, hence byte-identical across --jobs.
  bool StaticRank = false;
};

/// Whether the sharing required by (\p A, \p B) forces two held monitors to
/// be one object.  Exposed for testing.
bool locksCollideUnderSharing(const AccessRecord &A, const AccessRecord &B);

/// Generates all candidate racy pairs from \p Analysis.
std::vector<RacyPair> generatePairs(const AnalysisResult &Analysis,
                                    const PairGenOptions &Options = {});

/// Maps RaceReport::key()-formatted race keys ("Class.field{A~B}") to the
/// static verdict name of the classified pairs that predicted them, so
/// detection output can carry the static verdict without detect/ depending
/// on the static analysis.  When several pairs share a label pair the most
/// race-like verdict wins (MayRace over Unknown over MustGuarded).
std::map<std::string, std::string>
staticVerdictsByRaceKey(const std::vector<RacyPair> &Pairs);

} // namespace narada

#endif // NARADA_SYNTH_PAIRGENERATOR_H
