//===- synth/TestSynthesizer.cpp - Narada stage 3 ------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "synth/TestSynthesizer.h"

#include "lang/ASTClone.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <set>

using namespace narada;

//===----------------------------------------------------------------------===//
// SeedRegistry
//===----------------------------------------------------------------------===//

/// Extracts the call/new expression in \p S, if any (normalized seeds have
/// at most one per statement at the outermost position).
static const Expr *outermostCall(const Stmt *S, std::string *BoundVar) {
  BoundVar->clear();
  if (const auto *Decl = dyn_cast<VarDeclStmt>(S)) {
    if (!Decl->init())
      return nullptr;
    if (Decl->init()->kind() == Expr::Kind::Call ||
        Decl->init()->kind() == Expr::Kind::New) {
      *BoundVar = Decl->name();
      return Decl->init();
    }
    return nullptr;
  }
  if (const auto *ES = dyn_cast<ExprStmt>(S)) {
    if (ES->expr()->kind() == Expr::Kind::Call ||
        ES->expr()->kind() == Expr::Kind::New)
      return ES->expr();
    return nullptr;
  }
  if (const auto *Assign = dyn_cast<AssignStmt>(S)) {
    if (Assign->value()->kind() == Expr::Kind::Call ||
        Assign->value()->kind() == Expr::Kind::New) {
      if (const auto *Var = dyn_cast<VarRefExpr>(Assign->target()))
        *BoundVar = Var->name();
      return Assign->value();
    }
  }
  return nullptr;
}

/// Collects every variable name referenced anywhere in \p S.
static void collectVarRefs(const Expr *E, std::set<std::string> &Out) {
  switch (E->kind()) {
  case Expr::Kind::VarRef:
    Out.insert(cast<VarRefExpr>(E)->name());
    return;
  case Expr::Kind::FieldAccess:
    collectVarRefs(cast<FieldAccessExpr>(E)->base(), Out);
    return;
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    collectVarRefs(Call->base(), Out);
    for (const ExprPtr &Arg : Call->args())
      collectVarRefs(Arg.get(), Out);
    return;
  }
  case Expr::Kind::New:
    for (const ExprPtr &Arg : cast<NewExpr>(E)->args())
      collectVarRefs(Arg.get(), Out);
    return;
  case Expr::Kind::Unary:
    collectVarRefs(cast<UnaryExpr>(E)->operand(), Out);
    return;
  case Expr::Kind::Binary:
    collectVarRefs(cast<BinaryExpr>(E)->lhs(), Out);
    collectVarRefs(cast<BinaryExpr>(E)->rhs(), Out);
    return;
  default:
    return;
  }
}

static std::set<std::string> varsReferencedBy(const Stmt *S) {
  std::set<std::string> Out;
  if (const auto *Decl = dyn_cast<VarDeclStmt>(S)) {
    if (Decl->init())
      collectVarRefs(Decl->init(), Out);
  } else if (const auto *ES = dyn_cast<ExprStmt>(S)) {
    collectVarRefs(ES->expr(), Out);
  } else if (const auto *Assign = dyn_cast<AssignStmt>(S)) {
    collectVarRefs(Assign->target(), Out);
    collectVarRefs(Assign->value(), Out);
  }
  return Out;
}

Result<SeedRegistry>
SeedRegistry::build(const std::vector<const TestDecl *> &Seeds,
                    const ProgramInfo &Info) {
  SeedRegistry Out;
  for (const TestDecl *Seed : Seeds) {
    const auto &Stmts = Seed->Body->stmts();
    for (size_t Index = 0; Index != Stmts.size(); ++Index) {
      const Stmt *S = Stmts[Index].get();

      // Register variable providers.
      if (const auto *Decl = dyn_cast<VarDeclStmt>(S)) {
        if (Decl->declaredType().isClass()) {
          const std::string &ClassName = Decl->declaredType().className();
          if (!Out.Providers.count(ClassName))
            Out.Providers[ClassName] =
                SeedVarProvider{Seed, Index, Index, Decl->name()};
        }
      }

      // Track last uses so providers carry their seed-driven state.
      std::set<std::string> Used = varsReferencedBy(S);
      for (auto &[ClassName, Provider] : Out.Providers)
        if (Provider.Test == Seed && Used.count(Provider.VarName))
          Provider.LastUseIndex = Index;

      // Register call sites.
      std::string BoundVar;
      const Expr *CallLike = outermostCall(S, &BoundVar);
      if (!CallLike)
        continue;

      SeedCallSite Site;
      Site.Test = Seed;
      Site.StmtIndex = Index;
      Site.ResultVar = BoundVar;

      if (const auto *Call = dyn_cast<CallExpr>(CallLike)) {
        if (!Call->base()->type().isClass())
          continue;
        const auto *RecvVar = dyn_cast<VarRefExpr>(Call->base());
        if (!RecvVar)
          return Error(formatString("seed '%s' is not normalized: call "
                                    "receiver is not a variable",
                                    Seed->Name.c_str()),
                       Call->loc().str());
        Site.ClassName = Call->base()->type().className();
        Site.Method = Call->method();
        Site.ReceiverVar = RecvVar->name();
        for (const ExprPtr &Arg : Call->args()) {
          if (Arg->kind() != Expr::Kind::VarRef &&
              Arg->kind() != Expr::Kind::IntLit &&
              Arg->kind() != Expr::Kind::BoolLit &&
              Arg->kind() != Expr::Kind::NullLit)
            return Error(formatString("seed '%s' is not normalized: call "
                                      "argument is not atomic",
                                      Seed->Name.c_str()),
                         Arg->loc().str());
          Site.Args.push_back(Arg.get());
        }
      } else {
        const auto *New = cast<NewExpr>(CallLike);
        const ClassInfo *Class = Info.findClass(New->className());
        if (!Class || !Class->findMethod(ConstructorName))
          continue; // Plain allocation: not a constructor call site.
        Site.ClassName = New->className();
        Site.Method = ConstructorName;
        Site.IsNew = true;
        for (const ExprPtr &Arg : New->args())
          Site.Args.push_back(Arg.get());
      }

      std::string Key = Site.ClassName + "." + Site.Method;
      if (!Out.SiteIndex.count(Key))
        Out.SiteIndex[Key] = Out.Sites.size();
      Out.Sites.push_back(std::move(Site));
    }
  }
  return Out;
}

const SeedCallSite *
SeedRegistry::findMethodSite(const std::string &ClassName,
                             const std::string &Method) const {
  auto It = SiteIndex.find(ClassName + "." + Method);
  return It == SiteIndex.end() ? nullptr : &Sites[It->second];
}

const SeedVarProvider *
SeedRegistry::findVarProvider(const std::string &ClassName) const {
  auto It = Providers.find(ClassName);
  return It == Providers.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// TestSynthesizer
//===----------------------------------------------------------------------===//

namespace {

/// Builds one synthesized test's statement list.
class TestBuilder {
public:
  TestBuilder(const SeedRegistry &Registry, const ProgramInfo &Info,
              const std::string &SharedClassName)
      : Registry(Registry), Info(Info), SharedClassName(SharedClassName) {}

  /// Inlines statements [0, Count) of \p Seed with fresh names; returns the
  /// rename map used.
  RenameMap inlinePrefix(const TestDecl *Seed, size_t Count) {
    RenameMap Renames;
    std::string Tag = formatString("_b%u", BlockCounter++);
    for (const StmtPtr &S : Seed->Body->stmts())
      if (const auto *Decl = dyn_cast<VarDeclStmt>(S.get()))
        Renames[Decl->name()] = Decl->name() + Tag;
    for (size_t I = 0; I < Count && I < Seed->Body->stmts().size(); ++I)
      Stmts.push_back(cloneStmt(Seed->Body->stmts()[I].get(), Renames));
    return Renames;
  }

  /// Materializes \p Plan into statements; returns the variable holding the
  /// produced instance.  \p Hint names an already-materialized instance of
  /// the right class that a FromSeed leaf may reuse.
  Result<std::string> applyPlan(const ProvidePlan &Plan,
                                const std::string &Hint);

  /// Materializes an unconstrained instance of \p ClassName from a seed.
  Result<std::string> materializeFromSeed(const std::string &ClassName);

  /// Builds argument expressions for a call of \p Site's method where
  /// parameter \p ConstrainedParam (1-based; 0 = none) is replaced by
  /// \p ConstrainedVar.  Non-constrained VarRef operands are resolved by
  /// inlining the site's prefix once.
  Result<std::vector<ExprPtr>> buildArgs(const SeedCallSite &Site,
                                         int ConstrainedParam,
                                         const std::string &ConstrainedVar);

  std::vector<StmtPtr> takeStmts() { return std::move(Stmts); }
  void append(StmtPtr S) { Stmts.push_back(std::move(S)); }

  std::string freshVar() { return formatString("__v%u", VarCounter++); }

  std::string SharedVar; ///< Materialized lazily on first SharedObject use.

private:
  const SeedRegistry &Registry;
  const ProgramInfo &Info;
  std::string SharedClassName;
  std::vector<StmtPtr> Stmts;
  unsigned BlockCounter = 0;
  unsigned VarCounter = 0;
};

ExprPtr makeVarRef(const std::string &Name) {
  return std::make_unique<VarRefExpr>(Name, SourceLoc{});
}

} // namespace

Result<std::vector<ExprPtr>>
TestBuilder::buildArgs(const SeedCallSite &Site, int ConstrainedParam,
                       const std::string &ConstrainedVar) {
  // Inline the site's prefix only when some non-constrained operand needs
  // a variable from it.
  bool NeedsPrefix = false;
  for (size_t I = 0; I != Site.Args.size(); ++I) {
    if (static_cast<int>(I) + 1 == ConstrainedParam)
      continue;
    if (Site.Args[I]->kind() == Expr::Kind::VarRef)
      NeedsPrefix = true;
  }
  RenameMap Renames;
  if (NeedsPrefix)
    Renames = inlinePrefix(Site.Test, Site.StmtIndex);

  std::vector<ExprPtr> Args;
  for (size_t I = 0; I != Site.Args.size(); ++I) {
    if (static_cast<int>(I) + 1 == ConstrainedParam) {
      Args.push_back(makeVarRef(ConstrainedVar));
      continue;
    }
    Args.push_back(cloneExpr(Site.Args[I], Renames));
  }
  return Args;
}

Result<std::string>
TestBuilder::materializeFromSeed(const std::string &ClassName) {
  if (const SeedVarProvider *Provider = Registry.findVarProvider(ClassName)) {
    // Inline through the object's last use: the seed may drive it into the
    // state conducive for the race (e.g. a queue with elements).
    RenameMap Renames =
        inlinePrefix(Provider->Test, Provider->LastUseIndex + 1);
    return Renames.at(Provider->VarName);
  }
  // No seed variable of this type: fall back to direct construction when
  // the class needs no constructor arguments.
  const ClassInfo *Class = Info.findClass(ClassName);
  if (!Class)
    return Error(formatString("no provider for unknown class '%s'",
                              ClassName.c_str()));
  const MethodInfo *Ctor = Class->findMethod(ConstructorName);
  if (Ctor && !Ctor->ParamTypes.empty())
    return Error(formatString("no seed provides an instance of '%s'",
                              ClassName.c_str()));
  std::string Var = freshVar();
  auto New = std::make_unique<NewExpr>(ClassName, std::vector<ExprPtr>{},
                                       SourceLoc{});
  append(std::make_unique<VarDeclStmt>(Var, Type::classTy(ClassName),
                                       std::move(New), SourceLoc{}));
  return Var;
}

Result<std::string> TestBuilder::applyPlan(const ProvidePlan &Plan,
                                           const std::string &Hint) {
  switch (Plan.K) {
  case ProvidePlan::Kind::SharedObject: {
    if (!SharedVar.empty())
      return SharedVar;
    if (!Hint.empty())
      return SharedVar = Hint;
    Result<std::string> Var = materializeFromSeed(Plan.ClassName);
    if (!Var)
      return Var;
    return SharedVar = *Var;
  }

  case ProvidePlan::Kind::FromSeed:
    if (!Hint.empty())
      return Hint;
    return materializeFromSeed(Plan.ClassName);

  case ProvidePlan::Kind::ViaSetter: {
    Result<std::string> Base = applyPlan(*Plan.Base, Hint);
    if (!Base)
      return Base;
    Result<std::string> Value = applyPlan(*Plan.Value, "");
    if (!Value)
      return Value;
    const SeedCallSite *Site =
        Registry.findMethodSite(Plan.ClassName, Plan.Method);
    if (!Site)
      return Error(formatString("no seed call site for %s.%s",
                                Plan.ClassName.c_str(), Plan.Method.c_str()));
    Result<std::vector<ExprPtr>> Args =
        buildArgs(*Site, Plan.ConstrainedParam, *Value);
    if (!Args)
      return Args.error();
    auto Call = std::make_unique<CallExpr>(makeVarRef(*Base), Plan.Method,
                                           Args.take(), SourceLoc{});
    append(std::make_unique<ExprStmt>(std::move(Call), SourceLoc{}));
    return Base;
  }

  case ProvidePlan::Kind::ViaConstructor: {
    Result<std::string> Value = applyPlan(*Plan.Value, "");
    if (!Value)
      return Value;
    const SeedCallSite *Site =
        Registry.findMethodSite(Plan.ClassName, ConstructorName);
    if (!Site)
      return Error(formatString("no seed constructor site for %s",
                                Plan.ClassName.c_str()));
    Result<std::vector<ExprPtr>> Args =
        buildArgs(*Site, Plan.ConstrainedParam, *Value);
    if (!Args)
      return Args.error();
    std::string Var = freshVar();
    auto New = std::make_unique<NewExpr>(Plan.ClassName, Args.take(),
                                         SourceLoc{});
    append(std::make_unique<VarDeclStmt>(Var, Type::classTy(Plan.ClassName),
                                         std::move(New), SourceLoc{}));
    return Var;
  }

  case ProvidePlan::Kind::ViaFactory: {
    Result<std::string> Base = applyPlan(*Plan.Base, "");
    if (!Base)
      return Base;
    Result<std::string> Value = applyPlan(*Plan.Value, "");
    if (!Value)
      return Value;
    const SeedCallSite *Site =
        Registry.findMethodSite(Plan.ClassName, Plan.Method);
    if (!Site)
      return Error(formatString("no seed call site for factory %s.%s",
                                Plan.ClassName.c_str(), Plan.Method.c_str()));
    const ClassInfo *Class = Info.findClass(Plan.ClassName);
    assert(Class && "deriver validated the factory class");
    const MethodInfo *Method = Class->findMethod(Plan.Method);
    assert(Method && Method->ReturnType.isClass() &&
           "deriver validated the factory signature");

    Result<std::vector<ExprPtr>> Args =
        buildArgs(*Site, Plan.ConstrainedParam, *Value);
    if (!Args)
      return Args.error();
    std::string Var = freshVar();
    auto Call = std::make_unique<CallExpr>(makeVarRef(*Base), Plan.Method,
                                           Args.take(), SourceLoc{});
    append(std::make_unique<VarDeclStmt>(
        Var, Method->ReturnType, std::move(Call), SourceLoc{}));
    return Var;
  }
  }
  narada_unreachable("unknown plan kind");
}

Result<std::unique_ptr<TestDecl>>
TestSynthesizer::synthesize(const RacyPair &Pair, const SharingPlan &Plan,
                            const std::string &TestName) {
  // Injection point for the containment sweep: a crash while emitting a
  // test must degrade its pair to internal_fault (see ParallelDriver).
  fault::probe("synth.synthesize");
  TestBuilder Builder(Registry, Info, Plan.SharedClassName);

  struct SideResult {
    std::string Receiver;
    std::vector<ExprPtr> Args;
    std::string Method;
  };

  auto BuildSide = [&](const RacySide &Side, const SharingPlan::Side &SidePlan)
      -> Result<SideResult> {
    const SeedCallSite *Site =
        Registry.findMethodSite(Side.ClassName, Side.Method);
    if (!Site)
      return Error(formatString("no seed call site for racy method %s.%s",
                                Side.ClassName.c_str(), Side.Method.c_str()));
    // Collect this side's objects: inline the seed prefix up to (but not
    // including) the invocation of interest — the "suspend before the
    // method of interest" of §3.4.
    RenameMap Renames = Builder.inlinePrefix(Site->Test, Site->StmtIndex);

    SideResult Out;
    Out.Method = Side.Method;
    Out.Receiver = Site->ReceiverVar.empty()
                       ? std::string()
                       : Renames.at(Site->ReceiverVar);

    // Pre-resolve argument expressions from the site.
    for (const Expr *Arg : Site->Args)
      Out.Args.push_back(cloneExpr(Arg, Renames));

    // Constrain the racy root (shareObjects): replace the receiver or the
    // relevant argument with the plan's product.
    if (!SidePlan.Plan)
      return Out;
    if (SidePlan.Root == 0) {
      Result<std::string> Recv = Builder.applyPlan(*SidePlan.Plan,
                                                   Out.Receiver);
      if (!Recv)
        return Recv.error();
      Out.Receiver = *Recv;
    } else {
      size_t ArgIndex = static_cast<size_t>(SidePlan.Root) - 1;
      if (ArgIndex >= Out.Args.size())
        return Error(formatString("constrained parameter %d out of range "
                                  "for %s.%s",
                                  SidePlan.Root, Side.ClassName.c_str(),
                                  Side.Method.c_str()));
      std::string Hint;
      if (const auto *Var = dyn_cast<VarRefExpr>(Out.Args[ArgIndex].get()))
        Hint = Var->name();
      Result<std::string> ArgVar = Builder.applyPlan(*SidePlan.Plan, Hint);
      if (!ArgVar)
        return ArgVar.error();
      Out.Args[ArgIndex] = makeVarRef(*ArgVar);
    }
    return Out;
  };

  Result<SideResult> First = BuildSide(Pair.First, Plan.First);
  if (!First)
    return First.error();
  Result<SideResult> Second = BuildSide(Pair.Second, Plan.Second);
  if (!Second)
    return Second.error();

  auto MakeSpawn = [](SideResult &Side) {
    auto Call = std::make_unique<CallExpr>(makeVarRef(Side.Receiver),
                                           Side.Method, std::move(Side.Args),
                                           SourceLoc{});
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<ExprStmt>(std::move(Call), SourceLoc{}));
    return std::make_unique<SpawnStmt>(
        std::make_unique<BlockStmt>(std::move(Body), SourceLoc{}),
        SourceLoc{});
  };

  std::vector<StmtPtr> Stmts = Builder.takeStmts();
  Stmts.push_back(MakeSpawn(*First));
  Stmts.push_back(MakeSpawn(*Second));

  auto Test = std::make_unique<TestDecl>();
  Test->Name = TestName;
  Test->Body = std::make_unique<BlockStmt>(std::move(Stmts), SourceLoc{});
  return Test;
}
