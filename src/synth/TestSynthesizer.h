//===- synth/TestSynthesizer.h - Narada stage 3 -----------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: turn a racy pair plus its sharing plan into an
/// executable multithreaded test.  The paper collects live objects by
/// re-running seed tests and suspending them before the invocation of
/// interest; because our seed tests are normalized straight-line client
/// programs, "re-run and suspend before statement k" is realized by
/// *inlining the statement prefix* with freshly renamed locals — the
/// inlined locals are exactly the collected object references (O_r, P_r of
/// Algorithm 1), and parameter substitution in the emitted calls plays the
/// role of shareObjects.  The output is a genuine MiniJava client program
/// (cf. the paper's Fig. 3) ending in two spawn blocks that invoke the racy
/// methods concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_TESTSYNTHESIZER_H
#define NARADA_SYNTH_TESTSYNTHESIZER_H

#include "lang/AST.h"
#include "lang/Sema.h"
#include "support/Error.h"
#include "synth/ContextDeriver.h"
#include "synth/RacyPair.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace narada {

/// One client call site within a normalized seed test.
struct SeedCallSite {
  const TestDecl *Test = nullptr;
  size_t StmtIndex = 0;           ///< Statement containing the call.
  std::string ClassName;          ///< Static receiver class.
  std::string Method;
  std::string ReceiverVar;        ///< Empty for 'new' (constructor) sites.
  std::vector<const Expr *> Args; ///< Atomic operands (VarRef or literal).
  bool IsNew = false;
  std::string ResultVar;          ///< Variable bound to the result, if any.
};

/// An object provider: a local of class type within a seed test.
struct SeedVarProvider {
  const TestDecl *Test = nullptr;
  size_t StmtIndex = 0; ///< The declaring statement.
  /// The last statement referencing the variable.  Materialization inlines
  /// the prefix up to here so the collected object carries the state the
  /// seed drove it to (Algorithm 1 collects *live* objects mid-run, not
  /// freshly constructed ones).
  size_t LastUseIndex = 0;
  std::string VarName;
};

/// Indexes normalized seed tests: which seed provides instances of each
/// class, and where each library method is invoked.
class SeedRegistry {
public:
  /// Builds the registry.  Seeds must be normalized and sema-annotated.
  static Result<SeedRegistry> build(const std::vector<const TestDecl *> &Seeds,
                                    const ProgramInfo &Info);

  /// The first call site of Class.Method across all seeds, or nullptr.
  const SeedCallSite *findMethodSite(const std::string &ClassName,
                                     const std::string &Method) const;

  /// The first provider of an instance of \p ClassName, or nullptr.
  const SeedVarProvider *findVarProvider(const std::string &ClassName) const;

  /// All call sites, for diagnostics.
  const std::vector<SeedCallSite> &sites() const { return Sites; }

private:
  std::vector<SeedCallSite> Sites;
  std::map<std::string, size_t> SiteIndex; ///< "Class.method" -> Sites idx.
  std::map<std::string, SeedVarProvider> Providers; ///< By class name.
};

/// Synthesizes one multithreaded test per (racy pair, sharing plan).
class TestSynthesizer {
public:
  TestSynthesizer(const SeedRegistry &Registry, const ProgramInfo &Info)
      : Registry(Registry), Info(Info) {}

  /// Builds the racy test AST.  The produced test contains: inlined seed
  /// prefixes (object collection), context-setting calls (the derived
  /// method sequence Q), and two spawn blocks invoking the racy methods.
  Result<std::unique_ptr<TestDecl>> synthesize(const RacyPair &Pair,
                                               const SharingPlan &Plan,
                                               const std::string &TestName);

private:
  const SeedRegistry &Registry;
  const ProgramInfo &Info;
};

} // namespace narada

#endif // NARADA_SYNTH_TESTSYNTHESIZER_H
