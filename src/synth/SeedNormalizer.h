//===- synth/SeedNormalizer.h - Seed test normalization ---------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites a sequential seed test into the *normalized* form the test
/// synthesizer consumes: straight-line statements where every method call
/// and allocation has only variable references or literals as its receiver
/// and arguments.  Nested calls are hoisted into fresh temporaries.  In this
/// form, "suspend the seed execution before the invocation of interest and
/// collect the objects passed to it" (Algorithm 1's collectObjects) becomes
/// a purely syntactic operation: inline the statement prefix and read off
/// the operand variable names.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_SEEDNORMALIZER_H
#define NARADA_SYNTH_SEEDNORMALIZER_H

#include "lang/AST.h"
#include "lang/Sema.h"
#include "support/Error.h"

#include <memory>

namespace narada {

/// Normalizes \p Seed.  The test must be straight-line (no control flow or
/// spawn) and must have passed Sema so expressions carry types.  Returns a
/// fresh TestDecl with the same name.
Result<std::unique_ptr<TestDecl>> normalizeSeed(const TestDecl &Seed,
                                                const ProgramInfo &Info);

/// True when \p E needs no hoisting as a call operand.
bool isAtomicOperand(const Expr *E);

} // namespace narada

#endif // NARADA_SYNTH_SEEDNORMALIZER_H
