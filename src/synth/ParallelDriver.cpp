//===- synth/ParallelDriver.cpp - Parallel pair-level executor -----------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "synth/ParallelDriver.h"

#include "lang/ASTPrinter.h"
#include "obs/Log.h"
#include "obs/MetricsWire.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Wire.h"
#include "synth/SynthWorker.h"

#include <cstring>
#include <optional>
#include <unordered_map>

using namespace narada;

namespace {

/// Maps a synthesizer failure onto a skip category.  The synthesizer's
/// message families are part of its contract (tests assert on them), so
/// prefix matching here is the lightest classification that keeps Error
/// a plain message type.
SkipReason classifySkip(const Error &E) {
  const std::string &Message = E.message();
  if (startsWith(Message, "no provider for") ||
      startsWith(Message, "no seed provides"))
    return SkipReason::NoSeedProvider;
  if (startsWith(Message, "no seed call site") ||
      startsWith(Message, "no seed constructor site"))
    return SkipReason::NoSeedCallSite;
  if (startsWith(Message, "constrained parameter") ||
      Message.find("is not normalized") != std::string::npos)
    return SkipReason::DerivationMismatch;
  return SkipReason::Other;
}

void countSkip(SkipReason Reason) {
  obs::MetricsRegistry &R = obs::MetricsRegistry::global();
  R.counter("synth.pairs_skipped").inc();
  R.counter(std::string("synth.pairs_skipped.") + skipReasonId(Reason))
      .inc();
}

/// Per-pair state filled by the parallel phases, merged serially.
struct PairSlot {
  SharingPlan Plan;
  std::string Shape;
  bool Attempted = false;
  std::optional<Result<std::unique_ptr<TestDecl>>> Attempt;
  /// Set when this pair's derivation/synthesis task threw: the pair is
  /// committed as an internal_fault skip and never re-attempted (the fault
  /// is assumed deterministic, like every other per-pair outcome).
  bool Faulted = false;
  std::string FaultMessage;
};

/// Marks \p Slot faulted with the message of \p E.  The shape becomes a
/// per-pair sentinel no real shape can collide with, so a faulted lead
/// never absorbs healthy pairs of its (unknown) shape.
void markFaulted(PairSlot &Slot, size_t PairIndex, std::exception_ptr E) {
  Slot.Faulted = true;
  Slot.FaultMessage = describeException(E);
  Slot.Shape = formatString("<internal-fault>#%zu", PairIndex);
}

/// Per-worker pipeline instances: stage objects are cheap wrappers over
/// the shared read-only databases, so giving each worker its own keeps
/// them trivially race-free.
struct WorkerState {
  WorkerState(const AnalysisResult &Analysis, const ProgramInfo &Info,
              const SeedRegistry &Registry, DerivationMemo *Memo)
      : Deriver(Analysis, Info), Synth(Registry, Info) {
    Deriver.setMemo(Memo);
  }
  ContextDeriver Deriver;
  TestSynthesizer Synth;
};

} // namespace

uint64_t narada::pairDerivationSeed(uint64_t Base, size_t PairIndex) {
  // One SplitMix64 step decorrelates the per-pair streams even for
  // consecutive indices; the xor constant keeps index 0 off the base seed.
  RNG Mix(Base ^ (0x9e3779b97f4a7c15ULL * (PairIndex + 1)));
  return Mix.next();
}

// The shape key deduplicating pairs onto one test (the paper synthesizes
// 15 tests for C1's 65 pairs): method pair + effective sharing paths +
// shared class.
std::string narada::synthShapeKey(const RacyPair &Pair,
                                  const SharingPlan &Plan) {
  return formatString(
      "%s.%s|%s.%s|%s|%s|%s", Pair.First.ClassName.c_str(),
      Pair.First.Method.c_str(), Pair.Second.ClassName.c_str(),
      Pair.Second.Method.c_str(), Plan.First.EffectivePath.str().c_str(),
      Plan.Second.EffectivePath.str().c_str(),
      Plan.SharedClassName.c_str());
}

SharingPlan narada::deriveSynthPlan(ContextDeriver &Deriver,
                                    const RacyPair &Pair, size_t PairIndex,
                                    const NaradaOptions &Options) {
  std::optional<uint64_t> PairSeed;
  if (Options.DerivationSeed)
    PairSeed = pairDerivationSeed(*Options.DerivationSeed, PairIndex);
  SharingPlan Plan = Deriver.deriveSharing(Pair, PairSeed);
  if (!Options.EnableContextDerivation) {
    // Ablation: strip all constraints; both sides get fresh instances.
    auto Fresh = [&](SharingPlan::Side &Side, const RacySide &RS) {
      Side.Plan = std::make_unique<ProvidePlan>();
      Side.Plan->K = ProvidePlan::Kind::FromSeed;
      Side.Plan->ClassName = Deriver.rootClassOf(RS);
      Side.EffectivePath = AccessPath(RS.BasePath.Root, {});
    };
    Fresh(Plan.First, Pair.First);
    Fresh(Plan.Second, Pair.Second);
    Plan.Complete = false;
  }
  return Plan;
}

std::vector<CommitDecision>
narada::planCommit(const std::vector<std::string> &Shapes,
                   const std::function<bool(size_t)> &SynthesisSucceeds,
                   unsigned MaxTests) {
  std::vector<CommitDecision> Out(Shapes.size());
  std::unordered_map<std::string, size_t> TestByShape;
  size_t TestCount = 0;
  for (size_t I = 0; I < Shapes.size(); ++I) {
    auto Existing = TestByShape.find(Shapes[I]);
    if (Existing != TestByShape.end()) {
      Out[I] = {CommitDecision::Kind::Join, Existing->second};
      continue;
    }
    if (MaxTests && TestCount >= MaxTests) {
      Out[I] = {CommitDecision::Kind::BudgetSkip, 0};
      continue;
    }
    if (SynthesisSucceeds(I)) {
      Out[I] = {CommitDecision::Kind::NewTest, TestCount};
      TestByShape[Shapes[I]] = TestCount++;
    } else {
      // Not recorded: a later pair of this shape re-attempts, like the
      // serial loop (failures are deterministic, so it fails the same
      // way and yields its own skip entry).
      Out[I] = {CommitDecision::Kind::FailSkip, 0};
    }
  }
  return Out;
}

namespace {

/// Per-pair state of the isolated stage: what unit replies (or crash
/// classifications) established, mirroring PairSlot without the
/// in-process Plan/Attempt objects (those live in the workers).
struct IsoSlot {
  std::string Shape;
  bool Faulted = false;
  SkipReason FaultReason = SkipReason::InternalFault;
  std::string FaultMessage;
  bool Attempted = false;
  bool AttemptOk = false;
  std::string Source; ///< Placeholder-named test source (AttemptOk).
  bool Complete = false;
  std::string SharedClass;
  std::string ErrMessage; ///< Synthesizer error message (classification).
  std::string ErrStr;     ///< Full error text (skip record).
};

void markIsoFaulted(IsoSlot &Slot, size_t PairIndex, SkipReason Reason,
                    std::string Message) {
  Slot.Faulted = true;
  Slot.FaultReason = Reason;
  Slot.FaultMessage = std::move(Message);
  Slot.Shape = formatString("<internal-fault>#%zu", PairIndex);
}

/// Applies one unit outcome to its slot: hard crashes become WorkerCrash
/// faults carrying the classification; a fault= record (contained soft
/// failure in the worker) mirrors the in-process internal_fault path;
/// otherwise \p Apply sees the parsed reply.  Metric deltas merge either
/// way — the worker did the work even when it failed softly.
template <typename ApplyFn>
void applyOutcome(IsoSlot &Slot, size_t PairIndex,
                  const pool::UnitOutcome &O, ApplyFn Apply) {
  obs::observePoolUnitMicros(O.Micros);
  if (!O.Ok) {
    markIsoFaulted(Slot, PairIndex, SkipReason::WorkerCrash,
                   pool::describeCrash(O));
    return;
  }
  wire::RecordReader Reply(O.Payload);
  obs::mergeMetricsDelta(Reply);
  if (std::optional<std::string> Fault = Reply.get("fault")) {
    markIsoFaulted(Slot, PairIndex, SkipReason::InternalFault, *Fault);
    return;
  }
  Apply(Reply);
}

/// The --isolate synthesis stage: phases A/B run as unit requests against
/// a crash-contained worker pool, then the identical commit walk replays
/// the serial bookkeeping.  Clean runs are byte-identical to the
/// in-process stage; hard-faulted units degrade to worker_crash skips.
SynthStageOutput runIsolatedSynthesisStage(const std::vector<RacyPair> &Pairs,
                                           const NaradaOptions &Options,
                                           const SynthIsolateContext &Iso) {
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  const size_t N = Pairs.size();
  const unsigned WorkerCount =
      resolveJobs(Options.Jobs == 0 ? 0 : Options.Jobs);
  Metrics.gauge("synth.jobs").set(static_cast<int64_t>(WorkerCount));

  pool::ProcessPool Pool(Iso.Isolate.poolOptions(
      WorkerCount,
      synthworker::encodeSetup(Iso, Options, obs::Span::currentPath())));

  std::vector<IsoSlot> Slots(N);

  // Phase A: every pair's shape, derived out of process.
  {
    std::vector<std::string> Units;
    Units.reserve(N);
    for (size_t I = 0; I < N; ++I)
      Units.push_back(synthworker::encodeUnit("derive", I, Pairs[I].key()));
    std::vector<pool::UnitOutcome> Outcomes = Pool.run(Units);
    for (size_t I = 0; I < N; ++I)
      applyOutcome(Slots[I], I, Outcomes[I],
                   [&](const wire::RecordReader &Reply) {
                     Slots[I].Shape = Reply.getOr("shape", "");
                     if (Slots[I].Shape.empty())
                       markIsoFaulted(Slots[I], I, SkipReason::WorkerCrash,
                                      "hard fault: protocol-error: derive "
                                      "reply carried no shape");
                   });
  }

  // Phase B: one synthesis unit per first-of-shape lead.
  auto ApplySynthReply = [](IsoSlot &Slot, const wire::RecordReader &Reply) {
    Slot.Attempted = true;
    Slot.AttemptOk = Reply.getBool("ok");
    if (Slot.AttemptOk) {
      Slot.Source = Reply.getOr("source", "");
      Slot.Complete = Reply.getBool("complete");
      Slot.SharedClass = Reply.getOr("shared_class", "");
    } else {
      Slot.ErrMessage = Reply.getOr("err_message", "");
      Slot.ErrStr = Reply.getOr("err_str", Slot.ErrMessage);
    }
  };
  std::vector<size_t> Leads;
  {
    std::unordered_map<std::string, size_t> FirstOfShape;
    for (size_t I = 0; I < N; ++I)
      if (!Slots[I].Faulted &&
          FirstOfShape.try_emplace(Slots[I].Shape, I).second)
        Leads.push_back(I);
  }
  {
    std::vector<std::string> Units;
    Units.reserve(Leads.size());
    for (size_t I : Leads)
      Units.push_back(synthworker::encodeUnit("synth", I, Pairs[I].key()));
    std::vector<pool::UnitOutcome> Outcomes = Pool.run(Units);
    for (size_t K = 0; K < Leads.size(); ++K)
      applyOutcome(Slots[Leads[K]], Leads[K], Outcomes[K],
                   [&](const wire::RecordReader &Reply) {
                     ApplySynthReply(Slots[Leads[K]], Reply);
                   });
  }

  // Commit: the identical serial walk; re-attempts for non-lead pairs of
  // failed shapes go to the pool one unit at a time, exactly when the
  // serial loop would have attempted them.
  std::vector<std::string> Shapes;
  Shapes.reserve(N);
  for (const IsoSlot &Slot : Slots)
    Shapes.push_back(Slot.Shape);

  auto SynthesisSucceeds = [&](size_t I) {
    IsoSlot &Slot = Slots[I];
    if (Slot.Faulted)
      return false;
    if (!Slot.Attempted) {
      std::vector<pool::UnitOutcome> One = Pool.run(
          {synthworker::encodeUnit("synth", I, Pairs[I].key())});
      applyOutcome(Slot, I, One[0], [&](const wire::RecordReader &Reply) {
        ApplySynthReply(Slot, Reply);
      });
      if (Slot.Faulted)
        return false;
    }
    return Slot.AttemptOk;
  };
  std::vector<CommitDecision> Decisions =
      planCommit(Shapes, SynthesisSucceeds, Options.MaxTests);

  SynthStageOutput Out;
  for (size_t I = 0; I < N; ++I) {
    const RacyPair &Pair = Pairs[I];
    IsoSlot &Slot = Slots[I];
    if (Slot.Faulted) {
      NARADA_LOG_WARN("pair %s %s, contained: %s", Pair.key().c_str(),
                      Slot.FaultReason == SkipReason::WorkerCrash
                          ? "hard-faulted its worker"
                          : "crashed during synthesis",
                      Slot.FaultMessage.c_str());
      Out.Skipped.push_back(
          {Pair.key(), Slot.FaultReason, Slot.FaultMessage});
      countSkip(Slot.FaultReason);
      continue;
    }
    switch (Decisions[I].K) {
    case CommitDecision::Kind::Join: {
      SynthesizedTestInfo &Test = Out.Tests[Decisions[I].TestIndex];
      Test.CoveredPairKeys.push_back(Pair.key());
      Test.CandidateLabels.emplace_back(Pair.First.AccessLabel,
                                        Pair.Second.AccessLabel);
      Metrics.counter("synth.pairs_deduped").inc();
      break;
    }
    case CommitDecision::Kind::BudgetSkip:
      Out.Skipped.push_back({Pair.key(), SkipReason::TestBudget, ""});
      countSkip(SkipReason::TestBudget);
      break;
    case CommitDecision::Kind::FailSkip: {
      SkipReason Reason = classifySkip(Error(Slot.ErrMessage));
      NARADA_LOG_DEBUG("skip %s (%s): %s", Pair.key().c_str(),
                       skipReasonId(Reason), Slot.ErrStr.c_str());
      Out.Skipped.push_back({Pair.key(), Reason, Slot.ErrStr});
      countSkip(Reason);
      break;
    }
    case CommitDecision::Kind::NewTest: {
      SynthesizedTestInfo TestInfo;
      TestInfo.Name = formatString("%s_%03zu", Options.TestNamePrefix.c_str(),
                                   Out.Tests.size());
      // The worker printed the test under the placeholder; splice in the
      // final dense name the commit order just assigned.
      TestInfo.SourceText = Slot.Source;
      size_t At = TestInfo.SourceText.find(SynthPlaceholderName);
      if (At != std::string::npos)
        TestInfo.SourceText.replace(At, std::strlen(SynthPlaceholderName),
                                    TestInfo.Name);
      TestInfo.Representative = Pair;
      TestInfo.CoveredPairKeys.push_back(Pair.key());
      TestInfo.ContextComplete = Slot.Complete;
      TestInfo.SharedClassName = Slot.SharedClass;
      TestInfo.Field = Pair.Field;
      TestInfo.CandidateLabels.emplace_back(Pair.First.AccessLabel,
                                            Pair.Second.AccessLabel);
      Out.SynthesizedSource += TestInfo.SourceText + "\n";
      Out.Tests.push_back(std::move(TestInfo));
      Metrics.counter("synth.tests_synthesized").inc();
      if (!Slot.Complete)
        Metrics.counter("synth.tests_partial_context").inc();
      break;
    }
    }
  }
  obs::publishPoolStats(Pool.stats());
  return Out;
}

} // namespace

SynthStageOutput
narada::runSynthesisStage(const AnalysisResult &Analysis,
                          const ProgramInfo &Info,
                          const SeedRegistry &Registry,
                          const std::vector<RacyPair> &Pairs,
                          const NaradaOptions &Options,
                          const SynthIsolateContext *Iso) {
  if (Iso && Iso->Isolate.Enabled)
    return runIsolatedSynthesisStage(Pairs, Options, *Iso);
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();
  const size_t N = Pairs.size();
  const unsigned Jobs = resolveJobs(Options.Jobs == 0 ? 0 : Options.Jobs);

  // The serving layer may supply a memo pre-warmed by earlier runs; memo
  // contents only short-circuit deterministic derivations, so a warm memo
  // is a pure speedup with byte-identical output.
  DerivationMemo LocalMemo;
  DerivationMemo *Memo =
      Options.Caches && Options.Caches->SharedMemo ? Options.Caches->SharedMemo
                                                   : &LocalMemo;
  std::vector<std::unique_ptr<WorkerState>> Workers;
  const unsigned WorkerCount = Jobs > 1 ? Jobs : 1;
  Workers.reserve(WorkerCount);
  for (unsigned W = 0; W < WorkerCount; ++W)
    Workers.push_back(
        std::make_unique<WorkerState>(Analysis, Info, Registry, Memo));

  std::vector<PairSlot> Slots(N);

  // Worker spans root under the submitting thread's innermost span
  // (normally "pipeline.synth"); precomputed names keep the hot loop free
  // of formatting.
  obs::SpanParent Parent{obs::Span::currentPath()};
  std::vector<std::string> WorkerNames;
  for (unsigned W = 0; W < WorkerCount; ++W)
    WorkerNames.push_back(formatString("worker%u", W));

  std::optional<ThreadPool> Pool;
  if (Jobs > 1)
    Pool.emplace(Jobs);
  Metrics.gauge("synth.jobs").set(static_cast<int64_t>(WorkerCount));

  // Runs Body over [0, Count) item indices: inline at --jobs 1 (serial
  // span layout, zero thread overhead), stolen-from-deques otherwise.
  // Either way a throwing Body is captured per-item and returned instead
  // of unwinding the stage, so serial and parallel runs degrade the same
  // way.
  auto ForEach = [&](size_t Count,
                     const std::function<void(size_t, unsigned)> &Body)
      -> std::vector<ThreadPool::TaskFailure> {
    if (!Pool) {
      std::vector<ThreadPool::TaskFailure> Failures;
      for (size_t I = 0; I < Count; ++I) {
        try {
          Body(I, 0);
        } catch (...) {
          Failures.push_back({I, std::current_exception()});
        }
      }
      return Failures;
    }
    return Pool->parallelFor(Count, [&](size_t I, unsigned W) {
      obs::Span WorkerSpan(WorkerNames[W], Parent);
      Body(I, W);
    });
  };

  // Phase A: derive every pair's sharing plan and shape key.
  std::vector<ThreadPool::TaskFailure> DeriveFailures =
      ForEach(N, [&](size_t I, unsigned W) {
    WorkerState &WS = *Workers[W];
    PairSlot &Slot = Slots[I];
    const RacyPair &Pair = Pairs[I];
    fault::ScopedUnit Unit(I);
    obs::TraceScope Scope("pair", I);
    fault::probe("synth.pair_task");
    {
      obs::Span DeriveSpan("derive");
      Slot.Plan = deriveSynthPlan(WS.Deriver, Pair, I, Options);
    }
    Slot.Shape = synthShapeKey(Pair, Slot.Plan);
  });
  for (ThreadPool::TaskFailure &F : DeriveFailures)
    markFaulted(Slots[F.Item], F.Item, std::move(F.Error));

  // Phase B: synthesize each shape's first pair under a placeholder name.
  // Later pairs of a shape only need their own attempt when the first one
  // failed (rare) — the commit walk triggers those on demand.  Faulted
  // pairs carry sentinel shapes, so each stays a lead of its own and never
  // absorbs healthy pairs.
  std::vector<size_t> Leads;
  {
    std::unordered_map<std::string, size_t> FirstOfShape;
    for (size_t I = 0; I < N; ++I)
      if (!Slots[I].Faulted &&
          FirstOfShape.try_emplace(Slots[I].Shape, I).second)
        Leads.push_back(I);
  }
  std::vector<ThreadPool::TaskFailure> SynthFailures =
      ForEach(Leads.size(), [&](size_t LeadIdx, unsigned W) {
    size_t I = Leads[LeadIdx];
    PairSlot &Slot = Slots[I];
    fault::ScopedUnit Unit(I);
    obs::TraceScope Scope("pair", I);
    obs::Span SynthesizeSpan("synthesize");
    Slot.Attempt.emplace(
        Workers[W]->Synth.synthesize(Pairs[I], Slot.Plan, SynthPlaceholderName));
    Slot.Attempted = true;
  });
  for (ThreadPool::TaskFailure &F : SynthFailures) {
    size_t I = Leads[F.Item];
    markFaulted(Slots[I], I, std::move(F.Error));
  }

  // Commit: replay the serial bookkeeping in canonical pair order.
  std::vector<std::string> Shapes;
  Shapes.reserve(N);
  for (const PairSlot &Slot : Slots)
    Shapes.push_back(Slot.Shape);

  auto SynthesisSucceeds = [&](size_t I) {
    PairSlot &Slot = Slots[I];
    if (Slot.Faulted)
      return false;
    if (!Slot.Attempted) {
      try {
        fault::ScopedUnit Unit(I);
        obs::TraceScope Scope("pair", I);
        obs::Span SynthesizeSpan("synthesize");
        Slot.Attempt.emplace(Workers[0]->Synth.synthesize(
            Pairs[I], Slot.Plan, SynthPlaceholderName));
        Slot.Attempted = true;
      } catch (...) {
        markFaulted(Slot, I, std::current_exception());
        return false;
      }
    }
    return Slot.Attempt->hasValue();
  };
  std::vector<CommitDecision> Decisions =
      planCommit(Shapes, SynthesisSucceeds, Options.MaxTests);

  SynthStageOutput Out;
  for (size_t I = 0; I < N; ++I) {
    const RacyPair &Pair = Pairs[I];
    PairSlot &Slot = Slots[I];
    if (Slot.Faulted) {
      // Contained crash: the pair degrades to a structured skip no matter
      // what the commit plan would have decided (its sentinel shape can
      // only yield FailSkip or BudgetSkip anyway).
      NARADA_LOG_WARN("pair %s crashed during synthesis, contained: %s",
                      Pair.key().c_str(), Slot.FaultMessage.c_str());
      Out.Skipped.push_back(
          {Pair.key(), SkipReason::InternalFault, Slot.FaultMessage});
      countSkip(SkipReason::InternalFault);
      continue;
    }
    switch (Decisions[I].K) {
    case CommitDecision::Kind::Join: {
      SynthesizedTestInfo &Test = Out.Tests[Decisions[I].TestIndex];
      Test.CoveredPairKeys.push_back(Pair.key());
      Test.CandidateLabels.emplace_back(Pair.First.AccessLabel,
                                        Pair.Second.AccessLabel);
      Metrics.counter("synth.pairs_deduped").inc();
      break;
    }
    case CommitDecision::Kind::BudgetSkip:
      Out.Skipped.push_back({Pair.key(), SkipReason::TestBudget, ""});
      countSkip(SkipReason::TestBudget);
      break;
    case CommitDecision::Kind::FailSkip: {
      const Error &E = Slot.Attempt->error();
      SkipReason Reason = classifySkip(E);
      NARADA_LOG_DEBUG("skip %s (%s): %s", Pair.key().c_str(),
                       skipReasonId(Reason), E.str().c_str());
      Out.Skipped.push_back({Pair.key(), Reason, E.str()});
      countSkip(Reason);
      break;
    }
    case CommitDecision::Kind::NewTest: {
      std::unique_ptr<TestDecl> Test = Slot.Attempt->take();
      SynthesizedTestInfo TestInfo;
      TestInfo.Name = formatString("%s_%03zu", Options.TestNamePrefix.c_str(),
                                   Out.Tests.size());
      Test->Name = TestInfo.Name;
      TestInfo.SourceText = printTest(*Test);
      TestInfo.Representative = Pair;
      TestInfo.CoveredPairKeys.push_back(Pair.key());
      TestInfo.ContextComplete = Slot.Plan.Complete;
      TestInfo.SharedClassName = Slot.Plan.SharedClassName;
      TestInfo.Field = Pair.Field;
      TestInfo.CandidateLabels.emplace_back(Pair.First.AccessLabel,
                                            Pair.Second.AccessLabel);
      Out.SynthesizedSource += TestInfo.SourceText + "\n";
      Out.Tests.push_back(std::move(TestInfo));
      Metrics.counter("synth.tests_synthesized").inc();
      if (!Slot.Plan.Complete)
        Metrics.counter("synth.tests_partial_context").inc();
      break;
    }
    }
  }
  return Out;
}
