//===- synth/PairGenerator.cpp - Narada stage 2a -------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "synth/PairGenerator.h"

#include "obs/Metrics.h"
#include "staticrace/PairClassifier.h"
#include "support/RaceKey.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace narada;

std::string RacyPair::key() const {
  std::string A = formatString("%s|%s|%s", First.AccessLabel.c_str(),
                               First.BasePath.str().c_str(),
                               First.IsWrite ? "W" : "R");
  std::string B = formatString("%s|%s|%s", Second.AccessLabel.c_str(),
                               Second.BasePath.str().c_str(),
                               Second.IsWrite ? "W" : "R");
  if (B < A)
    std::swap(A, B);
  return formatString("%s.%s {%s ~ %s}", FieldClassName.c_str(),
                      Field.c_str(), A.c_str(), B.c_str());
}

std::string RacyPair::str() const {
  return formatString("race on %s.%s: %s.%s[%s via %s] vs %s.%s[%s via %s]",
                      FieldClassName.c_str(), Field.c_str(),
                      First.ClassName.c_str(), First.Method.c_str(),
                      First.AccessLabel.c_str(), First.BasePath.str().c_str(),
                      Second.ClassName.c_str(), Second.Method.c_str(),
                      Second.AccessLabel.c_str(),
                      Second.BasePath.str().c_str());
}

bool narada::locksCollideUnderSharing(const AccessRecord &A,
                                      const AccessRecord &B) {
  assert(A.BasePath && B.BasePath && "feasibility needs controllable bases");
  // The synthesized context makes resolve(A.BasePath) == resolve(B.BasePath)
  // == S, and shares nothing else between the two invocations' parameter
  // worlds.  Two objects coincide exactly when both are reached *through* S:
  // lockA = A.Base + suffix and lockB = B.Base + the same suffix.  Monitors
  // without a client path are per-invocation-fresh and never collide.
  for (const auto &LockA : A.HeldLockPaths) {
    if (!LockA || !LockA->hasPrefix(*A.BasePath))
      continue;
    std::vector<std::string> SuffixA = LockA->suffixAfter(*A.BasePath);
    for (const auto &LockB : B.HeldLockPaths) {
      if (!LockB || !LockB->hasPrefix(*B.BasePath))
        continue;
      if (LockB->suffixAfter(*B.BasePath) == SuffixA)
        return true;
    }
  }
  return false;
}

std::vector<RacyPair>
narada::generatePairs(const AnalysisResult &Analysis,
                      const PairGenOptions &Options) {
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::global();

  // Group accesses by the field they touch.
  std::map<std::string, std::vector<const AccessRecord *>> ByField;
  for (const AccessRecord &R : Analysis.Accesses) {
    if (!Options.FocusClass.empty() && R.ClassName != Options.FocusClass)
      continue;
    if (Options.DiscardConstructorAccesses && R.InConstructor) {
      Metrics.counter("pairgen.accesses_dropped.constructor").inc();
      continue;
    }
    if (!R.BasePath) {
      // Not controllable: a client cannot stage the sharing.
      Metrics.counter("pairgen.accesses_dropped.uncontrollable").inc();
      continue;
    }
    ByField[R.FieldClassName + "." + R.Field].push_back(&R);
  }

  std::vector<RacyPair> Pairs;
  std::set<std::string> Seen;

  auto MakeSide = [](const AccessRecord &R) {
    RacySide Side;
    Side.ClassName = R.ClassName;
    Side.Method = R.Method;
    Side.AccessLabel = R.staticLabel();
    Side.BasePath = *R.BasePath;
    Side.IsWrite = R.IsWrite;
    return Side;
  };

  const staticrace::ModuleSummary *Static = Options.Static;
  const bool Prefilter = Static && Options.StaticPrefilter;
  std::set<std::string> PrunedKeys;

  auto MakePair = [&](const AccessRecord &A, const AccessRecord &B) {
    RacyPair Pair;
    Pair.First = MakeSide(A);
    Pair.Second = MakeSide(B);
    Pair.Field = A.Field;
    Pair.FieldClassName = A.FieldClassName;
    return Pair;
  };

  for (const auto &[FieldKey, Records] : ByField) {
    for (const AccessRecord *A : Records) {
      // Every generated pair is anchored on an unprotected access; with
      // the prefilter on, protected anchors are still scanned so the
      // guarded candidate space can be counted as pruned.
      const bool Anchor = A->Unprotected;
      if (!Anchor && !Prefilter)
        continue;
      for (const AccessRecord *B : Records) {
        if (!A->IsWrite && !B->IsWrite) {
          if (Anchor)
            Metrics.counter("pairgen.candidates_rejected.read_read").inc();
          continue; // Read-read never races.
        }
        std::optional<staticrace::PairVerdict> Verdict;
        if (Static)
          Verdict = staticrace::classifyRecordPair(*Static, *A, *B);
        if (Prefilter &&
            Verdict == staticrace::PairVerdict::MustGuarded) {
          // Provably serialized under the staged sharing: prune before
          // the dynamic feasibility checks even look at it.
          PrunedKeys.insert(MakePair(*A, *B).key());
          continue;
        }
        if (!Anchor)
          continue; // Scanned for pruning accounting only.
        if (locksCollideUnderSharing(*A, *B)) {
          Metrics.counter("pairgen.candidates_rejected.lock_collision")
              .inc();
          continue;
        }

        RacyPair Pair = MakePair(*A, *B);
        if (Verdict) {
          Pair.Verdict = *Verdict;
          Pair.Classified = true;
          // No counter here: certification must not perturb the pinned
          // bench counters of the default pipeline (triage counts it).
          Pair.CertifiedMustRace =
              *Verdict == staticrace::PairVerdict::MayRace &&
              staticrace::certifyRecordPair(*Static, *A, *B) ==
                  staticrace::PairVerdict::MustRace;
        }
        if (Seen.insert(Pair.key()).second)
          Pairs.push_back(std::move(Pair));
      }
    }
  }

  if (Static) {
    if (Prefilter) {
      // Count keys that exist *only* in the pruned space: a key that some
      // other (unprotected, non-guarded) record combination still
      // generated was not removed from the pipeline.
      size_t Pruned = 0;
      for (const std::string &Key : PrunedKeys)
        if (!Seen.count(Key))
          ++Pruned;
      Metrics.counter("staticrace.pairs_pruned").inc(Pruned);
    }
    size_t Unknowns = 0;
    for (const RacyPair &Pair : Pairs)
      if (Pair.Verdict == staticrace::PairVerdict::Unknown)
        ++Unknowns;
    Metrics.counter("staticrace.unknown").inc(Unknowns);
    if (Options.StaticRank) {
      auto Rank = [](const RacyPair &Pair) {
        switch (Pair.Verdict) {
        case staticrace::PairVerdict::MustRace: // Pair.Verdict never holds
        case staticrace::PairVerdict::MayRace:  // it, but rank it topmost.
          return 0;
        case staticrace::PairVerdict::Unknown:
          return 1;
        case staticrace::PairVerdict::MustGuarded:
          break;
        }
        return 2;
      };
      std::stable_sort(Pairs.begin(), Pairs.end(),
                       [&](const RacyPair &A, const RacyPair &B) {
                         return Rank(A) < Rank(B);
                       });
      Metrics.counter("staticrace.pairs_ranked").inc(Pairs.size());
    }
  }
  return Pairs;
}

std::map<std::string, std::string>
narada::staticVerdictsByRaceKey(const std::vector<RacyPair> &Pairs) {
  auto RankOf = [](const std::string &Name) {
    if (Name == "MustRace")
      return 0;
    if (Name == "MayRace")
      return 1;
    if (Name == "Unknown")
      return 2;
    return 3; // MustGuarded
  };
  std::map<std::string, std::string> Out;
  for (const RacyPair &Pair : Pairs) {
    if (!Pair.Classified)
      continue;
    // Reproduce RaceReport::key(), escaping and all (support/RaceKey.h).
    std::string Key = makeRaceKey(Pair.FieldClassName, Pair.Field,
                                  Pair.First.AccessLabel,
                                  Pair.Second.AccessLabel);
    std::string Name = Pair.CertifiedMustRace
                           ? "MustRace"
                           : staticrace::verdictName(Pair.Verdict);
    auto [It, Inserted] = Out.emplace(Key, Name);
    if (!Inserted && RankOf(Name) < RankOf(It->second))
      It->second = Name;
  }
  return Out;
}
