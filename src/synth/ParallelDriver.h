//===- synth/ParallelDriver.h - Parallel pair-level executor ----*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans the post-PairGenerator stages — context derivation (the Q queries
/// of Fig. 10) and test synthesis (Algorithm 1) — out across racy pair
/// candidates on a work-stealing thread pool, then commits the results in
/// canonical pair order so the output is byte-identical to a serial run:
///
///   phase A (parallel): derive every pair's SharingPlan + shape key.
///       Randomized setter selection stays reproducible because each pair
///       gets a private RNG split from DerivationSeed by pair *index*, not
///       a shared sequential stream.
///   phase B (parallel): synthesize one test per first-of-shape pair,
///       under a placeholder name (final names depend on commit order).
///   commit (serial):   walk pairs in canonical order, dedup by shape,
///       apply the test budget, assign final dense names, and classify
///       failures — exactly the serial loop's semantics, driven by
///       planCommit() below.
///
/// Workers hold their own ContextDeriver/TestSynthesizer instances and
/// share one DerivationMemo; per-worker obs::Spans
/// ("pipeline.synth.worker<K>.derive") keep the phase tree honest across
/// threads.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_PARALLELDRIVER_H
#define NARADA_SYNTH_PARALLELDRIVER_H

#include "synth/Narada.h"
#include "synth/TestSynthesizer.h"

#include <functional>
#include <string>
#include <vector>

namespace narada {

/// What the commit walk decided for one canonical pair index.
struct CommitDecision {
  enum class Kind {
    NewTest,    ///< First successful synthesis of its shape: a new test.
    Join,       ///< Its shape already has a test: covered by that test.
    BudgetSkip, ///< MaxTests was reached before its shape got a test.
    FailSkip,   ///< Synthesis failed (its shape has no test yet).
  };
  Kind K = Kind::FailSkip;
  size_t TestIndex = 0; ///< Index into the emitted tests (NewTest/Join).
};

/// The deterministic commit step: walks \p Shapes in canonical order and
/// replays the serial loop's bookkeeping — dedup onto the first success of
/// each shape, budget-skip new shapes once \p MaxTests (0 = unlimited)
/// tests exist, and re-attempt shapes whose earlier pairs all failed.
/// \p SynthesisSucceeds is consulted lazily, exactly for the pairs the
/// serial loop would have attempted.  Pure apart from that callback, and
/// independent of how phases A/B were scheduled — this is what makes the
/// parallel run's output order-identical to the serial run's (exercised
/// directly by tests/property_test.cpp on randomized shape sets).
std::vector<CommitDecision>
planCommit(const std::vector<std::string> &Shapes,
           const std::function<bool(size_t)> &SynthesisSucceeds,
           unsigned MaxTests);

/// Splits the user-visible derivation seed into an independent stream
/// seed for pair \p PairIndex (SplitMix over base xor index).
uint64_t pairDerivationSeed(uint64_t Base, size_t PairIndex);

/// The shape key deduplicating pairs onto one test — shared between the
/// in-process driver and the isolated worker so both commit identically.
std::string synthShapeKey(const RacyPair &Pair, const SharingPlan &Plan);

/// Synthesized tests are renamed at commit time (names are dense in
/// canonical order, which workers cannot know); this stand-in never
/// reaches output.
inline constexpr const char *SynthPlaceholderName = "narada_uncommitted";

/// Derives pair \p PairIndex's sharing plan exactly as the synthesis
/// stage does: per-pair seed split, derivation, and the
/// EnableContextDerivation=false ablation.  Span-free so in-process and
/// isolated callers each wrap it in their own "derive" span.
SharingPlan deriveSynthPlan(ContextDeriver &Deriver, const RacyPair &Pair,
                            size_t PairIndex, const NaradaOptions &Options);

/// Everything the synthesis stage produces; spliced into NaradaResult.
struct SynthStageOutput {
  std::vector<SynthesizedTestInfo> Tests;
  std::vector<SkippedPair> Skipped;
  /// All synthesized test sources, newline-joined, for the final
  /// recompile pass.
  std::string SynthesizedSource;
};

/// What an isolated (--isolate) synthesis stage needs to re-dispatch its
/// units into worker subprocesses: the worker rebuilds the pipeline state
/// from the same inputs (deterministically), so only the original source
/// and seed names travel, not the derived structures.
struct SynthIsolateContext {
  pool::IsolateOptions Isolate;
  std::string LibrarySource;
  std::vector<std::string> SeedNames;
};

/// Runs stages 2b+3 over \p Pairs with Options.Jobs workers (1 = inline on
/// the calling thread, 0 = one per hardware thread).  The output is
/// byte-identical for every job count given the same inputs and
/// DerivationSeed.  With \p Iso non-null, units run in crash-contained
/// worker subprocesses instead of threads (clean runs byte-identical to
/// in-process; hard-faulted units become worker_crash skips).
SynthStageOutput runSynthesisStage(const AnalysisResult &Analysis,
                                   const ProgramInfo &Info,
                                   const SeedRegistry &Registry,
                                   const std::vector<RacyPair> &Pairs,
                                   const NaradaOptions &Options,
                                   const SynthIsolateContext *Iso = nullptr);

} // namespace narada

#endif // NARADA_SYNTH_PARALLELDRIVER_H
