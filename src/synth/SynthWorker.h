//===- synth/SynthWorker.h - Isolated synthesis worker service --*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two halves of the --isolate synthesis stage's wire contract
/// (support/ProcessPool.h):
///
///  - the supervisor side encodes the `setup` payload (library source,
///    seed names, and every option that shapes pair generation or
///    derivation) and per-unit requests;
///  - the worker side (Service, hosted by `narada-cli worker`) rebuilds
///    the front half of the pipeline from that setup — every stage up to
///    pair generation is deterministic, so the worker's pair table matches
///    the supervisor's index for index, verified per unit via pair_key —
///    and then serves `derive` and `synth` unit requests.
///
/// Unit replies carry either the result records (shape= for derive;
/// ok=/source=/complete=/shared_class= or ok=0/err_message=/err_str= for
/// synth) or a fault= record for contained soft failures.  Hard faults
/// (SIGSEGV, abort, hang, OOM kill) never produce a reply at all — that is
/// the point of running out of process.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_SYNTHWORKER_H
#define NARADA_SYNTH_SYNTHWORKER_H

#include "support/Wire.h"
#include "synth/ParallelDriver.h"

#include <memory>
#include <string>

namespace narada {
namespace synthworker {

/// Appends the NaradaOptions fields that shape pair generation and
/// derivation — the option half of the setup record, shared with the
/// daemon's submit codec (serve/Protocol.h) so there is exactly one
/// serialization of these knobs.
void encodeSynthOptions(wire::RecordWriter &W, const NaradaOptions &Options);

/// Inverse of encodeSynthOptions; absent keys keep the defaults.
void decodeSynthOptions(const wire::RecordReader &In, NaradaOptions &Options);

/// Encodes the `setup` frame payload for an isolated synthesis stage.
/// \p SpanParent is the supervisor's current span path ("pipeline.synth"),
/// under which the worker roots its per-unit derive/synthesize spans so
/// merged phase trees match the in-process layout.
std::string encodeSetup(const SynthIsolateContext &Iso,
                        const NaradaOptions &Options,
                        const std::string &SpanParent);

/// Encodes one unit request; \p Op is "derive" or "synth".  The pair key
/// rides along so a worker whose rebuilt pair table diverged (it cannot,
/// unless the binary or inputs differ) fails loudly instead of deriving
/// the wrong pair.
std::string encodeUnit(const char *Op, size_t Unit,
                       const std::string &PairKey);

/// Worker-side service: pipeline state rebuilt from a setup record,
/// serving unit requests for the rest of the process's life.
class Service {
public:
  ~Service();

  /// Rebuilds the pipeline front half (compile, normalize, analyze,
  /// static pre-analysis, pair generation, seed registry) from \p Setup.
  static Result<std::unique_ptr<Service>> create(
      const wire::RecordReader &Setup);

  /// Handles one unit request, appending reply records to \p Reply.
  /// Soft failures (synthesizer errors, injected throws) land in the
  /// reply as fault=/err_* records; std::bad_alloc propagates so the
  /// worker loop can answer with a graceful oom crash frame; hard faults
  /// never return.
  void runUnit(const wire::RecordReader &Request, wire::RecordWriter &Reply);

  size_t pairCount() const;

private:
  Service();
  struct State;
  std::unique_ptr<State> S;
};

} // namespace synthworker
} // namespace narada

#endif // NARADA_SYNTH_SYNTHWORKER_H
