//===- synth/SeedNormalizer.cpp - Seed test normalization ----------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "synth/SeedNormalizer.h"

#include "lang/ASTClone.h"
#include "support/StringUtils.h"

using namespace narada;

bool narada::isAtomicOperand(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::VarRef:
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::NullLit:
    return true;
  default:
    return false;
  }
}

namespace {

/// Hoists non-atomic call operands into fresh temporaries.
class Normalizer {
public:
  explicit Normalizer(const ProgramInfo &Info) : Info(Info) {}

  Result<std::unique_ptr<TestDecl>> run(const TestDecl &Seed);

private:
  /// Rewrites \p E (recursively); appends hoisting statements to Out.
  /// When \p HoistSelf is true and E is a call/new, E itself is also
  /// hoisted and replaced by a variable reference.
  Result<ExprPtr> rewrite(const Expr *E, bool HoistSelf,
                          std::vector<StmtPtr> &Out);

  ExprPtr hoist(ExprPtr E, const Type &Ty, std::vector<StmtPtr> &Out) {
    std::string Name = formatString("__t%u", TempCounter++);
    SourceLoc Loc = E->loc();
    Out.push_back(
        std::make_unique<VarDeclStmt>(Name, Ty, std::move(E), Loc));
    auto Ref = std::make_unique<VarRefExpr>(Name, Loc);
    Ref->setType(Ty);
    return Ref;
  }

  const ProgramInfo &Info;
  unsigned TempCounter = 0;
};

} // namespace

Result<ExprPtr> Normalizer::rewrite(const Expr *E, bool HoistSelf,
                                    std::vector<StmtPtr> &Out) {
  switch (E->kind()) {
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    Result<ExprPtr> Base = rewrite(Call->base(), /*HoistSelf=*/true, Out);
    if (!Base)
      return Base.error();
    std::vector<ExprPtr> Args;
    for (const ExprPtr &Arg : Call->args()) {
      Result<ExprPtr> NewArg = rewrite(Arg.get(), /*HoistSelf=*/true, Out);
      if (!NewArg)
        return NewArg.error();
      Args.push_back(NewArg.take());
    }
    auto NewCall = std::make_unique<CallExpr>(Base.take(), Call->method(),
                                              std::move(Args), Call->loc());
    NewCall->setType(Call->type());
    if (!HoistSelf)
      return ExprPtr(std::move(NewCall));
    if (Call->type().isVoid())
      return Error("void call used as an operand", Call->loc().str());
    Type Ty = Call->type();
    return hoist(std::move(NewCall), Ty, Out);
  }

  case Expr::Kind::New: {
    const auto *New = cast<NewExpr>(E);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &Arg : New->args()) {
      Result<ExprPtr> NewArg = rewrite(Arg.get(), /*HoistSelf=*/true, Out);
      if (!NewArg)
        return NewArg.error();
      Args.push_back(NewArg.take());
    }
    auto NewNew = std::make_unique<NewExpr>(New->className(),
                                            std::move(Args), New->loc());
    NewNew->setType(New->type());
    if (!HoistSelf)
      return ExprPtr(std::move(NewNew));
    Type Ty = New->type();
    return hoist(std::move(NewNew), Ty, Out);
  }

  case Expr::Kind::FieldAccess: {
    const auto *Access = cast<FieldAccessExpr>(E);
    Result<ExprPtr> Base = rewrite(Access->base(), /*HoistSelf=*/true, Out);
    if (!Base)
      return Base.error();
    auto NewAccess = std::make_unique<FieldAccessExpr>(
        Base.take(), Access->field(), Access->loc());
    NewAccess->setType(Access->type());
    if (!HoistSelf)
      return ExprPtr(std::move(NewAccess));
    Type Ty = Access->type();
    return hoist(std::move(NewAccess), Ty, Out);
  }

  case Expr::Kind::Unary: {
    const auto *Unary = cast<UnaryExpr>(E);
    Result<ExprPtr> Operand =
        rewrite(Unary->operand(), /*HoistSelf=*/false, Out);
    if (!Operand)
      return Operand.error();
    auto NewUnary = std::make_unique<UnaryExpr>(Unary->op(), Operand.take(),
                                                Unary->loc());
    NewUnary->setType(Unary->type());
    if (!HoistSelf)
      return ExprPtr(std::move(NewUnary));
    Type Ty = Unary->type();
    return hoist(std::move(NewUnary), Ty, Out);
  }

  case Expr::Kind::Binary: {
    const auto *Binary = cast<BinaryExpr>(E);
    Result<ExprPtr> LHS = rewrite(Binary->lhs(), /*HoistSelf=*/false, Out);
    if (!LHS)
      return LHS.error();
    Result<ExprPtr> RHS = rewrite(Binary->rhs(), /*HoistSelf=*/false, Out);
    if (!RHS)
      return RHS.error();
    auto NewBinary = std::make_unique<BinaryExpr>(
        Binary->op(), LHS.take(), RHS.take(), Binary->loc());
    NewBinary->setType(Binary->type());
    if (!HoistSelf)
      return ExprPtr(std::move(NewBinary));
    Type Ty = Binary->type();
    return hoist(std::move(NewBinary), Ty, Out);
  }

  case Expr::Kind::Rand: {
    ExprPtr Clone = cloneExpr(E);
    if (!HoistSelf)
      return Clone;
    return hoist(std::move(Clone), Type::intTy(), Out);
  }

  default:
    // Atomic operands stay in place.
    return cloneExpr(E);
  }
}

Result<std::unique_ptr<TestDecl>> Normalizer::run(const TestDecl &Seed) {
  auto Out = std::make_unique<TestDecl>();
  Out->Name = Seed.Name;
  Out->Loc = Seed.Loc;

  std::vector<StmtPtr> Stmts;
  for (const StmtPtr &S : Seed.Body->stmts()) {
    switch (S->kind()) {
    case Stmt::Kind::VarDecl: {
      const auto *Decl = cast<VarDeclStmt>(S.get());
      ExprPtr Init;
      if (Decl->init()) {
        Result<ExprPtr> NewInit =
            rewrite(Decl->init(), /*HoistSelf=*/false, Stmts);
        if (!NewInit)
          return NewInit.error();
        Init = NewInit.take();
      }
      Stmts.push_back(std::make_unique<VarDeclStmt>(
          Decl->name(), Decl->declaredType(), std::move(Init), Decl->loc()));
      break;
    }
    case Stmt::Kind::ExprStmt: {
      const auto *ES = cast<ExprStmt>(S.get());
      Result<ExprPtr> NewExprResult =
          rewrite(ES->expr(), /*HoistSelf=*/false, Stmts);
      if (!NewExprResult)
        return NewExprResult.error();
      Stmts.push_back(
          std::make_unique<ExprStmt>(NewExprResult.take(), ES->loc()));
      break;
    }
    case Stmt::Kind::Assign: {
      const auto *Assign = cast<AssignStmt>(S.get());
      Result<ExprPtr> Target =
          rewrite(Assign->target(), /*HoistSelf=*/false, Stmts);
      if (!Target)
        return Target.error();
      Result<ExprPtr> Val =
          rewrite(Assign->value(), /*HoistSelf=*/false, Stmts);
      if (!Val)
        return Val.error();
      Stmts.push_back(std::make_unique<AssignStmt>(Target.take(), Val.take(),
                                                   Assign->loc()));
      break;
    }
    default:
      return Error(formatString("seed test '%s' must be straight-line: "
                                "unsupported statement",
                                Seed.Name.c_str()),
                   S->loc().str());
    }
  }
  Out->Body = std::make_unique<BlockStmt>(std::move(Stmts), Seed.Loc);
  return Out;
}

Result<std::unique_ptr<TestDecl>>
narada::normalizeSeed(const TestDecl &Seed, const ProgramInfo &Info) {
  Normalizer N(Info);
  return N.run(Seed);
}
