//===- synth/SynthWorker.cpp - Isolated synthesis worker service ---------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "synth/SynthWorker.h"

#include "analysis/AccessAnalysis.h"
#include "lang/ASTPrinter.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "staticrace/LocksetAnalysis.h"
#include "support/Bundle.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"
#include "synth/SeedNormalizer.h"
#include "synth/TestSynthesizer.h"

#include <new>
#include <optional>
#include <unordered_map>

using namespace narada;
using namespace narada::synthworker;

void synthworker::encodeSynthOptions(wire::RecordWriter &W,
                                     const NaradaOptions &Options) {
  W.add("focus_class", Options.FocusClass);
  W.addBool("enable_context_derivation", Options.EnableContextDerivation);
  W.addBool("static_prefilter", Options.StaticPrefilter);
  W.addBool("static_rank", Options.StaticRank);
  W.addBool("derivation_seed_set", Options.DerivationSeed.has_value());
  if (Options.DerivationSeed)
    W.add("derivation_seed", *Options.DerivationSeed);
}

void synthworker::decodeSynthOptions(const wire::RecordReader &In,
                                     NaradaOptions &Options) {
  Options.FocusClass = In.getOr("focus_class", "");
  Options.EnableContextDerivation =
      In.getBool("enable_context_derivation", true);
  Options.StaticPrefilter = In.getBool("static_prefilter", false);
  Options.StaticRank = In.getBool("static_rank", false);
  if (In.getBool("derivation_seed_set", false))
    Options.DerivationSeed = In.getU64("derivation_seed");
}

std::string synthworker::encodeSetup(const SynthIsolateContext &Iso,
                                     const NaradaOptions &Options,
                                     const std::string &SpanParent) {
  wire::RecordWriter W;
  W.add("mode", "synth");
  wire::addBundle(W, Iso.LibrarySource, Iso.SeedNames);
  encodeSynthOptions(W, Options);
  W.add("span_parent", SpanParent);
  return W.str();
}

std::string synthworker::encodeUnit(const char *Op, size_t Unit,
                                    const std::string &PairKey) {
  wire::RecordWriter W;
  W.add("op", Op);
  W.add("unit", static_cast<uint64_t>(Unit));
  W.add("pair_key", PairKey);
  return W.str();
}

/// Everything Service rebuilds from the setup record.  Heap-allocated and
/// never moved: Deriver/Synth hold references into the earlier members.
struct Service::State {
  NaradaOptions Options;
  std::string SpanParentPath;
  CompiledProgram Program; ///< Normalized library + seeds.
  AnalysisResult Analysis;
  std::shared_ptr<const staticrace::ModuleSummary> Static;
  std::vector<RacyPair> Pairs;
  std::optional<SeedRegistry> Registry;
  std::optional<ContextDeriver> Deriver; ///< Memo-less (no threads here).
  std::optional<TestSynthesizer> Synth;
  /// Plans computed by derive units, consumed by synth units.  A fresh
  /// worker (post-respawn) re-derives on miss — derivation is
  /// deterministic per pair index, so the plan is the same either way.
  std::unordered_map<size_t, SharingPlan> PlanCache;
};

Service::Service() : S(std::make_unique<State>()) {}
Service::~Service() = default;

size_t Service::pairCount() const { return S->Pairs.size(); }

Result<std::unique_ptr<Service>>
Service::create(const wire::RecordReader &Setup) {
  auto Out = std::unique_ptr<Service>(new Service());
  State &S = *Out->S;

  decodeSynthOptions(Setup, S.Options);
  S.SpanParentPath = Setup.getOr("span_parent", "pipeline.synth");

  Result<wire::ModuleBundle> Bundle = wire::readBundle(Setup, "synth setup");
  if (!Bundle)
    return Bundle.error();
  const std::string &Source = Bundle->Source;
  std::vector<std::string> &SeedNames = Bundle->Seeds;

  // The front half of runNarada, replayed without spans or logs: every
  // stage below is deterministic in (source, seeds, options), so the
  // resulting pair table matches the supervisor's.  Setup-time metrics
  // are discarded by the worker loop (the supervisor ran these stages
  // itself), so none of this double-counts.
  Result<CompiledProgram> Original = compileProgram(Source);
  if (!Original)
    return Original.error();
  std::string NormalizedSource;
  for (const auto &Class : Original->Ast->Classes)
    NormalizedSource += printClass(*Class) + "\n";
  for (const std::string &SeedName : SeedNames) {
    const TestDecl *Seed = Original->Ast->findTest(SeedName);
    if (!Seed)
      return Error(formatString("no seed test named '%s'", SeedName.c_str()));
    Result<std::unique_ptr<TestDecl>> Norm =
        normalizeSeed(*Seed, *Original->Info);
    if (!Norm)
      return Norm.error();
    NormalizedSource += printTest(**Norm) + "\n";
  }
  Result<CompiledProgram> Recompiled = compileProgram(NormalizedSource);
  if (!Recompiled)
    return Error("normalized seeds failed to recompile: " +
                 Recompiled.error().str());
  S.Program = Recompiled.take();

  for (const std::string &SeedName : SeedNames) {
    Result<TestRun> Run = runTestSequential(*S.Program.Module, SeedName);
    if (!Run)
      return Run.error();
    if (Run->Result.Faulted)
      return Error(formatString("seed test '%s' faulted", SeedName.c_str()));
    S.Analysis.merge(analyzeTrace(Run->TheTrace, *S.Program.Info));
  }

  if (S.Options.StaticPrefilter || S.Options.StaticRank)
    S.Static = std::make_shared<const staticrace::ModuleSummary>(
        staticrace::summarizeModule(*S.Program.Module));

  PairGenOptions PairOptions;
  PairOptions.FocusClass = S.Options.FocusClass;
  PairOptions.Static = S.Static.get();
  PairOptions.StaticPrefilter = S.Options.StaticPrefilter;
  PairOptions.StaticRank = S.Options.StaticRank;
  S.Pairs = generatePairs(S.Analysis, PairOptions);

  std::vector<const TestDecl *> Seeds;
  for (const std::string &SeedName : SeedNames)
    Seeds.push_back(S.Program.Ast->findTest(SeedName));
  Result<SeedRegistry> Registry = SeedRegistry::build(Seeds, *S.Program.Info);
  if (!Registry)
    return Registry.error();
  S.Registry.emplace(Registry.take());

  S.Deriver.emplace(S.Analysis, *S.Program.Info);
  S.Synth.emplace(*S.Registry, *S.Program.Info);
  return Out;
}

void Service::runUnit(const wire::RecordReader &Request,
                      wire::RecordWriter &Reply) {
  std::string Op = Request.getOr("op", "");
  uint64_t I = Request.getU64("unit");
  std::string Key = Request.getOr("pair_key", "");
  Reply.add("op", Op);
  Reply.add("unit", I);

  if (I >= S->Pairs.size() || S->Pairs[I].key() != Key) {
    Reply.add("fault",
              formatString("unit %llu (%s) does not match this worker's "
                           "pair table (%zu pairs)",
                           static_cast<unsigned long long>(I), Key.c_str(),
                           S->Pairs.size()));
    return;
  }

  const RacyPair &Pair = S->Pairs[I];
  try {
    fault::ScopedUnit Unit(I);
    obs::TraceScope Scope("pair", I);
    obs::SpanParent Parent{S->SpanParentPath};

    if (Op == "derive") {
      fault::probe("synth.pair_task");
      SharingPlan Plan;
      {
        obs::Span DeriveSpan("derive", Parent);
        Plan = deriveSynthPlan(*S->Deriver, Pair, I, S->Options);
      }
      Reply.add("shape", synthShapeKey(Pair, Plan));
      Reply.addBool("complete", Plan.Complete);
      S->PlanCache.insert_or_assign(I, std::move(Plan));
      return;
    }

    if (Op == "synth") {
      auto It = S->PlanCache.find(I);
      if (It == S->PlanCache.end())
        It = S->PlanCache
                 .emplace(I, deriveSynthPlan(*S->Deriver, Pair, I, S->Options))
                 .first;
      const SharingPlan &Plan = It->second;
      Result<std::unique_ptr<TestDecl>> Attempt = [&] {
        obs::Span SynthesizeSpan("synthesize", Parent);
        return S->Synth->synthesize(Pair, Plan, SynthPlaceholderName);
      }();
      if (Attempt) {
        Reply.addBool("ok", true);
        Reply.add("source", printTest(**Attempt));
        Reply.addBool("complete", Plan.Complete);
        Reply.add("shared_class", Plan.SharedClassName);
      } else {
        Reply.addBool("ok", false);
        Reply.add("err_message", Attempt.error().message());
        Reply.add("err_str", Attempt.error().str());
      }
      return;
    }

    Reply.add("fault", "unknown synth op '" + Op + "'");
  } catch (const std::bad_alloc &) {
    throw; // The worker loop answers with a graceful oom crash frame.
  } catch (...) {
    Reply.add("fault", describeException(std::current_exception()));
  }
}
