//===- synth/ContextDeriver.cpp - Narada stage 2b ------------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "synth/ContextDeriver.h"

#include "obs/Metrics.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <functional>
#include <map>

using namespace narada;

std::unique_ptr<ProvidePlan> ProvidePlan::clone() const {
  auto Out = std::make_unique<ProvidePlan>();
  Out->K = K;
  Out->ClassName = ClassName;
  Out->Method = Method;
  Out->ConstrainedParam = ConstrainedParam;
  Out->Complete = Complete;
  if (Base)
    Out->Base = Base->clone();
  if (Value)
    Out->Value = Value->clone();
  return Out;
}

std::string DerivationMemo::key(const std::string &ClassName,
                                const std::vector<std::string> &Fields,
                                unsigned Depth) {
  std::string Key = ClassName;
  Key += '|';
  for (const std::string &Field : Fields) {
    Key += Field;
    Key += '.';
  }
  Key += '|';
  Key += std::to_string(Depth);
  return Key;
}

DerivationMemo::Shard &DerivationMemo::shardFor(const std::string &Key) const {
  return Shards[std::hash<std::string>{}(Key) % NumShards];
}

std::unique_ptr<ProvidePlan> DerivationMemo::lookup(const std::string &Key) const {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Key);
  if (It == S.Map.end())
    return nullptr;
  return It->second->clone();
}

void DerivationMemo::insert(const std::string &Key, const ProvidePlan &Plan) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  S.Map.try_emplace(Key, Plan.clone());
}

void DerivationMemo::forEach(
    const std::function<void(const std::string &, const ProvidePlan &)> &Fn)
    const {
  std::map<std::string, const ProvidePlan *> Sorted;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const auto &[Key, Plan] : S.Map)
      Sorted.emplace(Key, Plan.get());
  }
  for (const auto &[Key, Plan] : Sorted)
    Fn(Key, *Plan);
}

size_t DerivationMemo::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Map.size();
  }
  return N;
}

std::string ProvidePlan::str() const {
  switch (K) {
  case Kind::SharedObject:
    return "S";
  case Kind::FromSeed:
    return formatString("seed<%s>%s", ClassName.c_str(),
                        Complete ? "" : "!");
  case Kind::ViaSetter:
    return formatString("setter[%s.%s(#%d=%s) on %s]%s", ClassName.c_str(),
                        Method.c_str(), ConstrainedParam,
                        Value->str().c_str(), Base->str().c_str(),
                        Complete ? "" : "!");
  case Kind::ViaConstructor:
    return formatString("ctor[new %s(#%d=%s)]%s", ClassName.c_str(),
                        ConstrainedParam, Value->str().c_str(),
                        Complete ? "" : "!");
  case Kind::ViaFactory:
    return formatString("factory[%s.%s(#%d=%s) on %s]%s", ClassName.c_str(),
                        Method.c_str(), ConstrainedParam,
                        Value->str().c_str(), Base->str().c_str(),
                        Complete ? "" : "!");
  }
  narada_unreachable("unknown plan kind");
}

std::string SharingPlan::str() const {
  return formatString("share %s: first(#%d via %s)=%s, second(#%d via %s)=%s%s",
                      SharedClassName.c_str(), First.Root,
                      First.EffectivePath.str().c_str(),
                      First.Plan ? First.Plan->str().c_str() : "-",
                      Second.Root, Second.EffectivePath.str().c_str(),
                      Second.Plan ? Second.Plan->str().c_str() : "-",
                      Complete ? "" : " (incomplete)");
}

std::string
ContextDeriver::typeAtPath(const std::string &ClassName,
                           const std::vector<std::string> &Fields) const {
  std::string Current = ClassName;
  for (const std::string &Field : Fields) {
    const ClassInfo *Class = Info.findClass(Current);
    if (!Class)
      return "";
    const FieldInfo *FI = Class->findField(Field);
    if (!FI || !FI->DeclaredType.isClass())
      return "";
    Current = FI->DeclaredType.className();
  }
  return Current;
}

std::string ContextDeriver::rootClassOf(const RacySide &Side) const {
  if (Side.BasePath.Root == 0)
    return Side.ClassName;
  const ClassInfo *Class = Info.findClass(Side.ClassName);
  if (!Class)
    return "";
  const MethodInfo *Method = Class->findMethod(Side.Method);
  if (!Method)
    return "";
  size_t ParamIndex = static_cast<size_t>(Side.BasePath.Root) - 1;
  if (ParamIndex >= Method->ParamTypes.size() ||
      !Method->ParamTypes[ParamIndex].isClass())
    return "";
  return Method->ParamTypes[ParamIndex].className();
}

/// Returns the declared class of parameter \p Root (1-based) of
/// \p ClassName.\p MethodName, or "" when it is not a class type.
static std::string paramClassOf(const ProgramInfo &Info,
                                const std::string &ClassName,
                                const std::string &MethodName, int Root) {
  const ClassInfo *Class = Info.findClass(ClassName);
  if (!Class)
    return "";
  const MethodInfo *Method = Class->findMethod(MethodName);
  if (!Method)
    return "";
  size_t Index = static_cast<size_t>(Root) - 1;
  if (Root < 1 || Index >= Method->ParamTypes.size() ||
      !Method->ParamTypes[Index].isClass())
    return "";
  return Method->ParamTypes[Index].className();
}

/// True when \p Prefix is a non-empty prefix of \p Fields.
static bool isNonEmptyPrefix(const std::vector<std::string> &Prefix,
                             const std::vector<std::string> &Fields) {
  if (Prefix.empty() || Prefix.size() > Fields.size())
    return false;
  for (size_t I = 0; I != Prefix.size(); ++I)
    if (Prefix[I] != Fields[I])
      return false;
  return true;
}

std::unique_ptr<ProvidePlan>
ContextDeriver::derive(const std::string &ClassName,
                       const std::vector<std::string> &Fields,
                       unsigned Depth) const {
  return deriveImpl(ClassName, Fields, Depth,
                    SelectionRand ? &*SelectionRand : nullptr);
}

std::unique_ptr<ProvidePlan>
ContextDeriver::deriveImpl(const std::string &ClassName,
                           const std::vector<std::string> &Fields,
                           unsigned Depth, RNG *Rand) const {
  // Memo hits are only sound when the derivation is deterministic: with a
  // selection stream active the result would depend on which pair (and
  // which draw) populated the entry.
  std::string MemoKey;
  if (Memo && !Rand && !Fields.empty()) {
    MemoKey = DerivationMemo::key(ClassName, Fields, Depth);
    if (std::unique_ptr<ProvidePlan> Hit = Memo->lookup(MemoKey)) {
      obs::MetricsRegistry::global().counter("synth.qmemo_hits").inc();
      return Hit;
    }
    obs::MetricsRegistry::global().counter("synth.qmemo_misses").inc();
  }

  if (Fields.empty()) {
    auto Plan = std::make_unique<ProvidePlan>();
    Plan->K = ProvidePlan::Kind::SharedObject;
    Plan->ClassName = ClassName;
    return Plan;
  }

  std::vector<std::unique_ptr<ProvidePlan>> CompleteCandidates;
  std::unique_ptr<ProvidePlan> BestIncomplete;

  if (Depth < MaxDepth) {
    // The set / concat / deep-set rules: a (constructor or regular) method
    // of ClassName whose writeable assignment covers a prefix of the path.
    for (const WriteableAssign &W : Analysis.Setters) {
      if (W.ClassName != ClassName || W.Lhs.Root != 0)
        continue;
      if (!isNonEmptyPrefix(W.Lhs.Fields, Fields))
        continue;
      if (W.Rhs.Root < 1)
        continue; // Source must be a client-supplied argument.
      std::string ParamClass =
          paramClassOf(Info, W.ClassName, W.Method, W.Rhs.Root);
      if (ParamClass.empty())
        continue;

      // The argument must satisfy: arg.(Rhs.Fields + remainder) == S.
      std::vector<std::string> Needed = W.Rhs.Fields;
      Needed.insert(Needed.end(), Fields.begin() + W.Lhs.Fields.size(),
                    Fields.end());
      std::unique_ptr<ProvidePlan> Value =
          deriveImpl(ParamClass, Needed, Depth + 1, Rand);

      auto Plan = std::make_unique<ProvidePlan>();
      Plan->ClassName = ClassName;
      Plan->Method = W.Method;
      Plan->ConstrainedParam = W.Rhs.Root;
      Plan->Complete = Value->Complete;
      Plan->Value = std::move(Value);
      if (W.IsConstructor) {
        Plan->K = ProvidePlan::Kind::ViaConstructor;
      } else {
        Plan->K = ProvidePlan::Kind::ViaSetter;
        auto Base = std::make_unique<ProvidePlan>();
        Base->K = ProvidePlan::Kind::FromSeed;
        Base->ClassName = ClassName;
        Plan->Base = std::move(Base);
      }
      if (Plan->Complete)
        CompleteCandidates.push_back(std::move(Plan));
      else if (!BestIncomplete)
        BestIncomplete = std::move(Plan);
    }

    // Factory rule: a method returning a ClassName instance whose RetPath
    // covers a prefix of the target path and is wired to an argument.
    for (const ReturnSummary &R : Analysis.Returns) {
      if (R.RetPath.Root != ReturnRoot || R.RetPath.Fields.empty())
        continue;
      if (!isNonEmptyPrefix(R.RetPath.Fields, Fields))
        continue;
      if (R.Rhs.Root < 1)
        continue;
      const ClassInfo *FactoryClass = Info.findClass(R.ClassName);
      if (!FactoryClass)
        continue;
      const MethodInfo *Method = FactoryClass->findMethod(R.Method);
      if (!Method || !Method->ReturnType.isClass() ||
          Method->ReturnType.className() != ClassName)
        continue;
      std::string ParamClass =
          paramClassOf(Info, R.ClassName, R.Method, R.Rhs.Root);
      if (ParamClass.empty())
        continue;

      std::vector<std::string> Needed = R.Rhs.Fields;
      Needed.insert(Needed.end(), Fields.begin() + R.RetPath.Fields.size(),
                    Fields.end());
      std::unique_ptr<ProvidePlan> Value =
          deriveImpl(ParamClass, Needed, Depth + 1, Rand);

      auto Plan = std::make_unique<ProvidePlan>();
      Plan->K = ProvidePlan::Kind::ViaFactory;
      Plan->ClassName = R.ClassName; // Factory class; produced type differs.
      Plan->Method = R.Method;
      Plan->ConstrainedParam = R.Rhs.Root;
      Plan->Complete = Value->Complete;
      Plan->Value = std::move(Value);
      auto Base = std::make_unique<ProvidePlan>();
      Base->K = ProvidePlan::Kind::FromSeed;
      Base->ClassName = R.ClassName;
      Plan->Base = std::move(Base);
      if (Plan->Complete)
        CompleteCandidates.push_back(std::move(Plan));
      else if (!BestIncomplete)
        BestIncomplete = std::move(Plan);
    }
  }

  // Cache the result under the (class, path, depth) key on the way out;
  // MemoKey is only set on the deterministic path.
  auto Finish = [&](std::unique_ptr<ProvidePlan> Plan) {
    if (!MemoKey.empty())
      Memo->insert(MemoKey, *Plan);
    return Plan;
  };

  if (!CompleteCandidates.empty()) {
    // Multiple method sequences can set the same context; the paper's
    // implementation picks one at random (§4).  Without a selection seed
    // the first (setters before factories, database order) wins.
    size_t Index = Rand ? Rand->nextBelow(CompleteCandidates.size()) : 0;
    return Finish(std::move(CompleteCandidates[Index]));
  }
  if (BestIncomplete)
    return Finish(std::move(BestIncomplete));

  // No way to reach the path: an unconstrained instance, marked incomplete.
  auto Fallback = std::make_unique<ProvidePlan>();
  Fallback->K = ProvidePlan::Kind::FromSeed;
  Fallback->ClassName = ClassName;
  Fallback->Complete = false;
  return Finish(std::move(Fallback));
}

SharingPlan ContextDeriver::deriveSharing(const RacyPair &Pair) const {
  return deriveSharingImpl(Pair, SelectionRand ? &*SelectionRand : nullptr);
}

SharingPlan
ContextDeriver::deriveSharing(const RacyPair &Pair,
                              std::optional<uint64_t> PairSeed) const {
  if (!PairSeed)
    return deriveSharingImpl(Pair, nullptr);
  RNG Rand(*PairSeed);
  return deriveSharingImpl(Pair, &Rand);
}

SharingPlan ContextDeriver::deriveSharingImpl(const RacyPair &Pair,
                                              RNG *Rand) const {
  // Injection point for the containment sweep: a crash inside context
  // derivation must degrade the owning pair to internal_fault, nothing
  // more (ParallelDriver's barrier catches it).
  fault::probe("synth.derive");
  obs::MetricsRegistry::global().counter("synth.derivations_attempted").inc();
  SharingPlan Plan;
  std::string FirstRoot = rootClassOf(Pair.First);
  std::string SecondRoot = rootClassOf(Pair.Second);
  Plan.First.Root = Pair.First.BasePath.Root;
  Plan.Second.Root = Pair.Second.BasePath.Root;

  // Try the full paths first, then shorten both in lockstep (prefix
  // sharing, paper §4) while the endpoint types still agree.
  std::vector<std::string> FieldsA = Pair.First.BasePath.Fields;
  std::vector<std::string> FieldsB = Pair.Second.BasePath.Fields;
  bool Shortened = false;

  while (true) {
    std::string TypeA = typeAtPath(FirstRoot, FieldsA);
    std::string TypeB = typeAtPath(SecondRoot, FieldsB);
    if (!TypeA.empty() && TypeA == TypeB) {
      std::unique_ptr<ProvidePlan> PlanA = deriveImpl(FirstRoot, FieldsA, 0, Rand);
      std::unique_ptr<ProvidePlan> PlanB = deriveImpl(SecondRoot, FieldsB, 0, Rand);
      if (PlanA->Complete && PlanB->Complete) {
        Plan.SharedClassName = TypeA;
        Plan.First.Plan = std::move(PlanA);
        Plan.First.EffectivePath =
            AccessPath(Pair.First.BasePath.Root, FieldsA);
        Plan.Second.Plan = std::move(PlanB);
        Plan.Second.EffectivePath =
            AccessPath(Pair.Second.BasePath.Root, FieldsB);
        Plan.Complete = !Shortened;
        obs::MetricsRegistry::global()
            .counter(Plan.Complete ? "synth.derivations_complete"
                                   : "synth.derivations_prefix_fallback")
            .inc();
        return Plan;
      }
      // Keep the deepest attempt as the fallback result so a test is
      // synthesized even when the context cannot be fully set (paper §4).
      if (!Plan.First.Plan) {
        Plan.SharedClassName = TypeA;
        Plan.First.Plan = std::move(PlanA);
        Plan.First.EffectivePath =
            AccessPath(Pair.First.BasePath.Root, FieldsA);
        Plan.Second.Plan = std::move(PlanB);
        Plan.Second.EffectivePath =
            AccessPath(Pair.Second.BasePath.Root, FieldsB);
        Plan.Complete = false;
      }
    }
    if (FieldsA.empty() || FieldsB.empty())
      break;
    FieldsA.pop_back();
    FieldsB.pop_back();
    Shortened = true;
  }

  if (!Plan.First.Plan) {
    // Even prefix sharing failed (type mismatch); synthesize with fresh,
    // unconstrained instances.
    Plan.SharedClassName = Pair.FieldClassName;
    Plan.First.Plan = deriveImpl(FirstRoot, {}, 0, Rand);
    Plan.First.Plan->Complete = false;
    Plan.First.Plan->K = ProvidePlan::Kind::FromSeed;
    Plan.First.Plan->ClassName = FirstRoot;
    Plan.First.EffectivePath = AccessPath(Pair.First.BasePath.Root, {});
    Plan.Second.Plan = deriveImpl(SecondRoot, {}, 0, Rand);
    Plan.Second.Plan->Complete = false;
    Plan.Second.Plan->K = ProvidePlan::Kind::FromSeed;
    Plan.Second.Plan->ClassName = SecondRoot;
    Plan.Second.EffectivePath = AccessPath(Pair.Second.BasePath.Root, {});
    Plan.Complete = false;
  }
  obs::MetricsRegistry::global().counter("synth.derivations_incomplete").inc();
  return Plan;
}
