//===- synth/Narada.h - End-to-end test synthesis pipeline ------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Narada pipeline (Fig. 6): Access Analyzer -> Pair Generator ->
/// Context Deriver -> Test Synthesizer.  Input: a MiniJava library plus a
/// sequential seed test suite.  Output: a compiled program extended with
/// synthesized multithreaded tests, each a printable client program whose
/// execution is conducive to manifesting a library race.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_NARADA_H
#define NARADA_SYNTH_NARADA_H

#include "runtime/Execution.h"
#include "staticrace/StaticSummary.h"
#include "support/ProcessPool.h"
#include "synth/ContextDeriver.h"
#include "synth/PairGenerator.h"
#include "synth/RacyPair.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace narada {

class IRModule;

/// Cross-run caches the serving layer (src/serve/) threads through the
/// pipeline.  Every hook is optional (unset = cold behavior); all are keyed
/// and invalidated by the caller — the pipeline only consults and feeds
/// them.  Correctness contract: a cached value must be exactly what the
/// cold computation would produce for the same inputs, so a warm run stays
/// byte-identical to a cold one.
struct PipelineCaches {
  /// Per-seed dynamic analysis: returns the cached AnalysisResult for a
  /// seed test name (the caller scopes keys by source digest), or null.
  /// On a hit the seed is not executed.
  std::function<const AnalysisResult *(const std::string &SeedName)>
      LookupSeedAnalysis;
  /// Called with the freshly computed per-seed analysis on a miss.
  std::function<void(const std::string &SeedName, const AnalysisResult &)>
      StoreSeedAnalysis;
  /// Replaces staticrace::summarizeModule wholesale; the daemon wires
  /// summarizeModuleIncremental (plus its serve.* counters) through here.
  std::function<staticrace::ModuleSummary(const IRModule &)> Summarize;
  /// Derivation memo shared across runs (pre-warmed Q-query results);
  /// null = the synthesis stage uses its own per-run memo.  Only
  /// deterministic derivations are memoized (see ContextDeriver), so a
  /// warm memo changes speed, never results.
  DerivationMemo *SharedMemo = nullptr;
};

/// Pipeline options.
struct NaradaOptions {
  /// Restrict pair generation to methods of one class (the paper evaluates
  /// one class at a time); empty analyzes everything.
  std::string FocusClass;
  /// Ablation switch: with context derivation disabled every test uses
  /// fresh unconstrained instances, i.e. no object sharing is staged.
  bool EnableContextDerivation = true;
  /// Upper bound on synthesized tests (0 = unlimited).
  unsigned MaxTests = 0;
  /// When set, the context deriver chooses uniformly among the applicable
  /// setter/factory derivations instead of the first one — the paper's §4
  /// "randomly selects one of the possible methods".
  std::optional<uint64_t> DerivationSeed;
  /// Prefix for synthesized test names.
  std::string TestNamePrefix = "narada";
  /// Worker threads for the per-pair synthesis stage (and, in the CLI, the
  /// per-test detection/confirmation stages): 1 = serial on the calling
  /// thread, 0 = one worker per hardware thread.  Output is byte-identical
  /// for every value — see synth/ParallelDriver.h.
  unsigned Jobs = 1;
  /// Run the static race pre-analysis (src/staticrace/) over the lowered
  /// module and drop candidate pairs it proves MustGuarded before
  /// derivation.  Conservative: the generated pair set is unchanged (see
  /// docs/STATIC.md), only provably serialized candidates disappear from
  /// the candidate space.
  bool StaticPrefilter = false;
  /// Run the pre-analysis and stable-sort candidate pairs most-racy-first
  /// (MayRace < Unknown < MustGuarded) before synthesis; byte-identical
  /// across --jobs because ranking happens before the parallel stage.
  bool StaticRank = false;
  /// Out-of-process worker isolation (--isolate): run per-pair derivation
  /// and synthesis units in crash-contained worker subprocesses.  Clean
  /// runs stay byte-identical to in-process mode; a hard fault (SIGSEGV,
  /// abort, OOM kill, hang) costs exactly the faulting unit, which lands
  /// in Skipped as a worker_crash record.
  pool::IsolateOptions Isolate;
  /// Cross-run caches supplied by the serving layer; null (the default,
  /// and the only value the CLI ever passes) runs everything cold.  Not
  /// serialized to isolation workers — workers always rebuild cold.
  const PipelineCaches *Caches = nullptr;
};

/// Metadata for one synthesized multithreaded test.
struct SynthesizedTestInfo {
  std::string Name;
  std::string SourceText; ///< The printed client program (cf. Fig. 3).
  RacyPair Representative;
  std::vector<std::string> CoveredPairKeys; ///< All pairs this test targets.
  bool ContextComplete = true; ///< False when the prefix fallback was used.
  std::string SharedClassName;
  std::string Field; ///< The raced-on field.
  /// Candidate racy access label pairs, consumed by the RaceFuzzer-style
  /// confirmation scheduler.
  std::vector<std::pair<std::string, std::string>> CandidateLabels;
};

/// Why a racy pair did not get its own synthesized test.  Stable ids (see
/// skipReasonId) key the "synth.pairs_skipped.<reason>" counters so run
/// reports aggregate skip causes instead of carrying free-form strings.
enum class SkipReason {
  NoSeedProvider,     ///< No seed test builds an instance of a needed class.
  NoSeedCallSite,     ///< No seed invocation to template a required call on.
  DerivationMismatch, ///< The derived plan could not be realized on the
                      ///< seed material (parameter/normalization mismatch).
  TestBudget,         ///< Options.MaxTests cap reached.
  InternalFault,      ///< The pair's derivation/synthesis task crashed
                      ///< (exception captured by the containment barrier);
                      ///< the rest of the run proceeded without it.
  WorkerCrash,        ///< Under --isolate: the unit hard-faulted its worker
                      ///< subprocess (signal, watchdog timeout, OOM, or
                      ///< protocol breakdown) and was quarantined with the
                      ///< crash classification in Message.
  Other,              ///< Anything else (kept for forward compatibility).
};

/// The stable snake_case id of \p Reason ("no_seed_provider", ...).
const char *skipReasonId(SkipReason Reason);

/// One pair that was not synthesized: which, why, and the detail message.
struct SkippedPair {
  std::string PairKey;
  SkipReason Reason = SkipReason::Other;
  std::string Message; ///< Human-readable detail (empty for TestBudget).

  /// "pair-key: reason-id: message" for logs and diagnostics.
  std::string str() const;
};

/// Per-stage wall times of one runNarada call, accumulated by the obs
/// spans that time the run (support/Timer is the single clock source).
struct NaradaStageTimes {
  double FrontendSeconds = 0.0;  ///< Library + seed compilation passes.
  double AnalysisSeconds = 0.0;  ///< Seed execution + trace analysis.
  double StaticRaceSeconds = 0.0; ///< Static pre-analysis (when enabled).
  double PairGenSeconds = 0.0;   ///< Candidate racy-pair generation.
  double SynthesisSeconds = 0.0; ///< Context derivation + test emission.
  double RecompileSeconds = 0.0; ///< Final library+tests compilation.

  double totalSeconds() const {
    return FrontendSeconds + AnalysisSeconds + StaticRaceSeconds +
           PairGenSeconds + SynthesisSeconds + RecompileSeconds;
  }
};

/// Everything the pipeline produces.
struct NaradaResult {
  /// The final compiled program: library + normalized seeds + synthesized
  /// tests, ready to run under the detectors.
  CompiledProgram Program;
  AnalysisResult Analysis;
  std::vector<RacyPair> Pairs;
  std::vector<SynthesizedTestInfo> Tests;
  /// Pairs that could not be synthesized, with structured reasons.
  std::vector<SkippedPair> Skipped;
  /// Static per-method summaries; null unless StaticPrefilter/StaticRank
  /// ran.  Shared so callers can annotate detection output.
  std::shared_ptr<const staticrace::ModuleSummary> Static;
  /// The exact source text Program was compiled from (normalized library +
  /// seeds + synthesized tests) — what an isolated detect worker recompiles
  /// to reach an identical module.
  std::string FinalSource;
  NaradaStageTimes Stages;
};

/// Runs the full pipeline on \p LibrarySource using the tests named in
/// \p SeedNames as the sequential seed suite.
Result<NaradaResult> runNarada(std::string_view LibrarySource,
                               const std::vector<std::string> &SeedNames,
                               const NaradaOptions &Options = {});

} // namespace narada

#endif // NARADA_SYNTH_NARADA_H
