//===- synth/Narada.h - End-to-end test synthesis pipeline ------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Narada pipeline (Fig. 6): Access Analyzer -> Pair Generator ->
/// Context Deriver -> Test Synthesizer.  Input: a MiniJava library plus a
/// sequential seed test suite.  Output: a compiled program extended with
/// synthesized multithreaded tests, each a printable client program whose
/// execution is conducive to manifesting a library race.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_NARADA_H
#define NARADA_SYNTH_NARADA_H

#include "runtime/Execution.h"
#include "synth/ContextDeriver.h"
#include "synth/PairGenerator.h"
#include "synth/RacyPair.h"

#include <optional>
#include <string>
#include <vector>

namespace narada {

/// Pipeline options.
struct NaradaOptions {
  /// Restrict pair generation to methods of one class (the paper evaluates
  /// one class at a time); empty analyzes everything.
  std::string FocusClass;
  /// Ablation switch: with context derivation disabled every test uses
  /// fresh unconstrained instances, i.e. no object sharing is staged.
  bool EnableContextDerivation = true;
  /// Upper bound on synthesized tests (0 = unlimited).
  unsigned MaxTests = 0;
  /// When set, the context deriver chooses uniformly among the applicable
  /// setter/factory derivations instead of the first one — the paper's §4
  /// "randomly selects one of the possible methods".
  std::optional<uint64_t> DerivationSeed;
  /// Prefix for synthesized test names.
  std::string TestNamePrefix = "narada";
};

/// Metadata for one synthesized multithreaded test.
struct SynthesizedTestInfo {
  std::string Name;
  std::string SourceText; ///< The printed client program (cf. Fig. 3).
  RacyPair Representative;
  std::vector<std::string> CoveredPairKeys; ///< All pairs this test targets.
  bool ContextComplete = true; ///< False when the prefix fallback was used.
  std::string SharedClassName;
  std::string Field; ///< The raced-on field.
  /// Candidate racy access label pairs, consumed by the RaceFuzzer-style
  /// confirmation scheduler.
  std::vector<std::pair<std::string, std::string>> CandidateLabels;
};

/// Everything the pipeline produces.
struct NaradaResult {
  /// The final compiled program: library + normalized seeds + synthesized
  /// tests, ready to run under the detectors.
  CompiledProgram Program;
  AnalysisResult Analysis;
  std::vector<RacyPair> Pairs;
  std::vector<SynthesizedTestInfo> Tests;
  /// Pairs that could not be synthesized, with reasons (diagnostic).
  std::vector<std::string> Skipped;
  double AnalysisSeconds = 0.0;
  double SynthesisSeconds = 0.0;
};

/// Runs the full pipeline on \p LibrarySource using the tests named in
/// \p SeedNames as the sequential seed suite.
Result<NaradaResult> runNarada(std::string_view LibrarySource,
                               const std::vector<std::string> &SeedNames,
                               const NaradaOptions &Options = {});

} // namespace narada

#endif // NARADA_SYNTH_NARADA_H
