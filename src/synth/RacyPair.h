//===- synth/RacyPair.h - Candidate racy access pairs -----------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A racy pair names two library accesses that can form a data race when
/// invoked from two threads with the right object sharing (§3.3): the same
/// field of one shared object, at least one write, at least one side
/// unprotected, and lock sets that the sharing plan keeps disjoint.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SYNTH_RACYPAIR_H
#define NARADA_SYNTH_RACYPAIR_H

#include "analysis/AccessAnalysis.h"
#include "staticrace/Verdict.h"

#include <string>

namespace narada {

/// One side of a racy pair: the method a thread must invoke and where the
/// shared object sits among that invocation's parameters.
struct RacySide {
  std::string ClassName;   ///< Class owning the invoked method.
  std::string Method;      ///< Method the thread invokes.
  std::string AccessLabel; ///< Static label of the racy access.
  AccessPath BasePath;     ///< Path from the invocation to the shared object.
  bool IsWrite = false;
};

/// A candidate racy access pair.
struct RacyPair {
  RacySide First;
  RacySide Second;
  std::string Field;          ///< Raced-on field name ("[]" for elements).
  std::string FieldClassName; ///< Dynamic class declaring the field.

  /// Verdict of the static pre-analysis (docs/STATIC.md); meaningful only
  /// when Classified is set (pair generation ran with a module summary).
  staticrace::PairVerdict Verdict = staticrace::PairVerdict::Unknown;
  bool Classified = false;
  /// True when the must-race certificate holds (certifyRecordPair): the
  /// pair is MayRace and provably lock-free at directly reachable sites,
  /// so dynamic confirmation is expected, not hoped for.  Surfaced as the
  /// "MustRace" verdict in reports and the race database.
  bool CertifiedMustRace = false;

  /// True when both sides are the same dynamic access (the "concurrent
  /// access at the same label from a different thread" case).
  bool sameLabel() const {
    return First.AccessLabel == Second.AccessLabel &&
           First.BasePath == Second.BasePath;
  }

  /// Stable identity for deduplication and reporting.
  std::string key() const;

  /// One-line human-readable description.
  std::string str() const;
};

} // namespace narada

#endif // NARADA_SYNTH_RACYPAIR_H
