//===- support/Wire.h - Framed record protocol ------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format between the ProcessPool supervisor and narada-cli
/// worker subprocesses: length-prefixed frames over pipes, each carrying
/// one flat key=value record.
///
/// Framing: a 4-byte little-endian payload length followed by the payload
/// bytes.  A frame that would exceed MaxFrameBytes is a protocol error on
/// both ends — a corrupted length must never turn into an unbounded
/// allocation in the supervisor.
///
/// Records: newline-separated `key=value` lines.  Keys are bare
/// identifiers ([A-Za-z0-9_.]); values are escaped (`\\`, `\n`, so
/// arbitrary program source round-trips).  Repeated keys form ordered
/// lists.  The format is deliberately line-oriented and human-readable:
/// a captured frame pastes straight into a bug report.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_WIRE_H
#define NARADA_SUPPORT_WIRE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace narada {
namespace wire {

/// Upper bound on one frame's payload (64 MiB): generous for any corpus
/// source or result set, small enough that a garbled length prefix fails
/// fast instead of exhausting memory.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// `\` -> `\\`, newline -> `\n` (backslash-n), so values embed in the
/// line-oriented record format.
std::string escape(std::string_view Raw);

/// Inverse of escape(); forgiving on a trailing lone backslash (kept
/// literally) so a truncated frame still decodes to *something*
/// diagnosable.
std::string unescape(std::string_view Escaped);

/// Builds one record from key/value pairs in insertion order.
class RecordWriter {
public:
  void add(std::string_view Key, std::string_view Value);
  void add(std::string_view Key, uint64_t Value);
  void add(std::string_view Key, int64_t Value);
  void addBool(std::string_view Key, bool Value);
  void addDouble(std::string_view Key, double Value);
  std::string str() const { return Text; }

private:
  std::string Text;
};

/// Parses a record into ordered (key, value) pairs.  Lines without '=' are
/// ignored (forward compatibility), values are unescaped.
class RecordReader {
public:
  explicit RecordReader(std::string_view Text);

  /// First value of \p Key, if present.
  std::optional<std::string> get(std::string_view Key) const;
  /// First value of \p Key or \p Default.
  std::string getOr(std::string_view Key, std::string_view Default) const;
  /// First value of \p Key parsed as base-10 uint64, or \p Default on
  /// absence/garbage.
  uint64_t getU64(std::string_view Key, uint64_t Default = 0) const;
  int64_t getI64(std::string_view Key, int64_t Default = 0) const;
  bool getBool(std::string_view Key, bool Default = false) const;
  double getDouble(std::string_view Key, double Default = 0.0) const;
  /// Every value of \p Key in record order.
  std::vector<std::string> all(std::string_view Key) const;
  /// Every (key, value) pair in record order.
  const std::vector<std::pair<std::string, std::string>> &entries() const {
    return Entries;
  }

private:
  std::vector<std::pair<std::string, std::string>> Entries;
};

/// Writes one frame to \p Fd (blocking, retries on EINTR and short
/// writes).  Returns false on any write error (e.g. EPIPE from a dead
/// peer) — callers treat that as a worker death, not a crash.
bool writeFrame(int Fd, std::string_view Payload);

/// The byte string writeFrame() would emit: 4-byte little-endian length
/// prefix + payload.  Lets callers assemble a whole multi-frame document
/// in memory (e.g. for byte-identity comparisons) before one write.
std::string frameBytes(std::string_view Payload);

/// What reading a frame produced.
enum class ReadStatus {
  Ok,       ///< A complete frame was read into the output.
  Eof,      ///< Clean EOF on a frame boundary (peer closed its end).
  Partial,  ///< EOF in the middle of a frame (peer died mid-write).
  Error,    ///< A read error, or a length prefix above MaxFrameBytes.
};

/// Blocking frame read from \p Fd.
ReadStatus readFrame(int Fd, std::string &Payload);

/// Incremental frame decoder for the supervisor's non-blocking reads:
/// feed() raw bytes as they arrive, next() yields completed frames.
class FrameBuffer {
public:
  /// Appends raw bytes.  Returns false when a pending frame's declared
  /// length exceeds MaxFrameBytes (protocol error; the buffer is poisoned
  /// and yields no further frames).
  bool feed(const char *Data, size_t N);
  /// Pops the next complete frame's payload, if one is buffered.
  std::optional<std::string> next();
  /// True when partial frame bytes are pending (EOF now = Partial).
  bool midFrame() const { return !Buffer.empty(); }
  /// False after a protocol error (oversized length prefix).
  bool ok() const { return !Poisoned; }

private:
  std::string Buffer;
  bool Poisoned = false;
};

} // namespace wire
} // namespace narada

#endif // NARADA_SUPPORT_WIRE_H
