//===- support/StringUtils.h - Small string helpers ------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting and manipulation helpers shared across the project.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_STRINGUTILS_H
#define NARADA_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace narada {

/// Splits \p Text on the single character \p Sep.  Empty pieces are kept so
/// that join(split(S, C), C) == S.
std::vector<std::string> split(std::string_view Text, char Sep);

/// Joins \p Pieces with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Pieces,
                 std::string_view Sep);

/// Returns \p Text with leading and trailing ASCII whitespace removed.
std::string_view trim(std::string_view Text);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Returns true if \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a double with \p Precision digits after the decimal point.
std::string formatDouble(double Value, int Precision);

/// Left-pads \p Text with spaces to at least \p Width characters.
std::string padLeft(std::string Text, size_t Width);

/// Right-pads \p Text with spaces to at least \p Width characters.
std::string padRight(std::string Text, size_t Width);

} // namespace narada

#endif // NARADA_SUPPORT_STRINGUTILS_H
