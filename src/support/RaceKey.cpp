//===- support/RaceKey.cpp - Stable, collision-free race identity --------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "support/RaceKey.h"

using namespace narada;

std::string narada::escapeRaceKeyComponent(std::string_view Raw,
                                           bool EscapeDot) {
  std::string Out;
  Out.reserve(Raw.size());
  for (char C : Raw) {
    if (C == '\\' || C == '{' || C == '}' || C == '~' ||
        (EscapeDot && C == '.'))
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

std::string narada::makeRaceKey(std::string_view ClassName,
                                std::string_view Field, std::string_view LabelA,
                                std::string_view LabelB) {
  // Sort on the raw labels: the identity is an unordered pair, and raw
  // ordering matches what the pre-escaping format produced.
  std::string_view A = LabelA, B = LabelB;
  if (B < A)
    std::swap(A, B);
  std::string Key = escapeRaceKeyComponent(ClassName, /*EscapeDot=*/true);
  Key += '.';
  Key += escapeRaceKeyComponent(Field, /*EscapeDot=*/false);
  Key += '{';
  Key += escapeRaceKeyComponent(A, /*EscapeDot=*/false);
  Key += '~';
  Key += escapeRaceKeyComponent(B, /*EscapeDot=*/false);
  Key += '}';
  return Key;
}

std::string narada::makeRaceKey(const RaceKeyParts &Parts) {
  return makeRaceKey(Parts.ClassName, Parts.Field, Parts.FirstLabel,
                     Parts.SecondLabel);
}

namespace {

/// Scans \p Key from \p I, appending unescaped bytes to \p Out, until an
/// unescaped occurrence of \p Delim.  Any other unescaped special byte
/// (from \p Forbidden) fails the parse, as does a trailing lone backslash.
/// On success \p I points one past the delimiter.
bool scanComponent(std::string_view Key, size_t &I, char Delim,
                   std::string_view Forbidden, std::string &Out) {
  while (I < Key.size()) {
    char C = Key[I];
    if (C == '\\') {
      if (I + 1 >= Key.size())
        return false; // Dangling escape.
      Out.push_back(Key[I + 1]);
      I += 2;
      continue;
    }
    if (C == Delim) {
      ++I;
      return true;
    }
    if (Forbidden.find(C) != std::string_view::npos)
      return false; // Unescaped special inside a component.
    Out.push_back(C);
    ++I;
  }
  return false; // Ran out of input before the delimiter.
}

} // namespace

std::optional<RaceKeyParts> narada::parseRaceKey(std::string_view Key) {
  RaceKeyParts Parts;
  size_t I = 0;
  // Class: up to the first unescaped '.'; braces and '~' must be escaped.
  if (!scanComponent(Key, I, '.', "{}~", Parts.ClassName))
    return std::nullopt;
  // Field: up to the first unescaped '{'; raw dots are fine here.
  if (!scanComponent(Key, I, '{', "}~", Parts.Field))
    return std::nullopt;
  // First label: up to the first unescaped '~'.
  if (!scanComponent(Key, I, '~', "{}", Parts.FirstLabel))
    return std::nullopt;
  // Second label: up to an unescaped '}' that must end the key.
  if (!scanComponent(Key, I, '}', "{~", Parts.SecondLabel))
    return std::nullopt;
  if (I != Key.size())
    return std::nullopt; // Trailing bytes after the closing brace.
  // Empty components are legal: element races report an empty class/field
  // (".{A~B}"), and the encoding stays unambiguous either way.
  return Parts;
}

std::optional<RaceKeyParts> narada::parseLegacyRaceKey(std::string_view Key) {
  size_t Dot = Key.find('.');
  if (Dot == std::string_view::npos)
    return std::nullopt;
  size_t Open = Key.find('{', Dot + 1);
  if (Open == std::string_view::npos)
    return std::nullopt;
  if (Key.empty() || Key.back() != '}' || Key.size() - 1 <= Open)
    return std::nullopt;
  std::string_view Body = Key.substr(Open + 1, Key.size() - Open - 2);
  size_t Tilde = Body.find('~');
  if (Tilde == std::string_view::npos)
    return std::nullopt;
  RaceKeyParts Parts;
  Parts.ClassName = std::string(Key.substr(0, Dot));
  Parts.Field = std::string(Key.substr(Dot + 1, Open - Dot - 1));
  Parts.FirstLabel = std::string(Body.substr(0, Tilde));
  Parts.SecondLabel = std::string(Body.substr(Tilde + 1));
  return Parts;
}

std::optional<std::string> narada::canonicalRaceKey(std::string_view Key,
                                                    bool &Migrated) {
  Migrated = false;
  if (std::optional<RaceKeyParts> Parts = parseRaceKey(Key)) {
    std::string Canonical = makeRaceKey(*Parts);
    // A strictly-parseable key can still be non-canonical (labels stored
    // out of order); re-encoding normalizes without counting as legacy.
    return Canonical;
  }
  if (std::optional<RaceKeyParts> Parts = parseLegacyRaceKey(Key)) {
    Migrated = true;
    return makeRaceKey(*Parts);
  }
  return std::nullopt;
}
