//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing executor for the embarrassingly parallel per-pair
/// and per-test stages of the pipeline.  Each worker owns a deque of tasks:
/// it pops from the back of its own deque (LIFO, cache-friendly) and steals
/// from the front of a victim's deque (FIFO, coarse units first) when its
/// own runs dry.  Determinism is the callers' problem by construction: the
/// pool promises only that every submitted task runs exactly once; callers
/// write results into pre-sized slots and merge them in canonical order
/// (see synth/ParallelDriver).
///
/// The deques are mutex-guarded rather than lock-free: tasks here are
/// whole-pair derivations and whole-test schedule explorations (micro- to
/// milliseconds), so queue overhead is noise, and mutexes keep the pool
/// trivially clean under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_THREADPOOL_H
#define NARADA_SUPPORT_THREADPOOL_H

#include <algorithm>
#include <condition_variable>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace narada {

/// Resolves a --jobs/NARADA_JOBS request: 0 means "all hardware threads".
inline unsigned resolveJobs(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

/// Parses a --jobs/NARADA_JOBS value: a base-10 unsigned integer where 0
/// means "all hardware threads".  Returns false and leaves \p Out untouched
/// on empty, non-numeric, or out-of-range input, so callers keep their
/// default instead of silently escalating to maximum parallelism.
inline bool parseJobs(const char *Text, unsigned &Out) {
  if (!Text || *Text == '\0')
    return false;
  for (const char *P = Text; *P; ++P)
    if (*P < '0' || *P > '9')
      return false;
  errno = 0;
  char *End = nullptr;
  unsigned long Value = std::strtoul(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE ||
      Value > std::numeric_limits<unsigned>::max())
    return false;
  Out = static_cast<unsigned>(Value);
  return true;
}

/// A fixed-size work-stealing thread pool.  Construct with the worker
/// count; destruction drains nothing — join only happens once all
/// parallelFor calls returned (the pool is used scoped, per stage).
class ThreadPool {
public:
  explicit ThreadPool(unsigned Workers)
      : Queues(Workers == 0 ? 1 : Workers) {
    unsigned N = static_cast<unsigned>(Queues.size());
    for (auto &Q : Queues)
      Q = std::make_unique<WorkerQueue>();
    Threads.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Threads.emplace_back([this, I] { workerLoop(I); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(SleepM);
      Stopping = true;
    }
    SleepCV.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

  /// One pooled task that threw: which item, and what escaped it.  The
  /// barrier in runTask captures the exception instead of letting it
  /// unwind the worker thread (which would std::terminate the process and
  /// lose every other item's results).
  struct TaskFailure {
    size_t Item = 0;
    std::exception_ptr Error;
  };

  /// Runs Body(Item, Worker) for every Item in [0, N), distributing items
  /// round-robin over the worker deques and blocking until all complete.
  /// Worker is the executing worker's index in [0, size()) — callers use
  /// it to pick per-worker scratch state without locking.  A Body that
  /// throws does not take the process down: the exception is captured
  /// per-task and returned (sorted by item index, so the caller's handling
  /// is deterministic); all other items still run.
  [[nodiscard]] std::vector<TaskFailure>
  parallelFor(size_t N, const std::function<void(size_t, unsigned)> &Body) {
    if (N == 0)
      return {};
    Batch B;
    B.Remaining = N; // No worker can see B until the pushes below publish it.
    // Round-robin seeding spreads the canonical index range over the
    // deques so early stealing is rarely needed for balanced loads.
    for (size_t Item = 0; Item < N; ++Item) {
      WorkerQueue &Q = *Queues[Item % Queues.size()];
      std::lock_guard<std::mutex> Lock(Q.M);
      Q.Tasks.push_back(Task{&B, &Body, Item});
    }
    {
      // Bump the submission ticket under the sleep lock so a worker that
      // scanned empty deques before the pushes above cannot go to sleep
      // without observing the new work (see workerLoop).
      std::lock_guard<std::mutex> Lock(SleepM);
      ++SubmitTicket;
    }
    SleepCV.notify_all();
    std::vector<TaskFailure> Failures;
    {
      std::unique_lock<std::mutex> Lock(B.DoneM);
      B.DoneCV.wait(Lock, [&B] { return B.Remaining == 0; });
      Failures = std::move(B.Failures);
    }
    std::sort(Failures.begin(), Failures.end(),
              [](const TaskFailure &A, const TaskFailure &C) {
                return A.Item < C.Item;
              });
    return Failures;
  }

private:
  struct Batch {
    size_t Remaining = 0; ///< Guarded by DoneM once workers can see Batch.
    std::vector<TaskFailure> Failures; ///< Guarded by DoneM.
    std::mutex DoneM;
    std::condition_variable DoneCV;
  };

  struct Task {
    Batch *Owner = nullptr;
    const std::function<void(size_t, unsigned)> *Body = nullptr;
    size_t Item = 0;
  };

  struct WorkerQueue {
    std::mutex M;
    std::deque<Task> Tasks;
  };

  bool popOwn(unsigned Worker, Task &Out) {
    WorkerQueue &Q = *Queues[Worker];
    std::lock_guard<std::mutex> Lock(Q.M);
    if (Q.Tasks.empty())
      return false;
    Out = Q.Tasks.back();
    Q.Tasks.pop_back();
    return true;
  }

  bool steal(unsigned Thief, Task &Out) {
    for (size_t Offset = 1; Offset < Queues.size(); ++Offset) {
      WorkerQueue &Victim = *Queues[(Thief + Offset) % Queues.size()];
      std::lock_guard<std::mutex> Lock(Victim.M);
      if (Victim.Tasks.empty())
        continue;
      Out = Victim.Tasks.front();
      Victim.Tasks.pop_front();
      return true;
    }
    return false;
  }

  void runTask(const Task &T, unsigned Worker) {
    // Exception barrier: a throw must never unwind the worker loop — that
    // escapes the thread and std::terminates the process, killing every
    // other task's results with it.  Capture and hand it to the waiter.
    std::exception_ptr Failure;
    try {
      (*T.Body)(T.Item, Worker);
    } catch (...) {
      Failure = std::current_exception();
    }
    // Decrement and notify while holding DoneM: the waiter's predicate runs
    // under the same mutex, so it cannot observe Remaining == 0 and destroy
    // the stack-allocated Batch until this unlock completes — after which no
    // thread touches the Batch again.
    Batch &B = *T.Owner;
    std::lock_guard<std::mutex> Lock(B.DoneM);
    if (Failure)
      B.Failures.push_back({T.Item, std::move(Failure)});
    if (--B.Remaining == 0)
      B.DoneCV.notify_all();
  }

  void workerLoop(unsigned Worker) {
    uint64_t SeenTicket = 0;
    for (;;) {
      Task T;
      if (popOwn(Worker, T) || steal(Worker, T)) {
        runTask(T, Worker);
        continue;
      }
      std::unique_lock<std::mutex> Lock(SleepM);
      if (Stopping)
        return;
      // Sleep only if no submission happened since our (empty) scan of the
      // deques started; parallelFor bumps the ticket under this lock after
      // pushing, so the wake-up cannot be lost.
      if (SubmitTicket == SeenTicket)
        SleepCV.wait(Lock, [this, SeenTicket] {
          return Stopping || SubmitTicket != SeenTicket;
        });
      if (Stopping)
        return;
      SeenTicket = SubmitTicket;
    }
  }

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Threads;
  std::mutex SleepM;
  std::condition_variable SleepCV;
  uint64_t SubmitTicket = 0;
  bool Stopping = false;
};

} // namespace narada

#endif // NARADA_SUPPORT_THREADPOOL_H
