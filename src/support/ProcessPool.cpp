//===- support/ProcessPool.cpp - Crash-isolated worker pool --------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "support/ProcessPool.h"

#include "support/StringUtils.h"
#include "support/Timer.h"
#include "support/Wire.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace narada;
using namespace narada::pool;

const char *pool::crashKindName(CrashKind K) {
  switch (K) {
  case CrashKind::None:
    return "none";
  case CrashKind::Signal:
    return "signal";
  case CrashKind::Timeout:
    return "timeout";
  case CrashKind::Oom:
    return "oom";
  case CrashKind::ProtocolError:
    return "protocol-error";
  case CrashKind::SpawnFailure:
    return "spawn-failure";
  }
  return "unknown";
}

std::string pool::describeCrash(const UnitOutcome &O) {
  std::string Msg = std::string("hard fault: ") + crashKindName(O.Crash) +
                    ": " + O.CrashDetail;
  if (O.PartialOutput)
    Msg += " (partial output lost)";
  if (O.WorkerDeaths > 1) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), " (quarantined after killing %u workers)",
                  O.WorkerDeaths);
    Msg += Buf;
  }
  return Msg;
}

std::string pool::currentExecutablePath(const std::string &Fallback) {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return Fallback;
  Buf[N] = '\0';
  return Buf;
}

namespace {

/// Deterministic names for the signals crash classification cares about;
/// strsignal() is locale-dependent, and quarantine reasons are asserted on.
const char *signalName(int Sig) {
  switch (Sig) {
  case SIGSEGV:
    return "SIGSEGV";
  case SIGABRT:
    return "SIGABRT";
  case SIGBUS:
    return "SIGBUS";
  case SIGILL:
    return "SIGILL";
  case SIGFPE:
    return "SIGFPE";
  case SIGKILL:
    return "SIGKILL";
  case SIGXCPU:
    return "SIGXCPU";
  case SIGTERM:
    return "SIGTERM";
  default:
    return nullptr;
  }
}

std::string describeSignal(int Sig) {
  const char *Name = signalName(Sig);
  if (Name)
    return formatString("signal %d (%s)", Sig, Name);
  return formatString("signal %d", Sig);
}

/// Writes to dead pipes must return EPIPE, not raise SIGPIPE: the
/// supervisor treats them as worker deaths.  Installed once per process.
void ignoreSigpipeOnce() {
  static bool Done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)Done;
}

void closeFd(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

} // namespace

struct ProcessPool::Impl {
  PoolOptions Options;
  PoolStats *Stats = nullptr;
  Timer Clock; ///< The single monotonic time source for every watchdog.

  struct Slot {
    enum class State {
      Dead,       ///< No process; may be respawned (backoff permitting).
      AwaitReady, ///< Spawned, setup sent, ready frame pending.
      Idle,       ///< Ready and unassigned.
      Busy,       ///< A unit frame is in flight.
      Retired,    ///< Respawn budget exhausted; never spawned again.
    };
    State St = State::Dead;
    pid_t Pid = -1;
    int InFd = -1;  ///< Supervisor -> worker requests.
    int OutFd = -1; ///< Worker -> supervisor responses (non-blocking).
    wire::FrameBuffer Frames;
    size_t Unit = 0;          ///< In-flight unit index (Busy only).
    double DeadlineAt = 0.0;  ///< Clock seconds; 0 = no deadline.
    double LastBeatAt = 0.0;  ///< Last heartbeat (or spawn) time.
    unsigned Respawns = 0;    ///< Deaths so far (first spawn is free).
    double SpawnAllowedAt = 0.0; ///< Backoff gate for the next respawn.
  };
  std::vector<Slot> Slots;

  // Per-run state (run() is not reentrant).
  std::deque<size_t> Pending;
  std::vector<UnitOutcome> *Outcomes = nullptr;
  const std::vector<std::string> *Units = nullptr;
  std::vector<unsigned> Deaths;
  std::vector<double> FirstDispatchAt;
  size_t Remaining = 0;

  explicit Impl(PoolOptions O) : Options(std::move(O)) {
    ignoreSigpipeOnce();
    Slots.resize(Options.Workers ? Options.Workers : 1);
  }

  double now() { return Clock.seconds(); }

  double backoffMs(unsigned Respawns) const {
    double Ms = Options.RespawnBackoffBaseMs;
    for (unsigned I = 1; I < Respawns; ++I)
      Ms *= 2.0;
    return Ms > Options.RespawnBackoffCapMs ? Options.RespawnBackoffCapMs
                                            : Ms;
  }

  /// fork/execs one worker into \p S: request/response pipes, child-side
  /// rlimits, setup frame.  Returns false when the slot could not start.
  bool spawn(Slot &S) {
    int ToChild[2] = {-1, -1};   // [0] child reads, [1] parent writes.
    int FromChild[2] = {-1, -1}; // [0] parent reads, [1] child writes.
    if (::pipe(ToChild) != 0)
      return false;
    if (::pipe(FromChild) != 0) {
      ::close(ToChild[0]);
      ::close(ToChild[1]);
      return false;
    }

    std::vector<char *> Argv;
    for (const std::string &Arg : Options.WorkerArgv)
      Argv.push_back(const_cast<char *>(Arg.c_str()));
    Argv.push_back(nullptr);

    pid_t Pid = ::fork();
    if (Pid < 0) {
      ::close(ToChild[0]);
      ::close(ToChild[1]);
      ::close(FromChild[0]);
      ::close(FromChild[1]);
      return false;
    }
    if (Pid == 0) {
      // Child: wire the pipes to stdio, apply resource limits, exec.
      ::dup2(ToChild[0], STDIN_FILENO);
      ::dup2(FromChild[1], STDOUT_FILENO);
      ::close(ToChild[0]);
      ::close(ToChild[1]);
      ::close(FromChild[0]);
      ::close(FromChild[1]);
      if (Options.WorkerCpuLimitSeconds > 0) {
        // Soft limit raises SIGXCPU (classified as a cpu timeout); the
        // hard limit one second later is the SIGKILL backstop.
        struct rlimit CpuLimit;
        CpuLimit.rlim_cur = Options.WorkerCpuLimitSeconds;
        CpuLimit.rlim_max = Options.WorkerCpuLimitSeconds + 1;
        ::setrlimit(RLIMIT_CPU, &CpuLimit);
      }
      if (Options.WorkerMemLimitMb > 0) {
        // RLIMIT_AS makes allocation fail with std::bad_alloc inside the
        // worker, which reports a graceful `crash kind=oom` frame — the
        // classification that distinguishes OOM from a segv.
        struct rlimit MemLimit;
        MemLimit.rlim_cur = Options.WorkerMemLimitMb << 20;
        MemLimit.rlim_max = Options.WorkerMemLimitMb << 20;
        ::setrlimit(RLIMIT_AS, &MemLimit);
      }
      ::execv(Argv[0], Argv.data());
      _exit(127);
    }

    // Parent.
    ::close(ToChild[0]);
    ::close(FromChild[1]);
    int Flags = ::fcntl(FromChild[0], F_GETFL, 0);
    ::fcntl(FromChild[0], F_SETFL, Flags | O_NONBLOCK);

    S.Pid = Pid;
    S.InFd = ToChild[1];
    S.OutFd = FromChild[0];
    S.Frames = wire::FrameBuffer();
    S.LastBeatAt = now();
    S.DeadlineAt = Options.UnitDeadlineSeconds > 0
                       ? now() + Options.UnitDeadlineSeconds
                       : 0.0;
    S.St = Slot::State::AwaitReady;
    ++Stats->WorkersSpawned;
    if (S.Respawns > 0)
      ++Stats->WorkersRespawned;

    if (!wire::writeFrame(S.InFd, Options.SetupPayload)) {
      // Died before reading setup; the poll loop will reap and classify.
      return true;
    }
    return true;
  }

  void reap(Slot &S, int &Status) {
    Status = 0;
    if (S.Pid > 0)
      ::waitpid(S.Pid, &Status, 0);
    S.Pid = -1;
    closeFd(S.InFd);
    closeFd(S.OutFd);
  }

  void kill(Slot &S) {
    if (S.Pid > 0)
      ::kill(S.Pid, SIGKILL);
  }

  /// Classifies a worker's spontaneous death from its wait status.
  void classifyExit(int Status, UnitOutcome &Out) {
    if (WIFSIGNALED(Status)) {
      int Sig = WTERMSIG(Status);
      if (Sig == SIGXCPU ||
          (Sig == SIGKILL && Options.WorkerCpuLimitSeconds > 0)) {
        Out.Crash = CrashKind::Timeout;
        Out.RlimitCpuHit = true;
        Out.CrashDetail = formatString(
            "cpu rlimit (%llus) exhausted, worker killed by %s",
            static_cast<unsigned long long>(Options.WorkerCpuLimitSeconds),
            describeSignal(Sig).c_str());
        return;
      }
      Out.Crash = CrashKind::Signal;
      Out.TermSignal = Sig;
      Out.CrashDetail = formatString("worker killed by %s",
                                     describeSignal(Sig).c_str());
      if (Sig == SIGKILL)
        Out.CrashDetail += " (possible kernel OOM kill)";
      return;
    }
    int Code = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
    Out.Crash = CrashKind::ProtocolError;
    Out.CrashDetail = formatString(
        "worker exited with status %d without answering its unit", Code);
  }

  /// Handles a dead worker: classify, charge the in-flight unit (poison
  /// rule), schedule the respawn backoff.  \p Watchdog carries a
  /// pre-classified outcome for deaths the supervisor initiated (deadline
  /// or heartbeat kill); null means classify from the wait status.
  void handleDeath(Slot &S, const UnitOutcome *Watchdog) {
    bool WasBusy = S.St == Slot::State::Busy;
    size_t Unit = S.Unit;
    bool Partial = S.Frames.midFrame();

    int Status = 0;
    reap(S, Status);

    UnitOutcome Death;
    if (Watchdog)
      Death = *Watchdog;
    else
      classifyExit(Status, Death);

    if (Death.Crash == CrashKind::Timeout)
      ++Stats->WorkersTimedOut;
    else
      ++Stats->WorkersCrashed;

    if (WasBusy) {
      Death.PartialOutput = Partial;
      ++Deaths[Unit];
      Death.WorkerDeaths = Deaths[Unit];
      if (Deaths[Unit] >= Options.PoisonThreshold) {
        // Poison-task rule: this unit has now killed enough workers; it
        // is quarantined with the latest classification, never retried.
        finish(Unit, std::move(Death));
        ++Stats->UnitsPoisoned;
      } else {
        Pending.push_front(Unit);
        ++Stats->UnitsRedispatched;
      }
    }

    ++S.Respawns;
    if (S.Respawns > Options.MaxRespawnsPerWorker) {
      S.St = Slot::State::Retired;
      return;
    }
    S.St = Slot::State::Dead;
    double Ms = backoffMs(S.Respawns);
    S.SpawnAllowedAt = now() + Ms / 1000.0;
    ++Stats->BackoffWaits;
    Stats->BackoffMsTotal += Ms;
  }

  void finish(size_t Unit, UnitOutcome Out) {
    Out.Micros = static_cast<uint64_t>(
        (now() - FirstDispatchAt[Unit]) * 1e6);
    (*Outcomes)[Unit] = std::move(Out);
    --Remaining;
  }

  void sendUnit(Slot &S, size_t Unit) {
    S.Unit = Unit;
    S.St = Slot::State::Busy;
    S.DeadlineAt = Options.UnitDeadlineSeconds > 0
                       ? now() + Options.UnitDeadlineSeconds
                       : 0.0;
    ++Stats->UnitsDispatched;
    if (FirstDispatchAt[Unit] == 0.0)
      FirstDispatchAt[Unit] = now();
    if (!wire::writeFrame(S.InFd, (*Units)[Unit])) {
      UnitOutcome Death;
      Death.Crash = CrashKind::ProtocolError;
      Death.CrashDetail = "worker pipe closed before the unit was sent";
      handleDeath(S, &Death);
    }
  }

  /// Processes one decoded frame from \p S.  Returns false on a protocol
  /// violation (caller kills the worker).
  bool handleFrame(Slot &S, const std::string &Payload) {
    wire::RecordReader Record(Payload);
    std::string Verb = Record.getOr("verb", "");
    if (Verb == "hb") {
      S.LastBeatAt = now();
      return true;
    }
    if (Verb == "ready") {
      if (S.St != Slot::State::AwaitReady)
        return false;
      S.St = Slot::State::Idle;
      S.DeadlineAt = 0.0;
      return true;
    }
    if (Verb == "result") {
      if (S.St != Slot::State::Busy)
        return false;
      UnitOutcome Out;
      Out.Ok = true;
      Out.Payload = Payload;
      finish(S.Unit, std::move(Out));
      S.St = Slot::State::Idle;
      S.DeadlineAt = 0.0;
      return true;
    }
    if (Verb == "crash") {
      // A graceful crash report: the worker survived (e.g. it caught
      // std::bad_alloc under RLIMIT_AS) but the unit is gone.  No retry:
      // per-unit outcomes are deterministic, rerunning would OOM again.
      if (S.St != Slot::State::Busy)
        return false;
      UnitOutcome Out;
      std::string Kind = Record.getOr("kind", "oom");
      Out.Crash = Kind == "oom" ? CrashKind::Oom : CrashKind::ProtocolError;
      Out.CrashDetail = Record.getOr("detail", "worker-reported crash");
      Out.WorkerDeaths = Deaths[S.Unit];
      finish(S.Unit, std::move(Out));
      S.St = Slot::State::Idle;
      S.DeadlineAt = 0.0;
      return true;
    }
    return false;
  }

  /// Drains readable bytes from \p S and dispatches complete frames.
  void drainWorker(Slot &S) {
    char Buf[16384];
    for (;;) {
      ssize_t Got = ::read(S.OutFd, Buf, sizeof(Buf));
      if (Got < 0) {
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          break;
        Got = 0; // Read error: treat as death.
      }
      if (Got == 0) {
        handleDeath(S, nullptr);
        return;
      }
      if (!S.Frames.feed(Buf, static_cast<size_t>(Got))) {
        UnitOutcome Death;
        Death.Crash = CrashKind::ProtocolError;
        Death.CrashDetail = "oversized frame from worker";
        kill(S);
        handleDeath(S, &Death);
        return;
      }
      while (std::optional<std::string> Frame = S.Frames.next()) {
        if (!handleFrame(S, *Frame)) {
          UnitOutcome Death;
          Death.Crash = CrashKind::ProtocolError;
          Death.CrashDetail = "unexpected frame from worker";
          kill(S);
          handleDeath(S, &Death);
          return;
        }
      }
      if (!S.Frames.ok()) {
        UnitOutcome Death;
        Death.Crash = CrashKind::ProtocolError;
        Death.CrashDetail = "oversized frame from worker";
        kill(S);
        handleDeath(S, &Death);
        return;
      }
    }
  }

  /// Kills workers whose unit deadline or heartbeat watchdog expired.
  void enforceWatchdogs() {
    double Now = now();
    for (Slot &S : Slots) {
      bool Live =
          S.St == Slot::State::Busy || S.St == Slot::State::AwaitReady;
      if (!Live)
        continue;
      if (S.DeadlineAt > 0.0 && Now > S.DeadlineAt) {
        UnitOutcome Death;
        Death.Crash = CrashKind::Timeout;
        Death.CrashDetail = formatString(
            "unit exceeded its %.1fs wall deadline, worker killed",
            Options.UnitDeadlineSeconds);
        kill(S);
        handleDeath(S, &Death);
        continue;
      }
      if (Options.HeartbeatTimeoutSeconds > 0.0 &&
          Now - S.LastBeatAt > Options.HeartbeatTimeoutSeconds) {
        UnitOutcome Death;
        Death.Crash = CrashKind::Timeout;
        Death.CrashDetail = formatString(
            "no heartbeat for %.1fs, worker presumed wedged and killed",
            Options.HeartbeatTimeoutSeconds);
        kill(S);
        handleDeath(S, &Death);
      }
    }
  }

  /// Spawns Dead slots whose backoff has elapsed; hands pending units to
  /// idle workers.
  void scheduleWork() {
    double Now = now();
    for (Slot &S : Slots) {
      if (S.St == Slot::State::Dead && Now >= S.SpawnAllowedAt &&
          !Pending.empty()) {
        if (!spawn(S)) {
          ++S.Respawns;
          if (S.Respawns > Options.MaxRespawnsPerWorker)
            S.St = Slot::State::Retired;
          else
            S.SpawnAllowedAt = Now + backoffMs(S.Respawns) / 1000.0;
        }
      }
    }
    for (Slot &S : Slots) {
      if (Pending.empty())
        break;
      if (S.St != Slot::State::Idle)
        continue;
      size_t Unit = Pending.front();
      Pending.pop_front();
      sendUnit(S, Unit);
    }
  }

  /// True while some slot can still make progress on pending work.
  bool anyHope() const {
    for (const Slot &S : Slots)
      if (S.St != Slot::State::Retired)
        return true;
    return false;
  }

  /// The poll timeout until the next interesting instant (deadline,
  /// heartbeat check, backoff expiry), clamped to [1, 100] ms.
  int pollTimeoutMs() {
    double Now = now();
    double Next = Now + 0.1;
    for (const Slot &S : Slots) {
      if ((S.St == Slot::State::Busy || S.St == Slot::State::AwaitReady) &&
          S.DeadlineAt > 0.0 && S.DeadlineAt < Next)
        Next = S.DeadlineAt;
      if (S.St == Slot::State::Dead && S.SpawnAllowedAt > Now &&
          S.SpawnAllowedAt < Next)
        Next = S.SpawnAllowedAt;
    }
    double Ms = (Next - Now) * 1000.0;
    if (Ms < 1.0)
      return 1;
    if (Ms > 100.0)
      return 100;
    return static_cast<int>(Ms);
  }

  std::vector<UnitOutcome> run(const std::vector<std::string> &Requests) {
    std::vector<UnitOutcome> Result(Requests.size());
    if (Requests.empty())
      return Result;

    Units = &Requests;
    Outcomes = &Result;
    Deaths.assign(Requests.size(), 0);
    FirstDispatchAt.assign(Requests.size(), 0.0);
    Pending.clear();
    for (size_t I = 0; I < Requests.size(); ++I)
      Pending.push_back(I);
    Remaining = Requests.size();

    while (Remaining > 0) {
      scheduleWork();

      bool AnyLive = false;
      for (const Slot &S : Slots)
        AnyLive |= S.St == Slot::State::Busy ||
                   S.St == Slot::State::AwaitReady ||
                   S.St == Slot::State::Idle;
      if (!AnyLive) {
        if (!anyHope() || Pending.empty()) {
          // Every slot retired (or nothing left to hand out): whatever is
          // still pending can never run.
          while (!Pending.empty()) {
            size_t Unit = Pending.front();
            Pending.pop_front();
            UnitOutcome Out;
            Out.Crash = CrashKind::SpawnFailure;
            Out.CrashDetail =
                "no worker could be spawned (respawn budget exhausted)";
            Out.WorkerDeaths = Deaths[Unit];
            if (FirstDispatchAt[Unit] == 0.0)
              FirstDispatchAt[Unit] = now();
            finish(Unit, std::move(Out));
          }
          break;
        }
        // All slots waiting out their backoff: sleep to the earliest gate.
        ::poll(nullptr, 0, pollTimeoutMs());
        continue;
      }

      std::vector<struct pollfd> Fds;
      std::vector<size_t> FdSlot;
      for (size_t I = 0; I < Slots.size(); ++I) {
        Slot &S = Slots[I];
        if (S.OutFd >= 0 && (S.St == Slot::State::Busy ||
                             S.St == Slot::State::AwaitReady ||
                             S.St == Slot::State::Idle)) {
          Fds.push_back({S.OutFd, POLLIN, 0});
          FdSlot.push_back(I);
        }
      }
      int Ready = ::poll(Fds.data(), Fds.size(), pollTimeoutMs());
      if (Ready > 0) {
        for (size_t K = 0; K < Fds.size(); ++K) {
          if (Fds[K].revents & (POLLIN | POLLHUP | POLLERR))
            drainWorker(Slots[FdSlot[K]]);
        }
      }
      enforceWatchdogs();
    }

    Units = nullptr;
    Outcomes = nullptr;
    return Result;
  }

  void shutdown() {
    wire::RecordWriter Bye;
    Bye.add("verb", std::string_view("shutdown"));
    std::string Frame = Bye.str();
    for (Slot &S : Slots) {
      if (S.InFd >= 0) {
        (void)wire::writeFrame(S.InFd, Frame);
        closeFd(S.InFd);
      }
    }
    // Grace period, then force: a worker ignoring shutdown is wedged.
    double Deadline = now() + 2.0;
    for (Slot &S : Slots) {
      if (S.Pid <= 0)
        continue;
      for (;;) {
        int Status = 0;
        pid_t Got = ::waitpid(S.Pid, &Status, WNOHANG);
        if (Got == S.Pid || Got < 0) {
          S.Pid = -1;
          break;
        }
        if (now() > Deadline) {
          ::kill(S.Pid, SIGKILL);
          ::waitpid(S.Pid, &Status, 0);
          S.Pid = -1;
          break;
        }
        ::poll(nullptr, 0, 10);
      }
      closeFd(S.OutFd);
    }
  }
};

ProcessPool::ProcessPool(PoolOptions Options)
    : P(std::make_unique<Impl>(std::move(Options))) {
  P->Stats = &Stats;
}

ProcessPool::~ProcessPool() { P->shutdown(); }

std::vector<UnitOutcome>
ProcessPool::run(const std::vector<std::string> &Units) {
  return P->run(Units);
}
