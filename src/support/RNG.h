//===- support/RNG.h - Deterministic random number generator ---*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64).  Scheduler interleavings,
/// the ConTeGe baseline and the RaceFuzzer-style confirmation runs must be
/// reproducible from a seed, so std::random_device is never used.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_RNG_H
#define NARADA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace narada {

/// SplitMix64 pseudo-random generator.  Deterministic for a given seed.
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).  \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0) is meaningless");
    // Modulo bias is negligible for the small bounds used here (thread
    // counts, method counts) and determinism matters more than uniformity.
    return next() % Bound;
  }

  /// Returns true with probability Numerator/Denominator.
  bool chance(uint64_t Numerator, uint64_t Denominator) {
    assert(Denominator != 0 && "zero denominator");
    return nextBelow(Denominator) < Numerator;
  }

  /// Forks an independent stream; useful for giving each synthesized test its
  /// own generator without correlating the streams.
  RNG fork() { return RNG(next() ^ 0xd1b54a32d192ed03ULL); }

private:
  uint64_t State;
};

} // namespace narada

#endif // NARADA_SUPPORT_RNG_H
