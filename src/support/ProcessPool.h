//===- support/ProcessPool.h - Crash-isolated worker pool -------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fork/exec supervisor that shards work units across crash-isolated
/// worker subprocesses — the hard-fault counterpart to the in-process
/// exception barriers (docs/ROBUSTNESS.md): a SIGSEGV, abort(), OOM kill
/// or runaway loop inside one unit costs exactly that unit, never the
/// supervising process or any other unit's result.
///
/// Protocol (src/support/Wire.h): each worker is an exec'd subprocess
/// speaking length-prefixed record frames over its stdin/stdout pipes.
/// A fresh worker receives one `setup` frame (and must answer `ready`)
/// before unit frames; each `unit` frame is answered by exactly one
/// `result` or `crash` frame.  Workers additionally emit `hb` heartbeat
/// frames from a monitor thread so the supervisor can distinguish a slow
/// unit (deadline watchdog applies) from a wedged or silently-dead worker
/// (heartbeat watchdog applies).
///
/// Containment mechanics:
///  - RLIMIT_CPU / RLIMIT_AS are applied between fork and exec, so a
///    runaway or leaking unit is bounded by the kernel, not by trust;
///  - every worker death is classified — {signal+name, timeout, oom,
///    protocol-error, spawn-failure} — by waitpid status plus protocol
///    state, and the classification lands in the unit's outcome;
///  - a worker death triggers a bounded respawn with exponential backoff
///    and the in-flight unit is re-dispatched exactly once: a unit that
///    kills two workers is poisoned (quarantined), not retried — the
///    fault is assumed deterministic, like every other per-unit outcome;
///  - outcomes are keyed by unit index, so callers commit results in
///    canonical order regardless of which worker ran what when.
///
/// Layering: this lives in narada_support, *below* narada_obs, so it
/// reports statistics through PoolStats; callers (synth/detect drivers)
/// publish those as `pool.*` metrics.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_PROCESSPOOL_H
#define NARADA_SUPPORT_PROCESSPOOL_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace narada {
namespace pool {

/// How a work unit's worker came to grief.
enum class CrashKind {
  None,          ///< The unit completed (a result frame arrived).
  Signal,        ///< Worker terminated by a signal (SIGSEGV, SIGABRT, ...).
  Timeout,       ///< Killed by the supervisor's wall-deadline or heartbeat
                 ///< watchdog, or by RLIMIT_CPU (SIGXCPU/SIGKILL).
  Oom,           ///< Allocation failure under RLIMIT_AS: either a graceful
                 ///< `crash kind=oom` frame (worker caught std::bad_alloc)
                 ///< or an OOM kill.
  ProtocolError, ///< Garbled frame, unexpected verb, or clean exit without
                 ///< answering the in-flight unit.
  SpawnFailure,  ///< No worker could be (re)spawned to run the unit.
};

/// Stable lower-case name of \p K ("signal", "timeout", "oom", ...).
const char *crashKindName(CrashKind K);

struct UnitOutcome;

/// Quarantine message for a hard-faulted unit: "hard fault: <kind>:
/// <detail>" plus partial-output / poison annotations.  Shared by the
/// synth and detect drivers so crash records read the same everywhere.
std::string describeCrash(const UnitOutcome &O);

/// Configuration for one pool.
struct PoolOptions {
  /// Worker subprocess argv; argv[0] is the executable path.
  std::vector<std::string> WorkerArgv;
  /// Concurrent worker subprocesses.
  unsigned Workers = 1;
  /// The payload of the `setup` frame each fresh worker receives.
  std::string SetupPayload;
  /// Per-unit wall deadline in seconds (0 = none): a unit not answered in
  /// time has its worker killed and is classified Timeout.
  double UnitDeadlineSeconds = 60.0;
  /// Seconds without a heartbeat before a busy worker is declared wedged
  /// and killed (0 = none).  Generous by default: heartbeats flow from a
  /// monitor thread even while the unit computes, so silence means the
  /// process is gone or stuck in the kernel.
  double HeartbeatTimeoutSeconds = 10.0;
  /// RLIMIT_CPU for each worker in seconds (0 = inherit the parent's).
  uint64_t WorkerCpuLimitSeconds = 0;
  /// RLIMIT_AS for each worker in MiB (0 = inherit the parent's).
  uint64_t WorkerMemLimitMb = 0;
  /// Worker deaths tolerated per slot before the slot is retired.
  unsigned MaxRespawnsPerWorker = 3;
  /// Exponential backoff before respawning a crashed worker:
  /// base * 2^(respawn-1) milliseconds, capped.
  double RespawnBackoffBaseMs = 10.0;
  double RespawnBackoffCapMs = 500.0;
  /// Worker deaths a single unit may cause before it is poisoned
  /// (quarantined instead of re-dispatched).
  unsigned PoisonThreshold = 2;
};

/// The outcome of one work unit.
struct UnitOutcome {
  bool Ok = false;          ///< A `result` frame arrived; Payload is valid.
  std::string Payload;      ///< The result frame's payload (when Ok).
  CrashKind Crash = CrashKind::None;
  std::string CrashDetail;  ///< Human-readable classification detail.
  int TermSignal = 0;       ///< Terminating signal (CrashKind::Signal).
  bool RlimitCpuHit = false; ///< Death consistent with RLIMIT_CPU expiry.
  bool PartialOutput = false; ///< Worker died mid-frame (response lost).
  unsigned WorkerDeaths = 0; ///< Workers this unit killed (poison rule).
  uint64_t Micros = 0;      ///< Dispatch-to-outcome wall time.
};

/// Aggregate statistics across a pool's lifetime; callers publish these
/// as `pool.*` metrics.
struct PoolStats {
  uint64_t WorkersSpawned = 0;
  uint64_t WorkersRespawned = 0;
  uint64_t WorkersCrashed = 0;   ///< Signal deaths (incl. OOM kills).
  uint64_t WorkersTimedOut = 0;  ///< Deadline/heartbeat watchdog kills.
  uint64_t UnitsDispatched = 0;
  uint64_t UnitsRedispatched = 0;
  uint64_t UnitsPoisoned = 0;    ///< Quarantined by the poison-task rule.
  uint64_t BackoffWaits = 0;
  double BackoffMsTotal = 0.0;
};

/// The supervisor.  Not thread-safe: one owner drives run() calls; the
/// workers themselves provide the parallelism.
class ProcessPool {
public:
  explicit ProcessPool(PoolOptions Options);
  ~ProcessPool();
  ProcessPool(const ProcessPool &) = delete;
  ProcessPool &operator=(const ProcessPool &) = delete;

  /// Executes one request payload per unit and returns outcomes in unit
  /// order.  Workers persist across calls (their setup survives), so
  /// callers may run several rounds against the same pool.
  std::vector<UnitOutcome> run(const std::vector<std::string> &Units);

  const PoolStats &stats() const { return Stats; }

private:
  struct Impl;
  std::unique_ptr<Impl> P;
  PoolStats Stats;
};

/// Absolute path of the running executable (/proc/self/exe), or
/// \p Fallback when unavailable.
std::string currentExecutablePath(const std::string &Fallback = "");

/// Caller-facing isolation configuration: what the CLI's --isolate /
/// --worker-* flags (and the NARADA_ISOLATE env hook) select, threaded
/// through NaradaOptions and the detect stage to wherever a pool is built.
struct IsolateOptions {
  bool Enabled = false;
  /// Worker executable (normally the running narada-cli binary itself,
  /// re-exec'd in `worker` mode).
  std::string WorkerExe;
  /// Per-unit wall deadline (seconds); contains :hang faults.
  double UnitDeadlineSeconds = 60.0;
  /// Heartbeat watchdog (seconds); 0 disables.
  double HeartbeatTimeoutSeconds = 10.0;
  /// --worker-cpu-limit: RLIMIT_CPU per worker in seconds (0 = inherit).
  uint64_t WorkerCpuLimitSeconds = 0;
  /// --worker-mem-limit: RLIMIT_AS per worker in MiB (0 = inherit).
  uint64_t WorkerMemLimitMb = 0;

  /// Materializes PoolOptions for \p Workers workers running
  /// \p SetupPayload's stage.
  PoolOptions poolOptions(unsigned Workers, std::string SetupPayload) const {
    PoolOptions Out;
    Out.WorkerArgv = {WorkerExe, "worker"};
    Out.Workers = Workers;
    Out.SetupPayload = std::move(SetupPayload);
    Out.UnitDeadlineSeconds = UnitDeadlineSeconds;
    Out.HeartbeatTimeoutSeconds = HeartbeatTimeoutSeconds;
    Out.WorkerCpuLimitSeconds = WorkerCpuLimitSeconds;
    Out.WorkerMemLimitMb = WorkerMemLimitMb;
    return Out;
  }
};

} // namespace pool
} // namespace narada

#endif // NARADA_SUPPORT_PROCESSPOOL_H
