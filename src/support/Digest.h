//===- support/Digest.h - Content digests -----------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one content-digest primitive behind every content-addressed cache in
/// the tree (serve/SummaryCache, serve/MemoCache, the daemon's seed and
/// detection caches): 64-bit FNV-1a over byte strings, with a combinator
/// for multi-part keys.  Digests are cache keys, not security boundaries —
/// a collision costs a stale-but-plausible cache hit on adversarial input,
/// which the daemon does not defend against (its clients are trusted CI
/// fleets; see docs/SERVING.md).
///
/// The function is fixed forever: digests are persisted in the daemon's
/// on-disk cache file, so changing it requires bumping the cache schema
/// version (serve/CacheFile.h) to force a cold fallback.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_DIGEST_H
#define NARADA_SUPPORT_DIGEST_H

#include <cstdint>
#include <string>
#include <string_view>

namespace narada {
namespace digest {

inline constexpr uint64_t Fnv1aOffset = 1469598103934665603ull;
inline constexpr uint64_t Fnv1aPrime = 1099511628211ull;

/// Extends digest \p H with the bytes of \p Data.
inline uint64_t update(uint64_t H, std::string_view Data) {
  for (unsigned char C : Data) {
    H ^= C;
    H *= Fnv1aPrime;
  }
  return H;
}

/// Extends digest \p H with an already-computed digest \p D (8 bytes,
/// little-endian), so composed digests don't degenerate into plain
/// concatenation of the underlying texts.
inline uint64_t updateU64(uint64_t H, uint64_t D) {
  for (int I = 0; I < 8; ++I) {
    H ^= static_cast<unsigned char>(D >> (8 * I));
    H *= Fnv1aPrime;
  }
  return H;
}

/// 64-bit FNV-1a of \p Data.
inline uint64_t of(std::string_view Data) {
  return update(Fnv1aOffset, Data);
}

/// Fixed-width lower-case hex rendering for logs and cache records.
inline std::string hex(uint64_t D) {
  static const char *Digits = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<size_t>(I)] = Digits[D & 0xf];
    D >>= 4;
  }
  return Out;
}

} // namespace digest
} // namespace narada

#endif // NARADA_SUPPORT_DIGEST_H
