//===- support/RaceKey.h - Stable, collision-free race identity -*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical race identity shared by the dynamic detectors, the static
/// verdict annotator, and the race database: `Class.field{labelA~labelB}`
/// with the label pair sorted so the identity is unordered.  The raw
/// concatenation used historically is ambiguous — a class name containing
/// `.` or a label containing `~`/`}` can collide with a different race —
/// so every component is escaped before joining:
///
///   `\`  ->  `\\`        (all components)
///   `{`  ->  `\{`        (all components)
///   `}`  ->  `\}`        (all components)
///   `~`  ->  `\~`        (all components)
///   `.`  ->  `\.`        (class name only; labels/fields keep raw dots)
///
/// The encoding is the identity function on every key the corpus produces
/// today (plain identifiers, `[]` element fields, `Class.method:pc`
/// labels), so existing reports, goldens, and bench baselines do not
/// drift.  parseRaceKey() inverts makeRaceKey() exactly and rejects
/// anything ambiguous; migrateLegacyRaceKey() upgrades keys written by
/// the pre-escaping format on a best-effort split (first `.`, first `{`,
/// first `~`, trailing `}`) so old databases stay readable.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_RACEKEY_H
#define NARADA_SUPPORT_RACEKEY_H

#include <optional>
#include <string>
#include <string_view>

namespace narada {

/// The four components of a race identity, unescaped.
struct RaceKeyParts {
  std::string ClassName;
  std::string Field;       ///< Field name, or "[]" for array elements.
  std::string FirstLabel;  ///< Sorted: FirstLabel <= SecondLabel.
  std::string SecondLabel;
};

/// Escapes one key component.  \p EscapeDot additionally escapes `.`,
/// which only the class-name position needs (the class/field separator is
/// the first unescaped dot; fields and labels may contain raw dots).
std::string escapeRaceKeyComponent(std::string_view Raw, bool EscapeDot);

/// Builds the canonical escaped key.  The label pair is sorted on the raw
/// (unescaped) strings, matching the historical ordering.
std::string makeRaceKey(std::string_view ClassName, std::string_view Field,
                        std::string_view LabelA, std::string_view LabelB);
std::string makeRaceKey(const RaceKeyParts &Parts);

/// Strict inverse of makeRaceKey(): splits at the first unescaped `.`,
/// first unescaped `{`, first unescaped `~`, and a final unescaped `}`
/// that must terminate the string; any unescaped special character inside
/// a component is a parse failure.  Returns the unescaped components.
std::optional<RaceKeyParts> parseRaceKey(std::string_view Key);

/// One-time migration for keys written before escaping existed: splits on
/// the first `.`, first `{`, first `~` and the trailing `}` with no
/// escape awareness, then re-encodes canonically.  Returns std::nullopt
/// when the key has no recognizable shape at all.
std::optional<RaceKeyParts> parseLegacyRaceKey(std::string_view Key);

/// Canonicalizes \p Key for the race database loader: already-canonical
/// keys pass through byte-identical; legacy keys are re-encoded (setting
/// \p Migrated); unrecognizable keys return std::nullopt.
std::optional<std::string> canonicalRaceKey(std::string_view Key,
                                            bool &Migrated);

} // namespace narada

#endif // NARADA_SUPPORT_RACEKEY_H
