//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A steady-clock stopwatch used by the benchmark harness to report synthesis
/// time per class (Table 4 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_TIMER_H
#define NARADA_SUPPORT_TIMER_H

#include <chrono>

namespace narada {

/// Measures elapsed wall-clock time from construction (or last restart).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void restart() { Start = Clock::now(); }

  /// Elapsed time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace narada

#endif // NARADA_SUPPORT_TIMER_H
