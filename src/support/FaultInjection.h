//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named fault-injection probe sites threaded through the pipeline, so
/// tests can force a failure at any stage and assert the pipeline degrades
/// to a structured skip/quarantine instead of aborting.
///
/// A probe site is a string like "synth.derive" placed at a containment
/// boundary.  Probes are keyed by the *logical work unit* (canonical pair
/// index in the synthesis stage, test index in the detection stage), not by
/// temporal hit order: workers enter a fault::ScopedUnit before touching a
/// unit, and an armed probe fires exactly when its site is reached inside
/// the armed unit.  That makes injection deterministic for every --jobs
/// value — the same pair faults no matter which worker picks it up.
///
/// Arming: programmatic (fault::arm) or via the environment,
///
///   NARADA_FAULT_INJECT=<site>:<unit>[:throw|:timeout|:crash|:segv|:hang|:oom]
///
/// "throw" (default) makes the probe raise fault::InjectedFault, which the
/// exception barriers in ParallelDriver / detectRacesInTests convert into
/// an internal_fault skip or a quarantined test.  "timeout" makes the
/// matching timeoutProbe() report a simulated step-budget blowout, which
/// exercises the retry-then-quarantine watchdog path.  The hard modes
/// (crash/segv/hang/oom) kill or wedge the process for real; they test the
/// ProcessPool supervisor's containment and must only be armed under
/// --isolate (in-process, they do exactly what they say).
///
/// Probes are no-ops when nothing is armed apart from registering their
/// site (one mutex-guarded map touch at pair/test granularity — far off
/// every hot path), so the sweep test can enumerate every site a clean run
/// crosses via throwSites()/timeoutSites().
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_FAULTINJECTION_H
#define NARADA_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace narada {
namespace fault {

/// The exception an armed throw-mode probe raises.  Derives from
/// std::runtime_error so generic barriers (catch std::exception) contain it
/// without knowing about injection.
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(const std::string &What)
      : std::runtime_error(What) {}
};

/// What an armed probe does when it fires.  Throw and Timeout are the
/// soft modes contained by in-process barriers; the hard modes genuinely
/// take the process down (or hang it) and exist to exercise out-of-process
/// containment — fire them only inside an isolated worker (--isolate).
enum class Mode {
  Throw,   ///< probe() raises InjectedFault.
  Timeout, ///< timeoutProbe() returns true (simulated step-budget blowout).
  Crash,   ///< probe() calls abort(): SIGABRT, no unwinding, no cleanup.
  Segv,    ///< probe() raises SIGSEGV, as a wild pointer write would.
  Hang,    ///< probe() sleeps forever: the supervisor's wall-deadline
           ///< watchdog is the only way out.
  Oom,     ///< probe() exhausts memory: under a finite RLIMIT_AS it
           ///< allocates-and-touches until the real std::bad_alloc escapes;
           ///< without a limit it throws std::bad_alloc directly (so
           ///< in-process runs don't dirty all of RAM).
};

/// Arms injection: the probe at \p Site fires when reached inside logical
/// unit \p Unit.  Replaces any previous arming (one site at a time — the
/// sweep iterates).
void arm(std::string Site, uint64_t Unit, Mode M = Mode::Throw);

/// Disarms injection; probes return to no-ops.
void disarm();

/// True when a site is armed.
bool armed();

/// Parses and arms a "<site>:<unit>[:throw|:timeout]" spec.  Returns false
/// (leaving the armed state untouched, \p Why set when non-null) on
/// malformed input.
bool armFromSpec(const std::string &Spec, std::string *Why = nullptr);

/// Declares the logical unit the current thread is working on (RAII;
/// restores the previous unit on destruction, so scopes nest).  Probes
/// only fire inside a unit scope.
class ScopedUnit {
public:
  explicit ScopedUnit(uint64_t Unit);
  ~ScopedUnit();
  ScopedUnit(const ScopedUnit &) = delete;
  ScopedUnit &operator=(const ScopedUnit &) = delete;

private:
  std::optional<uint64_t> Previous;
};

/// The current thread's logical unit, if inside a ScopedUnit.
std::optional<uint64_t> currentUnit();

/// Stable lower-case name of \p M ("throw", "timeout", "crash", ...).
const char *modeName(Mode M);

/// A throw-mode probe: registers \p Site and fires when \p Site is armed
/// in any non-Timeout mode and the current unit matches — raising
/// InjectedFault (Throw) or executing the armed hard fault
/// (Crash/Segv/Hang/Oom; see Mode).
void probe(const char *Site);

/// A timeout-mode probe: registers \p Site and returns true when \p Site
/// is armed in Mode::Timeout and the current unit matches.  The caller
/// simulates a step-budget/watchdog expiry for the unit.
bool timeoutProbe(const char *Site);

/// Every throw-mode site some probe() call has registered, sorted.
std::vector<std::string> throwSites();

/// Every timeout-mode site some timeoutProbe() call has registered, sorted.
std::vector<std::string> timeoutSites();

/// Total probe hits at \p Site (0 when never reached).
uint64_t hitCount(const std::string &Site);

/// The smallest logical unit \p Site has been reached under, if any —
/// the sweep test injects there so every site is exercisable.
std::optional<uint64_t> minUnitOf(const std::string &Site);

/// Drops all registered sites and hit counts (test isolation; does not
/// touch the armed state).
void resetRegistry();

} // namespace fault

/// Renders the exception held by \p E ("<message>" for std::exception,
/// a fixed string otherwise) for skip/quarantine records.
std::string describeException(std::exception_ptr E);

} // namespace narada

#endif // NARADA_SUPPORT_FAULTINJECTION_H
