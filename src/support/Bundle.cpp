//===- support/Bundle.cpp - Module+seed bundle codec ---------------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "support/Bundle.h"

using namespace narada;

void wire::addBundle(RecordWriter &W, std::string_view Source,
                     const std::vector<std::string> &Seeds) {
  W.add("source", Source);
  for (const std::string &Seed : Seeds)
    W.add("seed", Seed);
}

Result<wire::ModuleBundle> wire::readBundle(const RecordReader &In,
                                            const char *What) {
  std::optional<std::string> Source = In.get("source");
  if (!Source)
    return Error(std::string(What) + " record has no source");
  ModuleBundle Out;
  Out.Source = std::move(*Source);
  Out.Seeds = In.all("seed");
  return Out;
}
