//===- support/Error.h - Lightweight error handling -----------*- C++ -*-===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free error handling primitives in the spirit of llvm::Error /
/// llvm::Expected.  Library code returns Result<T> instead of throwing; the
/// Error payload is a message plus an optional source location string.
///
//===----------------------------------------------------------------------===//

#ifndef NARADA_SUPPORT_ERROR_H
#define NARADA_SUPPORT_ERROR_H

#include <cassert>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace narada {

/// A recoverable error: a human-readable message, optionally tagged with the
/// source location (file:line of the *analyzed program*, not of C++ code)
/// where the problem was detected.
class Error {
public:
  Error() = default;
  explicit Error(std::string Message) : Message(std::move(Message)) {}
  Error(std::string Message, std::string Location)
      : Message(std::move(Message)), Location(std::move(Location)) {}

  const std::string &message() const { return Message; }
  const std::string &location() const { return Location; }

  /// Renders "location: message" or just "message" when no location is set.
  std::string str() const {
    if (Location.empty())
      return Message;
    return Location + ": " + Message;
  }

private:
  std::string Message;
  std::string Location;
};

/// Either a value of type T or an Error.  Modeled after llvm::Expected but
/// without the checked-flag machinery; asserts on misuse instead.
template <typename T> class Result {
public:
  /*implicit*/ Result(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Result(Error E) : Err(std::move(E)) {}

  explicit operator bool() const { return Value.has_value(); }
  bool hasValue() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing an error Result");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing an error Result");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing an error Result");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing an error Result");
    return &*Value;
  }

  /// Moves the contained value out; only valid in the success state.
  T take() {
    assert(Value && "taking value from an error Result");
    return std::move(*Value);
  }

  const Error &error() const {
    assert(!Value && "taking error from a success Result");
    return Err;
  }

private:
  std::optional<T> Value;
  Error Err;
};

/// Result specialization for operations with no payload.
class Status {
public:
  Status() = default;
  /*implicit*/ Status(Error E) : Err(std::move(E)), Failed(true) {}

  static Status success() { return Status(); }

  explicit operator bool() const { return !Failed; }
  bool ok() const { return !Failed; }

  const Error &error() const {
    assert(Failed && "taking error from a success Status");
    return Err;
  }

private:
  Error Err;
  bool Failed = false;
};

/// Marks a point in the code that must be unreachable if invariants hold.
[[noreturn]] inline void naradaUnreachableImpl(const char *Message,
                                               const char *File, int Line) {
  // Assertions may be compiled out; abort unconditionally so release builds
  // fail loudly rather than running off the end of a function.
  (void)Message;
  (void)File;
  (void)Line;
  assert(false && "narada_unreachable reached");
  std::abort();
}

} // namespace narada

#define narada_unreachable(MSG)                                               \
  ::narada::naradaUnreachableImpl(MSG, __FILE__, __LINE__)

#endif // NARADA_SUPPORT_ERROR_H
