//===- support/StringUtils.cpp - Small string helpers ---------------------===//
//
// Part of Narada-C++, a reproduction of "Synthesizing Racy Tests" (PLDI'15).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

using namespace narada;

std::vector<std::string> narada::split(std::string_view Text, char Sep) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Pieces.emplace_back(Text.substr(Start));
      return Pieces;
    }
    Pieces.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string narada::join(const std::vector<std::string> &Pieces,
                         std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Pieces.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Pieces[I];
  }
  return Out;
}

std::string_view narada::trim(std::string_view Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool narada::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

bool narada::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

std::string narada::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string narada::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return std::string(Buffer);
}

std::string narada::padLeft(std::string Text, size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return std::string(Width - Text.size(), ' ') + Text;
}

std::string narada::padRight(std::string Text, size_t Width) {
  if (Text.size() >= Width)
    return Text;
  Text.append(Width - Text.size(), ' ');
  return Text;
}
